// Closed-loop ablation: execute Algorithm-2 plans under distance-tapered
// uplink rates, open-loop vs. the adaptive dwell controller
// (sim::fly_adaptive). The controller keeps the route but extends dwells
// where actual rates fall short, funded by route-home reserve accounting —
// recovering most of the volume the open-loop plan silently loses.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "uavdc/sim/adaptive.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/stats.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    workload::GeneratorConfig gen = bench::base_generator(settings);
    gen.uav.energy_j = bench::default_energy(settings);
    const auto instances = bench::make_instances(gen, settings);

    // Plan once (constant-rate assumption), execute under each taper.
    const auto factory = bench::alg2_factory(params);
    std::vector<model::FlightPlan> plans(instances.size());
    util::parallel_for(0, instances.size(), [&](std::size_t i) {
        plans[i] = factory()->plan(instances[i]).plan;
    });

    std::cout << "\n=== Closed-loop dwell control under rate mismatch ===\n";
    util::Table table({"taper", "open-loop [GB]", "adaptive [GB]",
                       "recovered"});
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;
    double planned_gb = 0.0;
    for (double taper : {0.0, 0.25, 0.5, 0.75}) {
        const sim::DistanceTaperRadio model(taper > 0.0 ? taper : 1e-12);
        util::Accumulator open_gb, adaptive_gb;
        std::vector<std::pair<double, double>> cells(instances.size());
        util::parallel_for(0, instances.size(), [&](std::size_t i) {
            sim::SimConfig scfg;
            scfg.record_trace = false;
            if (taper > 0.0) scfg.radio = &model;
            const double open =
                sim::Simulator(scfg).run(instances[i], plans[i])
                    .collected_mb /
                1000.0;
            sim::AdaptiveConfig acfg;
            if (taper > 0.0) acfg.radio = &model;
            const double adaptive =
                sim::fly_adaptive(instances[i], plans[i], acfg)
                    .collected_mb /
                1000.0;
            cells[i] = {open, adaptive};
        });
        for (const auto& [o, a] : cells) {
            open_gb.add(o);
            adaptive_gb.add(a);
        }
        if (taper == 0.0) planned_gb = open_gb.mean();
        const double lost = planned_gb - open_gb.mean();
        const double recovered =
            lost > 1e-9 ? (adaptive_gb.mean() - open_gb.mean()) / lost : 0.0;
        char tlabel[16];
        std::snprintf(tlabel, sizeof(tlabel), "%.2f", taper);
        table.add_row({tlabel, util::Table::fmt(open_gb.mean(), 2),
                       util::Table::fmt(adaptive_gb.mean(), 2),
                       util::Table::fmt(100.0 * recovered, 1) + "%"});
        bench::RunOutcome row;
        row.algo = "adaptive";
        row.mean_gb = adaptive_gb.mean();
        row.ci95_gb = adaptive_gb.ci95_halfwidth();
        csv_rows.emplace_back(tlabel, row);
        bench::RunOutcome open_row;
        open_row.algo = "open-loop";
        open_row.mean_gb = open_gb.mean();
        open_row.ci95_gb = open_gb.ci95_halfwidth();
        csv_rows.emplace_back(tlabel, open_row);
    }
    table.print(std::cout, 2);
    bench::write_csv(settings.out_dir, "abl_adaptive", csv_rows);
    bench::print_context_stats();
    return 0;
}
