// Baseline panorama: the paper's planners against two related-work
// strawmen — data-weighted k-means hovering (after Mozaffari et al. [10],
// the paper's Sec. II) and a boustrophedon full-field sweep. Quantifies
// how much the paper's coverage-aware grid candidates actually buy.

#include <iostream>

#include "bench_common.hpp"
#include "uavdc/core/baseline_planners.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    workload::GeneratorConfig gen = bench::base_generator(settings);
    gen.uav.energy_j = bench::default_energy(settings);
    const auto instances = bench::make_instances(gen, settings);

    const std::vector<bench::PlannerFactory> algos{
        bench::alg1_factory(params),
        bench::alg2_factory(params),
        bench::alg3_factory(params, 2),
        bench::benchmark_factory(params.scoring),
        [] { return std::make_unique<core::ClusterPlanner>(); },
        [] { return std::make_unique<core::SweepPlanner>(); },
    };

    std::cout << "\n=== Baseline panorama (E = "
              << util::Table::fmt(gen.uav.energy_j, 0) << " J) ===\n";
    util::Table table(
        {"planner", "collected [GB]", "stops", "time [ms]"});
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;
    for (const auto& f : algos) {
        const auto outcome = bench::evaluate_planner(f, instances);
        table.add_row({outcome.algo, util::Table::fmt(outcome.mean_gb, 2) +
                                         " ±" +
                                         util::Table::fmt(outcome.ci95_gb, 2),
                       util::Table::fmt(outcome.mean_stops, 0),
                       util::Table::fmt(outcome.mean_runtime_s * 1e3, 1)});
        csv_rows.emplace_back("default", outcome);
    }
    table.print(std::cout, 2);
    bench::write_csv(settings.out_dir, "abl_baselines", csv_rows);
    bench::print_context_stats();
    return 0;
}
