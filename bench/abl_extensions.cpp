// Extension ablations beyond the paper's single-tour open-loop setting:
//  (1) multi-tour planning (R battery swaps / fleet sorties) — how much of
//      the field R sorties recover vs one;
//  (2) adaptive early departure at execution time — hover energy banked by
//      leaving a stop once every covered device is drained.

#include <array>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "uavdc/core/fleet.hpp"
#include "uavdc/core/multi_tour.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/stats.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    workload::GeneratorConfig gen = bench::base_generator(settings);
    gen.uav.energy_j = bench::default_energy(settings);
    const auto instances = bench::make_instances(gen, settings);
    double total_gb = 0.0;
    for (const auto& inst : instances) total_gb += inst.total_data_mb();
    total_gb /= 1000.0 * static_cast<double>(instances.size());

    // --- (1) multi-tour sweep -------------------------------------------
    std::cout << "\n=== Extension - multi-tour (battery swaps) ===\n";
    util::Table mt({"sorties", "collected [GB]", "of field", "plan time [s]"});
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;
    for (int r : {1, 2, 3, 4}) {
        util::Accumulator gb, rt;
        std::vector<std::pair<double, double>> cells(instances.size());
        util::parallel_for(0, instances.size(), [&](std::size_t i) {
            core::MultiTourConfig cfg;
            cfg.tours = r;
            cfg.inner.candidates.delta_m = params.delta_m;
            cfg.inner.candidates.max_candidates = params.max_candidates;
            cfg.inner.k = 2;
            const auto res = core::plan_multi_tour(instances[i], cfg);
            cells[i] = {res.planned_mb / 1000.0, res.runtime_s};
        });
        for (const auto& [v, t] : cells) {
            gb.add(v);
            rt.add(t);
        }
        mt.add_row({std::to_string(r), util::Table::fmt(gb.mean(), 2),
                    util::Table::fmt(100.0 * gb.mean() / total_gb, 1) + "%",
                    util::Table::fmt(rt.mean(), 3)});
        bench::RunOutcome row;
        row.algo = "multi-tour";
        row.mean_gb = gb.mean();
        row.ci95_gb = gb.ci95_halfwidth();
        row.mean_runtime_s = rt.mean();
        csv_rows.emplace_back("R=" + std::to_string(r), row);
    }
    mt.print(std::cout, 2);

    // --- (1b) simultaneous fleet vs sequential sorties -------------------
    std::cout << "\n=== Extension - fleet (simultaneous) vs multi-tour "
                 "(sequential) ===\n";
    util::Table fl({"m", "fleet [GB]", "fleet makespan [s]",
                    "sequential [GB]", "seq makespan [s]"});
    for (int m : {2, 3}) {
        util::Accumulator f_gb, f_ms, s_gb, s_ms;
        std::vector<std::array<double, 4>> cells(instances.size());
        util::parallel_for(0, instances.size(), [&](std::size_t i) {
            core::FleetConfig fc;
            fc.uavs = m;
            fc.inner.candidates.delta_m = params.delta_m;
            fc.inner.candidates.max_candidates = params.max_candidates;
            fc.inner.k = 2;
            const auto fleet = core::plan_fleet(instances[i], fc);
            core::MultiTourConfig mc;
            mc.tours = m;
            mc.inner = fc.inner;
            const auto seq = core::plan_multi_tour(instances[i], mc);
            cells[i] = {fleet.planned_mb / 1000.0, fleet.makespan_s,
                        seq.planned_mb / 1000.0, seq.makespan_s};
        });
        for (const auto& c : cells) {
            f_gb.add(c[0]);
            f_ms.add(c[1]);
            s_gb.add(c[2]);
            s_ms.add(c[3]);
        }
        fl.add_row({std::to_string(m), util::Table::fmt(f_gb.mean(), 2),
                    util::Table::fmt(f_ms.mean(), 0),
                    util::Table::fmt(s_gb.mean(), 2),
                    util::Table::fmt(s_ms.mean(), 0)});
        bench::RunOutcome row;
        row.algo = "fleet";
        row.mean_gb = f_gb.mean();
        csv_rows.emplace_back("m=" + std::to_string(m), row);
    }
    fl.print(std::cout, 2);

    // --- (2) early departure --------------------------------------------
    std::cout << "\n=== Extension - adaptive early departure ===\n";
    util::Table ed({"planner", "hover saved [%]", "energy saved [J]"});
    const std::vector<std::pair<std::string, bench::PlannerFactory>> algos{
        {"alg2", bench::alg2_factory(params)},
        {"alg3-k4", bench::alg3_factory(params, 4)},
        {"benchmark", bench::benchmark_factory(params.scoring)},
    };
    for (const auto& [name, factory] : algos) {
        util::Accumulator saved_j, saved_frac;
        std::vector<std::pair<double, double>> cells(instances.size());
        util::parallel_for(0, instances.size(), [&](std::size_t i) {
            const auto plan = factory()->plan(instances[i]).plan;
            sim::SimConfig cfg;
            cfg.record_trace = false;
            cfg.early_departure = true;
            const auto rep =
                sim::Simulator(cfg).run(instances[i], plan);
            const double hover_planned_j =
                plan.hover_time() * instances[i].uav.hover_power_w;
            cells[i] = {rep.energy_saved_j,
                        hover_planned_j > 0.0
                            ? rep.energy_saved_j / hover_planned_j
                            : 0.0};
        });
        for (const auto& [j, frac] : cells) {
            saved_j.add(j);
            saved_frac.add(frac);
        }
        ed.add_row({name,
                    util::Table::fmt(100.0 * saved_frac.mean(), 1),
                    util::Table::fmt(saved_j.mean(), 0)});
        bench::RunOutcome row;
        row.algo = name;
        row.mean_energy_j = saved_j.mean();
        csv_rows.emplace_back("early-departure", row);
    }
    ed.print(std::cout, 2);
    bench::write_csv(settings.out_dir, "abl_extensions", csv_rows);
    bench::print_context_stats();
    return 0;
}
