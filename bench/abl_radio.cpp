// Radio-model ablation (DESIGN.md invariant check on the paper's equal-rate
// OFDMA assumption, Sec. III-B): plans are built under the constant-rate
// model, then *executed* in the simulator under distance-tapered uplink
// rates. Reports how much volume each planner's tours lose as the taper
// strengthens — i.e. how load-bearing the simplification is for the
// paper's conclusions.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/stats.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    workload::GeneratorConfig gen = bench::base_generator(settings);
    gen.uav.energy_j = bench::default_energy(settings);
    const auto instances = bench::make_instances(gen, settings);

    const std::vector<std::pair<std::string, bench::PlannerFactory>> algos{
        {"alg2", bench::alg2_factory(params)},
        {"alg3-k4", bench::alg3_factory(params, 4)},
        {"benchmark", bench::benchmark_factory(params.scoring)},
    };
    const std::vector<double> tapers{0.0, 0.25, 0.5, 0.75};

    std::cout << "\n=== Ablation - distance-tapered uplink at execution "
                 "time ===\n";
    util::Table table({"planner", "taper", "executed [GB]", "vs planned"});
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;

    for (const auto& [name, factory] : algos) {
        // Plan once per instance under the paper's constant-rate model.
        std::vector<model::FlightPlan> plans(instances.size());
        util::parallel_for(0, instances.size(), [&](std::size_t i) {
            plans[i] = factory()->plan(instances[i]).plan;
        });
        double baseline_gb = 0.0;
        for (double taper : tapers) {
            const sim::DistanceTaperRadio model(
                taper > 0.0 ? taper : 1e-12);
            util::Accumulator gb;
            std::vector<double> vols(instances.size());
            util::parallel_for(0, instances.size(), [&](std::size_t i) {
                sim::SimConfig cfg;
                cfg.record_trace = false;
                if (taper > 0.0) cfg.radio = &model;
                vols[i] = sim::Simulator(cfg)
                              .run(instances[i], plans[i])
                              .collected_mb /
                          1000.0;
            });
            for (double v : vols) gb.add(v);
            if (taper == 0.0) baseline_gb = gb.mean();
            char tlabel[16];
            std::snprintf(tlabel, sizeof(tlabel), "%.2f", taper);
            table.add_row(
                {name, tlabel, util::Table::fmt(gb.mean(), 2),
                 util::Table::fmt(
                     100.0 * gb.mean() / std::max(baseline_gb, 1e-12), 1) +
                     "%"});
            bench::RunOutcome row;
            row.algo = name;
            row.mean_gb = gb.mean();
            row.ci95_gb = gb.ci95_halfwidth();
            csv_rows.emplace_back(tlabel, row);
        }
    }
    table.print(std::cout, 2);
    bench::write_csv(settings.out_dir, "abl_radio", csv_rows);
    bench::print_context_stats();
    return 0;
}
