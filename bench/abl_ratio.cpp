// Design-choice ablation for Algorithm 2's greedy criterion: the paper
// ranks candidates by marginal data per marginal energy (Eq. 13). How much
// of the algorithm's quality comes from that ratio rather than the grid
// candidates themselves? Compare against ranking by raw volume and by
// hover-energy-only across the energy sweep.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "uavdc/core/algorithm2.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    const std::vector<double> energies = bench::energy_sweep(settings);
    const std::vector<core::RatioRule> rules{
        core::RatioRule::kPaper, core::RatioRule::kVolumeOnly,
        core::RatioRule::kPerHover};

    std::vector<std::string> algo_names;
    for (auto rule : rules) algo_names.push_back(core::to_string(rule));

    std::vector<std::string> sweep_points;
    std::vector<std::vector<bench::RunOutcome>> grid;
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;

    for (double energy : energies) {
        workload::GeneratorConfig gen = bench::base_generator(settings);
        gen.uav.energy_j = energy;
        const auto instances = bench::make_instances(gen, settings);
        char label[32];
        std::snprintf(label, sizeof(label), "%.2gJ", energy);
        sweep_points.emplace_back(label);
        std::vector<bench::RunOutcome> row;
        for (auto rule : rules) {
            const auto factory = [&params, rule] {
                core::Algorithm2Config cfg;
                cfg.candidates.delta_m = params.delta_m;
                cfg.candidates.max_candidates = params.max_candidates;
                cfg.ratio_rule = rule;
                return std::make_unique<core::GreedyCoveragePlanner>(cfg);
            };
            auto outcome = bench::evaluate_planner(factory, instances);
            outcome.algo = core::to_string(rule);
            row.push_back(outcome);
            csv_rows.emplace_back(label, outcome);
        }
        grid.push_back(std::move(row));
    }

    bench::print_figure(
        "Ablation - Algorithm 2 greedy criterion (Eq. 13 vs alternatives)",
        "E", sweep_points, algo_names, grid);
    bench::write_csv(settings.out_dir, "abl_ratio", csv_rows);
    bench::write_gnuplot(settings.out_dir, "abl_ratio", csv_rows,
                         "energy capacity E [J]");
    bench::print_context_stats();
    return 0;
}
