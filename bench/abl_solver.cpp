// Solver-quality ablation for Algorithm 1: the paper plugs in the Bansal
// et al. orienteering approximation as a black box (DESIGN.md substitution
// #1); this bench quantifies how much tour quality the substitution knob
// actually moves by comparing the greedy, GRASP, and ILS backends on
// identical instances and candidate sets.

#include <iostream>

#include "bench_common.hpp"
#include "uavdc/core/registry.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    workload::GeneratorConfig gen = bench::base_generator(settings);
    gen.uav.energy_j = bench::default_energy(settings);
    const auto instances = bench::make_instances(gen, settings);

    std::cout << "\n=== Algorithm 1 orienteering-backend ablation ===\n";
    util::Table table({"solver", "collected [GB]", "time [ms]"});
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;
    for (auto kind : {orienteering::SolverKind::kGreedy,
                      orienteering::SolverKind::kGrasp,
                      orienteering::SolverKind::kIls}) {
        const auto factory = [&params, kind] {
            core::PlannerOptions opts;
            opts.delta_m = params.delta_m;
            opts.max_candidates = params.max_candidates;
            opts.grasp_iterations = params.grasp_iterations;
            opts.solver = kind;
            return core::make_planner("alg1", opts);
        };
        const auto outcome = bench::evaluate_planner(factory, instances);
        table.add_row({orienteering::to_string(kind),
                       util::Table::fmt(outcome.mean_gb, 2) + " ±" +
                           util::Table::fmt(outcome.ci95_gb, 2),
                       util::Table::fmt(outcome.mean_runtime_s * 1e3, 1)});
        csv_rows.emplace_back(orienteering::to_string(kind), outcome);
    }
    table.print(std::cout, 2);
    bench::write_csv(settings.out_dir, "abl_solver", csv_rows);
    bench::print_context_stats();
    return 0;
}
