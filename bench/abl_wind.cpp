// Wind ablation: execute wind-oblivious Algorithm-2 plans under a constant
// wind of growing speed. Reports mean collected volume, the fraction of
// sorties that still complete, and the fix: re-planning with an energy
// safety margin sized to the wind (plan at E * (1 - margin)).

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/stats.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    workload::GeneratorConfig gen = bench::base_generator(settings);
    gen.uav.energy_j = bench::default_energy(settings);
    const auto instances = bench::make_instances(gen, settings);

    auto plan_all = [&](double margin) {
        std::vector<model::FlightPlan> plans(instances.size());
        util::parallel_for(0, instances.size(), [&](std::size_t i) {
            auto tmp = instances[i];
            tmp.uav.energy_j *= (1.0 - margin);
            plans[i] = bench::alg2_factory(params)()->plan(tmp).plan;
        });
        return plans;
    };
    const auto naive_plans = plan_all(0.0);
    const auto margin_plans = plan_all(0.25);

    std::cout << "\n=== Wind ablation (constant wind along +x) ===\n";
    util::Table table({"wind [m/s]", "naive [GB]", "completed",
                       "25% margin [GB]", "completed(m)"});
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;
    for (double wind : {0.0, 2.0, 4.0, 6.0}) {
        auto run = [&](const std::vector<model::FlightPlan>& plans,
                       util::Accumulator& gb, util::Accumulator& done) {
            std::vector<std::pair<double, double>> cells(instances.size());
            util::parallel_for(0, instances.size(), [&](std::size_t i) {
                sim::SimConfig cfg;
                cfg.record_trace = false;
                cfg.wind = sim::Wind{{wind, 0.0}};
                const auto rep =
                    sim::Simulator(cfg).run(instances[i], plans[i]);
                cells[i] = {rep.collected_mb / 1000.0,
                            rep.completed ? 1.0 : 0.0};
            });
            for (const auto& [v, c] : cells) {
                gb.add(v);
                done.add(c);
            }
        };
        util::Accumulator n_gb, n_done, m_gb, m_done;
        run(naive_plans, n_gb, n_done);
        run(margin_plans, m_gb, m_done);
        char label[16];
        std::snprintf(label, sizeof(label), "%.0f", wind);
        table.add_row({label, util::Table::fmt(n_gb.mean(), 2),
                       util::Table::fmt(100.0 * n_done.mean(), 0) + "%",
                       util::Table::fmt(m_gb.mean(), 2),
                       util::Table::fmt(100.0 * m_done.mean(), 0) + "%"});
        bench::RunOutcome naive_row;
        naive_row.algo = "naive";
        naive_row.mean_gb = n_gb.mean();
        csv_rows.emplace_back(label, naive_row);
        bench::RunOutcome margin_row;
        margin_row.algo = "margin25";
        margin_row.mean_gb = m_gb.mean();
        csv_rows.emplace_back(label, margin_row);
    }
    table.print(std::cout, 2);
    bench::write_csv(settings.out_dir, "abl_wind", csv_rows);
    bench::print_context_stats();
    return 0;
}
