#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <limits>

#include "uavdc/core/algorithm1.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/benchmark_planner.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/csv.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/stats.hpp"
#include "uavdc/workload/presets.hpp"

namespace uavdc::bench {

BenchSettings BenchSettings::parse(int argc, char** argv) {
    const util::Flags flags(argc, argv);
    BenchSettings s;
    const char* env_full = std::getenv("UAVDC_FULL");
    s.full = flags.get_bool("full",
                            env_full != nullptr &&
                                std::string(env_full) == "1");
    s.replicates = flags.get_int("replicates", s.full ? 15 : 5);
    s.seed = static_cast<std::uint64_t>(flags.get_int64("seed", 1));
    s.out_dir = flags.get_string("out", "bench_results");
    const std::string scoring =
        flags.get_string("scoring", to_string(s.scoring));
    const auto parsed = core::scoring_engine_from_string(scoring);
    UAVDC_CHECK(parsed.has_value())
        << "--scoring must be incremental | incremental-fast | reference, "
           "got \""
        << scoring << "\"";
    s.scoring = *parsed;
    return s;
}

TimingStats timing_stats(std::vector<double> samples) {
    UAVDC_CHECK(!samples.empty()) << "timing_stats over zero samples";
    std::sort(samples.begin(), samples.end());
    TimingStats t;
    t.min_s = samples.front();
    const std::size_t n = samples.size();
    t.median_s = n % 2 == 1
                     ? samples[n / 2]
                     : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
    double sum = 0.0;
    for (const double s : samples) sum += s;
    t.mean_s = sum / static_cast<double>(n);
    double var = 0.0;
    for (const double s : samples) {
        var += (s - t.mean_s) * (s - t.mean_s);
    }
    t.stddev_s = std::sqrt(var / static_cast<double>(n));
    return t;
}

workload::GeneratorConfig base_generator(const BenchSettings& s) {
    return s.full ? workload::paper_default() : workload::paper_scaled(0.35);
}

std::vector<model::Instance> make_instances(
    const workload::GeneratorConfig& cfg, const BenchSettings& settings) {
    std::vector<model::Instance> out;
    out.reserve(static_cast<std::size_t>(settings.replicates));
    for (int i = 0; i < settings.replicates; ++i) {
        out.push_back(workload::generate(
            cfg, settings.seed + static_cast<std::uint64_t>(i)));
    }
    return out;
}

RunOutcome evaluate_planner(const PlannerFactory& factory,
                            const std::vector<model::Instance>& instances) {
    struct Cell {
        double gb;
        double runtime_s;
        double stops;
        double energy_j;
    };
    std::vector<Cell> cells(instances.size());
    util::parallel_for(0, instances.size(), [&](std::size_t i) {
        auto planner = factory();
        const auto res = planner->plan(instances[i]);
        const auto ev = core::evaluate_plan(instances[i], res.plan);
        cells[i] = {ev.collected_mb / 1000.0, res.stats.runtime_s,
                    static_cast<double>(res.plan.num_stops()), ev.energy_j};
    });
    RunOutcome out;
    out.algo = factory()->name();
    util::Accumulator gb, rt, stops, energy;
    for (const auto& c : cells) {
        gb.add(c.gb);
        rt.add(c.runtime_s);
        stops.add(c.stops);
        energy.add(c.energy_j);
    }
    out.mean_gb = gb.mean();
    out.ci95_gb = gb.ci95_halfwidth();
    out.mean_runtime_s = rt.mean();
    out.mean_stops = stops.mean();
    out.mean_energy_j = energy.mean();
    return out;
}

void write_csv(const std::string& out_dir, const std::string& name,
               const std::vector<std::pair<std::string, RunOutcome>>& rows) {
    if (out_dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::cerr << "warning: cannot create " << out_dir << ": "
                  << ec.message() << "\n";
        return;
    }
    util::CsvWriter csv(out_dir + "/" + name + ".csv");
    csv.row({"sweep", "algo", "mean_gb", "ci95_gb", "mean_runtime_s",
             "mean_stops", "mean_energy_j"});
    for (const auto& [sweep, r] : rows) {
        csv.row_of(sweep, r.algo, r.mean_gb, r.ci95_gb, r.mean_runtime_s,
                   r.mean_stops, r.mean_energy_j);
    }
    csv.flush();
    std::cout << "wrote " << out_dir << "/" << name << ".csv\n";
}

void write_gnuplot(const std::string& out_dir, const std::string& name,
                   const std::vector<std::pair<std::string, RunOutcome>>& rows,
                   const std::string& xlabel) {
    if (out_dir.empty() || rows.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) return;
    // Collect the algorithm series in first-appearance order.
    std::vector<std::string> algos;
    for (const auto& [sweep, r] : rows) {
        if (std::find(algos.begin(), algos.end(), r.algo) == algos.end()) {
            algos.push_back(r.algo);
        }
    }
    std::ofstream gp(out_dir + "/" + name + ".gp");
    if (!gp) return;
    gp << "# gnuplot script generated by the uavdc bench harness\n"
       << "set terminal pngcairo size 900,600\n"
       << "set output '" << name << ".png'\n"
       << "set datafile separator ','\n"
       << "set key left top\n"
       << "set xlabel '" << xlabel << "'\n"
       << "set ylabel 'collected data volume [GB]'\n"
       << "set xtics rotate by -30\n"
       << "plot ";
    for (std::size_t i = 0; i < algos.size(); ++i) {
        if (i) gp << ", \\\n     ";
        // Row filter: keep only this algorithm's rows (1/0 drops a point);
        // x = sweep label (column 1), y = mean_gb +- ci95.
        gp << "'" << name << ".csv' every ::1 using "
           << "0:(strcol(2) eq '" << algos[i] << "' ? $3 : 1/0):4:"
           << "xtic(1) with yerrorlines title '" << algos[i] << "'";
    }
    gp << "\n";
    gp.flush();
}

void print_context_stats() {
    const auto s = core::PlanningContextCache::global().stats();
    const std::uint64_t lookups = s.hits + s.misses;
    std::cout << "\nplanning-context cache: " << s.hits << " hits / "
              << lookups << " lookups";
    if (lookups > 0) {
        std::cout << " ("
                  << util::Table::fmt(
                         100.0 * static_cast<double>(s.hits) /
                             static_cast<double>(lookups),
                         1)
                  << "% hit rate)";
    }
    std::cout << ", " << s.candidate_builds << " candidate builds in "
              << util::Table::fmt(s.candidate_build_time_s, 2) << " s\n";
}

void print_figure(const std::string& title, const std::string& sweep_label,
                  const std::vector<std::string>& sweep_points,
                  const std::vector<std::string>& algo_names,
                  const std::vector<std::vector<RunOutcome>>& grid) {
    std::cout << "\n=== " << title << " ===\n";
    {
        std::vector<std::string> headers{sweep_label};
        for (const auto& a : algo_names) headers.push_back(a + " [GB]");
        util::Table vol(headers);
        for (std::size_t r = 0; r < sweep_points.size(); ++r) {
            std::vector<std::string> row{sweep_points[r]};
            for (const auto& cell : grid[r]) {
                row.push_back(util::Table::fmt(cell.mean_gb, 2) + " ±" +
                              util::Table::fmt(cell.ci95_gb, 2));
            }
            vol.add_row(std::move(row));
        }
        std::cout << "(a) collected data volume\n";
        vol.print(std::cout, 2);
    }
    {
        std::vector<std::string> headers{sweep_label};
        for (const auto& a : algo_names) headers.push_back(a + " [s]");
        util::Table rt(headers);
        for (std::size_t r = 0; r < sweep_points.size(); ++r) {
            std::vector<std::string> row{sweep_points[r]};
            for (const auto& cell : grid[r]) {
                row.push_back(util::Table::fmt(cell.mean_runtime_s, 3));
            }
            rt.add_row(std::move(row));
        }
        std::cout << "(b) planner running time\n";
        rt.print(std::cout, 2);
    }
}

}  // namespace uavdc::bench

namespace uavdc::bench {

AlgoParams default_algo_params(const BenchSettings& s) {
    AlgoParams p;
    p.delta_m = 10.0;
    p.max_candidates = s.full ? 2500 : 1200;
    p.grasp_iterations = s.full ? 12 : 6;
    p.scoring = s.scoring;
    return p;
}

std::vector<double> energy_sweep(const BenchSettings& s) {
    if (s.full) {
        return {3.0e5, 4.5e5, 6.0e5, 7.5e5, 9.0e5};
    }
    // Under the paper-literal per-metre travel model the 0.35-scaled field
    // needs ~2e5 J for (near-)full collection; span scarce -> sufficient.
    return {0.4e5, 0.8e5, 1.2e5, 1.6e5, 2.0e5};
}

double default_energy(const BenchSettings& s) {
    // Roughly the paper's scarcity at E = 3e5 (planners collect ~30-50%
    // of the stored data).
    return s.full ? 3.0e5 : 0.7e5;
}

PlannerFactory alg1_factory(const AlgoParams& p) {
    return [p] {
        core::Algorithm1Config cfg;
        cfg.candidates.delta_m = p.delta_m;
        cfg.candidates.max_candidates = p.max_candidates;
        cfg.grasp.iterations = p.grasp_iterations;
        return std::make_unique<core::GridOrienteeringPlanner>(cfg);
    };
}

PlannerFactory alg2_factory(const AlgoParams& p) {
    return [p] {
        core::Algorithm2Config cfg;
        cfg.candidates.delta_m = p.delta_m;
        cfg.candidates.max_candidates = p.max_candidates;
        cfg.scoring = p.scoring;
        return std::make_unique<core::GreedyCoveragePlanner>(cfg);
    };
}

PlannerFactory alg3_factory(const AlgoParams& p, int k) {
    return [p, k] {
        core::Algorithm3Config cfg;
        cfg.candidates.delta_m = p.delta_m;
        cfg.candidates.max_candidates = p.max_candidates;
        cfg.k = k;
        cfg.scoring = p.scoring;
        return std::make_unique<core::PartialCollectionPlanner>(cfg);
    };
}

PlannerFactory benchmark_factory(core::ScoringEngine scoring) {
    return [scoring] {
        core::BenchmarkPlannerConfig cfg;
        cfg.scoring = scoring;
        return std::make_unique<core::PruneTspPlanner>(cfg);
    };
}

namespace {

/// One tracked perf case: a seeded instance plus a planner parameterised
/// only by the scoring engine.
struct BaselineCase {
    std::string name;
    workload::GeneratorConfig gen;
    core::HoverCandidateConfig hover;
    std::function<std::unique_ptr<core::Planner>(core::ScoringEngine)> make;
};

std::vector<BaselineCase> baseline_cases(bool quick) {
    std::vector<BaselineCase> cases;

    // Largest alg2 case: paper-scale field, >= 500 hover candidates. The
    // headline number — the incremental engine must hold a >= 3x speedup
    // here (and >= 10x on the exact-ratio-TSP case below).
    {
        BaselineCase c;
        c.name = "alg2_greedy_large";
        c.gen = quick ? workload::paper_scaled(0.35)
                      : workload::paper_default();
        c.gen.num_devices = quick ? 150 : 500;
        c.gen.uav.energy_j = quick ? 1.5e5 : 1.8e6;
        c.hover.delta_m = quick ? 10.0 : 8.0;
        c.hover.max_candidates = 6000;
        const auto hover = c.hover;
        c.make = [hover](core::ScoringEngine engine) {
            core::Algorithm2Config cfg;
            cfg.candidates = hover;
            cfg.scoring = engine;
            return std::make_unique<core::GreedyCoveragePlanner>(cfg);
        };
        cases.push_back(std::move(c));
    }

    // Literal Eq. 13 ranking (full re-tour per candidate): the reference
    // engine pays O(M) Christofides calls per insertion, the incremental
    // engine serves them lazily off upper bounds + the distance matrix.
    {
        BaselineCase c;
        c.name = "alg2_exact_ratio_tsp";
        c.gen = workload::paper_scaled(0.35);
        c.gen.num_devices = quick ? 40 : 400;
        // Clustered, data-heavy devices: candidates cover several devices
        // each and dwell (hover) energy dominates travel, so the lazy-greedy
        // hover-only upper bound stays discriminating and prunes most of the
        // per-iteration Christofides evaluations. The light travel rate
        // keeps the workload in that hover-dominated regime (a sensor-heavy
        // field surveyed by an efficient fixed-rotor platform).
        c.gen.deployment = workload::Deployment::kClustered;
        c.gen.clusters = quick ? 5 : 32;
        c.gen.cluster_stddev = 30.0;
        c.gen.min_mb *= 20.0;
        c.gen.max_mb *= 20.0;
        c.gen.uav.travel_rate = 20.0;
        c.gen.uav.energy_j = quick ? 4.0e5 : 8.0e6;
        c.hover.delta_m = quick ? 25.0 : 8.0;
        const auto hover = c.hover;
        c.make = [hover](core::ScoringEngine engine) {
            core::Algorithm2Config cfg;
            cfg.candidates = hover;
            cfg.exact_ratio_tsp = true;
            cfg.scoring = engine;
            return std::make_unique<core::GreedyCoveragePlanner>(cfg);
        };
        cases.push_back(std::move(c));
    }

    {
        BaselineCase c;
        c.name = "alg3_k4";
        c.gen = workload::paper_scaled(0.35);
        c.gen.num_devices = quick ? 80 : 300;
        c.gen.uav.energy_j = quick ? 0.6e5 : 1.2e5;
        c.hover.delta_m = 10.0;
        const auto hover = c.hover;
        c.make = [hover](core::ScoringEngine engine) {
            core::Algorithm3Config cfg;
            cfg.candidates = hover;
            cfg.k = 4;
            cfg.scoring = engine;
            return std::make_unique<core::PartialCollectionPlanner>(cfg);
        };
        cases.push_back(std::move(c));
    }

    {
        BaselineCase c;
        c.name = "benchmark_prune";
        c.gen = quick ? workload::paper_scaled(0.35)
                      : workload::paper_default();
        c.gen.num_devices = quick ? 120 : 500;
        c.gen.uav.energy_j = quick ? 0.4e5 : 3.0e5;
        c.make = [](core::ScoringEngine engine) {
            core::BenchmarkPlannerConfig cfg;
            cfg.scoring = engine;
            return std::make_unique<core::PruneTspPlanner>(cfg);
        };
        cases.push_back(std::move(c));
    }
    return cases;
}

}  // namespace

std::vector<PlannerBaseline> run_planner_baselines(bool quick) {
    // Quick mode runs 3 reps too: the regression gate compares medians, and
    // a single-sample median is just the (noise-prone) one measurement.
    const int reps = 3;
    std::vector<PlannerBaseline> rows;
    for (const auto& c : baseline_cases(quick)) {
        const auto inst = workload::generate(c.gen, 23);
        // Fresh (uncached) context; candidates built eagerly so the timed
        // region is pure planning for both engines.
        const auto ctx = core::PlanningContext::build(inst, c.hover);
        const std::size_t n_cands = ctx->candidates().size();

        PlannerBaseline row;
        row.name = c.name;
        row.devices = static_cast<int>(inst.devices.size());
        row.candidates = static_cast<int>(n_cands);

        double planned_ref = 0.0;
        for (const auto engine : {core::ScoringEngine::kIncremental,
                                  core::ScoringEngine::kReference}) {
            std::vector<double> samples;
            samples.reserve(static_cast<std::size_t>(reps));
            for (int r = 0; r < reps; ++r) {
                const auto planner = c.make(engine);
                const auto res = planner->plan(*ctx);
                samples.push_back(res.stats.runtime_s);
                if (engine == core::ScoringEngine::kIncremental) {
                    row.planned_mb = res.stats.planned_mb;
                    row.iterations = res.stats.iterations;
                } else {
                    planned_ref = res.stats.planned_mb;
                }
            }
            const TimingStats t = timing_stats(std::move(samples));
            if (engine == core::ScoringEngine::kIncremental) {
                row.incremental_s = t.min_s;
                row.incremental = t;
            } else {
                row.reference_s = t.min_s;
                row.reference = t;
            }
        }
        // The baseline doubles as an equivalence check: bit-identical plans
        // imply bit-identical planned volume.
        UAVDC_CHECK(row.planned_mb == planned_ref)
            << c.name << ": engines disagree (incremental "
            << row.planned_mb << " MB vs reference " << planned_ref
            << " MB)";
        row.speedup = row.reference_s / std::max(row.incremental_s, 1e-12);
        rows.push_back(std::move(row));
    }
    return rows;
}

void write_planner_baselines(const std::string& path, bool quick,
                             const std::vector<PlannerBaseline>& rows) {
    io::Json doc;
    doc["schema"] = "uavdc-bench-planners-v1";
    doc["quick"] = quick;
    io::Json::Array cases;
    for (const auto& r : rows) {
        io::Json c;
        c["name"] = r.name;
        c["devices"] = r.devices;
        c["candidates"] = r.candidates;
        c["iterations"] = r.iterations;
        c["planned_mb"] = r.planned_mb;
        c["incremental_s"] = r.incremental_s;
        c["reference_s"] = r.reference_s;
        c["speedup"] = r.speedup;
        // Rep aggregates: the regression gate prefers *_med_s when both
        // baseline and current carry it; min stays the legacy metric above.
        c["incremental_med_s"] = r.incremental.median_s;
        c["incremental_std_s"] = r.incremental.stddev_s;
        c["reference_med_s"] = r.reference.median_s;
        c["reference_std_s"] = r.reference.stddev_s;
        cases.push_back(std::move(c));
    }
    doc["cases"] = std::move(cases);
    std::ofstream out(path);
    UAVDC_CHECK(static_cast<bool>(out)) << "cannot open " << path;
    out << doc.dump(2) << "\n";
    out.flush();
    std::cout << "wrote " << path << "\n";
}

}  // namespace uavdc::bench
