#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "uavdc/core/incremental_scorer.hpp"
#include "uavdc/core/planner.hpp"
#include "uavdc/model/instance.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/table.hpp"
#include "uavdc/workload/generator.hpp"

namespace uavdc::bench {

/// Creates a fresh planner per replicate (planners are stateless between
/// plan() calls, but per-thread instances keep the sweep embarrassingly
/// parallel).
using PlannerFactory = std::function<std::unique_ptr<core::Planner>()>;

/// Aggregated outcome of one (algorithm, sweep-point) cell, mean over the
/// replicate instances (the paper averages 15 instances per point).
struct RunOutcome {
    std::string algo;
    double mean_gb{0.0};        ///< evaluated collected volume (GB)
    double ci95_gb{0.0};        ///< 95% CI half-width of the mean (GB)
    double mean_runtime_s{0.0}; ///< mean planner wall-clock (s)
    double mean_stops{0.0};     ///< mean number of hovering stops
    double mean_energy_j{0.0};  ///< mean evaluated energy use (J)
};

/// Common command-line settings shared by all figure harnesses.
struct BenchSettings {
    bool full{false};      ///< paper scale (500 nodes, 1 km^2, 15 reps)
    int replicates{5};     ///< instances per sweep point
    std::uint64_t seed{1}; ///< base seed; replicate i uses seed + i
    std::string out_dir;   ///< CSV output directory ("" = no CSV)
    /// Scoring engine for the scoring-aware planners (alg2/alg3 and the
    /// benchmark planner). `--scoring=incremental-fast` runs the figure
    /// sweep on the epsilon tier (reassociated 8-lane gain sums); its drift
    /// against the default tier is characterized at full scale by
    /// `uavdc conformance --fast-scoring`.
    core::ScoringEngine scoring{core::ScoringEngine::kIncremental};

    /// Parse --full / --replicates / --seed / --out / --scoring flags
    /// (UAVDC_FULL=1 also enables full mode).
    static BenchSettings parse(int argc, char** argv);
};

/// Robust timing aggregates over benchmark repetitions. `min_s` is the
/// classical best-of (least noise-inflated); `median_s` is what
/// scripts/check_perf_regression.py compares, since it tolerates a single
/// interrupted rep without reading as a regression.
struct TimingStats {
    double min_s{0.0};
    double median_s{0.0};
    double mean_s{0.0};
    double stddev_s{0.0};
};

/// Aggregate `samples` (seconds per rep; must be non-empty). Sorts a copy;
/// even-sized medians average the middle pair. Population stddev.
[[nodiscard]] TimingStats timing_stats(std::vector<double> samples);

/// Generator config for the current mode: paper scale in full mode, the
/// density-preserving 0.35-scaled field otherwise.
[[nodiscard]] workload::GeneratorConfig base_generator(
    const BenchSettings& s);

/// Generate `settings.replicates` seeded instances from `cfg`.
[[nodiscard]] std::vector<model::Instance> make_instances(
    const workload::GeneratorConfig& cfg, const BenchSettings& settings);

/// Plan every instance with a fresh planner (in parallel across the global
/// thread pool), evaluate each plan in closed form, and aggregate.
[[nodiscard]] RunOutcome evaluate_planner(
    const PlannerFactory& factory,
    const std::vector<model::Instance>& instances);

/// Write a result grid to `<out_dir>/<name>.csv` (no-op when out_dir empty).
/// Columns: sweep, algo, mean_gb, ci95_gb, mean_runtime_s, mean_stops,
/// mean_energy_j.
void write_csv(const std::string& out_dir, const std::string& name,
               const std::vector<std::pair<std::string, RunOutcome>>& rows);

/// Also emit `<out_dir>/<name>.gp` — a gnuplot script that renders the CSV
/// as a volume-vs-sweep chart with error bars, one series per algorithm
/// (`gnuplot <name>.gp` produces `<name>.png`). No-op when out_dir empty.
void write_gnuplot(const std::string& out_dir, const std::string& name,
                   const std::vector<std::pair<std::string, RunOutcome>>& rows,
                   const std::string& xlabel);

/// Print the global `PlanningContext` cache counters — context hit rate,
/// candidate builds, and total build time. Called at the end of each sweep
/// harness to show how much precompute the shared-context layer saved (a
/// sweep of A algorithms over I instances shows I builds, not A * I).
void print_context_stats();

/// Print the standard two paper-style tables (collected volume + runtime)
/// for a sweep: rows = sweep points, columns = algorithms.
void print_figure(const std::string& title, const std::string& sweep_label,
                  const std::vector<std::string>& sweep_points,
                  const std::vector<std::string>& algo_names,
                  const std::vector<std::vector<RunOutcome>>& grid);

/// Shared per-mode algorithm parameters.
struct AlgoParams {
    double delta_m{10.0};
    int max_candidates{1200};
    int grasp_iterations{6};
    /// Engine for the scoring-aware planners (copied from
    /// BenchSettings::scoring by default_algo_params; alg1/GRASP ignores it).
    core::ScoringEngine scoring{core::ScoringEngine::kIncremental};
};

/// Mode defaults: fast mode trims the candidate cap and GRASP restarts.
[[nodiscard]] AlgoParams default_algo_params(const BenchSettings& s);

/// Planner factories (Algorithms 1/2/3 + the paper's benchmark).
[[nodiscard]] PlannerFactory alg1_factory(const AlgoParams& p);
[[nodiscard]] PlannerFactory alg2_factory(const AlgoParams& p);
[[nodiscard]] PlannerFactory alg3_factory(const AlgoParams& p, int k);
[[nodiscard]] PlannerFactory benchmark_factory(
    core::ScoringEngine scoring = core::ScoringEngine::kIncremental);

/// One row of the tracked planner perf baseline (BENCH_planners.json):
/// the same seeded instance planned with the incremental scoring engine and
/// with the from-scratch reference engine, plus the resulting speedup. Both
/// engines are bit-identical by contract, so planned_mb/iterations describe
/// either run.
struct PlannerBaseline {
    std::string name;        ///< case id, e.g. "alg2_greedy_large"
    int devices{0};          ///< instance size
    int candidates{0};       ///< hover-candidate count (>= 500 for *_large)
    int iterations{0};       ///< greedy iterations / prune rounds
    double planned_mb{0.0};  ///< planned volume (engine-independent)
    double incremental_s{0.0};  ///< best wall time, incremental engine
    double reference_s{0.0};    ///< best wall time, reference engine
    double speedup{0.0};        ///< reference_s / incremental_s
    TimingStats incremental;    ///< full rep aggregates, incremental engine
    TimingStats reference;      ///< full rep aggregates, reference engine
};

/// Run the tracked planner perf cases (alg2 large grid, alg2 exact-ratio
/// TSP, alg3, benchmark prune) with both scoring engines. `quick` shrinks
/// the instances for CI smoke runs; full mode is what BENCH_planners.json
/// is generated from. Throws if the engines disagree on planned_mb (the
/// perf baseline doubles as an equivalence check).
[[nodiscard]] std::vector<PlannerBaseline> run_planner_baselines(bool quick);

/// Serialize baselines to `path` as the uavdc-bench-planners-v1 JSON schema
/// consumed by scripts/check_perf_regression.py.
void write_planner_baselines(const std::string& path, bool quick,
                             const std::vector<PlannerBaseline>& rows);

/// Energy-capacity sweep points: the paper's 3e5..9e5 J in full mode; a
/// range chosen to span "scarce" through "nearly sufficient" for the
/// 0.35-scaled field in fast mode (the scaled field needs ~5e4 J to collect
/// everything, so naive area scaling of the paper's range would saturate at
/// the first point and flatten every curve).
[[nodiscard]] std::vector<double> energy_sweep(const BenchSettings& s);

/// Default battery capacity for non-energy sweeps (fig 4/6/7): the paper's
/// E = 3e5 J in full mode, a comparably scarce budget in fast mode.
[[nodiscard]] double default_energy(const BenchSettings& s);

}  // namespace uavdc::bench
