// Reproduces Fig. 3 (Sec. VII-B): the data collection maximization problem
// WITHOUT hovering coverage overlapping. Sweeps the UAV energy capacity E
// and compares Algorithm 1 (grid + orienteering) against the paper's
// benchmark heuristic (Christofides tour + pruning), reporting
// (a) collected data volume and (b) planner running time.
//
// Fast mode (default) runs a 0.35-scaled field with energies scaled by the
// same area factor; pass --full (or UAVDC_FULL=1) for the paper's
// 500-node / 1 km^2 / E in [3e5, 9e5] J setting.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const auto params = bench::default_algo_params(settings);
    const std::vector<double> energies = bench::energy_sweep(settings);

    const std::vector<bench::PlannerFactory> algos{
        bench::alg1_factory(params), bench::benchmark_factory(params.scoring)};
    std::vector<std::string> algo_names;
    for (const auto& f : algos) algo_names.push_back(f()->name());

    std::vector<std::string> sweep_points;
    std::vector<std::vector<bench::RunOutcome>> grid;
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;

    for (double energy : energies) {
        workload::GeneratorConfig gen = bench::base_generator(settings);
        gen.uav.energy_j = energy;
        const auto instances = bench::make_instances(gen, settings);
        char label[64];
        std::snprintf(label, sizeof(label), "%.2gJ", energy);
        sweep_points.emplace_back(label);
        std::vector<bench::RunOutcome> row;
        for (const auto& f : algos) {
            row.push_back(bench::evaluate_planner(f, instances));
            csv_rows.emplace_back(label, row.back());
        }
        grid.push_back(std::move(row));
    }

    bench::print_figure(
        "Fig. 3 - DCM without hovering coverage overlapping (energy sweep)",
        "E", sweep_points, algo_names, grid);
    bench::write_csv(settings.out_dir, "fig3_no_overlap", csv_rows);
    bench::write_gnuplot(settings.out_dir, "fig3_no_overlap", csv_rows,
                         "energy capacity E [J]");
    bench::print_context_stats();
    return 0;
}
