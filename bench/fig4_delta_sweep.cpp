// Reproduces Fig. 4 (Sec. VII-C/D): the data collection maximization
// problem WITH hovering coverage overlapping, sweeping the grid edge length
// delta. Compares Algorithm 2, Algorithm 3 (K = 2 and K = 4), and the
// benchmark heuristic. Paper headline: at delta = 5 m, Alg 2 / Alg 3 (K=2)
// beat the benchmark by ~79% / ~99%, and volumes shrink as delta grows.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const util::Flags flags(argc, argv);

    std::vector<double> deltas =
        settings.full ? std::vector<double>{5.0, 10.0, 15.0, 20.0, 25.0, 30.0}
                      : std::vector<double>{5.0, 10.0, 20.0, 30.0};
    deltas = flags.get_double_list("deltas", deltas);

    workload::GeneratorConfig gen = bench::base_generator(settings);
    // Fig. 4 uses the default battery; scale it with the field in fast mode.
    gen.uav.energy_j = bench::default_energy(settings);
    const auto instances = bench::make_instances(gen, settings);

    std::vector<std::string> sweep_points;
    std::vector<std::vector<bench::RunOutcome>> grid;
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;
    std::vector<std::string> algo_names;

    for (double delta : deltas) {
        bench::AlgoParams params = bench::default_algo_params(settings);
        params.delta_m = delta;
        const std::vector<bench::PlannerFactory> algos{
            bench::alg2_factory(params), bench::alg3_factory(params, 2),
            bench::alg3_factory(params, 4), bench::benchmark_factory(params.scoring)};
        if (algo_names.empty()) {
            for (const auto& f : algos) algo_names.push_back(f()->name());
        }
        char label[32];
        std::snprintf(label, sizeof(label), "%gm", delta);
        sweep_points.emplace_back(label);
        std::vector<bench::RunOutcome> row;
        for (const auto& f : algos) {
            row.push_back(bench::evaluate_planner(f, instances));
            csv_rows.emplace_back(label, row.back());
        }
        grid.push_back(std::move(row));
    }

    bench::print_figure(
        "Fig. 4 - DCM with hovering coverage overlapping (delta sweep)",
        "delta", sweep_points, algo_names, grid);
    bench::write_csv(settings.out_dir, "fig4_delta_sweep", csv_rows);
    bench::write_gnuplot(settings.out_dir, "fig4_delta_sweep", csv_rows,
                         "grid edge delta [m]");
    bench::print_context_stats();
    return 0;
}
