// Reproduces Fig. 5 (Sec. VII-D): battery-capacity impact on the problem
// WITH hovering coverage overlapping. Sweeps E (paper: 3e5..9e5 J at
// delta = 10 m) for Algorithm 2, Algorithm 3 (K = 2, 4) and the benchmark.
// Paper headline: Alg 3 (K=4) collects ~82% more data at 9e5 J than at
// 3e5 J; planner runtimes grow with E while the benchmark's shrinks.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const std::vector<double> energies = bench::energy_sweep(settings);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    const std::vector<bench::PlannerFactory> algos{
        bench::alg2_factory(params), bench::alg3_factory(params, 2),
        bench::alg3_factory(params, 4), bench::benchmark_factory(params.scoring)};
    std::vector<std::string> algo_names;
    for (const auto& f : algos) algo_names.push_back(f()->name());

    std::vector<std::string> sweep_points;
    std::vector<std::vector<bench::RunOutcome>> grid;
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;

    for (double energy : energies) {
        workload::GeneratorConfig gen = bench::base_generator(settings);
        gen.uav.energy_j = energy;
        const auto instances = bench::make_instances(gen, settings);
        char label[64];
        std::snprintf(label, sizeof(label), "%.2gJ", energy);
        sweep_points.emplace_back(label);
        std::vector<bench::RunOutcome> row;
        for (const auto& f : algos) {
            row.push_back(bench::evaluate_planner(f, instances));
            csv_rows.emplace_back(label, row.back());
        }
        grid.push_back(std::move(row));
    }

    bench::print_figure(
        "Fig. 5 - DCM with overlapping: battery capacity sweep (delta=10m)",
        "E", sweep_points, algo_names, grid);
    bench::write_csv(settings.out_dir, "fig5_energy_sweep", csv_rows);
    bench::write_gnuplot(settings.out_dir, "fig5_energy_sweep", csv_rows,
                         "energy capacity E [J]");
    bench::print_context_stats();
    return 0;
}
