// Network-size sweep (Sec. VII-D mentions the impact of |V| alongside
// delta and E but prints no figure for it; this bench fills that gap).
// Sweeps the number of aggregate sensor nodes at fixed region, delta and E
// for Algorithm 2, Algorithm 3 (K=2) and the benchmark.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    const std::vector<int> sizes =
        settings.full ? std::vector<int>{100, 200, 300, 400, 500}
                      : std::vector<int>{20, 40, 60, 80, 120};

    const std::vector<bench::PlannerFactory> algos{
        bench::alg2_factory(params), bench::alg3_factory(params, 2),
        bench::benchmark_factory(params.scoring)};
    std::vector<std::string> algo_names;
    for (const auto& f : algos) algo_names.push_back(f()->name());

    std::vector<std::string> sweep_points;
    std::vector<std::vector<bench::RunOutcome>> grid;
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;

    for (int v : sizes) {
        workload::GeneratorConfig gen = bench::base_generator(settings);
        gen.num_devices = v;
        gen.uav.energy_j = bench::default_energy(settings);
        const auto instances = bench::make_instances(gen, settings);
        const std::string label = std::to_string(v);
        sweep_points.push_back(label);
        std::vector<bench::RunOutcome> row;
        for (const auto& f : algos) {
            row.push_back(bench::evaluate_planner(f, instances));
            csv_rows.emplace_back(label, row.back());
        }
        grid.push_back(std::move(row));
    }

    bench::print_figure("Extra - network size sweep (|V|)", "|V|",
                        sweep_points, algo_names, grid);
    bench::write_csv(settings.out_dir, "fig6_size_sweep", csv_rows);
    bench::write_gnuplot(settings.out_dir, "fig6_size_sweep", csv_rows,
                         "|V| aggregate sensor nodes");
    bench::print_context_stats();
    return 0;
}
