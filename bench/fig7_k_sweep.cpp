// K-ablation for Algorithm 3 (Sec. VII-C reports the K = 2 -> 4 gain:
// 147.7 GB -> 150.7 GB at delta = 5 m). Sweeps the sojourn-partition count
// K at fixed delta and E, reporting volume and runtime. K = 1 degenerates
// to the full-collection problem (Algorithm 2's setting), so this bench
// doubles as the DCM-vs-PDCM ablation.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const util::Flags flags(argc, argv);
    const std::vector<int> ks = flags.get_int_list("ks", {1, 2, 4, 8});

    workload::GeneratorConfig gen = bench::base_generator(settings);
    gen.uav.energy_j = bench::default_energy(settings);
    const auto instances = bench::make_instances(gen, settings);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    std::vector<std::string> sweep_points;
    std::vector<std::vector<bench::RunOutcome>> grid;
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;

    for (int k : ks) {
        const auto f = bench::alg3_factory(params, k);
        const auto outcome = bench::evaluate_planner(f, instances);
        const std::string label = "K=" + std::to_string(k);
        sweep_points.push_back(label);
        csv_rows.emplace_back(label, outcome);
        grid.push_back({outcome});
    }

    bench::print_figure("Ablation - Algorithm 3 sojourn partition K", "K",
                        sweep_points, {"alg3"}, grid);
    bench::write_csv(settings.out_dir, "fig7_k_sweep", csv_rows);
    bench::write_gnuplot(settings.out_dir, "fig7_k_sweep", csv_rows,
                         "sojourn partitions K");
    bench::print_context_stats();
    return 0;
}
