// Deadline extension: collected volume as the mission deadline T tightens
// (Algorithms 2 and 3 with max_tour_time_s). The paper budgets energy only;
// real sorties also face airspace slots and operator shifts. With the
// paper's constants a battery of E joules sustains at most E/eta_h seconds
// of hovering, so deadlines below that bind progressively harder.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/stats.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const auto settings = bench::BenchSettings::parse(argc, argv);
    const bench::AlgoParams params = bench::default_algo_params(settings);

    workload::GeneratorConfig gen = bench::base_generator(settings);
    gen.uav.energy_j = bench::default_energy(settings);
    const auto instances = bench::make_instances(gen, settings);

    // Sweep deadlines as fractions of the unconstrained tour time.
    // First find the unconstrained baseline.
    auto make_alg2 = [&](double deadline) {
        core::Algorithm2Config cfg;
        cfg.candidates.delta_m = params.delta_m;
        cfg.candidates.max_candidates = params.max_candidates;
        cfg.max_tour_time_s = deadline;
        return cfg;
    };
    util::Accumulator base_time;
    {
        std::vector<double> times(instances.size());
        util::parallel_for(0, instances.size(), [&](std::size_t i) {
            const auto res =
                core::GreedyCoveragePlanner(make_alg2(0.0))
                    .plan(instances[i]);
            times[i] =
                res.plan.energy(instances[i].depot, instances[i].uav)
                    .total_s();
        });
        for (double t : times) base_time.add(t);
    }
    const double t_free = base_time.mean();

    std::cout << "\n=== Deadline sweep (unconstrained tour ~ "
              << util::Table::fmt(t_free, 0) << " s) ===\n";
    util::Table table({"deadline", "alg2 [GB]", "alg3-k2 [GB]"});
    std::vector<std::pair<std::string, bench::RunOutcome>> csv_rows;
    for (double frac : {0.25, 0.5, 0.75, 1.0, 2.0}) {
        const double deadline = frac * t_free;
        util::Accumulator a2, a3;
        std::vector<std::pair<double, double>> cells(instances.size());
        util::parallel_for(0, instances.size(), [&](std::size_t i) {
            const auto r2 =
                core::GreedyCoveragePlanner(make_alg2(deadline))
                    .plan(instances[i]);
            core::Algorithm3Config c3;
            c3.candidates.delta_m = params.delta_m;
            c3.candidates.max_candidates = params.max_candidates;
            c3.k = 2;
            c3.max_tour_time_s = deadline;
            const auto r3 =
                core::PartialCollectionPlanner(c3).plan(instances[i]);
            cells[i] = {
                core::evaluate_plan(instances[i], r2.plan).collected_mb /
                    1000.0,
                core::evaluate_plan(instances[i], r3.plan).collected_mb /
                    1000.0};
        });
        for (const auto& [x2, x3] : cells) {
            a2.add(x2);
            a3.add(x3);
        }
        char label[32];
        std::snprintf(label, sizeof(label), "%.0fs", deadline);
        table.add_row({label, util::Table::fmt(a2.mean(), 2),
                       util::Table::fmt(a3.mean(), 2)});
        bench::RunOutcome row2;
        row2.algo = "alg2";
        row2.mean_gb = a2.mean();
        row2.ci95_gb = a2.ci95_halfwidth();
        csv_rows.emplace_back(label, row2);
        bench::RunOutcome row3;
        row3.algo = "alg3-k2";
        row3.mean_gb = a3.mean();
        row3.ci95_gb = a3.ci95_halfwidth();
        csv_rows.emplace_back(label, row3);
    }
    table.print(std::cout, 2);
    bench::write_csv(settings.out_dir, "fig8_deadline", csv_rows);
    bench::write_gnuplot(settings.out_dir, "fig8_deadline", csv_rows,
                         "mission deadline [s]");
    bench::print_context_stats();
    return 0;
}
