// Microbenchmarks for the shared PlanningContext layer: cold candidate
// builds, memoized (warm-cache) context lookups, and end-to-end planning
// time for N planners on one instance with and without cross-planner
// context sharing. The gap between BM_PlanNPlanners/cold and /warm is the
// cost `compare_planners` and the fig sweeps used to pay (N - 1) extra
// times per instance.

#include <benchmark/benchmark.h>

#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/benchmark_planner.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/workload/presets.hpp"

namespace {

using namespace uavdc;

model::Instance bench_instance(int devices) {
    auto gen = workload::paper_scaled(0.35);
    gen.num_devices = devices;
    gen.uav.energy_j = 4.0e4;
    return workload::generate(gen, 23);
}

core::HoverCandidateConfig bench_hover_config() {
    core::HoverCandidateConfig cfg;
    cfg.delta_m = 10.0;
    return cfg;
}

/// Cold path: fresh context + forced candidate build every iteration.
void BM_ContextColdBuild(benchmark::State& state) {
    const auto inst = bench_instance(static_cast<int>(state.range(0)));
    const auto cfg = bench_hover_config();
    for (auto _ : state) {
        const auto ctx = core::PlanningContext::build(inst, cfg);
        benchmark::DoNotOptimize(ctx->candidates().size());
    }
}
BENCHMARK(BM_ContextColdBuild)->Arg(60)->Arg(120);

/// Warm path: memoized lookup of an already-built context.
void BM_ContextWarmObtain(benchmark::State& state) {
    const auto inst = bench_instance(static_cast<int>(state.range(0)));
    const auto cfg = bench_hover_config();
    (void)core::PlanningContext::obtain(inst, cfg)->candidates();
    for (auto _ : state) {
        const auto ctx = core::PlanningContext::obtain(inst, cfg);
        benchmark::DoNotOptimize(ctx->candidates().size());
    }
}
BENCHMARK(BM_ContextWarmObtain)->Arg(60)->Arg(120);

std::vector<std::unique_ptr<core::Planner>> make_fleet(int n) {
    // Rotate through the context-consuming planners so every planner count
    // exercises a mixed workload over one shared candidate set.
    const std::vector<std::string> names{"alg2", "alg3", "alg1", "benchmark"};
    core::PlannerOptions opts;
    opts.delta_m = bench_hover_config().delta_m;
    opts.grasp_iterations = 2;
    std::vector<std::unique_ptr<core::Planner>> fleet;
    for (int i = 0; i < n; ++i) {
        fleet.push_back(core::make_planner(
            names[static_cast<std::size_t>(i) % names.size()], opts));
    }
    return fleet;
}

/// N planners, candidates rebuilt for every planner (the pre-context cost
/// model: one build per planner invocation).
void BM_PlanNPlannersCold(benchmark::State& state) {
    const auto inst = bench_instance(60);
    const auto fleet = make_fleet(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        double mb = 0.0;
        for (const auto& p : fleet) {
            const auto ctx =
                core::PlanningContext::build(inst, p->candidate_config());
            mb += p->plan(*ctx).stats.planned_mb;
        }
        benchmark::DoNotOptimize(mb);
    }
}
BENCHMARK(BM_PlanNPlannersCold)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// N planners sharing one context (the compare_planners path).
void BM_PlanNPlannersWarm(benchmark::State& state) {
    const auto inst = bench_instance(60);
    const auto fleet = make_fleet(static_cast<int>(state.range(0)));
    core::PlannerOptions opts;
    opts.delta_m = bench_hover_config().delta_m;
    const auto ctx = core::PlanningContext::obtain(inst, opts.hover_config());
    (void)ctx->candidates();
    for (auto _ : state) {
        double mb = 0.0;
        for (const auto& p : fleet) mb += p->plan(*ctx).stats.planned_mb;
        benchmark::DoNotOptimize(mb);
    }
}
BENCHMARK(BM_PlanNPlannersWarm)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
