// Google-benchmark microbenchmarks for the io layer: JSON parse/serialize,
// instance serialization, and SVG rendering.

#include <benchmark/benchmark.h>

#include "uavdc/core/algorithm2.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/io/serialize.hpp"
#include "uavdc/io/svg.hpp"
#include "uavdc/workload/presets.hpp"

namespace {

using namespace uavdc;

model::Instance bench_instance(int devices) {
    auto gen = workload::paper_scaled(0.5);
    gen.num_devices = devices;
    return workload::generate(gen, 31);
}

void BM_JsonSerializeInstance(benchmark::State& state) {
    const auto inst = bench_instance(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        const auto doc = io::to_json(inst);
        benchmark::DoNotOptimize(doc.dump().size());
    }
}
BENCHMARK(BM_JsonSerializeInstance)->Arg(100)->Arg(500);

void BM_JsonParseInstance(benchmark::State& state) {
    const auto inst = bench_instance(static_cast<int>(state.range(0)));
    const std::string text = io::to_json(inst).dump();
    for (auto _ : state) {
        const auto doc = io::Json::parse(text);
        benchmark::DoNotOptimize(doc.is_object());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParseInstance)->Arg(100)->Arg(500);

void BM_InstanceRoundTrip(benchmark::State& state) {
    const auto inst = bench_instance(200);
    for (auto _ : state) {
        const auto back = io::instance_from_json(io::to_json(inst));
        benchmark::DoNotOptimize(back.devices.size());
    }
}
BENCHMARK(BM_InstanceRoundTrip);

void BM_SvgRender(benchmark::State& state) {
    const auto inst = bench_instance(static_cast<int>(state.range(0)));
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 20.0;
    const auto res = core::GreedyCoveragePlanner(cfg).plan(inst);
    for (auto _ : state) {
        const auto svg = io::render_svg(inst, &res.plan);
        benchmark::DoNotOptimize(svg.size());
    }
}
BENCHMARK(BM_SvgRender)->Arg(100)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
