// Google-benchmark microbenchmarks for the SoA batch kernels
// (core/batch_kernels) against the scalar AoS loops they replaced.
//
// With --baseline_out=<path> the binary instead runs the tracked
// batched-vs-scalar kernel cases and writes the uavdc-bench-kernels-v1
// schema (add --quick for the CI smoke variant checked by
// scripts/check_perf_regression.py). Each case times both forms and — for
// the elementwise kernels — asserts the outputs are bit-identical, so the
// perf baseline doubles as an equivalence check.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "uavdc/core/batch_kernels.hpp"
#include "uavdc/core/soa_layout.hpp"
#include "uavdc/geom/vec2.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/util/timer.hpp"

namespace {

using namespace uavdc;
using core::kernels::GainAccum;

/// Random SoA point cloud (padded, aligned) plus the matching AoS view.
struct Cloud {
    util::AlignedVector<double> xs;
    util::AlignedVector<double> ys;
    std::vector<geom::Vec2> aos;
};

Cloud make_cloud(std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    Cloud c;
    c.xs.assign(core::soa_padded(n), 0.0);
    c.ys.assign(core::soa_padded(n), 0.0);
    c.aos.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        c.aos[i] = {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
        c.xs[i] = c.aos[i].x;
        c.ys[i] = c.aos[i].y;
    }
    return c;
}

/// Wall-time aggregates over `reps` calls of `fn()` (each call must do the
/// full sweep). `min_s` is the legacy best-of metric; the regression gate
/// compares medians.
template <typename F>
bench::TimingStats timed_reps(int reps, F&& fn) {
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const util::Timer t;
        fn();
        samples.push_back(t.seconds());
    }
    return bench::timing_stats(std::move(samples));
}

struct KernelCase {
    std::string name;
    int n{0};             ///< elements per sweep
    double batched_s{0};  ///< best wall time, batched kernel
    double scalar_s{0};   ///< best wall time, scalar AoS loop
    double speedup{0};    ///< scalar_s / batched_s
    bench::TimingStats batched;  ///< full rep aggregates, batched kernel
    bench::TimingStats scalar;   ///< full rep aggregates, scalar loop
};

KernelCase case_distances(bool quick, bool squared) {
    const std::size_t n = quick ? 1u << 14 : 1u << 17;
    const Cloud c = make_cloud(n, 11);
    const geom::Vec2 q{431.7, 208.3};
    std::vector<double> batched(n), scalar(n);
    const int sweeps = quick ? 40 : 80;
    const int reps = 5;
    KernelCase out;
    out.name = squared ? "dist2_batch" : "dist_batch";
    out.n = static_cast<int>(n);
    out.batched = timed_reps(reps, [&] {
        for (int s = 0; s < sweeps; ++s) {
            if (squared) {
                core::kernels::squared_distances_to_point(
                    c.xs.data(), c.ys.data(), n, q.x, q.y, batched.data());
            } else {
                core::kernels::distances_to_point(
                    c.xs.data(), c.ys.data(), n, q.x, q.y, batched.data());
            }
            benchmark::DoNotOptimize(batched.data());
        }
    });
    out.scalar = timed_reps(reps, [&] {
        for (int s = 0; s < sweeps; ++s) {
            for (std::size_t i = 0; i < n; ++i) {
                scalar[i] = squared ? geom::distance2(c.aos[i], q)
                                    : geom::distance(c.aos[i], q);
            }
            benchmark::DoNotOptimize(scalar.data());
        }
    });
    for (std::size_t i = 0; i < n; ++i) {
        UAVDC_CHECK(batched[i] == scalar[i])
            << out.name << ": lane " << i << " diverged";
    }
    out.batched_s = out.batched.min_s;
    out.scalar_s = out.scalar.min_s;
    out.speedup = out.scalar_s / out.batched_s;
    return out;
}

KernelCase case_insertion_deltas(bool quick) {
    const std::size_t n = quick ? 1u << 13 : 1u << 16;
    const Cloud c = make_cloud(n, 29);
    const geom::Vec2 a{100.0, 120.0}, p{480.0, 510.0}, b{900.0, 140.0};
    const double len_ap = geom::distance(a, p);
    const double len_pb = geom::distance(p, b);
    std::vector<double> n1(n), n2(n), m1(n), m2(n);
    const int sweeps = quick ? 30 : 60;
    KernelCase out;
    out.name = "insertion_deltas";
    out.n = static_cast<int>(n);
    out.batched = timed_reps(5, [&] {
        for (int s = 0; s < sweeps; ++s) {
            core::kernels::insertion_edge_deltas(c.xs.data(), c.ys.data(), n,
                                                 a, p, b, len_ap, len_pb,
                                                 n1.data(), n2.data());
            benchmark::DoNotOptimize(n1.data());
        }
    });
    out.scalar = timed_reps(5, [&] {
        for (int s = 0; s < sweeps; ++s) {
            for (std::size_t i = 0; i < n; ++i) {
                const geom::Vec2 x = c.aos[i];
                const double d_xp = geom::distance(x, p);
                m1[i] = geom::distance(a, x) + d_xp - len_ap;
                m2[i] = d_xp + geom::distance(x, b) - len_pb;
            }
            benchmark::DoNotOptimize(m1.data());
        }
    });
    for (std::size_t i = 0; i < n; ++i) {
        UAVDC_CHECK(n1[i] == m1[i] && n2[i] == m2[i])
            << out.name << ": lane " << i << " diverged";
    }
    out.batched_s = out.batched.min_s;
    out.scalar_s = out.scalar.min_s;
    out.speedup = out.scalar_s / out.batched_s;
    return out;
}

KernelCase case_matrix_fill(bool quick) {
    const std::size_t n = quick ? 192 : 640;
    const Cloud c = make_cloud(n, 41);
    std::vector<double> flat_b(n * n), flat_s(n * n);
    constexpr std::size_t kColTile = 1024;
    KernelCase out;
    out.name = "matrix_fill";
    out.n = static_cast<int>(n);
    out.batched = timed_reps(5, [&] {
        for (std::size_t r = 0; r < n; ++r) {
            const geom::Vec2 p = c.aos[r];
            for (std::size_t c0 = 0; c0 < n; c0 += kColTile) {
                core::kernels::fill_distance_tile(
                    c.xs.data(), c.ys.data(), c0, std::min(n, c0 + kColTile),
                    p.x, p.y, flat_b.data() + r * n);
            }
        }
        benchmark::DoNotOptimize(flat_b.data());
    });
    out.scalar = timed_reps(5, [&] {
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t col = 0; col < n; ++col) {
                flat_s[r * n + col] = geom::distance(c.aos[r], c.aos[col]);
            }
        }
        benchmark::DoNotOptimize(flat_s.data());
    });
    for (std::size_t i = 0; i < n * n; ++i) {
        UAVDC_CHECK(flat_b[i] == flat_s[i])
            << out.name << ": cell " << i << " diverged";
    }
    out.batched_s = out.batched.min_s;
    out.scalar_s = out.scalar.min_s;
    out.speedup = out.scalar_s / out.batched_s;
    return out;
}

/// Squared insertion lower bounds (the tour-builder prune pass) vs the
/// scalar squared-distance loop. Outputs are asserted bit-identical before
/// timing — the pruned-vs-exact contract the planner's bound-then-verify
/// scan relies on.
KernelCase case_squared_insertion_lb(bool quick) {
    const std::size_t n = quick ? 1u << 13 : 1u << 16;
    const Cloud c = make_cloud(n, 37);
    const geom::Vec2 a{100.0, 120.0}, p{480.0, 510.0}, b{900.0, 140.0};
    std::vector<double> s1(n), s2(n), m1(n), m2(n);
    const int sweeps = quick ? 30 : 60;
    KernelCase out;
    out.name = "squared_insertion_lb";
    out.n = static_cast<int>(n);
    out.batched = timed_reps(5, [&] {
        for (int s = 0; s < sweeps; ++s) {
            core::kernels::squared_insertion_lower_bounds(
                c.xs.data(), c.ys.data(), n, a, p, b, s1.data(), s2.data());
            benchmark::DoNotOptimize(s1.data());
        }
    });
    out.scalar = timed_reps(5, [&] {
        for (int s = 0; s < sweeps; ++s) {
            for (std::size_t i = 0; i < n; ++i) {
                const geom::Vec2 x = c.aos[i];
                const double d2_xp = geom::distance2(x, p);
                m1[i] = geom::distance2(a, x) + d2_xp;
                m2[i] = d2_xp + geom::distance2(x, b);
            }
            benchmark::DoNotOptimize(m1.data());
        }
    });
    for (std::size_t i = 0; i < n; ++i) {
        UAVDC_CHECK(s1[i] == m1[i] && s2[i] == m2[i])
            << out.name << ": lane " << i << " diverged";
    }
    out.batched_s = out.batched.min_s;
    out.scalar_s = out.scalar.min_s;
    out.speedup = out.scalar_s / out.batched_s;
    return out;
}

/// Squared distance-matrix tile fill vs the exact (sqrt-taking) fill. The
/// deferral identity is asserted bitwise before timing: sqrt of every
/// squared cell must reproduce the exact tile exactly, which is what lets
/// consumers defer the sqrt to survivors without changing any plan.
KernelCase case_squared_matrix_fill(bool quick) {
    const std::size_t n = quick ? 192 : 640;
    const Cloud c = make_cloud(n, 41);
    std::vector<double> flat_sq(n * n), flat_exact(n * n);
    constexpr std::size_t kColTile = 1024;
    for (std::size_t r = 0; r < n; ++r) {
        const geom::Vec2 p = c.aos[r];
        core::kernels::fill_squared_distance_tile(c.xs.data(), c.ys.data(), 0,
                                                  n, p.x, p.y,
                                                  flat_sq.data() + r * n);
        core::kernels::fill_distance_tile(c.xs.data(), c.ys.data(), 0, n, p.x,
                                          p.y, flat_exact.data() + r * n);
    }
    for (std::size_t i = 0; i < n * n; ++i) {
        UAVDC_CHECK(std::sqrt(flat_sq[i]) == flat_exact[i])
            << "sq_matrix_fill: deferral identity broke at cell " << i;
    }
    KernelCase out;
    out.name = "sq_matrix_fill";
    out.n = static_cast<int>(n);
    out.batched = timed_reps(5, [&] {
        for (std::size_t r = 0; r < n; ++r) {
            const geom::Vec2 p = c.aos[r];
            for (std::size_t c0 = 0; c0 < n; c0 += kColTile) {
                core::kernels::fill_squared_distance_tile(
                    c.xs.data(), c.ys.data(), c0, std::min(n, c0 + kColTile),
                    p.x, p.y, flat_sq.data() + r * n);
            }
        }
        benchmark::DoNotOptimize(flat_sq.data());
    });
    // "scalar" column: the exact tile fill — the speedup column is the pure
    // sqrt-deferral gain, both sides batched.
    out.scalar = timed_reps(5, [&] {
        for (std::size_t r = 0; r < n; ++r) {
            const geom::Vec2 p = c.aos[r];
            for (std::size_t c0 = 0; c0 < n; c0 += kColTile) {
                core::kernels::fill_distance_tile(
                    c.xs.data(), c.ys.data(), c0, std::min(n, c0 + kColTile),
                    p.x, p.y, flat_exact.data() + r * n);
            }
        }
        benchmark::DoNotOptimize(flat_exact.data());
    });
    out.batched_s = out.batched.min_s;
    out.scalar_s = out.scalar.min_s;
    out.speedup = out.scalar_s / out.batched_s;
    return out;
}

KernelCase case_capped_sum(bool quick) {
    // fast (8-lane) vs ordered reduction; outputs are epsilon-close by
    // design, so this case checks timing only.
    const std::size_t m = quick ? 1u << 14 : 1u << 17;
    util::Rng rng(53);
    std::vector<std::int32_t> idx(m);
    util::AlignedVector<double> residual(core::soa_padded(m), 0.0);
    for (std::size_t j = 0; j < m; ++j) {
        idx[j] = static_cast<std::int32_t>(j);
        residual[j] = rng.uniform(0.0, 600.0);
    }
    const double cap = 250.0;
    const int sweeps = quick ? 40 : 80;
    KernelCase out;
    out.name = "capped_sum";
    out.n = static_cast<int>(m);
    out.batched = timed_reps(5, [&] {
        double acc = 0.0;
        for (int s = 0; s < sweeps; ++s) {
            acc += core::kernels::capped_sum_fast(idx.data(), m,
                                                  residual.data(), cap);
        }
        benchmark::DoNotOptimize(acc);
    });
    out.scalar = timed_reps(5, [&] {
        double acc = 0.0;
        for (int s = 0; s < sweeps; ++s) {
            acc += core::kernels::capped_sum_ordered(idx.data(), m,
                                                     residual.data(), cap);
        }
        benchmark::DoNotOptimize(acc);
    });
    out.batched_s = out.batched.min_s;
    out.scalar_s = out.scalar.min_s;
    out.speedup = out.scalar_s / out.batched_s;
    return out;
}

std::vector<KernelCase> run_kernel_baselines(bool quick) {
    return {case_distances(quick, true),     case_distances(quick, false),
            case_insertion_deltas(quick),    case_squared_insertion_lb(quick),
            case_matrix_fill(quick),         case_squared_matrix_fill(quick),
            case_capped_sum(quick)};
}

void write_kernel_baselines(const std::string& path, bool quick,
                            const std::vector<KernelCase>& rows) {
    io::Json doc;
    doc["schema"] = "uavdc-bench-kernels-v1";
    doc["quick"] = quick;
    io::Json::Array cases;
    for (const auto& r : rows) {
        io::Json c;
        c["name"] = r.name;
        c["n"] = r.n;
        c["batched_s"] = r.batched_s;
        c["scalar_s"] = r.scalar_s;
        c["speedup"] = r.speedup;
        // Rep aggregates: the regression gate prefers *_med_s when both
        // baseline and current carry it; min stays the legacy metric above.
        c["batched_med_s"] = r.batched.median_s;
        c["batched_std_s"] = r.batched.stddev_s;
        c["scalar_med_s"] = r.scalar.median_s;
        c["scalar_std_s"] = r.scalar.stddev_s;
        cases.push_back(std::move(c));
    }
    doc["cases"] = std::move(cases);
    std::ofstream out(path);
    UAVDC_CHECK(static_cast<bool>(out)) << "cannot open " << path;
    out << doc.dump(2) << "\n";
    out.flush();
    std::printf("wrote %s\n", path.c_str());
}

// --- Interactive google-benchmark entries over the same kernels.

void BM_SquaredDistances(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Cloud c = make_cloud(n, 7);
    std::vector<double> out(n);
    for (auto _ : state) {
        core::kernels::squared_distances_to_point(c.xs.data(), c.ys.data(),
                                                  n, 317.0, 209.0,
                                                  out.data());
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_SquaredDistances)->Arg(1 << 10)->Arg(1 << 16);

void BM_Distances(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Cloud c = make_cloud(n, 7);
    std::vector<double> out(n);
    for (auto _ : state) {
        core::kernels::distances_to_point(c.xs.data(), c.ys.data(), n, 317.0,
                                          209.0, out.data());
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_Distances)->Arg(1 << 10)->Arg(1 << 16);

void BM_InsertionDeltas(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Cloud c = make_cloud(n, 7);
    std::vector<double> n1(n), n2(n);
    const geom::Vec2 a{10.0, 20.0}, p{500.0, 500.0}, b{900.0, 100.0};
    const double lap = geom::distance(a, p), lpb = geom::distance(p, b);
    for (auto _ : state) {
        core::kernels::insertion_edge_deltas(c.xs.data(), c.ys.data(), n, a,
                                             p, b, lap, lpb, n1.data(),
                                             n2.data());
        benchmark::DoNotOptimize(n1.data());
    }
}
BENCHMARK(BM_InsertionDeltas)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace

int main(int argc, char** argv) {
    const util::Flags flags(argc, argv);
    if (flags.has("baseline_out")) {
        const bool quick = flags.get_bool("quick", false);
        const auto rows = run_kernel_baselines(quick);
        for (const auto& r : rows) {
            std::printf("%-18s n=%-7d batched=%.5fs scalar=%.5fs "
                        "speedup=%.2fx\n",
                        r.name.c_str(), r.n, r.batched_s, r.scalar_s,
                        r.speedup);
        }
        write_kernel_baselines(
            flags.get_string("baseline_out", "BENCH_kernels.json"), quick,
            rows);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
