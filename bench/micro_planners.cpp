// Google-benchmark microbenchmarks for the planners and orienteering
// solvers at fixed small scale (planner scaling curves live in the fig*
// harnesses; these catch per-commit performance regressions).
//
// With --baseline_out=<path> the binary instead runs the tracked
// incremental-vs-reference scoring-engine cases and writes the
// BENCH_planners.json schema (add --quick for the CI smoke variant checked
// by scripts/check_perf_regression.py).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "uavdc/core/algorithm1.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/benchmark_planner.hpp"
#include "uavdc/orienteering/grasp.hpp"
#include "uavdc/orienteering/greedy.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/workload/presets.hpp"

namespace {

using namespace uavdc;

model::Instance bench_instance(int devices) {
    auto gen = workload::paper_scaled(0.35);
    gen.num_devices = devices;
    gen.uav.energy_j = 4.0e4;
    return workload::generate(gen, 23);
}

orienteering::Problem random_orienteering(int n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)});
    }
    orienteering::Problem p;
    p.graph = graph::DenseGraph::euclidean(pts);
    p.prizes.resize(static_cast<std::size_t>(n));
    for (auto& z : p.prizes) z = rng.uniform(1.0, 10.0);
    p.prizes[0] = 0.0;
    p.depot = 0;
    p.budget = 900.0;
    return p;
}

void BM_OrienteeringGreedy(benchmark::State& state) {
    const auto p = random_orienteering(static_cast<int>(state.range(0)), 3);
    for (auto _ : state) {
        auto s = orienteering::solve_greedy(p);
        benchmark::DoNotOptimize(s.prize);
    }
}
BENCHMARK(BM_OrienteeringGreedy)->Arg(100)->Arg(400);

void BM_OrienteeringGrasp(benchmark::State& state) {
    const auto p = random_orienteering(static_cast<int>(state.range(0)), 3);
    orienteering::GraspConfig cfg;
    cfg.iterations = 4;
    for (auto _ : state) {
        auto s = orienteering::solve_grasp(p, cfg);
        benchmark::DoNotOptimize(s.prize);
    }
}
BENCHMARK(BM_OrienteeringGrasp)->Arg(100)->Arg(200);

void BM_Algorithm1(benchmark::State& state) {
    const auto inst = bench_instance(static_cast<int>(state.range(0)));
    core::Algorithm1Config cfg;
    cfg.candidates.delta_m = 15.0;
    cfg.grasp.iterations = 4;
    for (auto _ : state) {
        core::GridOrienteeringPlanner planner(cfg);
        auto res = planner.plan(inst);
        benchmark::DoNotOptimize(res.stats.planned_mb);
    }
}
BENCHMARK(BM_Algorithm1)->Arg(30)->Arg(60);

void BM_Algorithm2(benchmark::State& state) {
    const auto inst = bench_instance(static_cast<int>(state.range(0)));
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 15.0;
    for (auto _ : state) {
        core::GreedyCoveragePlanner planner(cfg);
        auto res = planner.plan(inst);
        benchmark::DoNotOptimize(res.stats.planned_mb);
    }
}
BENCHMARK(BM_Algorithm2)->Arg(30)->Arg(60);

void BM_Algorithm3(benchmark::State& state) {
    const auto inst = bench_instance(60);
    core::Algorithm3Config cfg;
    cfg.candidates.delta_m = 15.0;
    cfg.k = static_cast<int>(state.range(0));
    for (auto _ : state) {
        core::PartialCollectionPlanner planner(cfg);
        auto res = planner.plan(inst);
        benchmark::DoNotOptimize(res.stats.planned_mb);
    }
}
BENCHMARK(BM_Algorithm3)->Arg(1)->Arg(4);

void BM_BenchmarkPlanner(benchmark::State& state) {
    const auto inst = bench_instance(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        core::PruneTspPlanner planner;
        auto res = planner.plan(inst);
        benchmark::DoNotOptimize(res.stats.planned_mb);
    }
}
BENCHMARK(BM_BenchmarkPlanner)->Arg(60)->Arg(120);

}  // namespace

int main(int argc, char** argv) {
    const util::Flags flags(argc, argv);
    if (flags.has("baseline_out")) {
        const bool quick = flags.get_bool("quick", false);
        const auto rows = bench::run_planner_baselines(quick);
        for (const auto& r : rows) {
            std::printf(
                "%-22s devices=%-4d candidates=%-5d iter=%-5d "
                "inc=%.4fs ref=%.4fs speedup=%.1fx\n",
                r.name.c_str(), r.devices, r.candidates, r.iterations,
                r.incremental_s, r.reference_s, r.speedup);
        }
        bench::write_planner_baselines(
            flags.get_string("baseline_out", "BENCH_planners.json"), quick,
            rows);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
