// Benchmarks for the candidate-space reduction pipeline
// (core/candidate_reduction): steady-state planning time on a reduced
// scale-large candidate set versus the unreduced set and versus the
// 500-device paper-default reference case.
//
// With --baseline_out=<path> the binary runs the tracked reduction cases
// and writes the uavdc-bench-reduction-v1 schema (add --quick for the CI
// smoke variant checked by scripts/check_perf_regression.py). Contexts are
// warmed before timing — candidates, SoA mirrors, and the memoized
// reduction are all pre-touched — so `plan_s` is planning time proper, the
// steady-state cost a plan service pays per request.
//
// Each baseline run also asserts the reduction quality invariant on its
// fixed seed: the reduced plan collects at least 99% of the unreduced
// plan's volume, so the perf baseline doubles as a quality check.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "uavdc/core/candidate_reduction.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/timer.hpp"
#include "uavdc/workload/generator.hpp"
#include "uavdc/workload/presets.hpp"

namespace {

using namespace uavdc;

constexpr std::uint64_t kSeed = 7;

/// Wall-time aggregates over `reps` calls of `fn()`. `min_s` is the legacy
/// best-of metric; the regression gate compares medians.
template <typename F>
bench::TimingStats timed_reps(int reps, F&& fn) {
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const util::Timer t;
        fn();
        samples.push_back(t.seconds());
    }
    return bench::timing_stats(std::move(samples));
}

struct ReductionCase {
    std::string name;
    int devices{0};
    int candidates{0};  ///< candidates the planner actually saw
    double plan_s{0};   ///< best wall planning time (warm context)
    double reduce_s{0}; ///< one-off reduce_candidates cost (0 = no reduction)
    double planned_mb{0};
    double speedup{0};  ///< unreduced plan_s / this case's plan_s
    bench::TimingStats plan;  ///< full rep aggregates of the planning time
};

/// The benchmarked throughput profile: 6x grid coarsening, nothing else.
/// On scale-large this cuts planning ~11x *and* collects more than the
/// unpruned planner — the coarse grid spreads the greedy picks out, which
/// beats dense local clusters of near-duplicate candidates — so neither
/// the dominance pass nor the refinement band pays for itself here.
/// (Conformance fuzzes its own conservative dominance + coarsen-2 +
/// refine-band profile for the bounded-loss bound; this one is tuned for
/// serving throughput.)
core::CandidateReductionConfig bench_profile() {
    core::CandidateReductionConfig red;
    red.coarsen_factor = 6;
    return red;
}

ReductionCase time_planner(const std::string& name,
                           const core::PlanningContext& ctx,
                           const core::PlannerOptions& opts, int reps) {
    auto planner = core::make_planner("alg2", opts);
    core::PlanResult res;
    ReductionCase out;
    out.name = name;
    out.devices = static_cast<int>(ctx.instance().devices.size());
    out.plan = timed_reps(reps, [&] {
        res = planner->plan(ctx);
        // Sink a copy: DoNotOptimize's in-place register round-trip may
        // clobber the lvalue it is handed, and we still read `res` below.
        double sink = res.stats.planned_mb;
        benchmark::DoNotOptimize(sink);
    });
    out.plan_s = out.plan.min_s;
    out.candidates = res.stats.candidates;
    out.planned_mb = res.stats.planned_mb;
    return out;
}

std::vector<ReductionCase> run_reduction_baselines(bool quick) {
    // Reference: today's 500-device paper-default quick case at stock
    // candidate options — the runtime yardstick reduction must stay under.
    const model::Instance ref_inst =
        workload::generate(workload::paper_default(), kSeed);
    core::PlannerOptions ref_opts;
    auto ref_ctx =
        core::PlanningContext::build(ref_inst, ref_opts.hover_config());
    // Warm: candidates + SoA built here, outside the timers.
    (void)ref_ctx->candidate_soa();

    // Scale-large: 5k devices on a 3200 m square (~100k grid cells at the
    // stock 10 m delta), candidate cap lifted so reduction does real work.
    // Quick mode shrinks to a quarter-size instance with the same density
    // so the CI smoke keeps the case shape at a fraction of the runtime.
    workload::GeneratorConfig large_cfg = workload::scale_large();
    if (quick) {
        large_cfg.num_devices = 1250;
        large_cfg.region_w = 1600.0;
        large_cfg.region_h = 1600.0;
        large_cfg.uav.energy_j = 1.5e6;
    }
    const model::Instance large_inst = workload::generate(large_cfg, kSeed);
    core::PlannerOptions large_opts;
    large_opts.max_candidates = 100000;
    auto large_ctx =
        core::PlanningContext::build(large_inst, large_opts.hover_config());
    (void)large_ctx->candidate_soa();

    core::PlannerOptions red_opts = large_opts;
    red_opts.reduction = bench_profile();
    const util::Timer reduce_timer;
    const core::ReducedCandidates& reduced =
        large_ctx->reduced_candidates(red_opts.reduction);
    const double reduce_s = reduce_timer.seconds();

    const int reps = quick ? 3 : 5;
    ReductionCase ref = time_planner("ref_500_alg2", *ref_ctx, ref_opts,
                                     quick ? 5 : 10);
    ReductionCase unred =
        time_planner("large_unreduced_alg2", *large_ctx, large_opts, reps);
    ReductionCase red =
        time_planner("large_reduced_alg2", *large_ctx, red_opts, reps);
    red.reduce_s = reduce_s;

    ref.speedup = 1.0;
    unred.speedup = 1.0;
    red.speedup = unred.plan_s / red.plan_s;

    // Quality invariant on this fixed seed: the reduced plan must collect
    // at least 99% of the unreduced plan's volume (planning is
    // deterministic, so this is exact, not flaky). The conformance fuzzer
    // checks the same bound across a 100-instance corpus.
    UAVDC_CHECK(red.planned_mb >= 0.99 * unred.planned_mb)
        << "reduced plan lost >1% volume: " << red.planned_mb << " vs "
        << unred.planned_mb;
    UAVDC_CHECK(reduced.set.size() < large_ctx->candidates().size())
        << "reduction kept every candidate";

    std::printf("reduction: %zu -> %zu candidates (reduce %.1f ms)\n",
                large_ctx->candidates().size(), reduced.set.size(),
                1e3 * reduce_s);
    return {ref, unred, red};
}

void write_reduction_baselines(const std::string& path, bool quick,
                               const std::vector<ReductionCase>& rows) {
    io::Json doc;
    doc["schema"] = "uavdc-bench-reduction-v1";
    doc["quick"] = quick;
    io::Json::Array cases;
    for (const auto& r : rows) {
        io::Json c;
        c["name"] = r.name;
        c["devices"] = r.devices;
        c["candidates"] = r.candidates;
        c["plan_s"] = r.plan_s;
        c["reduce_s"] = r.reduce_s;
        c["planned_mb"] = r.planned_mb;
        c["speedup"] = r.speedup;
        // Rep aggregates: the regression gate prefers *_med_s when both
        // baseline and current carry it; min stays the legacy metric above.
        c["plan_med_s"] = r.plan.median_s;
        c["plan_std_s"] = r.plan.stddev_s;
        cases.push_back(std::move(c));
    }
    doc["cases"] = std::move(cases);
    std::ofstream out(path);
    UAVDC_CHECK(static_cast<bool>(out)) << "cannot open " << path;
    out << doc.dump(2) << "\n";
    out.flush();
    std::printf("wrote %s\n", path.c_str());
}

// --- Interactive google-benchmark entry over the reduction pipeline.

void BM_ReduceCandidates(benchmark::State& state) {
    workload::GeneratorConfig cfg = workload::paper_default();
    cfg.num_devices = static_cast<int>(state.range(0));
    const model::Instance inst = workload::generate(cfg, kSeed);
    core::PlannerOptions opts;
    opts.max_candidates = 100000;
    auto ctx = core::PlanningContext::build(inst, opts.hover_config());
    const auto& full = ctx->candidates();
    const auto red = bench_profile();
    for (auto _ : state) {
        auto out =
            core::reduce_candidates(full, inst.devices.size(), red);
        benchmark::DoNotOptimize(out.set.candidates.data());
    }
}
BENCHMARK(BM_ReduceCandidates)->Arg(500)->Arg(2000);

}  // namespace

int main(int argc, char** argv) {
    const util::Flags flags(argc, argv);
    if (flags.has("baseline_out")) {
        const bool quick = flags.get_bool("quick", false);
        const auto rows = run_reduction_baselines(quick);
        for (const auto& r : rows) {
            std::printf("%-22s dev=%-5d cand=%-6d plan=%.4fs "
                        "mb=%.1f speedup=%.2fx\n",
                        r.name.c_str(), r.devices, r.candidates, r.plan_s,
                        r.planned_mb, r.speedup);
        }
        write_reduction_baselines(
            flags.get_string("baseline_out", "BENCH_reduction.json"), quick,
            rows);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
