// Google-benchmark microbenchmarks for the plan service: request throughput
// through the full submit/queue/execute/respond path, cold cache vs warm.
//
// With --baseline_out=<path> the binary instead runs the tracked service
// throughput cases and writes the uavdc-bench-service-v1 schema (add
// --quick for the CI smoke variant checked by
// scripts/check_perf_regression.py).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/service/jsonl.hpp"
#include "uavdc/service/plan_service.hpp"
#include "uavdc/service/request.hpp"
#include "uavdc/service/workload_gen.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/timer.hpp"
#include "uavdc/workload/presets.hpp"

namespace {

using namespace uavdc;

core::PlannerOptions bench_options() {
    core::PlannerOptions opts;
    opts.delta_m = 25.0;
    opts.grasp_iterations = 3;
    return opts;
}

service::PlanService::Config service_config(std::size_t workers) {
    service::PlanService::Config cfg;
    cfg.workers = workers;
    cfg.defaults = bench_options();
    return cfg;
}

std::vector<service::PlanRequest> bench_requests(int count,
                                                 std::uint64_t seed) {
    service::WorkloadGenConfig gen;
    gen.requests = count;
    gen.instances = 4;
    gen.seed = seed;
    gen.deadline_prob = 0.0;  // throughput, not expiry handling
    gen.control_verbs = false;
    std::vector<service::PlanRequest> reqs;
    std::istringstream in(service::generate_jsonl_workload(gen));
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) {
            reqs.push_back(service::request_from_json(io::Json::parse(line)));
        }
    }
    return reqs;
}

void run_batch(service::PlanService& svc,
               const std::vector<service::PlanRequest>& reqs) {
    for (const auto& req : reqs) {
        svc.submit(req, [](service::PlanResponse resp) {
            benchmark::DoNotOptimize(resp.status);
        });
    }
    svc.drain();
}

/// Cold cache: a fresh service per iteration plans every unique request.
void BM_ServeCold(benchmark::State& state) {
    const auto reqs =
        bench_requests(static_cast<int>(state.range(0)), 17);
    const auto workers = static_cast<std::size_t>(state.range(1));
    for (auto _ : state) {
        service::PlanService svc(service_config(workers));
        run_batch(svc, reqs);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeCold)->Args({32, 1})->Args({32, 4});

/// Warm cache: the service has already answered the same workload, so every
/// request is a response-cache hit — the transport/queue overhead ceiling.
void BM_ServeWarm(benchmark::State& state) {
    const auto reqs =
        bench_requests(static_cast<int>(state.range(0)), 17);
    const auto workers = static_cast<std::size_t>(state.range(1));
    service::PlanService svc(service_config(workers));
    run_batch(svc, reqs);  // prime the cache
    for (auto _ : state) {
        run_batch(svc, reqs);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeWarm)->Args({32, 4});

/// JSONL transport end to end (parse + serve + serialize).
void BM_ServeJsonl(benchmark::State& state) {
    service::WorkloadGenConfig gen;
    gen.requests = static_cast<int>(state.range(0));
    gen.instances = 4;
    gen.seed = 17;
    gen.deadline_prob = 0.0;
    const std::string workload = service::generate_jsonl_workload(gen);
    service::JsonlConfig cfg;
    cfg.service = service_config(4);
    for (auto _ : state) {
        std::istringstream in(workload);
        std::ostringstream out;
        auto summary = service::serve_jsonl(in, out, cfg);
        benchmark::DoNotOptimize(summary.stats.ok);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeJsonl)->Arg(32);

// ---------------------------------------------------------------------------
// Tracked baselines (uavdc-bench-service-v1)
// ---------------------------------------------------------------------------

struct ServiceBaseline {
    std::string name;
    int requests{0};
    int workers{0};
    bool warm{false};
    double runtime_s{0.0};  ///< best-of-reps wall time (legacy metric)
    double rps{0.0};
    double cache_hit_rate{0.0};
    bench::TimingStats timing;  ///< full rep aggregates
};

ServiceBaseline run_case(const std::string& name, int requests, int workers,
                         bool warm) {
    ServiceBaseline row;
    row.name = name;
    row.requests = requests;
    row.workers = workers;
    row.warm = warm;
    const auto reqs = bench_requests(requests, 17);
    // A fresh service per rep keeps cold cases cold (re-running a batch on
    // the same service would be a cache hit); warm cases prime theirs first.
    const int reps = 3;
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        service::PlanService svc(
            service_config(static_cast<std::size_t>(workers)));
        if (warm) run_batch(svc, reqs);
        util::Timer timer;
        run_batch(svc, reqs);
        samples.push_back(timer.seconds());
        row.cache_hit_rate = svc.stats().cache_hit_rate();
    }
    row.timing = bench::timing_stats(std::move(samples));
    row.runtime_s = row.timing.min_s;
    row.rps = row.runtime_s > 0.0
                  ? static_cast<double>(requests) / row.runtime_s
                  : 0.0;
    return row;
}

std::vector<ServiceBaseline> run_service_baselines(bool quick) {
    const int n = quick ? 48 : 256;
    return {
        run_case("serve_cold_w1", n, 1, false),
        run_case("serve_cold_w4", n, 4, false),
        run_case("serve_warm_w4", n, 4, true),
    };
}

void write_service_baselines(const std::string& path, bool quick,
                             const std::vector<ServiceBaseline>& rows) {
    io::Json::Array cases;
    for (const auto& r : rows) {
        io::Json row;
        row["name"] = r.name;
        row["requests"] = r.requests;
        row["workers"] = r.workers;
        row["warm"] = r.warm;
        row["runtime_s"] = r.runtime_s;
        row["rps"] = r.rps;
        row["cache_hit_rate"] = r.cache_hit_rate;
        // Rep aggregates: the regression gate prefers *_med_s when both
        // baseline and current carry it; min stays the legacy metric above.
        row["runtime_med_s"] = r.timing.median_s;
        row["runtime_std_s"] = r.timing.stddev_s;
        cases.push_back(std::move(row));
    }
    io::Json doc;
    doc["schema"] = "uavdc-bench-service-v1";
    doc["mode"] = quick ? "quick" : "full";
    doc["cases"] = io::Json(std::move(cases));
    io::save_json_file(path, doc);
}

}  // namespace

int main(int argc, char** argv) {
    const util::Flags flags(argc, argv);
    if (flags.has("baseline_out")) {
        const bool quick = flags.get_bool("quick", false);
        const auto rows = run_service_baselines(quick);
        for (const auto& r : rows) {
            std::printf(
                "%-16s requests=%-4d workers=%-2d %s runtime=%.4fs "
                "rps=%.1f hit-rate=%.2f\n",
                r.name.c_str(), r.requests, r.workers,
                r.warm ? "warm" : "cold", r.runtime_s, r.rps,
                r.cache_hit_rate);
        }
        write_service_baselines(
            flags.get_string("baseline_out", "BENCH_service.json"), quick,
            rows);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
