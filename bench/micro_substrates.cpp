// Google-benchmark microbenchmarks for the substrate layers: spatial hash,
// coverage index, Christofides, 2-opt, and the discrete-event simulator.

#include <benchmark/benchmark.h>

#include "uavdc/core/algorithm2.hpp"
#include "uavdc/geom/coverage.hpp"
#include "uavdc/geom/grid.hpp"
#include "uavdc/geom/hull.hpp"
#include "uavdc/geom/kmeans.hpp"
#include "uavdc/geom/obstacle_field.hpp"
#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/graph/held_karp.hpp"
#include "uavdc/graph/christofides.hpp"
#include "uavdc/graph/local_search.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/workload/presets.hpp"

namespace {

using namespace uavdc;

std::vector<geom::Vec2> random_points(int n, std::uint64_t seed,
                                      double side) {
    util::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    return pts;
}

void BM_SpatialHashBuild(benchmark::State& state) {
    const auto pts =
        random_points(static_cast<int>(state.range(0)), 7, 1000.0);
    for (auto _ : state) {
        geom::SpatialHash hash(pts, 50.0);
        benchmark::DoNotOptimize(hash.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpatialHashBuild)->Arg(500)->Arg(5000);

void BM_SpatialHashQuery(benchmark::State& state) {
    const auto pts =
        random_points(static_cast<int>(state.range(0)), 7, 1000.0);
    const geom::SpatialHash hash(pts, 50.0);
    util::Rng rng(9);
    for (auto _ : state) {
        const geom::Vec2 q{rng.uniform(0.0, 1000.0),
                           rng.uniform(0.0, 1000.0)};
        int count = 0;
        hash.for_each_in_disk(q, 50.0, [&](int) { ++count; });
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(BM_SpatialHashQuery)->Arg(500)->Arg(5000);

void BM_CoverageIndexBuild(benchmark::State& state) {
    const auto devices =
        random_points(static_cast<int>(state.range(0)), 3, 1000.0);
    const geom::Grid grid(geom::Aabb::of_size(1000.0, 1000.0), 10.0);
    const auto centers = grid.all_centers();
    for (auto _ : state) {
        geom::CoverageIndex cov(centers, devices, 50.0);
        benchmark::DoNotOptimize(cov.num_uncovered_devices());
    }
}
BENCHMARK(BM_CoverageIndexBuild)->Arg(100)->Arg(500);

void BM_Christofides(benchmark::State& state) {
    const auto pts =
        random_points(static_cast<int>(state.range(0)), 5, 1000.0);
    const auto g = graph::DenseGraph::euclidean(pts);
    for (auto _ : state) {
        auto tour = graph::christofides_tour(g, 0);
        benchmark::DoNotOptimize(tour.size());
    }
}
BENCHMARK(BM_Christofides)->Arg(50)->Arg(200)->Arg(500);

void BM_TwoOpt(benchmark::State& state) {
    const auto pts =
        random_points(static_cast<int>(state.range(0)), 5, 1000.0);
    const auto g = graph::DenseGraph::euclidean(pts);
    std::vector<std::size_t> base(pts.size());
    for (std::size_t i = 0; i < base.size(); ++i) base[i] = i;
    for (auto _ : state) {
        auto tour = base;
        benchmark::DoNotOptimize(graph::two_opt(g, tour));
    }
}
BENCHMARK(BM_TwoOpt)->Arg(100)->Arg(300);

void BM_SimulatorRun(benchmark::State& state) {
    auto gen = workload::paper_scaled(0.5);
    const auto inst = workload::generate(gen, 11);
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 20.0;
    const auto res = core::GreedyCoveragePlanner(cfg).plan(inst);
    sim::SimConfig scfg;
    scfg.record_trace = false;
    const sim::Simulator sim(scfg);
    for (auto _ : state) {
        auto rep = sim.run(inst, res.plan);
        benchmark::DoNotOptimize(rep.collected_mb);
    }
}
BENCHMARK(BM_SimulatorRun);


void BM_KMeans(benchmark::State& state) {
    const auto pts =
        random_points(static_cast<int>(state.range(0)), 9, 1000.0);
    for (auto _ : state) {
        auto res = geom::kmeans(pts, 32);
        benchmark::DoNotOptimize(res.inertia);
    }
}
BENCHMARK(BM_KMeans)->Arg(200)->Arg(1000);

void BM_ConvexHull(benchmark::State& state) {
    const auto pts =
        random_points(static_cast<int>(state.range(0)), 10, 1000.0);
    for (auto _ : state) {
        auto hull = geom::convex_hull(pts);
        benchmark::DoNotOptimize(hull.size());
    }
}
BENCHMARK(BM_ConvexHull)->Arg(1000)->Arg(10000);

void BM_ObstacleShortestPath(benchmark::State& state) {
    std::vector<geom::Aabb> zones;
    util::Rng rng(11);
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        const geom::Vec2 lo{rng.uniform(100.0, 800.0),
                            rng.uniform(100.0, 800.0)};
        zones.push_back(
            geom::Aabb{lo, lo + geom::Vec2{60.0, 60.0}});
    }
    const geom::ObstacleField field(zones);
    for (auto _ : state) {
        auto res = field.shortest_path({0.0, 0.0}, {1000.0, 1000.0});
        benchmark::DoNotOptimize(res.length_m);
    }
}
BENCHMARK(BM_ObstacleShortestPath)->Arg(4)->Arg(16);

void BM_HeldKarp(benchmark::State& state) {
    const auto pts =
        random_points(static_cast<int>(state.range(0)), 12, 1000.0);
    const auto g = graph::DenseGraph::euclidean(pts);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph::held_karp_length(g));
    }
}
BENCHMARK(BM_HeldKarp)->Arg(10)->Arg(14);

}  // namespace

BENCHMARK_MAIN();
