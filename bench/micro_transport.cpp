// Google-benchmark microbenchmarks for the TCP transport: frame codec
// throughput and loopback request/response round-trips through TcpServer
// and the sharding Router, warm-cache (the transport overhead ceiling —
// planner time is excluded by construction).
//
// With --baseline_out=<path> the binary instead runs the tracked transport
// cases and writes the uavdc-bench-transport-v1 schema (add --quick for
// the CI smoke variant checked by scripts/check_perf_regression.py).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/net/frame.hpp"
#include "uavdc/net/loadgen.hpp"
#include "uavdc/net/router.hpp"
#include "uavdc/net/tcp_server.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/timer.hpp"

namespace {

using namespace uavdc;

core::PlannerOptions bench_options() {
    core::PlannerOptions opts;
    opts.delta_m = 25.0;
    opts.grasp_iterations = 3;
    return opts;
}

/// A TcpServer on its own thread bound to an ephemeral loopback port.
struct ServerHandle {
    std::atomic<bool> stop{false};
    int port{0};
    std::thread thread;

    ServerHandle() {
        std::promise<int> port_promise;
        auto port_future = port_promise.get_future();
        net::TcpServerConfig cfg;
        cfg.port = 0;
        cfg.service.workers = 2;
        cfg.service.defaults = bench_options();
        cfg.stop = &stop;
        cfg.poll_timeout_ms = 20;
        cfg.on_listening = [&port_promise](int p) {
            port_promise.set_value(p);
        };
        thread = std::thread([this, cfg = std::move(cfg)]() mutable {
            net::TcpServer server(std::move(cfg));
            (void)server.run();
        });
        port = port_future.get();
    }

    ~ServerHandle() {
        stop.store(true);
        if (thread.joinable()) thread.join();
    }
};

/// A static-mode Router over in-process shard servers, all on one thread
/// pool-free loopback setup: N ServerHandles plus the router thread.
struct RouterHandle {
    std::vector<std::unique_ptr<ServerHandle>> shards;
    std::atomic<bool> stop{false};
    int port{0};
    std::thread thread;

    explicit RouterHandle(int shard_count) {
        std::vector<int> endpoints;
        for (int i = 0; i < shard_count; ++i) {
            shards.push_back(std::make_unique<ServerHandle>());
            endpoints.push_back(shards.back()->port);
        }
        std::promise<int> port_promise;
        auto port_future = port_promise.get_future();
        net::RouterConfig cfg;
        cfg.port = 0;
        cfg.endpoints = std::move(endpoints);
        cfg.stop = &stop;
        cfg.poll_timeout_ms = 20;
        cfg.on_listening = [&port_promise](int p) {
            port_promise.set_value(p);
        };
        thread = std::thread([this, cfg = std::move(cfg)]() mutable {
            net::Router router(std::move(cfg));
            (void)router.run();
        });
        port = port_future.get();
    }

    ~RouterHandle() {
        stop.store(true);
        if (thread.joinable()) thread.join();
    }
};

net::LoadgenConfig loadgen_config(int port, int requests) {
    net::LoadgenConfig cfg;
    cfg.port = port;
    cfg.connections = 8;
    cfg.pipeline = 32;
    cfg.requests = requests;
    cfg.instances = 4;
    cfg.devices_lo = 10;
    cfg.devices_hi = 16;
    cfg.seed = 17;
    return cfg;
}

/// One measured loadgen pass; the caller primed the server, so every plan
/// request is a response-cache hit and elapsed_s is pure transport.
net::LoadgenResult measured_pass(const net::LoadgenConfig& cfg) {
    auto r = net::run_loadgen(cfg);
    UAVDC_CHECK(!r.timed_out && r.errors == 0 && r.received ==
                static_cast<std::uint64_t>(cfg.requests))
        << "loadgen pass failed: received=" << r.received
        << " errors=" << r.errors;
    return r;
}

void BM_FrameCodec(benchmark::State& state) {
    const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state) {
        net::FrameDecoder d;
        for (int i = 0; i < 64; ++i) {
            d.feed(net::encode_frame(payload, i % 2 == 0));
            while (auto f = d.next()) benchmark::DoNotOptimize(f->payload);
        }
        benchmark::DoNotOptimize(d.frames());
    }
    state.SetItemsProcessed(state.iterations() * 64);
    state.SetBytesProcessed(state.iterations() * 64 * state.range(0));
}
BENCHMARK(BM_FrameCodec)->Arg(256)->Arg(4096);

void BM_TcpWarmRoundTrip(benchmark::State& state) {
    ServerHandle server;
    auto cfg = loadgen_config(server.port,
                              static_cast<int>(state.range(0)));
    (void)net::run_loadgen(cfg);  // prime the response cache
    for (auto _ : state) {
        benchmark::DoNotOptimize(measured_pass(cfg).elapsed_s);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcpWarmRoundTrip)->Arg(1000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Tracked baselines (uavdc-bench-transport-v1)
// ---------------------------------------------------------------------------

struct TransportBaseline {
    std::string name;
    int requests{0};
    double runtime_s{0.0};  ///< best-of-reps wall time (legacy metric)
    double rps{0.0};
    bench::TimingStats timing;
    bool has_latency{false};  ///< round-trip cases only; codec has none
    double p50_ms{0.0};
    double p95_ms{0.0};
    double p99_ms{0.0};
};

/// The frame codec alone: encode+decode `frames` mixed-framing frames.
TransportBaseline run_codec_case(const std::string& name, int frames) {
    TransportBaseline row;
    row.name = name;
    row.requests = frames;
    const std::string payload(512, 'x');
    const int reps = 3;
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
        util::Timer timer;
        net::FrameDecoder d;
        for (int i = 0; i < frames; ++i) {
            d.feed(net::encode_frame(payload, i % 2 == 0));
            while (auto f = d.next()) benchmark::DoNotOptimize(f->payload);
        }
        UAVDC_CHECK(d.frames() == static_cast<std::uint64_t>(frames));
        samples.push_back(timer.seconds());
    }
    row.timing = bench::timing_stats(std::move(samples));
    row.runtime_s = row.timing.min_s;
    row.rps = row.runtime_s > 0.0 ? frames / row.runtime_s : 0.0;
    return row;
}

/// Warm loopback round-trips against `port` (server(s) already primed by
/// one throwaway pass before the reps).
TransportBaseline run_tcp_case(const std::string& name, int port,
                               int requests) {
    TransportBaseline row;
    row.name = name;
    row.requests = requests;
    const auto cfg = loadgen_config(port, requests);
    (void)net::run_loadgen(cfg);  // prime
    const int reps = 3;
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
        const auto pass = measured_pass(cfg);
        // Percentiles from the fastest rep: the tracked latency figure
        // should describe steady-state transport, not a one-off stall.
        if (samples.empty() || pass.elapsed_s < row.runtime_s) {
            row.runtime_s = pass.elapsed_s;
            row.p50_ms = pass.latency.quantile(0.50) * 1e3;
            row.p95_ms = pass.latency.quantile(0.95) * 1e3;
            row.p99_ms = pass.latency.quantile(0.99) * 1e3;
        }
        samples.push_back(pass.elapsed_s);
    }
    row.has_latency = true;
    row.timing = bench::timing_stats(std::move(samples));
    row.runtime_s = row.timing.min_s;
    row.rps = row.runtime_s > 0.0 ? requests / row.runtime_s : 0.0;
    return row;
}

std::vector<TransportBaseline> run_transport_baselines(bool quick) {
    const int frames = quick ? 50000 : 400000;
    const int requests = quick ? 2000 : 20000;
    std::vector<TransportBaseline> rows;
    rows.push_back(run_codec_case("frame_codec", frames));
    {
        ServerHandle server;
        rows.push_back(
            run_tcp_case("serve_tcp_warm", server.port, requests));
    }
    {
        RouterHandle router(quick ? 2 : 4);
        rows.push_back(run_tcp_case(
            quick ? "router_warm_2shards" : "router_warm_4shards",
            router.port, requests));
    }
    return rows;
}

void write_transport_baselines(const std::string& path, bool quick,
                               const std::vector<TransportBaseline>& rows) {
    io::Json::Array cases;
    for (const auto& r : rows) {
        io::Json row;
        row["name"] = r.name;
        row["requests"] = r.requests;
        row["runtime_s"] = r.runtime_s;
        row["rps"] = r.rps;
        row["runtime_med_s"] = r.timing.median_s;
        row["runtime_std_s"] = r.timing.stddev_s;
        if (r.has_latency) {
            row["p50_ms"] = r.p50_ms;
            row["p95_ms"] = r.p95_ms;
            row["p99_ms"] = r.p99_ms;
        }
        cases.push_back(std::move(row));
    }
    io::Json doc;
    doc["schema"] = "uavdc-bench-transport-v1";
    doc["mode"] = quick ? "quick" : "full";
    doc["cases"] = io::Json(std::move(cases));
    io::save_json_file(path, doc);
}

}  // namespace

int main(int argc, char** argv) {
    const util::Flags flags(argc, argv);
    if (flags.has("baseline_out")) {
        const bool quick = flags.get_bool("quick", false);
        const auto rows = run_transport_baselines(quick);
        for (const auto& r : rows) {
            std::printf("%-22s requests=%-6d runtime=%.4fs rps=%.1f\n",
                        r.name.c_str(), r.requests, r.runtime_s, r.rps);
        }
        write_transport_baselines(
            flags.get_string("baseline_out", "BENCH_transport.json"), quick,
            rows);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
