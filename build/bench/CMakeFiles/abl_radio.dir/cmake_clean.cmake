file(REMOVE_RECURSE
  "CMakeFiles/abl_radio.dir/abl_radio.cpp.o"
  "CMakeFiles/abl_radio.dir/abl_radio.cpp.o.d"
  "abl_radio"
  "abl_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
