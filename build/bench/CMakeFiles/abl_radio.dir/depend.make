# Empty dependencies file for abl_radio.
# This may be replaced when dependencies are built.
