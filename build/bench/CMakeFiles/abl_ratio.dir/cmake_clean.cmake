file(REMOVE_RECURSE
  "CMakeFiles/abl_ratio.dir/abl_ratio.cpp.o"
  "CMakeFiles/abl_ratio.dir/abl_ratio.cpp.o.d"
  "abl_ratio"
  "abl_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
