# Empty dependencies file for abl_ratio.
# This may be replaced when dependencies are built.
