file(REMOVE_RECURSE
  "CMakeFiles/abl_solver.dir/abl_solver.cpp.o"
  "CMakeFiles/abl_solver.dir/abl_solver.cpp.o.d"
  "abl_solver"
  "abl_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
