file(REMOVE_RECURSE
  "CMakeFiles/abl_wind.dir/abl_wind.cpp.o"
  "CMakeFiles/abl_wind.dir/abl_wind.cpp.o.d"
  "abl_wind"
  "abl_wind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
