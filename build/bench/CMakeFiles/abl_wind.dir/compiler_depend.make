# Empty compiler generated dependencies file for abl_wind.
# This may be replaced when dependencies are built.
