file(REMOVE_RECURSE
  "CMakeFiles/fig3_no_overlap.dir/fig3_no_overlap.cpp.o"
  "CMakeFiles/fig3_no_overlap.dir/fig3_no_overlap.cpp.o.d"
  "fig3_no_overlap"
  "fig3_no_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_no_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
