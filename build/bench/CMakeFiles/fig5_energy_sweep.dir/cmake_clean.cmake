file(REMOVE_RECURSE
  "CMakeFiles/fig5_energy_sweep.dir/fig5_energy_sweep.cpp.o"
  "CMakeFiles/fig5_energy_sweep.dir/fig5_energy_sweep.cpp.o.d"
  "fig5_energy_sweep"
  "fig5_energy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_energy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
