file(REMOVE_RECURSE
  "CMakeFiles/fig7_k_sweep.dir/fig7_k_sweep.cpp.o"
  "CMakeFiles/fig7_k_sweep.dir/fig7_k_sweep.cpp.o.d"
  "fig7_k_sweep"
  "fig7_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
