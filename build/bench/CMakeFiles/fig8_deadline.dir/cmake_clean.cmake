file(REMOVE_RECURSE
  "CMakeFiles/fig8_deadline.dir/fig8_deadline.cpp.o"
  "CMakeFiles/fig8_deadline.dir/fig8_deadline.cpp.o.d"
  "fig8_deadline"
  "fig8_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
