# Empty compiler generated dependencies file for fig8_deadline.
# This may be replaced when dependencies are built.
