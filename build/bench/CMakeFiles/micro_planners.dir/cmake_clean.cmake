file(REMOVE_RECURSE
  "CMakeFiles/micro_planners.dir/micro_planners.cpp.o"
  "CMakeFiles/micro_planners.dir/micro_planners.cpp.o.d"
  "micro_planners"
  "micro_planners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_planners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
