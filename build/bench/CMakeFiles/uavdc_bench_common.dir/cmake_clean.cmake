file(REMOVE_RECURSE
  "CMakeFiles/uavdc_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/uavdc_bench_common.dir/bench_common.cpp.o.d"
  "libuavdc_bench_common.a"
  "libuavdc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavdc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
