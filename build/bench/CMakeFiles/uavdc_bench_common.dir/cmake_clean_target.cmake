file(REMOVE_RECURSE
  "libuavdc_bench_common.a"
)
