# Empty dependencies file for uavdc_bench_common.
# This may be replaced when dependencies are built.
