# Empty dependencies file for farm_monitoring.
# This may be replaced when dependencies are built.
