file(REMOVE_RECURSE
  "CMakeFiles/mission_robustness.dir/mission_robustness.cpp.o"
  "CMakeFiles/mission_robustness.dir/mission_robustness.cpp.o.d"
  "mission_robustness"
  "mission_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
