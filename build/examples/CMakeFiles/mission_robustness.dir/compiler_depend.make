# Empty compiler generated dependencies file for mission_robustness.
# This may be replaced when dependencies are built.
