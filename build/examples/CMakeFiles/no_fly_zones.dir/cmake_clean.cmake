file(REMOVE_RECURSE
  "CMakeFiles/no_fly_zones.dir/no_fly_zones.cpp.o"
  "CMakeFiles/no_fly_zones.dir/no_fly_zones.cpp.o.d"
  "no_fly_zones"
  "no_fly_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/no_fly_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
