# Empty dependencies file for no_fly_zones.
# This may be replaced when dependencies are built.
