file(REMOVE_RECURSE
  "CMakeFiles/survey_import.dir/survey_import.cpp.o"
  "CMakeFiles/survey_import.dir/survey_import.cpp.o.d"
  "survey_import"
  "survey_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
