# Empty dependencies file for survey_import.
# This may be replaced when dependencies are built.
