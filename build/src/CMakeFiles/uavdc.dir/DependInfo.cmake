
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uavdc/core/algorithm1.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/algorithm1.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/algorithm1.cpp.o.d"
  "/root/repo/src/uavdc/core/algorithm2.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/algorithm2.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/algorithm2.cpp.o.d"
  "/root/repo/src/uavdc/core/algorithm3.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/algorithm3.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/algorithm3.cpp.o.d"
  "/root/repo/src/uavdc/core/baseline_planners.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/baseline_planners.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/baseline_planners.cpp.o.d"
  "/root/repo/src/uavdc/core/benchmark_planner.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/benchmark_planner.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/benchmark_planner.cpp.o.d"
  "/root/repo/src/uavdc/core/compare.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/compare.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/compare.cpp.o.d"
  "/root/repo/src/uavdc/core/evaluate.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/evaluate.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/evaluate.cpp.o.d"
  "/root/repo/src/uavdc/core/exact_dcm.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/exact_dcm.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/exact_dcm.cpp.o.d"
  "/root/repo/src/uavdc/core/fleet.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/fleet.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/fleet.cpp.o.d"
  "/root/repo/src/uavdc/core/hover_candidates.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/hover_candidates.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/hover_candidates.cpp.o.d"
  "/root/repo/src/uavdc/core/metrics.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/metrics.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/metrics.cpp.o.d"
  "/root/repo/src/uavdc/core/multi_tour.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/multi_tour.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/multi_tour.cpp.o.d"
  "/root/repo/src/uavdc/core/registry.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/registry.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/registry.cpp.o.d"
  "/root/repo/src/uavdc/core/repair_plan.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/repair_plan.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/repair_plan.cpp.o.d"
  "/root/repo/src/uavdc/core/route_around.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/route_around.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/route_around.cpp.o.d"
  "/root/repo/src/uavdc/core/sensitivity.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/sensitivity.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/sensitivity.cpp.o.d"
  "/root/repo/src/uavdc/core/tour_builder.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/tour_builder.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/tour_builder.cpp.o.d"
  "/root/repo/src/uavdc/core/validate_plan.cpp" "src/CMakeFiles/uavdc.dir/uavdc/core/validate_plan.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/core/validate_plan.cpp.o.d"
  "/root/repo/src/uavdc/geom/coverage.cpp" "src/CMakeFiles/uavdc.dir/uavdc/geom/coverage.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/geom/coverage.cpp.o.d"
  "/root/repo/src/uavdc/geom/grid.cpp" "src/CMakeFiles/uavdc.dir/uavdc/geom/grid.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/geom/grid.cpp.o.d"
  "/root/repo/src/uavdc/geom/hull.cpp" "src/CMakeFiles/uavdc.dir/uavdc/geom/hull.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/geom/hull.cpp.o.d"
  "/root/repo/src/uavdc/geom/kmeans.cpp" "src/CMakeFiles/uavdc.dir/uavdc/geom/kmeans.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/geom/kmeans.cpp.o.d"
  "/root/repo/src/uavdc/geom/obstacle_field.cpp" "src/CMakeFiles/uavdc.dir/uavdc/geom/obstacle_field.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/geom/obstacle_field.cpp.o.d"
  "/root/repo/src/uavdc/geom/spatial_hash.cpp" "src/CMakeFiles/uavdc.dir/uavdc/geom/spatial_hash.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/geom/spatial_hash.cpp.o.d"
  "/root/repo/src/uavdc/geom/vec2.cpp" "src/CMakeFiles/uavdc.dir/uavdc/geom/vec2.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/geom/vec2.cpp.o.d"
  "/root/repo/src/uavdc/graph/christofides.cpp" "src/CMakeFiles/uavdc.dir/uavdc/graph/christofides.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/graph/christofides.cpp.o.d"
  "/root/repo/src/uavdc/graph/dense_graph.cpp" "src/CMakeFiles/uavdc.dir/uavdc/graph/dense_graph.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/graph/dense_graph.cpp.o.d"
  "/root/repo/src/uavdc/graph/euler.cpp" "src/CMakeFiles/uavdc.dir/uavdc/graph/euler.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/graph/euler.cpp.o.d"
  "/root/repo/src/uavdc/graph/held_karp.cpp" "src/CMakeFiles/uavdc.dir/uavdc/graph/held_karp.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/graph/held_karp.cpp.o.d"
  "/root/repo/src/uavdc/graph/local_search.cpp" "src/CMakeFiles/uavdc.dir/uavdc/graph/local_search.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/graph/local_search.cpp.o.d"
  "/root/repo/src/uavdc/graph/matching.cpp" "src/CMakeFiles/uavdc.dir/uavdc/graph/matching.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/graph/matching.cpp.o.d"
  "/root/repo/src/uavdc/graph/mst.cpp" "src/CMakeFiles/uavdc.dir/uavdc/graph/mst.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/graph/mst.cpp.o.d"
  "/root/repo/src/uavdc/io/json.cpp" "src/CMakeFiles/uavdc.dir/uavdc/io/json.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/io/json.cpp.o.d"
  "/root/repo/src/uavdc/io/serialize.cpp" "src/CMakeFiles/uavdc.dir/uavdc/io/serialize.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/io/serialize.cpp.o.d"
  "/root/repo/src/uavdc/io/svg.cpp" "src/CMakeFiles/uavdc.dir/uavdc/io/svg.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/io/svg.cpp.o.d"
  "/root/repo/src/uavdc/io/trace_export.cpp" "src/CMakeFiles/uavdc.dir/uavdc/io/trace_export.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/io/trace_export.cpp.o.d"
  "/root/repo/src/uavdc/model/instance.cpp" "src/CMakeFiles/uavdc.dir/uavdc/model/instance.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/model/instance.cpp.o.d"
  "/root/repo/src/uavdc/model/plan.cpp" "src/CMakeFiles/uavdc.dir/uavdc/model/plan.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/model/plan.cpp.o.d"
  "/root/repo/src/uavdc/orienteering/exact.cpp" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/exact.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/exact.cpp.o.d"
  "/root/repo/src/uavdc/orienteering/grasp.cpp" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/grasp.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/grasp.cpp.o.d"
  "/root/repo/src/uavdc/orienteering/greedy.cpp" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/greedy.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/greedy.cpp.o.d"
  "/root/repo/src/uavdc/orienteering/ils.cpp" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/ils.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/ils.cpp.o.d"
  "/root/repo/src/uavdc/orienteering/problem.cpp" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/problem.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/problem.cpp.o.d"
  "/root/repo/src/uavdc/orienteering/solver.cpp" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/solver.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/orienteering/solver.cpp.o.d"
  "/root/repo/src/uavdc/sim/adaptive.cpp" "src/CMakeFiles/uavdc.dir/uavdc/sim/adaptive.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/sim/adaptive.cpp.o.d"
  "/root/repo/src/uavdc/sim/battery.cpp" "src/CMakeFiles/uavdc.dir/uavdc/sim/battery.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/sim/battery.cpp.o.d"
  "/root/repo/src/uavdc/sim/event.cpp" "src/CMakeFiles/uavdc.dir/uavdc/sim/event.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/sim/event.cpp.o.d"
  "/root/repo/src/uavdc/sim/event_queue.cpp" "src/CMakeFiles/uavdc.dir/uavdc/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/sim/event_queue.cpp.o.d"
  "/root/repo/src/uavdc/sim/monte_carlo.cpp" "src/CMakeFiles/uavdc.dir/uavdc/sim/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/sim/monte_carlo.cpp.o.d"
  "/root/repo/src/uavdc/sim/radio.cpp" "src/CMakeFiles/uavdc.dir/uavdc/sim/radio.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/sim/radio.cpp.o.d"
  "/root/repo/src/uavdc/sim/simulator.cpp" "src/CMakeFiles/uavdc.dir/uavdc/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/sim/simulator.cpp.o.d"
  "/root/repo/src/uavdc/util/csv.cpp" "src/CMakeFiles/uavdc.dir/uavdc/util/csv.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/util/csv.cpp.o.d"
  "/root/repo/src/uavdc/util/flags.cpp" "src/CMakeFiles/uavdc.dir/uavdc/util/flags.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/util/flags.cpp.o.d"
  "/root/repo/src/uavdc/util/rng.cpp" "src/CMakeFiles/uavdc.dir/uavdc/util/rng.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/util/rng.cpp.o.d"
  "/root/repo/src/uavdc/util/stats.cpp" "src/CMakeFiles/uavdc.dir/uavdc/util/stats.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/util/stats.cpp.o.d"
  "/root/repo/src/uavdc/util/table.cpp" "src/CMakeFiles/uavdc.dir/uavdc/util/table.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/util/table.cpp.o.d"
  "/root/repo/src/uavdc/util/thread_pool.cpp" "src/CMakeFiles/uavdc.dir/uavdc/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/util/thread_pool.cpp.o.d"
  "/root/repo/src/uavdc/workload/csv_import.cpp" "src/CMakeFiles/uavdc.dir/uavdc/workload/csv_import.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/workload/csv_import.cpp.o.d"
  "/root/repo/src/uavdc/workload/generator.cpp" "src/CMakeFiles/uavdc.dir/uavdc/workload/generator.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/workload/generator.cpp.o.d"
  "/root/repo/src/uavdc/workload/presets.cpp" "src/CMakeFiles/uavdc.dir/uavdc/workload/presets.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/workload/presets.cpp.o.d"
  "/root/repo/src/uavdc/workload/transforms.cpp" "src/CMakeFiles/uavdc.dir/uavdc/workload/transforms.cpp.o" "gcc" "src/CMakeFiles/uavdc.dir/uavdc/workload/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
