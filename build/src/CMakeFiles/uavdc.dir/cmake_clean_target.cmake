file(REMOVE_RECURSE
  "libuavdc.a"
)
