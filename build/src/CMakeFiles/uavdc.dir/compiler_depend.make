# Empty compiler generated dependencies file for uavdc.
# This may be replaced when dependencies are built.
