
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aabb.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_aabb.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_aabb.cpp.o.d"
  "/root/repo/tests/test_adaptive.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_adaptive.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_christofides.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_christofides.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_christofides.cpp.o.d"
  "/root/repo/tests/test_compare.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_compare.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_compare.cpp.o.d"
  "/root/repo/tests/test_coverage.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_coverage.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_coverage.cpp.o.d"
  "/root/repo/tests/test_csv_import.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_csv_import.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_csv_import.cpp.o.d"
  "/root/repo/tests/test_csv_table.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_csv_table.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_csv_table.cpp.o.d"
  "/root/repo/tests/test_deadline.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_deadline.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_deadline.cpp.o.d"
  "/root/repo/tests/test_dense_graph.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_dense_graph.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_dense_graph.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_early_departure.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_early_departure.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_early_departure.cpp.o.d"
  "/root/repo/tests/test_edges.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_edges.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_edges.cpp.o.d"
  "/root/repo/tests/test_energy_models.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_energy_models.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_energy_models.cpp.o.d"
  "/root/repo/tests/test_euler.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_euler.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_euler.cpp.o.d"
  "/root/repo/tests/test_evaluate.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_evaluate.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_evaluate.cpp.o.d"
  "/root/repo/tests/test_exact_dcm.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_exact_dcm.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_exact_dcm.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_flags.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_flags.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_flags.cpp.o.d"
  "/root/repo/tests/test_fleet.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_fleet.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_fleet.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_held_karp.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_held_karp.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_held_karp.cpp.o.d"
  "/root/repo/tests/test_hover_candidates.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_hover_candidates.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_hover_candidates.cpp.o.d"
  "/root/repo/tests/test_hull.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_hull.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_hull.cpp.o.d"
  "/root/repo/tests/test_ils.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_ils.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_ils.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_kmeans.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_kmeans.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_kmeans.cpp.o.d"
  "/root/repo/tests/test_local_search.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_local_search.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_local_search.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_mst.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_mst.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_mst.cpp.o.d"
  "/root/repo/tests/test_multi_tour.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_multi_tour.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_multi_tour.cpp.o.d"
  "/root/repo/tests/test_obstacles.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_obstacles.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_obstacles.cpp.o.d"
  "/root/repo/tests/test_orienteering.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_orienteering.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_orienteering.cpp.o.d"
  "/root/repo/tests/test_planners.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_planners.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_planners.cpp.o.d"
  "/root/repo/tests/test_registry.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_registry.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_registry.cpp.o.d"
  "/root/repo/tests/test_repair_plan.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_repair_plan.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_repair_plan.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_scale.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_scale.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_scale.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_sim_parts.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_sim_parts.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_sim_parts.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_spatial_hash.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_spatial_hash.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_spatial_hash.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_tour_builder.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_tour_builder.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_tour_builder.cpp.o.d"
  "/root/repo/tests/test_trace_export.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_trace_export.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_trace_export.cpp.o.d"
  "/root/repo/tests/test_transforms.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_transforms.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_transforms.cpp.o.d"
  "/root/repo/tests/test_validate_plan.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_validate_plan.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_validate_plan.cpp.o.d"
  "/root/repo/tests/test_vec2.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_vec2.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_vec2.cpp.o.d"
  "/root/repo/tests/test_wind.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_wind.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_wind.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_workload.cpp.o.d"
  "/root/repo/tests/test_workload_sweep.cpp" "tests/CMakeFiles/uavdc_tests.dir/test_workload_sweep.cpp.o" "gcc" "tests/CMakeFiles/uavdc_tests.dir/test_workload_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uavdc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
