# Empty compiler generated dependencies file for uavdc_tests.
# This may be replaced when dependencies are built.
