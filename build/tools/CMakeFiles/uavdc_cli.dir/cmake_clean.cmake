file(REMOVE_RECURSE
  "CMakeFiles/uavdc_cli.dir/uavdc_cli.cpp.o"
  "CMakeFiles/uavdc_cli.dir/uavdc_cli.cpp.o.d"
  "uavdc"
  "uavdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavdc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
