# Empty compiler generated dependencies file for uavdc_cli.
# This may be replaced when dependencies are built.
