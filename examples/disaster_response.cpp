// Disaster-response scenario: sensors ring an incident zone that ground
// vehicles cannot cross (the paper's motivation for UAV pickup). The
// operator wants the most telemetry per sortie; this example sweeps the
// sojourn partition K of Algorithm 3 and reports the marginal value of
// partial collection, then replays the best plan in the simulator with a
// battery-margin readout.
//
//   ./disaster_response [--devices=90] [--energy=2.5e4] [--seed=11]

#include <iostream>
#include <vector>

#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/table.hpp"
#include "uavdc/workload/presets.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const util::Flags flags(argc, argv);

    workload::GeneratorConfig gen = workload::disaster_response();
    gen.num_devices = flags.get_int("devices", 90);
    gen.region_w = gen.region_h = flags.get_double("side", 500.0);
    gen.uav.energy_j = flags.get_double("energy", 2.5e4);
    // Launch from the field corner — the staging area outside the zone.
    gen.depot = {0.0, 0.0};
    const auto inst = workload::generate(
        gen, static_cast<std::uint64_t>(flags.get_int64("seed", 11)));

    std::cout << "Incident ring: " << inst.num_devices() << " sensors, "
              << util::Table::fmt(inst.total_data_mb() / 1000.0, 2)
              << " GB of telemetry, one sortie at "
              << util::Table::fmt(inst.uav.energy_j, 0) << " J\n\n";

    util::Table table(
        {"K", "collected [GB]", "of total", "stops", "time [ms]"});
    int best_k = 1;
    double best_gb = -1.0;
    model::FlightPlan best_plan;
    for (int k : {1, 2, 4, 8}) {
        core::Algorithm3Config cfg;
        cfg.candidates.delta_m = 10.0;
        cfg.k = k;
        core::PartialCollectionPlanner planner(cfg);
        const auto res = planner.plan(inst);
        const auto ev = core::evaluate_plan(inst, res.plan);
        table.add_row(
            {std::to_string(k), util::Table::fmt(ev.collected_mb / 1000.0, 2),
             util::Table::fmt(100.0 * ev.collected_mb /
                                  inst.total_data_mb(),
                              1) +
                 "%",
             std::to_string(res.plan.num_stops()),
             util::Table::fmt(res.stats.runtime_s * 1e3, 1)});
        if (ev.collected_mb > best_gb) {
            best_gb = ev.collected_mb;
            best_k = k;
            best_plan = res.plan;
        }
    }
    std::cout << "Partial-collection sweep (Algorithm 3):\n";
    table.print(std::cout, 2);

    std::cout << "\nReplaying the best plan (K=" << best_k
              << ") in the discrete-event simulator:\n";
    const auto rep = sim::Simulator().run(inst, best_plan);
    std::cout << "  " << (rep.completed ? "sortie completed" : "TRUNCATED")
              << ": " << util::Table::fmt(rep.collected_mb / 1000.0, 2)
              << " GB in " << util::Table::fmt(rep.duration_s / 60.0, 1)
              << " min (" << util::Table::fmt(rep.hover_s, 0) << " s hover, "
              << util::Table::fmt(rep.travel_s, 0) << " s flight)\n";
    std::cout << "  battery margin: "
              << util::Table::fmt(inst.uav.energy_j - rep.energy_used_j, 0)
              << " J unused ("
              << util::Table::fmt(
                     100.0 * (1.0 - rep.energy_used_j / inst.uav.energy_j),
                     1)
              << "%)\n";
    std::cout << "  devices fully drained: " << rep.devices_drained << " / "
              << inst.num_devices() << "\n";

    // What did partial collection buy? Compare K=1 vs best K.
    if (best_k != 1) {
        std::cout << "\nPartial collection (K=" << best_k
                  << ") recovered the long-tail: hovering a fraction of the "
                     "full dwell\nat overlapping cells picks up residual "
                     "data that full-dwell planning cannot afford.\n";
    }
    return 0;
}
