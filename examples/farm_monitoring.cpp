// Precision-agriculture scenario: a jittered lattice of soil/crop sensors
// with near-identical data volumes. With homogeneous volumes the dwell per
// hovering location is nearly constant, so the planning problem is almost
// pure geometry — a good setting to examine the delta (grid resolution)
// trade-off from Fig. 4 and the radio-model ablation on a single instance.
//
//   ./farm_monitoring [--devices=100] [--energy=2e4] [--seed=5]

#include <iostream>

#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/table.hpp"
#include "uavdc/workload/presets.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const util::Flags flags(argc, argv);

    workload::GeneratorConfig gen = workload::farm_monitoring();
    gen.num_devices = flags.get_int("devices", 100);
    gen.region_w = gen.region_h = flags.get_double("side", 450.0);
    gen.uav.energy_j = flags.get_double("energy", 2.0e4);
    const auto inst = workload::generate(
        gen, static_cast<std::uint64_t>(flags.get_int64("seed", 5)));

    std::cout << "Farm lattice: " << inst.num_devices() << " sensors, "
              << util::Table::fmt(inst.total_data_mb() / 1000.0, 2)
              << " GB, battery " << util::Table::fmt(inst.uav.energy_j, 0)
              << " J\n\n";

    // Grid-resolution trade-off: finer grids find better hover points but
    // cost more planning time.
    std::cout << "Grid resolution sweep (Algorithm 2):\n";
    util::Table table({"delta [m]", "candidates", "collected [GB]",
                       "stops", "time [ms]"});
    model::FlightPlan finest_plan;
    for (double delta : {40.0, 20.0, 10.0, 5.0}) {
        core::Algorithm2Config cfg;
        cfg.candidates.delta_m = delta;
        core::GreedyCoveragePlanner planner(cfg);
        const auto res = planner.plan(inst);
        const auto ev = core::evaluate_plan(inst, res.plan);
        table.add_row({util::Table::fmt(delta, 0),
                       std::to_string(res.stats.candidates),
                       util::Table::fmt(ev.collected_mb / 1000.0, 2),
                       std::to_string(res.plan.num_stops()),
                       util::Table::fmt(res.stats.runtime_s * 1e3, 1)});
        if (delta == 5.0) finest_plan = res.plan;
    }
    table.print(std::cout, 2);

    // Radio-model ablation: how sensitive is the outcome to the paper's
    // equal-rate (OFDMA) assumption?
    std::cout << "\nRadio-model ablation on the delta=5 plan:\n";
    util::Table radio({"radio model", "simulated [GB]", "completed"});
    {
        sim::SimConfig scfg;
        scfg.record_trace = false;
        const auto rep = sim::Simulator(scfg).run(inst, finest_plan);
        radio.add_row({"constant (paper)",
                       util::Table::fmt(rep.collected_mb / 1000.0, 2),
                       rep.completed ? "yes" : "no"});
    }
    for (double taper : {0.25, 0.5, 0.75}) {
        const sim::DistanceTaperRadio model(taper);
        sim::SimConfig scfg;
        scfg.record_trace = false;
        scfg.radio = &model;
        const auto rep = sim::Simulator(scfg).run(inst, finest_plan);
        radio.add_row({"taper " + util::Table::fmt(taper, 2),
                       util::Table::fmt(rep.collected_mb / 1000.0, 2),
                       rep.completed ? "yes" : "no"});
    }
    radio.print(std::cout, 2);
    std::cout << "\nA plan built under the constant-rate assumption loses "
                 "volume when edge-of-cell\nrates taper — quantifying the "
                 "cost of the paper's simplification.\n";
    return 0;
}
