// Mission-robustness walkthrough: plans sized to the full battery are
// maximal on paper and fragile in the air. This example sweeps the
// planning margin (plan at E * (1 - margin)), scores each plan under a
// Monte-Carlo weather envelope (random wind + uplink taper), and prints
// the margin an operator should actually fly with — the knee where
// completion probability reaches 100%.
//
//   ./mission_robustness [--devices=60] [--energy=4e4] [--trials=48]

#include <iostream>

#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/sensitivity.hpp"
#include "uavdc/sim/monte_carlo.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/table.hpp"
#include "uavdc/workload/presets.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const util::Flags flags(argc, argv);

    workload::GeneratorConfig gen = workload::paper_scaled(0.35);
    gen.num_devices = flags.get_int("devices", 60);
    gen.uav.energy_j = flags.get_double("energy", 7.0e4);
    const auto inst = workload::generate(
        gen, static_cast<std::uint64_t>(flags.get_int64("seed", 6)));
    const int trials = flags.get_int("trials", 48);

    sim::DisturbanceModel weather;
    weather.wind_max_mps = 3.0;
    weather.taper_max = 0.4;

    std::cout << "Field: " << inst.num_devices() << " devices, "
              << util::Table::fmt(inst.total_data_mb() / 1000.0, 2)
              << " GB; battery " << util::Table::fmt(inst.uav.energy_j, 0)
              << " J; weather envelope: wind <= " << weather.wind_max_mps
              << " m/s, taper <= " << weather.taper_max << "\n\n";

    util::Table t({"margin", "paper volume [GB]", "completion",
                   "MC mean [GB]", "MC p10 [GB]"});
    double chosen_margin = -1.0;
    for (double margin : {0.0, 0.1, 0.2, 0.3, 0.4}) {
        auto shaded = inst;
        shaded.uav.energy_j *= (1.0 - margin);
        core::Algorithm2Config cfg;
        cfg.candidates.delta_m = 10.0;
        const auto plan = core::GreedyCoveragePlanner(cfg).plan(shaded).plan;
        const double paper_gb =
            core::evaluate_plan(inst, plan).collected_mb / 1000.0;
        const auto rep = sim::evaluate_robustness(inst, plan, weather,
                                                  trials);
        t.add_row({util::Table::fmt(100.0 * margin, 0) + "%",
                   util::Table::fmt(paper_gb, 2),
                   util::Table::fmt(100.0 * rep.completion_rate, 0) + "%",
                   util::Table::fmt(rep.mean_gb, 2),
                   util::Table::fmt(rep.p10_gb, 2)});
        if (chosen_margin < 0.0 && rep.completion_rate >= 0.999) {
            chosen_margin = margin;
        }
    }
    t.print(std::cout, 2);

    if (chosen_margin >= 0.0) {
        std::cout << "\nFly with a " << 100.0 * chosen_margin
                  << "% energy margin: first margin with 100% completion "
                     "under the envelope.\n";
    } else {
        std::cout << "\nNo tested margin completes reliably — widen the "
                     "sweep or shrink the weather envelope.\n";
    }

    // What single knob buys the most? (central-difference elasticities)
    std::cout << "\nParameter elasticities (alg2, +/-20%):\n";
    core::PlannerOptions opts;
    opts.delta_m = 10.0;
    util::Table s({"parameter", "elasticity"});
    for (const auto& e : core::analyze_sensitivity(inst, "alg2", opts)) {
        s.add_row({e.parameter, util::Table::fmt(e.elasticity, 3)});
    }
    s.print(std::cout, 2);
    return 0;
}
