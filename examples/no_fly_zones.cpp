// No-fly-zone scenario (extension): the monitoring region contains
// restricted airspace (an airfield and a crowd event). Tours are planned
// with the paper's zone-oblivious Algorithm 2, then routed around the
// zones with the visibility-graph router; the margin-aware loop shrinks the
// planning budget until the detoured tour fits the real battery.
//
//   ./no_fly_zones [--devices=80] [--energy=5e4] [--seed=2]

#include <iostream>

#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/route_around.hpp"
#include "uavdc/io/svg.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/table.hpp"
#include "uavdc/workload/presets.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const util::Flags flags(argc, argv);

    workload::GeneratorConfig gen = workload::paper_default();
    gen.num_devices = flags.get_int("devices", 80);
    gen.region_w = gen.region_h = flags.get_double("side", 450.0);
    gen.uav.energy_j = flags.get_double("energy", 5.0e4);
    const auto inst = workload::generate(
        gen, static_cast<std::uint64_t>(flags.get_int64("seed", 2)));

    // Two restricted zones: one squats on the depot's exit corridor, one
    // sits mid-field.
    const geom::ObstacleField field(
        {geom::Aabb{{25.0, 25.0}, {130.0, 140.0}},
         geom::Aabb{{200.0, 150.0}, {320.0, 260.0}}},
        /*clearance=*/10.0);

    std::cout << "Field: " << inst.num_devices() << " devices, "
              << util::Table::fmt(inst.total_data_mb() / 1000.0, 2)
              << " GB, battery " << util::Table::fmt(inst.uav.energy_j, 0)
              << " J, " << field.zones().size()
              << " no-fly zones (10 m clearance)\n\n";

    auto plan_at = [&](double budget) {
        auto tmp = inst;
        tmp.uav.energy_j = budget;
        core::Algorithm2Config cfg;
        cfg.candidates.delta_m = 10.0;
        // Zone-aware candidate generation: never hover inside a zone.
        cfg.candidates.position_ok = [&](const geom::Vec2& p) {
            return !field.blocked(p);
        };
        return core::GreedyCoveragePlanner(cfg).plan(tmp).plan;
    };

    // Naive: plan at the full budget, then discover the detours.
    const auto naive_plan = plan_at(inst.uav.energy_j);
    const auto naive = core::route_around(inst, naive_plan, field);
    std::cout << "Zone-oblivious plan, routed around zones:\n"
              << "  direct travel : "
              << util::Table::fmt(naive.direct_m, 0) << " m\n"
              << "  routed travel : " << util::Table::fmt(naive.travel_m, 0)
              << " m (detour factor "
              << util::Table::fmt(naive.detour_factor(), 3) << ")\n"
              << "  routed energy : " << util::Table::fmt(naive.energy_j, 0)
              << " / " << util::Table::fmt(inst.uav.energy_j, 0) << " J -> "
              << (naive.energy_feasible ? "feasible" : "OVER BUDGET")
              << (naive.reachable ? "" : " (stop inside a zone!)") << "\n\n";

    // Margin-aware: iterate the planning budget down until the routed tour
    // fits.
    const auto safe = core::plan_with_zones(inst, field, plan_at);
    const auto ev = core::evaluate_plan(inst, safe.plan);
    std::cout << "Margin-aware plan (budget iterated down):\n"
              << "  collected     : "
              << util::Table::fmt(ev.collected_mb / 1000.0, 2) << " GB\n"
              << "  routed energy : " << util::Table::fmt(safe.energy_j, 0)
              << " / " << util::Table::fmt(inst.uav.energy_j, 0) << " J -> "
              << (safe.energy_feasible ? "feasible" : "still infeasible")
              << "\n"
              << "  stops         : " << safe.plan.num_stops() << "\n";

    if (flags.has("svg")) {
        const std::string path = flags.get_string("svg", "no_fly.svg");
        io::save_svg(path, inst, &safe.plan);
        std::cout << "\nwrote " << path << "\n";
    }
    return 0;
}
