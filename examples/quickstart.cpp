// Quickstart: generate a sensor field, plan a data-collection tour with
// Algorithm 3 (partial collection, K = 2), cross-check the plan in the
// discrete-event simulator, and print the tour.
//
//   ./quickstart [--devices=80] [--side=400] [--energy=4e4] [--seed=7]

#include <cstdio>
#include <iostream>

#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/table.hpp"
#include "uavdc/workload/presets.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const util::Flags flags(argc, argv);

    // 1. Build a workload: uniform field with the paper's UAV constants.
    workload::GeneratorConfig gen = workload::paper_default();
    gen.num_devices = flags.get_int("devices", 80);
    gen.region_w = gen.region_h = flags.get_double("side", 400.0);
    gen.uav.energy_j = flags.get_double("energy", 4.0e4);
    const auto inst = workload::generate(
        gen, static_cast<std::uint64_t>(flags.get_int64("seed", 7)));

    std::cout << "Instance: " << inst.name << " — " << inst.num_devices()
              << " aggregate sensor nodes, "
              << util::Table::fmt(inst.total_data_mb() / 1000.0, 2)
              << " GB stored, battery "
              << util::Table::fmt(inst.uav.energy_j, 0) << " J\n\n";

    // 2. Plan a closed tour.
    core::Algorithm3Config cfg;
    cfg.candidates.delta_m = 10.0;
    cfg.k = 2;
    core::PartialCollectionPlanner planner(cfg);
    const auto res = planner.plan(inst);

    // 3. Closed-form evaluation + discrete-event simulation cross-check.
    const auto ev = core::evaluate_plan(inst, res.plan);
    const auto rep = sim::Simulator().run(inst, res.plan);

    std::cout << "Planner " << planner.name() << " visited "
              << res.plan.num_stops() << " hovering locations in "
              << util::Table::fmt(res.stats.runtime_s * 1e3, 1) << " ms\n";
    std::cout << "  planned volume   : "
              << util::Table::fmt(res.stats.planned_mb / 1000.0, 2)
              << " GB\n";
    std::cout << "  evaluated volume : "
              << util::Table::fmt(ev.collected_mb / 1000.0, 2) << " GB ("
              << ev.devices_drained << " devices fully drained)\n";
    std::cout << "  simulated volume : "
              << util::Table::fmt(rep.collected_mb / 1000.0, 2) << " GB, "
              << (rep.completed ? "tour completed" : "tour truncated")
              << ", energy "
              << util::Table::fmt(rep.energy_used_j, 0) << " / "
              << util::Table::fmt(inst.uav.energy_j, 0) << " J\n\n";

    // 4. Print the tour itself.
    util::Table tour({"#", "x [m]", "y [m]", "dwell [s]"});
    int i = 0;
    for (const auto& stop : res.plan.stops) {
        tour.add_row_of(i++, stop.pos.x, stop.pos.y, stop.dwell_s);
    }
    std::cout << "Tour (depot " << inst.depot << " -> ... -> depot):\n";
    tour.print(std::cout, 2);

    // 5. A peek at the simulator's event trace.
    std::cout << "\nFirst simulator events:\n";
    for (std::size_t e = 0; e < rep.trace.size() && e < 8; ++e) {
        std::cout << "  " << rep.trace[e].to_string() << "\n";
    }
    return 0;
}
