// Smart-city scenario (the paper's motivating IoT application): CCTV
// aggregation points and telemetry nodes cluster into districts, with a
// few data-heavy hoarders per district. Compares all four planners on the
// same clustered instance and shows why overlap-aware hovering wins: one
// well-placed hovering location drains a whole cluster concurrently.
//
//   ./smart_city [--devices=120] [--energy=3e4] [--seed=3]

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "uavdc/core/algorithm1.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/benchmark_planner.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/table.hpp"
#include "uavdc/workload/presets.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const util::Flags flags(argc, argv);

    workload::GeneratorConfig gen = workload::smart_city();
    gen.num_devices = flags.get_int("devices", 120);
    gen.region_w = gen.region_h = flags.get_double("side", 500.0);
    gen.uav.energy_j = flags.get_double("energy", 3.0e4);
    const auto inst = workload::generate(
        gen, static_cast<std::uint64_t>(flags.get_int64("seed", 3)));

    std::cout << "Smart-city field: " << inst.num_devices()
              << " devices in " << gen.clusters << " districts, "
              << util::Table::fmt(inst.total_data_mb() / 1000.0, 2)
              << " GB stored, battery "
              << util::Table::fmt(inst.uav.energy_j, 0) << " J\n\n";

    // Precompute the grid candidates once; the same context feeds every
    // planner below, so the Sec. III-B build is paid a single time.
    core::HoverCandidateConfig ccfg;
    ccfg.delta_m = 10.0;
    const auto ctx = core::PlanningContext::build(inst, ccfg);

    // How much concurrency is available? Count devices per best candidate.
    const auto& cands = ctx->candidates();
    std::size_t best_cluster = 0;
    for (const auto& c : cands.candidates) {
        best_cluster = std::max(best_cluster, c.covered.size());
    }
    std::cout << "Best single hovering location covers " << best_cluster
              << " devices at once (OFDMA concurrent upload).\n\n";

    struct Entry {
        std::string name;
        double gb;
        double stops;
        double runtime_ms;
    };
    std::vector<Entry> rows;
    auto run = [&](std::unique_ptr<core::Planner> planner) {
        const auto res = planner->plan(*ctx);
        const auto ev = core::evaluate_plan(inst, res.plan);
        rows.push_back({planner->name(), ev.collected_mb / 1000.0,
                        static_cast<double>(res.plan.num_stops()),
                        res.stats.runtime_s * 1e3});
    };

    // Candidate settings live in the shared context now; only the
    // planner-specific knobs remain per config.
    run(std::make_unique<core::GridOrienteeringPlanner>(
        core::Algorithm1Config{}));
    run(std::make_unique<core::GreedyCoveragePlanner>(
        core::Algorithm2Config{}));
    core::Algorithm3Config a3;
    a3.k = 4;
    run(std::make_unique<core::PartialCollectionPlanner>(a3));
    run(std::make_unique<core::PruneTspPlanner>());

    util::Table table({"planner", "collected [GB]", "stops", "time [ms]"});
    for (const auto& r : rows) {
        table.add_row({r.name, util::Table::fmt(r.gb, 2),
                       util::Table::fmt(r.stops, 0),
                       util::Table::fmt(r.runtime_ms, 1)});
    }
    table.print(std::cout, 2);

    const double bench_gb = rows.back().gb;
    for (const auto& r : rows) {
        if (r.name == rows.back().name || bench_gb <= 0.0) continue;
        std::cout << "  " << r.name << " collects "
                  << util::Table::fmt(100.0 * (r.gb / bench_gb - 1.0), 1)
                  << "% more than the per-node benchmark tour\n";
    }
    return 0;
}
