// Survey-data ingestion walkthrough: a field team delivers device
// positions and backlog sizes as CSV; we load it, plan with every
// registered planner, validate the winning plan like a pre-flight check,
// and (on tiny imports) compare against the exact DCM solver to report an
// optimality gap.
//
//   ./survey_import [--csv=FILE] [--energy=3e4]
//
// Without --csv a small synthetic survey file is written to a temp path
// first, so the example is self-contained.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/exact_dcm.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/core/validate_plan.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/table.hpp"
#include "uavdc/workload/csv_import.hpp"
#include "uavdc/workload/presets.hpp"

int main(int argc, char** argv) {
    using namespace uavdc;
    const util::Flags flags(argc, argv);

    std::string csv = flags.get_string("csv", "");
    if (csv.empty()) {
        csv = "/tmp/uavdc_survey_demo.csv";
        std::ofstream out(csv);
        out << "x,y,data_mb\n"
               "# creek gauges\n"
               "40,35,420\n55,42,380\n48,60,510\n"
               "# orchard cluster\n"
               "160,150,240\n175,163,310\n158,175,275\n170,148,190\n"
               "# far ridge\n"
               "260,80,640\n255,95,580\n";
        std::cout << "(wrote demo survey to " << csv << ")\n\n";
    }

    auto uav = workload::paper_uav();
    uav.energy_j = flags.get_double("energy", 3.0e4);
    const auto inst = workload::load_devices_csv(csv, uav);
    std::cout << "Loaded " << inst.num_devices() << " devices, "
              << util::Table::fmt(inst.total_data_mb() / 1000.0, 2)
              << " GB backlog; region "
              << util::Table::fmt(inst.region.width(), 0) << " x "
              << util::Table::fmt(inst.region.height(), 0)
              << " m, battery " << util::Table::fmt(uav.energy_j, 0)
              << " J\n\n";

    core::PlannerOptions opts;
    opts.delta_m = 15.0;
    util::Table table({"planner", "collected [GB]", "stops", "valid"});
    std::string best_name;
    double best_mb = -1.0;
    model::FlightPlan best_plan;
    for (const auto& name : core::planner_names()) {
        auto planner = core::make_planner(name, opts);
        const auto res = planner->plan(inst);
        const auto ev = core::evaluate_plan(inst, res.plan);
        const auto val = core::validate_plan(inst, res.plan);
        table.add_row({planner->name(),
                       util::Table::fmt(ev.collected_mb / 1000.0, 2),
                       std::to_string(res.plan.num_stops()),
                       val.ok() ? "ok" : "INVALID"});
        if (ev.collected_mb > best_mb && val.ok()) {
            best_mb = ev.collected_mb;
            best_name = planner->name();
            best_plan = res.plan;
        }
    }
    table.print(std::cout, 2);

    // Optimality gap on small imports (the exact solver enumerates
    // candidate subsets; guard keeps it tractable).
    if (inst.num_devices() <= 15) {
        core::ExactDcmConfig xcfg;
        xcfg.candidates.delta_m = 40.0;
        try {
            const auto exact = core::solve_exact_dcm(inst, xcfg);
            std::cout << "\nExact DCM (coarse grid): "
                      << util::Table::fmt(exact.collected_mb / 1000.0, 2)
                      << " GB -> best heuristic (" << best_name
                      << ") achieves "
                      << util::Table::fmt(
                             100.0 * best_mb /
                                 std::max(exact.collected_mb, 1e-9),
                             1)
                      << "% of the coarse-grid optimum\n";
        } catch (const std::invalid_argument&) {
            std::cout << "\n(candidate set too large for the exact "
                         "solver at this delta)\n";
        }
    }

    std::cout << "\nPre-flight check of the " << best_name << " plan: ";
    const auto val = core::validate_plan(inst, best_plan);
    std::cout << (val.ok() ? "PASS" : "FAIL") << " ("
              << val.warnings.size() << " warnings)\n";
    return 0;
}
