#!/usr/bin/env python3
"""Compare a fresh benchmark-baseline JSON against the checked-in baseline.

Two schemas are understood, both with a top-level ``cases`` list:

- ``uavdc-bench-planners-v1`` (``micro_planners --baseline_out=...``),
  compared on each case's ``incremental_s``;
- ``uavdc-bench-service-v1`` (``micro_service --baseline_out=...``),
  compared on each case's ``runtime_s``;
- ``uavdc-bench-kernels-v1`` (``micro_kernels --baseline_out=...``),
  compared on each case's ``batched_s``;
- ``uavdc-bench-reduction-v1`` (``micro_reduction --baseline_out=...``),
  compared on each case's ``plan_s``;
- ``uavdc-bench-transport-v1`` (``micro_transport --baseline_out=...``),
  compared on each case's ``runtime_s``.

When every case in *both* files also carries the matching ``*_med_s``
median-of-reps field, the comparison runs on the median instead — it
tolerates a single interrupted rep without reading as a regression, where
min/best-of stays noise-prone at 1-3 reps. Older baselines without the
median fields fall back to the legacy metric above.

Baseline and current file must carry the same schema. The check fails when
any case's runtime regresses by more than --max-ratio (default 2x) relative
to the checked-in run, or when a case disappeared.

Absolute runtimes differ between the checked-in full-mode baseline and the
CI quick-mode smoke, so the comparison is *shape-based*: each case's
runtime is first normalised by the total runtime of its own file, and the
per-case share is what must not blow up. A >2x jump in a case's share means
that case slowed down disproportionately — the signature of a regression —
while uniformly slower CI hardware cancels out.

Exit codes: 0 ok, 1 regression (or malformed input).
"""

import argparse
import json
import sys

# schema -> (runtime field compared, optional extra column shown)
SCHEMAS = {
    "uavdc-bench-planners-v1": ("incremental_s", "speedup"),
    "uavdc-bench-service-v1": ("runtime_s", "rps"),
    "uavdc-bench-kernels-v1": ("batched_s", "speedup"),
    "uavdc-bench-reduction-v1": ("plan_s", "speedup"),
    "uavdc-bench-transport-v1": ("runtime_s", "rps"),
}

# legacy (min/best-of) metric -> median-of-reps companion field
MEDIAN_FIELDS = {
    "incremental_s": "incremental_med_s",
    "runtime_s": "runtime_med_s",
    "batched_s": "batched_med_s",
    "plan_s": "plan_med_s",
}

# schema -> regenerating tool
TOOLS = {
    "uavdc-bench-planners-v1": "micro_planners",
    "uavdc-bench-service-v1": "micro_service",
    "uavdc-bench-kernels-v1": "micro_kernels",
    "uavdc-bench-reduction-v1": "micro_reduction",
    "uavdc-bench-transport-v1": "micro_transport",
}


def load_doc(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        sys.exit(f"{path}: unexpected schema {schema!r} "
                 f"(known: {', '.join(sorted(SCHEMAS))})")
    cases = {c["name"]: c for c in doc.get("cases", [])}
    if not cases:
        sys.exit(f"{path}: no cases")
    return schema, cases


def shares(cases, metric):
    total = sum(c[metric] for c in cases.values())
    if total <= 0.0:
        sys.exit(f"total {metric} is not positive")
    return {name: c[metric] / total for name, c in cases.items()}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_*.json")
    ap.add_argument("--current", required=True,
                    help="freshly generated baseline JSON")
    ap.add_argument("--max-ratio", type=float, default=2.0,
                    help="max allowed per-case runtime-share ratio "
                         "current/baseline (default 2.0)")
    args = ap.parse_args()

    base_schema, base = load_doc(args.baseline)
    cur_schema, cur = load_doc(args.current)
    if base_schema != cur_schema:
        sys.exit(f"schema mismatch: baseline is {base_schema}, "
                 f"current is {cur_schema}")
    metric, extra = SCHEMAS[base_schema]
    med = MEDIAN_FIELDS[metric]
    if all(med in c for c in base.values()) and \
            all(med in c for c in cur.values()):
        metric = med

    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"FAIL: cases missing from current run: {', '.join(missing)}")
        return 1

    base_share = shares(base, metric)
    cur_share = shares(cur, metric)

    failed = False
    print(f"comparing per-case {metric} shares ({base_schema})")
    print(f"{'case':24s} {'base share':>11s} {'cur share':>11s} "
          f"{'ratio':>7s} {extra:>10s}")
    for name in sorted(base):
        ratio = cur_share[name] / base_share[name]
        flag = ""
        if ratio > args.max_ratio:
            failed = True
            flag = f"  <-- REGRESSION (> {args.max_ratio:.1f}x)"
        print(f"{name:24s} {base_share[name]:11.4f} {cur_share[name]:11.4f} "
              f"{ratio:7.2f} {cur[name][extra]:10.1f}{flag}")

    for name in sorted(set(cur) - set(base)):
        print(f"{name:24s} (new case, not in baseline)")

    if failed:
        tool = TOOLS[base_schema]
        print(f"\nFAIL: {metric} regressed; if intentional, regenerate the "
              f"checked-in baseline with `{tool} --baseline_out=<path>`.")
        return 1
    print("\nOK: no perf regression beyond "
          f"{args.max_ratio:.1f}x per-case runtime share.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
