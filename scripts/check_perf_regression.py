#!/usr/bin/env python3
"""Compare a fresh planner-baseline JSON against the checked-in baseline.

Both files use the uavdc-bench-planners-v1 schema written by
`micro_planners --baseline_out=<path> [--quick]`. The check fails when any
case's incremental-engine runtime regresses by more than --max-ratio
(default 2x) relative to the checked-in run, or when a case disappeared.

Absolute runtimes differ between the checked-in full-mode baseline and the
CI quick-mode smoke, so the comparison is *shape-based*: each case's
incremental runtime is first normalised by the total incremental runtime of
its own file, and the per-case share is what must not blow up. A >2x jump
in a case's share means that case slowed down disproportionately — the
signature of an engine regression — while uniformly slower CI hardware
cancels out.

Exit codes: 0 ok, 1 regression (or malformed input).
"""

import argparse
import json
import sys


def load_cases(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "uavdc-bench-planners-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    cases = {c["name"]: c for c in doc.get("cases", [])}
    if not cases:
        sys.exit(f"{path}: no cases")
    return cases


def shares(cases):
    total = sum(c["incremental_s"] for c in cases.values())
    if total <= 0.0:
        sys.exit("total incremental runtime is not positive")
    return {name: c["incremental_s"] / total for name, c in cases.items()}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_planners.json")
    ap.add_argument("--current", required=True,
                    help="freshly generated baseline JSON")
    ap.add_argument("--max-ratio", type=float, default=2.0,
                    help="max allowed per-case runtime-share ratio "
                         "current/baseline (default 2.0)")
    args = ap.parse_args()

    base = load_cases(args.baseline)
    cur = load_cases(args.current)

    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"FAIL: cases missing from current run: {', '.join(missing)}")
        return 1

    base_share = shares(base)
    cur_share = shares(cur)

    failed = False
    print(f"{'case':24s} {'base share':>11s} {'cur share':>11s} "
          f"{'ratio':>7s} {'speedup':>8s}")
    for name in sorted(base):
        ratio = cur_share[name] / base_share[name]
        speedup = cur[name]["speedup"]
        flag = ""
        if ratio > args.max_ratio:
            failed = True
            flag = f"  <-- REGRESSION (> {args.max_ratio:.1f}x)"
        print(f"{name:24s} {base_share[name]:11.4f} {cur_share[name]:11.4f} "
              f"{ratio:7.2f} {speedup:7.1f}x{flag}")

    for name in sorted(set(cur) - set(base)):
        print(f"{name:24s} (new case, not in baseline)")

    if failed:
        print("\nFAIL: incremental-engine runtime regressed; if intentional, "
              "regenerate bench/BENCH_planners.json with "
              "`micro_planners --baseline_out=bench/BENCH_planners.json`.")
        return 1
    print("\nOK: no perf regression beyond "
          f"{args.max_ratio:.1f}x per-case runtime share.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
