#!/usr/bin/env bash
# Vectorization smoke for the batched geometry kernels.
#
#   scripts/check_vectorization.sh [clang++]
#
# Compiles src/uavdc/core/batch_kernels.cpp with clang's optimization-record
# output and asserts that the loop-vectorizer reports success for each hot
# kernel. The kernels are written as portable 8-wide-friendly loops (no
# intrinsics, no pragmas); this gate is what keeps a future refactor from
# silently de-vectorizing them — gcc offers no equivalent per-function
# remark stream, so the check runs under clang (CI: static-analysis job).
#
# The flags mirror the Release build contract: -O3 plus -ffp-contract=off,
# the same contraction setting src/CMakeLists.txt pins for this TU so that
# the vectorized lanes stay bit-identical to geom::distance.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

clangxx="${1:-${CLANG_CXX:-clang++}}"
if ! command -v "$clangxx" >/dev/null 2>&1; then
    echo "check_vectorization.sh: $clangxx not found; skipping (install" \
         "clang or pass the compiler path to enable this gate)" >&2
    exit 0
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

record="$workdir/batch_kernels.opt.yaml"
"$clangxx" -std=c++20 -O3 -ffp-contract=off -DNDEBUG -Isrc \
    -c src/uavdc/core/batch_kernels.cpp -o "$workdir/batch_kernels.o" \
    -foptimization-record-file="$record"

if [ ! -s "$record" ]; then
    echo "FAIL: no optimization record emitted at $record" >&2
    exit 1
fi

# Each required kernel must have at least one !Passed loop-vectorize record
# attached to a function whose mangled name contains the kernel name. The
# name must sit right after its Itanium length prefix ("[0-9]<name>") so
# that distances_to_point cannot be satisfied by the longer
# squared_distances_to_point symbol. The portable bodies are always_inline,
# so remarks land on the exported baseline symbols and/or the
# target("avx2") clones — either counts.
kernels=(
    squared_distances_to_point
    distances_to_point
    insertion_edge_deltas
    squared_insertion_lower_bounds
    fill_distance_tile
    fill_squared_distance_tile
)

status=0
for kernel in "${kernels[@]}"; do
    if awk -v fn="$kernel" '
        function flush() { if (rec && pass && fnmatch) found = 1 }
        /^--- /       { flush();
                        rec = ($0 ~ /^--- !Passed/); pass = 0; fnmatch = 0;
                        next }
        rec && $1 == "Pass:" && $0 ~ /loop-vectorize/     { pass = 1 }
        rec && $1 == "Function:" && $0 ~ ("[0-9]" fn)     { fnmatch = 1 }
        END { flush(); exit found ? 0 : 1 }
    ' "$record"; then
        echo "OK:   $kernel vectorized"
    else
        echo "FAIL: no loop-vectorize success record for $kernel" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo >&2
    echo "The batched kernels lost auto-vectorization. Inspect with:" >&2
    echo "  $clangxx -std=c++20 -O3 -ffp-contract=off -DNDEBUG -Isrc \\" >&2
    echo "      -c src/uavdc/core/batch_kernels.cpp -o /dev/null \\" >&2
    echo "      -Rpass=loop-vectorize -Rpass-missed=loop-vectorize" >&2
fi
exit "$status"
