#!/usr/bin/env python3
"""Compare two response streams (TCP capture vs the JSONL reference path).

Both inputs hold one JSON response per line. Responses are matched by
``id`` and compared after canonicalization:

- control replies (any doc carrying ``op``) are skipped — the TCP capture
  filters them out already, the JSONL output does not;
- ``queue_ms``/``exec_ms`` and ``result.stats.runtime_s`` are dropped
  (wall-clock timings measured per run, not payload);
- remaining fields are re-dumped with sorted keys, so byte-level number
  formatting differences introduced by *this script's* round-trip cannot
  mask or fake a payload difference (both inputs come from the same C++
  serializer, so equal payloads stay equal).

Everything else — ``status``, ``cache_hit``, ``partial``, ``error`` and
the full ``result`` tree (plan, stats, fingerprints) — must match
exactly. The left file drives the id set: every left id must exist on the
right with an identical payload; right-only ids (e.g. the JSONL run's
priming responses when the capture holds only load-phase responses) are
reported but not fatal unless --strict-ids.

Exit codes: 0 identical, 1 any mismatch (or unreadable input).
"""

import argparse
import json
import sys

DROP = ("queue_ms", "exec_ms")


def load(path):
    out = {}
    with open(path, encoding="utf-8") as fh:
        for n, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as ex:
                sys.exit(f"{path}:{n}: not JSON: {ex}")
            if not isinstance(doc, dict) or "op" in doc:
                continue  # control reply (stats/drain), not a response
            rid = doc.get("id")
            if rid is None:
                sys.exit(f"{path}:{n}: response without id")
            if rid in out:
                sys.exit(f"{path}:{n}: duplicate response for id {rid!r}")
            for k in DROP:
                doc.pop(k, None)
            stats = doc.get("result", {})
            if isinstance(stats, dict):
                stats = stats.get("stats")
                if isinstance(stats, dict):
                    stats.pop("runtime_s", None)
            out[rid] = json.dumps(doc, sort_keys=True,
                                  separators=(",", ":"))
    if not out:
        sys.exit(f"{path}: no responses")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("left", help="TCP capture (loadgen --capture-out)")
    ap.add_argument("right", help="JSONL reference (uavdc serve output)")
    ap.add_argument("--strict-ids", action="store_true",
                    help="also fail on ids present only on the right")
    args = ap.parse_args()

    left = load(args.left)
    right = load(args.right)

    failed = False
    missing = sorted(set(left) - set(right))
    if missing:
        failed = True
        print(f"FAIL: {len(missing)} ids missing from {args.right}: "
              f"{', '.join(missing[:10])}"
              f"{' ...' if len(missing) > 10 else ''}")

    mismatched = 0
    for rid in sorted(set(left) & set(right)):
        if left[rid] != right[rid]:
            mismatched += 1
            if mismatched <= 5:
                print(f"MISMATCH id={rid!r}")
                print(f"  tcp:   {left[rid][:200]}")
                print(f"  jsonl: {right[rid][:200]}")
    if mismatched:
        failed = True
        print(f"FAIL: {mismatched} of {len(left)} payloads differ")

    extra = sorted(set(right) - set(left))
    if extra:
        note = "FAIL" if args.strict_ids else "note"
        print(f"{note}: {len(extra)} ids only in {args.right} "
              f"(e.g. {extra[:5]})")
        if args.strict_ids:
            failed = True

    if failed:
        return 1
    print(f"OK: {len(left)} responses byte-identical across transports "
          f"(modulo {'/'.join(DROP)}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
