#!/usr/bin/env bash
# Format gate for uavdc.
#
#   scripts/format.sh check   # verify rolled-out files match .clang-format
#   scripts/format.sh fix     # rewrite them in place
#
# Formatting is rolled out file-by-file rather than repo-wide: reformatting
# the whole history in one commit would bury real changes in noise and break
# every outstanding diff. New files are added to ROLLOUT below as they are
# written (or touched substantially); CI runs `check` over that list only.
set -euo pipefail

mode="${1:-check}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

# Files already conforming to .clang-format. Extend this list as files are
# migrated; keep it sorted.
ROLLOUT=(
    src/uavdc/lint/linter.cpp
    src/uavdc/lint/linter.hpp
    src/uavdc/util/check.cpp
    src/uavdc/util/check.hpp
    tools/uavdc_lint.cpp
)

clang_format="${CLANG_FORMAT:-clang-format}"
if ! command -v "$clang_format" >/dev/null 2>&1; then
    echo "format.sh: $clang_format not found; skipping (install clang-format" \
         "or set CLANG_FORMAT to enable this gate)" >&2
    exit 0
fi

case "$mode" in
check)
    status=0
    for f in "${ROLLOUT[@]}"; do
        if ! "$clang_format" --dry-run --Werror --style=file "$f"; then
            status=1
        fi
    done
    if [[ $status -ne 0 ]]; then
        echo "format.sh: run 'scripts/format.sh fix' to repair" >&2
    fi
    exit $status
    ;;
fix)
    "$clang_format" -i --style=file "${ROLLOUT[@]}"
    ;;
*)
    echo "usage: scripts/format.sh [check|fix]" >&2
    exit 2
    ;;
esac
