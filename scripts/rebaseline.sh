#!/usr/bin/env bash
# Regenerate every checked-in benchmark baseline (bench/BENCH_*.json) in one
# command.
#
#   scripts/rebaseline.sh [build-dir]
#
# Runs the four tracked --baseline_out binaries (micro_planners,
# micro_service, micro_kernels, micro_reduction) twice each: once in quick
# mode to refresh the CI smoke baselines (BENCH_*_quick.json, gated by
# scripts/check_perf_regression.py) and once at full scale to refresh the
# tracked full-mode numbers (BENCH_*.json). Run this on a quiet machine
# after an intentional perf change, eyeball the diff, and commit the JSON
# alongside the change — the gate compares per-case runtime *shares*, so
# absolute machine speed does not need to match CI's.
#
# The build dir must be an existing Release configuration (the default
# `cmake -S . -B build -DCMAKE_BUILD_TYPE=Release && cmake --build build`).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

build_dir="${1:-build}"
if [ ! -d "$build_dir/bench" ]; then
    echo "rebaseline.sh: $build_dir/bench not found — build the Release" \
         "tree first (cmake --build $build_dir)" >&2
    exit 1
fi

tools=(micro_planners micro_service micro_kernels micro_reduction)
names=(planners service kernels reduction)

for i in "${!tools[@]}"; do
    tool="$build_dir/bench/${tools[$i]}"
    name="${names[$i]}"
    if [ ! -x "$tool" ]; then
        echo "rebaseline.sh: $tool not built" >&2
        exit 1
    fi
    echo "== ${tools[$i]} (quick) =="
    "$tool" --baseline_out="bench/BENCH_${name}_quick.json" --quick
    echo "== ${tools[$i]} (full) =="
    "$tool" --baseline_out="bench/BENCH_${name}.json"
done

echo "rebaselined: bench/BENCH_{planners,service,kernels,reduction}{_quick,}.json"
