#!/usr/bin/env sh
# Full reproduction pipeline for the uavdc repository:
#   1. configure + build (Release)
#   2. run the complete test suite
#   3. run every figure/ablation bench (add --full for paper scale)
#   4. leave CSVs in bench_results[_full]/ and logs at the repo root
set -eu
cd "$(dirname "$0")/.."

FULL=0
for arg in "$@"; do
  [ "$arg" = "--full" ] && FULL=1
done

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

OUT=bench_results
if [ "$FULL" = "1" ]; then
  OUT=bench_results_full
  export UAVDC_FULL=1
fi

: > bench_output.txt
for b in build/bench/fig* build/bench/abl_*; do
  [ -x "$b" ] || continue
  echo "=== $b ===" | tee -a bench_output.txt
  "$b" --out="$OUT" 2>&1 | tee -a bench_output.txt
done
for b in build/bench/micro_*; do
  [ -x "$b" ] || continue
  echo "=== $b ===" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "done: tests in test_output.txt, benches in bench_output.txt, CSVs in $OUT/"
