#!/usr/bin/env bash
# Crash drill: kill -9 a shard mid-load and prove no acknowledged work is
# lost. A router with 2 managed shards serves a pipelined loadgen run; one
# shard is SIGKILLed while requests are in flight. The router must resend
# that shard's pending requests after respawning it, the client must still
# receive every response with zero errors, and the router's final summary
# must show the retries and the respawn.
#
# Usage: scripts/shard_kill_drill.sh [BUILD_DIR] [REQUESTS]
set -euo pipefail

BUILD=${1:-build}
REQUESTS=${2:-20000}
UAVDC=$BUILD/tools/uavdc
[ -x "$UAVDC" ] || { echo "shard_kill_drill: $UAVDC not built" >&2; exit 1; }

TMP=$(mktemp -d)
ROUTER_PID=""
cleanup() {
    [ -n "$ROUTER_PID" ] && kill -9 "$ROUTER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

# The per-shard repository is what makes SIGKILL lossless: the respawned
# shard reloads its registered instances and cached plans from the
# append-only log before taking resent traffic.
mkdir -p "$TMP/repos"
"$UAVDC" route --shards=2 --port=0 --announce --repo-dir="$TMP/repos" \
    > "$TMP/route.out" 2> "$TMP/route.err" &
ROUTER_PID=$!

PORT=""
for _ in $(seq 1 100); do
    PORT=$(awk '/^LISTENING /{print $2; exit}' "$TMP/route.out" || true)
    [ -n "$PORT" ] && break
    sleep 0.1
done
[ -n "$PORT" ] || { echo "shard_kill_drill: no LISTENING line" >&2; exit 1; }

# Shards are direct children of the router process.
SHARDS=$(pgrep -P "$ROUTER_PID" || true)
[ -n "$SHARDS" ] || { echo "shard_kill_drill: no shard children" >&2; exit 1; }
VICTIM=$(echo "$SHARDS" | head -1)
echo "router $ROUTER_PID on port $PORT, shards: $(echo $SHARDS | tr '\n' ' ')"

"$UAVDC" loadgen --connect=127.0.0.1:"$PORT" --requests="$REQUESTS" \
    --connections=8 --pipeline=32 > "$TMP/loadgen.json" &
LOADGEN_PID=$!

# Let the pipeline fill, then SIGKILL one shard mid-flight.
sleep 0.1
kill -9 "$VICTIM"
echo "killed shard $VICTIM mid-load"

RC=0
wait "$LOADGEN_PID" || RC=$?
if [ "$RC" -ne 0 ]; then
    echo "shard_kill_drill: loadgen exited $RC" >&2
    cat "$TMP/loadgen.json" >&2
    exit 1
fi
python3 - "$TMP/loadgen.json" "$REQUESTS" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
want = int(sys.argv[2])
assert doc["received"] == want, f"lost responses: {doc['received']}/{want}"
assert doc["errors"] == 0, f"{doc['errors']} error responses"
print(f"loadgen survived the kill: {doc['received']}/{want} responses, "
      f"0 errors, {doc['rps']:.0f} req/s")
EOF

kill -TERM "$ROUTER_PID"
RC=0
wait "$ROUTER_PID" || RC=$?
ROUTER_PID=""
SUMMARY=$(grep "route: drained" "$TMP/route.err" || true)
echo "$SUMMARY"
if [ "$RC" -ne 0 ]; then
    echo "shard_kill_drill: router exited $RC after drain" >&2
    exit 1
fi
case "$SUMMARY" in
    *" 0 shard respawns"*)
        echo "shard_kill_drill: router never respawned the shard" >&2
        exit 1 ;;
    *"shard respawns"*) ;;
    *)
        echo "shard_kill_drill: no drain summary from router" >&2
        exit 1 ;;
esac

echo "shard_kill_drill: OK"
