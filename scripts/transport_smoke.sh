#!/usr/bin/env bash
# End-to-end TCP transport smoke: a router with 2 managed shards serves a
# loadgen workload; the captured responses must be byte-identical (modulo
# queue_ms/exec_ms) to the same workload piped through the JSONL path, and
# a SIGTERM must drain the whole tree cleanly (exit 0).
#
# Usage: scripts/transport_smoke.sh [BUILD_DIR] [REQUESTS]
set -euo pipefail

BUILD=${1:-build}
REQUESTS=${2:-2000}
UAVDC=$BUILD/tools/uavdc
[ -x "$UAVDC" ] || { echo "transport_smoke: $UAVDC not built" >&2; exit 1; }

TMP=$(mktemp -d)
ROUTER_PID=""
cleanup() {
    [ -n "$ROUTER_PID" ] && kill -9 "$ROUTER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== router + 2 managed shards =="
mkdir -p "$TMP/repos"
"$UAVDC" route --shards=2 --port=0 --announce --repo-dir="$TMP/repos" \
    > "$TMP/route.out" 2> "$TMP/route.err" &
ROUTER_PID=$!

PORT=""
for _ in $(seq 1 100); do
    PORT=$(awk '/^LISTENING /{print $2; exit}' "$TMP/route.out" || true)
    [ -n "$PORT" ] && break
    kill -0 "$ROUTER_PID" 2>/dev/null || {
        echo "transport_smoke: router died during startup" >&2
        cat "$TMP/route.err" >&2
        exit 1
    }
    sleep 0.1
done
[ -n "$PORT" ] || { echo "transport_smoke: no LISTENING line" >&2; exit 1; }
echo "router listening on port $PORT"

echo "== loadgen ($REQUESTS requests) =="
"$UAVDC" loadgen --connect=127.0.0.1:"$PORT" --requests="$REQUESTS" \
    --connections=8 --pipeline=32 \
    --capture-out="$TMP/tcp_responses.jsonl" \
    --emit-jsonl="$TMP/reference_workload.jsonl" \
    > "$TMP/loadgen.json"
python3 - "$TMP/loadgen.json" "$REQUESTS" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
want = int(sys.argv[2])
assert doc["received"] == want, (doc["received"], want)
assert doc["errors"] == 0, doc["errors"]
assert not doc["timed_out"]
print(f"loadgen: {doc['received']} responses, {doc['rps']:.0f} req/s, "
      f"p99 {doc['latency_ms']['p99_ms']:.2f} ms")
EOF

echo "== same workload through the JSONL path =="
# The raw stdin path has no connection backpressure, so give the admission
# queue room for the whole stream.
"$UAVDC" serve --queue=$((REQUESTS + 64)) < "$TMP/reference_workload.jsonl" \
    > "$TMP/jsonl_responses.jsonl" 2> /dev/null

echo "== payload diff (TCP vs JSONL) =="
python3 "$(dirname "$0")/diff_responses.py" \
    "$TMP/tcp_responses.jsonl" "$TMP/jsonl_responses.jsonl"

echo "== graceful SIGTERM drain =="
kill -TERM "$ROUTER_PID"
RC=0
wait "$ROUTER_PID" || RC=$?
ROUTER_PID=""
grep "route: drained" "$TMP/route.err" >&2 || true
if [ "$RC" -ne 0 ]; then
    echo "transport_smoke: router exited $RC on SIGTERM" >&2
    cat "$TMP/route.err" >&2
    exit 1
fi

echo "transport_smoke: OK"
