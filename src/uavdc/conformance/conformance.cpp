#include "uavdc/conformance/conformance.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

#include "uavdc/model/energy_view.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/sim/battery.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/util/thread_pool.hpp"
#include "uavdc/workload/generator.hpp"

namespace uavdc::conformance {

std::string to_string(ConformanceMismatch::Check check) {
    switch (check) {
        case ConformanceMismatch::Check::kEvaluatorVsSimulator:
            return "evaluator-vs-simulator";
        case ConformanceMismatch::Check::kEnergyModels:
            return "energy-models";
        case ConformanceMismatch::Check::kValidatorMissedAbort:
            return "validator-missed-abort";
        case ConformanceMismatch::Check::kFastScoringDrift:
            return "fast-scoring-drift";
        case ConformanceMismatch::Check::kReductionQualityDrift:
            return "reduction-quality-drift";
    }
    return "unknown";
}

namespace {

/// Mixed absolute/relative agreement: absolute `tol` for small values,
/// relative above 1 (energies run to 1e5 J, where 1e-6 absolute would sit
/// below double resolution of long sums).
bool close(double a, double b, double tol) {
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= tol * scale;
}

void require(std::vector<ConformanceMismatch>& out,
             ConformanceMismatch::Check check, const std::string& field,
             double expected, double actual, double tol,
             const std::string& detail) {
    if (!close(expected, actual, tol)) {
        out.push_back({check, field, expected, actual, detail});
    }
}

/// Replay the tour leg by leg through a `sim::Battery` using `EnergyView`
/// power draws — the third, stateful reading of the plan's energy.
double battery_replay_j(const model::Instance& inst,
                        const model::FlightPlan& plan, double demand_j) {
    const model::EnergyView view(inst.uav);
    // Headroom above the demand so the replay never truncates; keeping the
    // capacity near the demand preserves double resolution in consumed_j.
    sim::Battery battery(2.0 * demand_j + 1.0);
    geom::Vec2 here = inst.depot;
    for (const auto& stop : plan.stops) {
        battery.drain(view.travel_power_w(),
                      // NOLINTNEXTLINE(uavdc-batched-distance): independent
                      // scalar replay is the cross-check oracle
                      view.travel_time(geom::distance(here, stop.pos)));
        battery.drain(view.hover_power_w(), stop.dwell_s);
        here = stop.pos;
    }
    if (!plan.stops.empty()) {
        battery.drain(view.travel_power_w(),
                      view.travel_time(geom::distance(here, inst.depot)));
    }
    return battery.consumed_j();
}

bool has_energy_error(const core::PlanValidation& val) {
    for (const auto& v : val.errors) {
        if (v.kind == core::PlanViolation::Kind::kEnergyExceeded) return true;
    }
    return false;
}

}  // namespace

ConformanceReport check_conformance(const model::Instance& inst,
                                    const model::FlightPlan& plan,
                                    double tol) {
    ConformanceReport rep;
    rep.evaluation = core::evaluate_plan(inst, plan, tol);
    sim::SimConfig cfg;
    cfg.record_trace = false;  // calm wind + constant radio by default
    rep.simulation = sim::Simulator(cfg).run(inst, plan);
    rep.validation = core::validate_plan(inst, plan);

    auto& out = rep.mismatches;
    const auto kEvalSim = ConformanceMismatch::Check::kEvaluatorVsSimulator;
    const core::Evaluation& ev = rep.evaluation;
    const sim::SimReport& sr = rep.simulation;

    // (a) closed-form evaluator vs discrete-event simulator.
    require(out, kEvalSim, "collected_mb", ev.collected_mb, sr.collected_mb,
            tol, "total collected volume");
    require(out, kEvalSim, "energy_j", ev.energy_spent_j, sr.energy_used_j,
            tol, "energy actually spent");
    require(out, kEvalSim, "tour_time_s", ev.executed_time_s, sr.duration_s,
            tol, "executed tour time");
    require(out, kEvalSim, "truncated",
            ev.truncated ? 1.0 : 0.0, sr.battery_depleted ? 1.0 : 0.0, 0.0,
            "evaluator truncation flag vs simulator battery depletion");
    require(out, kEvalSim, "devices_drained",
            static_cast<double>(ev.devices_drained),
            static_cast<double>(sr.devices_drained), 0.0,
            "fully-collected device count");
    for (std::size_t d = 0; d < ev.per_device_mb.size(); ++d) {
        if (!close(ev.per_device_mb[d], sr.per_device_mb[d], tol)) {
            require(out, kEvalSim,
                    "per_device_mb[" + std::to_string(d) + "]",
                    ev.per_device_mb[d], sr.per_device_mb[d], tol,
                    "per-device collected volume");
        }
    }

    // (b) the three energy readings of the same tour.
    const auto kEnergy = ConformanceMismatch::Check::kEnergyModels;
    const double plan_j = plan.energy(inst.depot, inst.uav).total_j();
    const model::EnergyView view(inst.uav);
    const double view_j = view.tour_cost(plan.travel_length(inst.depot),
                                         plan.hover_time());
    const double replay_j = battery_replay_j(inst, plan, plan_j);
    require(out, kEnergy, "energy_view_j", plan_j, view_j, tol,
            "FlightPlan::energy vs EnergyView::tour_cost");
    require(out, kEnergy, "battery_replay_j", plan_j, replay_j, tol,
            "FlightPlan::energy vs sim::Battery leg-by-leg replay");

    // (c) the validator must flag every plan the simulator aborts on.
    // Plans within `tol` of the budget are exempt: at that knife edge the
    // simulator's 1e-12-seconds rule and the validator's 1e-6-joules rule
    // may legitimately land on opposite sides.
    if (sr.battery_depleted && !has_energy_error(rep.validation) &&
        plan_j > view.budget_j() * (1.0 + tol) + tol) {
        out.push_back({ConformanceMismatch::Check::kValidatorMissedAbort,
                       "energy_exceeded", plan_j, view.budget_j(),
                       "simulator depleted the battery but validate_plan "
                       "reported no kEnergyExceeded error"});
    }
    return rep;
}

namespace {

/// Outcome of fuzzing one generated instance across every planner. Kept
/// per-instance so the pooled path can merge slots in instance order and
/// reproduce the serial summary bit for bit.
struct InstanceFuzzResult {
    int plans_checked{0};
    int mismatches{0};
    std::vector<ConformanceFuzzFailure> failures;  ///< capped at max_failures
};

InstanceFuzzResult fuzz_one_instance(const workload::GeneratorConfig& g,
                                     std::uint64_t instance_seed,
                                     const std::vector<std::string>& planners,
                                     const ConformanceFuzzConfig& cfg) {
    InstanceFuzzResult out;
    const auto inst = workload::generate(g, instance_seed);

    // A plan of the full instance is feasible by planner contract; the
    // stressed variant shrinks the battery under the same plan to force
    // the truncation / abort paths.
    auto stressed = inst;
    stressed.uav.energy_j *= 0.45;

    core::PlannerOptions opts;
    opts.delta_m = std::max(10.0, std::max(g.region_w, g.region_h) / 18.0);
    const auto ctx = core::PlanningContext::obtain(inst, opts.hover_config());

    for (const auto& name : planners) {
        const auto res = core::make_planner(name, opts)->plan(*ctx);
        auto record = [&](bool is_stressed, const char* planner_label,
                          const std::vector<ConformanceMismatch>& mm) {
            out.mismatches += static_cast<int>(mm.size());
            if (static_cast<int>(out.failures.size()) < cfg.max_failures) {
                out.failures.push_back({instance_seed, inst.name,
                                        name + std::string(planner_label),
                                        is_stressed, mm});
            }
        };
        auto consider = [&](const model::Instance& target, bool is_stressed,
                            const model::FlightPlan& plan,
                            const char* planner_label) {
            const auto report = check_conformance(target, plan, cfg.tol);
            ++out.plans_checked;
            if (report.ok()) return;
            record(is_stressed, planner_label, report.mismatches);
        };
        consider(inst, false, res.plan, "");
        if (cfg.stress_energy) consider(stressed, true, res.plan, "");

        // Epsilon tier: the fast engine's plan must (a) pass the same
        // cross-layer checks as any plan and (b) land within fast_rel_tol
        // of the default engine's outcome. Scoring-aware planners only.
        const bool scoring_aware =
            name == "alg2" || name == "alg3" || name == "benchmark";
        if (cfg.check_fast_scoring && scoring_aware) {
            core::PlannerOptions fast_opts = opts;
            fast_opts.scoring = core::ScoringEngine::kIncrementalFast;
            const auto fast = core::make_planner(name, fast_opts)->plan(*ctx);
            consider(inst, false, fast.plan, "+fast");

            const auto base_ev = core::evaluate_plan(inst, res.plan, cfg.tol);
            const auto fast_ev = core::evaluate_plan(inst, fast.plan, cfg.tol);
            std::vector<ConformanceMismatch> drift;
            const auto kDrift = ConformanceMismatch::Check::kFastScoringDrift;
            require(drift, kDrift, "collected_mb", base_ev.collected_mb,
                    fast_ev.collected_mb, cfg.fast_rel_tol,
                    "incremental vs incremental-fast collected volume");
            require(drift, kDrift, "energy_j", base_ev.energy_spent_j,
                    fast_ev.energy_spent_j, cfg.fast_rel_tol,
                    "incremental vs incremental-fast spent energy");
            require(drift, kDrift, "tour_time_s", base_ev.executed_time_s,
                    fast_ev.executed_time_s, cfg.fast_rel_tol,
                    "incremental vs incremental-fast executed time");
            ++out.plans_checked;
            if (!drift.empty()) record(false, "+fast", drift);
        }

        // Pruned-vs-unpruned tier: the reduced candidate set must keep the
        // collected volume within reduction_rel_tol of the full set's (one
        // sided — collecting more is fine). alg2/alg3 only: the other
        // planners ignore the reduction config.
        const bool reducible = name == "alg2" || name == "alg3";
        if (cfg.check_reduction && reducible) {
            core::PlannerOptions red_opts = opts;
            red_opts.reduction = cfg.reduction;
            if (!red_opts.reduction.enabled()) {
                red_opts.reduction.dominance = true;
                red_opts.reduction.coarsen_factor = 2;
                red_opts.reduction.refine_band_m = 4.0 * opts.delta_m;
            }
            const auto red = core::make_planner(name, red_opts)->plan(*ctx);
            consider(inst, false, red.plan, "+reduced");

            const auto base_ev = core::evaluate_plan(inst, res.plan, cfg.tol);
            const auto red_ev = core::evaluate_plan(inst, red.plan, cfg.tol);
            ++out.plans_checked;
            const double floor =
                base_ev.collected_mb -
                cfg.reduction_rel_tol * std::max(1.0, base_ev.collected_mb);
            if (red_ev.collected_mb < floor) {
                std::vector<ConformanceMismatch> drift;
                drift.push_back(
                    {ConformanceMismatch::Check::kReductionQualityDrift,
                     "collected_mb", base_ev.collected_mb,
                     red_ev.collected_mb,
                     "reduced candidate set lost more than the allowed "
                     "fraction of the unpruned collected volume"});
                record(false, "+reduced", drift);
            }
        }
    }
    return out;
}

}  // namespace

ConformanceFuzzSummary fuzz_conformance(const ConformanceFuzzConfig& cfg) {
    // Tolerances are relative fractions: non-positive would flag every
    // case, NaN would flag none (every comparison false), and > 1 would
    // accept any outcome — all three are configuration mistakes, rejected
    // up front instead of producing a silently meaningless run.
    const auto valid_tol = [](double t) {
        return std::isfinite(t) && t > 0.0 && t <= 1.0;
    };
    UAVDC_REQUIRE(valid_tol(cfg.fast_rel_tol))
        << "fuzz_conformance: fast_rel_tol must be a finite fraction in "
        << "(0, 1], got " << cfg.fast_rel_tol;
    UAVDC_REQUIRE(valid_tol(cfg.reduction_rel_tol))
        << "fuzz_conformance: reduction_rel_tol must be a finite fraction "
        << "in (0, 1], got " << cfg.reduction_rel_tol;
    ConformanceFuzzSummary summary;
    if (cfg.instances <= 0) return summary;
    std::vector<std::string> planners =
        cfg.planners.empty() ? core::planner_names() : cfg.planners;

    util::Rng rng(cfg.seed);
    constexpr workload::Deployment kDeployments[] = {
        workload::Deployment::kUniform, workload::Deployment::kClustered,
        workload::Deployment::kGridJitter, workload::Deployment::kRing,
        workload::Deployment::kHalton, workload::Deployment::kPoissonDisk};
    constexpr workload::VolumeModel kVolumes[] = {
        workload::VolumeModel::kUniform, workload::VolumeModel::kExponential,
        workload::VolumeModel::kFixed, workload::VolumeModel::kBimodal};

    // Draw every instance's recipe up front from the single root stream —
    // the draw order (and thus the generated instances) is identical
    // whether the fuzz work below runs serially or on a pool.
    std::vector<workload::GeneratorConfig> configs;
    std::vector<std::uint64_t> seeds;
    configs.reserve(static_cast<std::size_t>(cfg.instances));
    seeds.reserve(static_cast<std::size_t>(cfg.instances));
    for (int i = 0; i < cfg.instances; ++i) {
        workload::GeneratorConfig g;
        g.num_devices = static_cast<int>(rng.uniform_int(4, 40));
        g.region_w = rng.uniform(150.0, 500.0);
        g.region_h = rng.uniform(150.0, 500.0);
        g.deployment = kDeployments[static_cast<std::size_t>(
            rng.uniform_int(0, 5))];
        g.volumes = kVolumes[static_cast<std::size_t>(rng.uniform_int(0, 3))];
        g.min_mb = rng.uniform(20.0, 150.0);
        g.max_mb = g.min_mb + rng.uniform(50.0, 800.0);
        // Budgets from cramped to comfortable, so some plans hug E.
        g.uav.energy_j = rng.uniform(2.0e4, 1.2e5);
        configs.push_back(g);
        seeds.push_back(rng.next_u64());
    }

    std::vector<InstanceFuzzResult> results(
        static_cast<std::size_t>(cfg.instances));
    if (cfg.pool != nullptr && cfg.instances > 1 &&
        !cfg.pool->on_worker_thread()) {
        std::vector<std::future<void>> futures;
        futures.reserve(results.size());
        for (int i = 0; i < cfg.instances; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            futures.push_back(cfg.pool->submit([&, idx]() {
                results[idx] = fuzz_one_instance(configs[idx], seeds[idx],
                                                 planners, cfg);
            }));
        }
        // Drain every future before propagating a failure: bailing on the
        // first get() would destroy the remaining futures without waiting
        // (packaged_task futures do not block in their destructor) while
        // sibling tasks still read `configs`/`seeds`/`planners` and write
        // `results[idx]` on this unwound frame.
        std::exception_ptr first_error;
        for (auto& fut : futures) {
            try {
                fut.get();
            } catch (...) {
                if (!first_error) first_error = std::current_exception();
            }
        }
        if (first_error) std::rethrow_exception(first_error);
    } else {
        for (int i = 0; i < cfg.instances; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            results[idx] =
                fuzz_one_instance(configs[idx], seeds[idx], planners, cfg);
        }
    }

    // Sequential merge in instance order: counters sum, and the first
    // `max_failures` failures are the same cases a serial run collects.
    for (auto& res : results) {
        ++summary.instances;
        summary.plans_checked += res.plans_checked;
        summary.mismatches += res.mismatches;
        for (auto& failure : res.failures) {
            if (static_cast<int>(summary.failures.size()) <
                cfg.max_failures) {
                summary.failures.push_back(std::move(failure));
            }
        }
    }
    return summary;
}

}  // namespace uavdc::conformance
