#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uavdc/core/candidate_reduction.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/validate_plan.hpp"
#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"
#include "uavdc/sim/simulator.hpp"

namespace uavdc::util {
class ThreadPool;
}  // namespace uavdc::util

namespace uavdc::conformance {

/// One cross-layer disagreement found by the conformance oracle.
struct ConformanceMismatch {
    enum class Check {
        kEvaluatorVsSimulator,  ///< evaluate_plan vs Simulator accounting
        kEnergyModels,          ///< FlightPlan::energy vs EnergyView vs
                                ///< Battery replay
        kValidatorMissedAbort,  ///< simulator aborted, validate_plan silent
        kFastScoringDrift,      ///< epsilon tier: kIncrementalFast outcome
                                ///< drifted beyond the documented tolerance
        kReductionQualityDrift, ///< pruned candidate set collected less
                                ///< than (1 - tol) of the unpruned volume
    };
    Check check;
    std::string field;   ///< which quantity diverged ("collected_mb", ...)
    double expected{0.0};  ///< reference value (evaluator / closed form)
    double actual{0.0};    ///< diverging value (simulator / replay)
    std::string detail;    ///< human-readable context
};

[[nodiscard]] std::string to_string(ConformanceMismatch::Check check);

/// Full cross-check of one (instance, plan) pair. `ok()` is the invariant
/// the DCM/PDCM guarantees rest on: the planner-facing cost model, the
/// closed-form evaluator, and the discrete-event simulator describe the
/// same mission.
struct ConformanceReport {
    core::Evaluation evaluation;
    sim::SimReport simulation;  ///< calm wind, constant radio, no trace
    core::PlanValidation validation;
    std::vector<ConformanceMismatch> mismatches;
    [[nodiscard]] bool ok() const { return mismatches.empty(); }
};

/// Cross-check `plan` against `inst`:
///  (a) `evaluate_plan` vs `Simulator` under calm wind / constant radio —
///      collected MB, per-device MB, spent energy, executed time,
///      truncation flag, and drained-device count must agree within `tol`
///      (absolute for quantities <= 1, relative above);
///  (b) `FlightPlan::energy`, `EnergyView::tour_cost`, and a
///      `sim::Battery` replay of the tour must report identical energy;
///  (c) every plan the simulator aborts on (battery depleted) must carry a
///      `kEnergyExceeded` error from `validate_plan` (plans within `tol`
///      of the budget are exempt — both sides are correct at a knife edge).
[[nodiscard]] ConformanceReport check_conformance(
    const model::Instance& inst, const model::FlightPlan& plan,
    double tol = 1e-6);

/// Property-based fuzz loop: seeded `workload::generator` instances
/// (deployment, volume model, device count, region size, and energy budget
/// all varied) x every planner in the registry.
struct ConformanceFuzzConfig {
    int instances = 100;              ///< generated instances
    std::uint64_t seed = 20260806;    ///< root seed (deterministic run)
    std::vector<std::string> planners;  ///< empty = all registered planners
    double tol = 1e-6;
    /// Additionally re-check every plan against a copy of its instance with
    /// the battery cut to 45% — forcing the truncation/abort paths that a
    /// feasible plan never exercises.
    bool stress_energy = true;
    int max_failures = 8;  ///< stop collecting after this many failed cases
    /// Epsilon-conformance tier (opt-in). For every scoring-aware planner
    /// (alg2/alg3/benchmark) additionally plan with
    /// `ScoringEngine::kIncrementalFast`, run the fast plan through the same
    /// cross-layer checks, and compare its outcome metrics (collected MB,
    /// spent energy, executed time) against the default engine's plan.
    ///
    /// The fast engine reassociates residual-gain sums into eight fixed-lane
    /// accumulators, so its plans are deliberately NOT bit-identical to the
    /// default engine's — only epsilon-close. `fast_rel_tol` is the
    /// documented tolerance: metric pairs must agree to within this relative
    /// error (absolute below 1). Violations surface as
    /// `Check::kFastScoringDrift` mismatches.
    bool check_fast_scoring = false;
    double fast_rel_tol = 1e-9;
    /// Pruned-vs-unpruned quality tier (opt-in). For alg2/alg3 additionally
    /// plan with candidate-space reduction enabled, run the reduced plan
    /// through the same cross-layer checks, and require its collected
    /// volume to stay within `reduction_rel_tol` (relative, one-sided — a
    /// reduced plan may legitimately collect *more* after the refine
    /// re-plan) of the unpruned plan's. Violations surface as
    /// `Check::kReductionQualityDrift`.
    bool check_reduction = false;
    double reduction_rel_tol = 0.01;
    /// Reduction profile for the tier above. When left disabled a default
    /// profile is used: dominance filtering + 2x grid coarsening + a refine
    /// band of 4 grid steps around the incumbent tour.
    core::CandidateReductionConfig reduction{};
    /// Optional caller-provided worker pool. When set, instances are fuzzed
    /// concurrently (one task per instance) and the per-instance results are
    /// merged in instance order, so the summary — counters and the identity
    /// of the first `max_failures` failures — is bit-identical to a serial
    /// run. The fuzzer never constructs threads of its own.
    util::ThreadPool* pool = nullptr;
};

/// One failing (instance, planner) case, replayable from the seed.
struct ConformanceFuzzFailure {
    std::uint64_t instance_seed{0};
    std::string instance_name;
    std::string planner;
    bool stressed{false};  ///< failed under the reduced-battery variant
    std::vector<ConformanceMismatch> mismatches;
};

struct ConformanceFuzzSummary {
    int instances{0};       ///< instances generated
    int plans_checked{0};   ///< (instance, plan) pairs cross-checked
    int mismatches{0};      ///< total mismatched fields
    std::vector<ConformanceFuzzFailure> failures;
    [[nodiscard]] bool ok() const { return failures.empty(); }
};

[[nodiscard]] ConformanceFuzzSummary fuzz_conformance(
    const ConformanceFuzzConfig& cfg = {});

}  // namespace uavdc::conformance
