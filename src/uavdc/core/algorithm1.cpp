#include "uavdc/core/algorithm1.hpp"

#include <algorithm>
#include <numeric>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

HoverCandidateSet GridOrienteeringPlanner::select_disjoint(
    HoverCandidateSet cands, std::size_t num_devices) {
    std::vector<std::size_t> order(cands.candidates.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return cands.candidates[a].award_mb > cands.candidates[b].award_mb;
    });
    std::vector<bool> taken(num_devices, false);
    std::vector<HoverCandidate> kept;
    for (std::size_t i : order) {
        const auto& c = cands.candidates[i];
        bool clash = false;
        for (int v : c.covered) {
            if (taken[static_cast<std::size_t>(v)]) {
                clash = true;
                break;
            }
        }
        if (clash) continue;
        for (int v : c.covered) taken[static_cast<std::size_t>(v)] = true;
        kept.push_back(c);
    }
    cands.candidates = std::move(kept);
    return cands;
}

orienteering::Problem GridOrienteeringPlanner::build_auxiliary_problem(
    const model::Instance& inst, const HoverCandidateSet& cands) {
    // Node 0 is the depot; nodes 1..M are the candidates.
    const std::size_t n = cands.size() + 1;
    orienteering::Problem p;
    p.depot = 0;
    p.budget = inst.uav.energy_j;
    p.prizes.assign(n, 0.0);

    std::vector<geom::Vec2> pos(n);
    std::vector<double> w1(n, 0.0);
    pos[0] = inst.depot;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const auto& c = cands.candidates[i];
        pos[i + 1] = c.pos;
        w1[i + 1] = c.hover_energy_j;
        p.prizes[i + 1] = c.award_mb;
    }

    p.graph = graph::DenseGraph(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double travel =
                // NOLINTNEXTLINE(uavdc-batched-distance): one-shot O(n^2)
                // graph build for the MST solver, not a scoring loop
                inst.uav.travel_energy(geom::distance(pos[i], pos[j]));
            p.graph.set_weight(i, j, (w1[i] + w1[j]) / 2.0 + travel);
        }
    }
    return p;
}

PlanResult GridOrienteeringPlanner::plan(const PlanningContext& ctx) {
    util::Timer timer;
    PlanResult out;
    const model::Instance& inst = ctx.instance();

    const HoverCandidateSet cands =
        select_disjoint(ctx.candidates(), inst.num_devices());
    out.stats.candidates = util::checked_cast<int>(cands.size());
    if (cands.candidates.empty()) {
        out.stats.runtime_s = timer.seconds();
        return out;
    }

    const orienteering::Problem problem =
        build_auxiliary_problem(inst, cands);
    const orienteering::Solution sol =
        orienteering::solve(problem, cfg_.solver, cfg_.grasp);

    for (std::size_t v : sol.tour) {
        if (v == problem.depot) continue;
        const auto& c = cands.candidates[v - 1];
        out.plan.stops.push_back({c.pos, c.dwell_s, c.cell_id});
    }
    out.stats.planned_mb = sol.prize;
    out.stats.planned_energy_j = sol.cost;
    out.stats.iterations = 1;
    out.stats.runtime_s = timer.seconds();
    return out;
}

std::string GridOrienteeringPlanner::name() const {
    return "alg1-" + orienteering::to_string(cfg_.solver);
}

}  // namespace uavdc::core
