#pragma once

#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/planner.hpp"
#include "uavdc/orienteering/solver.hpp"

namespace uavdc::core {

/// Configuration for Algorithm 1.
struct Algorithm1Config {
    HoverCandidateConfig candidates;
    /// Backend for the orienteering black box (paper: Bansal et al. [1];
    /// see DESIGN.md substitution #1).
    orienteering::SolverKind solver = orienteering::SolverKind::kGrasp;
    orienteering::GraspConfig grasp;
};

/// The paper's Algorithm 1 (Sec. IV): approximation algorithm for the data
/// collection maximization problem *without* hovering coverage overlapping.
///
/// 1. Partition the region into delta-squares; candidate hovering locations
///    are cell centres with non-empty coverage (build_hover_candidates).
///    The no-overlap assumption is then enforced by keeping a maximal
///    subfamily of candidates with pairwise-disjoint coverage sets (greedy
///    by award): this is exactly the problem variant's precondition, and it
///    makes the node awards additive so the orienteering prize equals the
///    volume actually collected.
/// 2. Build the auxiliary graph G_s: node award p(s_j) (Eq. 6), hover
///    energy w1(s_j) (Eq. 8), and edge weight
///    w2(s_j, s_k) = (w1(s_j) + w1(s_k)) / 2 + travel_energy(l(s_j, s_k))
///    (Eq. 9) — a metric graph (Lemma 1).
/// 3. Solve rooted budgeted orienteering on G_s with budget E.
/// 4. Emit the tour's hovering locations with their full dwell times.
class GridOrienteeringPlanner final : public Planner {
  public:
    explicit GridOrienteeringPlanner(Algorithm1Config cfg = {})
        : cfg_(std::move(cfg)) {}

    using Planner::plan;
    [[nodiscard]] PlanResult plan(const PlanningContext& ctx) override;
    [[nodiscard]] HoverCandidateConfig candidate_config() const override {
        return cfg_.candidates;
    }
    [[nodiscard]] std::string name() const override;

    /// Expose the auxiliary orienteering problem for a given candidate set
    /// (used by tests to check Lemma 1 and by ablations).
    [[nodiscard]] static orienteering::Problem build_auxiliary_problem(
        const model::Instance& inst, const HoverCandidateSet& cands);

    /// Reduce a candidate set to a maximal subfamily with pairwise-disjoint
    /// coverage (greedy by descending award) — the "without hovering
    /// coverage overlapping" precondition of Sec. IV.
    [[nodiscard]] static HoverCandidateSet select_disjoint(
        HoverCandidateSet cands, std::size_t num_devices);

  private:
    Algorithm1Config cfg_;
};

}  // namespace uavdc::core
