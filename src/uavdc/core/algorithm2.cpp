#include "uavdc/core/algorithm2.hpp"

#include <algorithm>
#include <limits>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/tour_builder.hpp"
#include "uavdc/graph/christofides.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

std::string to_string(RatioRule rule) {
    switch (rule) {
        case RatioRule::kPaper:
            return "eq13";
        case RatioRule::kVolumeOnly:
            return "volume";
        case RatioRule::kPerHover:
            return "per-hover";
    }
    return "unknown";
}

namespace {

constexpr double kEps = 1e-9;

/// Per-candidate score computed each iteration.
struct Score {
    double new_mb{0.0};       ///< P'(s): data from not-yet-covered devices
    double dwell_s{0.0};      ///< t'(s): max residual upload time
    double travel_delta_m{0.0};
    TourBuilder::Insertion ins{};
    bool feasible{false};
    double ratio{-1.0};
};

}  // namespace

PlanResult GreedyCoveragePlanner::plan(const PlanningContext& ctx) {
    util::Timer timer;
    PlanResult out;
    const model::Instance& inst = ctx.instance();

    const auto& cands = ctx.candidates().candidates;
    out.stats.candidates = static_cast<int>(cands.size());
    if (cands.empty()) {
        out.stats.runtime_s = timer.seconds();
        return out;
    }

    const double bw = inst.uav.bandwidth_mbps;
    const double eta_h = inst.uav.hover_power_w;
    const double energy_cap = inst.uav.energy_j;

    std::vector<bool> covered(inst.devices.size(), false);
    std::vector<bool> used(cands.size(), false);
    std::vector<double> dwell_of(cands.size(), 0.0);  // dwell when inserted
    TourBuilder tour(inst.depot);
    double hover_energy = 0.0;
    double hover_seconds = 0.0;
    double collected_mb = 0.0;
    const double deadline = cfg_.max_tour_time_s;

    std::vector<Score> scores(cands.size());
    const bool parallel =
        cfg_.parallel_threshold > 0 &&
        cands.size() >= static_cast<std::size_t>(cfg_.parallel_threshold);

    int iterations = 0;
    int since_retour = 0;
    for (;;) {
        ++iterations;
        auto score_one = [&](std::size_t i) {
            Score s{};
            if (!used[i]) {
                const auto& c = cands[i];
                for (int v : c.covered) {
                    if (covered[static_cast<std::size_t>(v)]) continue;
                    const auto& d =
                        inst.devices[static_cast<std::size_t>(v)];
                    if (d.data_mb <= 0.0) continue;
                    s.new_mb += d.data_mb;
                    s.dwell_s = std::max(s.dwell_s, d.upload_time(bw));
                }
                if (s.new_mb > 0.0) {
                    if (cfg_.exact_ratio_tsp) {
                        // Literal Eq. 13: TSP(S_j) via Christofides over the
                        // current stops plus this candidate.
                        std::vector<geom::Vec2> pts;
                        pts.reserve(tour.size() + 2);
                        pts.push_back(inst.depot);
                        for (const auto& q : tour.stops()) pts.push_back(q);
                        pts.push_back(c.pos);
                        const auto g = graph::DenseGraph::euclidean(pts);
                        const auto order = graph::christofides_tour(g, 0);
                        const double new_len = g.tour_length(order);
                        s.travel_delta_m =
                            std::max(0.0, new_len - tour.length());
                        s.ins = tour.cheapest_insertion(c.pos);
                    } else {
                        s.ins = tour.cheapest_insertion(c.pos);
                        s.travel_delta_m = s.ins.delta_m;
                    }
                    const double extra_hover = s.dwell_s * eta_h;
                    const double extra_travel =
                        inst.uav.travel_energy(s.travel_delta_m);
                    const double total =
                        hover_energy + extra_hover +
                        inst.uav.travel_energy(tour.length() +
                                               s.travel_delta_m);
                    s.feasible = total <= energy_cap + kEps;
                    if (s.feasible && deadline > 0.0) {
                        const double tour_time =
                            hover_seconds + s.dwell_s +
                            inst.uav.travel_time(tour.length() +
                                                 s.travel_delta_m);
                        s.feasible = tour_time <= deadline + kEps;
                    }
                    if (s.feasible) {
                        switch (cfg_.ratio_rule) {
                            case RatioRule::kPaper:
                                s.ratio =
                                    s.new_mb /
                                    std::max(extra_hover + extra_travel,
                                             kEps);
                                break;
                            case RatioRule::kVolumeOnly:
                                s.ratio = s.new_mb;
                                break;
                            case RatioRule::kPerHover:
                                s.ratio =
                                    s.new_mb / std::max(extra_hover, kEps);
                                break;
                        }
                    }
                }
            }
            scores[i] = s;
        };
        if (parallel) {
            util::parallel_for(0, cands.size(), score_one, 64);
        } else {
            for (std::size_t i = 0; i < cands.size(); ++i) score_one(i);
        }

        std::size_t best = cands.size();
        double best_ratio = 0.0;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (scores[i].feasible && scores[i].ratio > best_ratio + kEps) {
                best_ratio = scores[i].ratio;
                best = i;
            }
        }
        if (best == cands.size()) break;

        const auto& c = cands[best];
        const Score& s = scores[best];
        tour.insert(c.pos, static_cast<int>(best), s.ins);
        used[best] = true;
        dwell_of[best] = s.dwell_s;
        hover_energy += s.dwell_s * eta_h;
        hover_seconds += s.dwell_s;
        collected_mb += s.new_mb;
        for (int v : c.covered) covered[static_cast<std::size_t>(v)] = true;

        if (cfg_.retour_every > 0 && ++since_retour >= cfg_.retour_every) {
            tour.reoptimize();
            since_retour = 0;
        }
    }
    tour.reoptimize();

    for (std::size_t i = 0; i < tour.size(); ++i) {
        const auto ci = static_cast<std::size_t>(tour.keys()[i]);
        out.plan.stops.push_back(
            {tour.stops()[i], dwell_of[ci], cands[ci].cell_id});
    }
    out.stats.planned_mb = collected_mb;
    out.stats.planned_energy_j =
        hover_energy + inst.uav.travel_energy(tour.length());
    out.stats.iterations = iterations;
    out.stats.runtime_s = timer.seconds();
    return out;
}

}  // namespace uavdc::core
