#include "uavdc/core/algorithm2.hpp"

#include <algorithm>
#include <limits>
#include <memory_resource>
#include <optional>

#include "uavdc/core/batch_kernels.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/tour_builder.hpp"
#include "uavdc/graph/christofides.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

std::string to_string(RatioRule rule) {
    switch (rule) {
        case RatioRule::kPaper:
            return "eq13";
        case RatioRule::kVolumeOnly:
            return "volume";
        case RatioRule::kPerHover:
            return "per-hover";
    }
    return "unknown";
}

namespace {

constexpr double kEps = 1e-9;

/// Per-candidate score computed each iteration (reference engine).
struct Score {
    double new_mb{0.0};       ///< P'(s): data from not-yet-covered devices
    double dwell_s{0.0};      ///< t'(s): max residual upload time
    double travel_delta_m{0.0};
    TourBuilder::Insertion ins{};
    bool feasible{false};
    double ratio{-1.0};
};

/// Residual prize P'(s) and dwell t'(s) of a candidate under the current
/// covered set (Eq. 11-12). Shared by both engines so their floating-point
/// results are bit-identical.
struct Gain {
    double new_mb{0.0};
    double dwell_s{0.0};
};

Gain residual_gain(const model::Instance& inst, const HoverCandidate& c,
                   const std::vector<char>& covered, double bw) {
    Gain g;
    for (const int v : c.covered) {
        if (covered[static_cast<std::size_t>(v)] != 0) continue;
        const auto& d = inst.devices[static_cast<std::size_t>(v)];
        if (d.data_mb <= 0.0) continue;
        g.new_mb += d.data_mb;
        g.dwell_s = std::max(g.dwell_s, d.upload_time(bw));
    }
    return g;
}

double rank_ratio(RatioRule rule, double new_mb, double extra_hover,
                  double extra_travel) {
    switch (rule) {
        case RatioRule::kPaper:
            return new_mb / std::max(extra_hover + extra_travel, kEps);
        case RatioRule::kVolumeOnly:
            return new_mb;
        case RatioRule::kPerHover:
            return new_mb / std::max(extra_hover, kEps);
    }
    return -1.0;
}

}  // namespace

PlanResult GreedyCoveragePlanner::plan(const PlanningContext& ctx) {
    auto run = [&](const CandidateView& view) {
        return cfg_.scoring == ScoringEngine::kReference
                   ? plan_reference(ctx, view)
                   : plan_incremental(ctx, view);
    };
    if (!cfg_.reduction.enabled()) {
        return run(CandidateView{&ctx.candidates(), &ctx.candidate_soa(), {},
                                 &ctx.inverted_coverage()});
    }
    util::Timer timer;
    const ReducedCandidates& reduced = ctx.reduced_candidates(cfg_.reduction);
    PlanResult out = run(reduced.view());
    int iterations = out.stats.iterations;
    if (cfg_.reduction.refine_band_m > 0.0 && !out.plan.stops.empty()) {
        // Refine-and-replan: reinstate the originals near the incumbent tour
        // and keep the better of the two plans (by collected volume).
        std::vector<geom::Vec2> stops;
        stops.reserve(out.plan.stops.size());
        for (const auto& s : out.plan.stops) stops.push_back(s.pos);
        const ReducedCandidates refined = refine_near_tour(
            ctx.candidates(), reduced, stops, ctx.instance().depot,
            cfg_.reduction.refine_band_m, ctx.instance().devices.size());
        if (refined.set.candidates.size() > reduced.set.candidates.size()) {
            PlanResult replanned = run(refined.view());
            iterations += replanned.stats.iterations;
            if (replanned.stats.planned_mb > out.stats.planned_mb) {
                out = std::move(replanned);
            }
        }
    }
    if (out.plan.stops.empty()) {
        // Reduction must never turn a collectable mission into an empty
        // plan (a cramped budget can leave only pruned candidates in
        // reach, and the refine band has no incumbent tour to grow from).
        // Fall back to the full set — the pathological case pays the full
        // planning cost, every other case keeps the reduction win.
        PlanResult full =
            run(CandidateView{&ctx.candidates(), &ctx.candidate_soa(), {},
                              &ctx.inverted_coverage()});
        iterations += full.stats.iterations;
        if (full.stats.planned_mb > out.stats.planned_mb) {
            out = std::move(full);
        }
    }
    out.stats.iterations = iterations;
    out.stats.runtime_s = timer.seconds();
    return out;
}

PlanResult GreedyCoveragePlanner::plan_reference(const PlanningContext& ctx,
                                                 const CandidateView& view) {
    util::Timer timer;
    PlanResult out;
    const model::Instance& inst = ctx.instance();

    const auto& cands = view.set->candidates;
    out.stats.candidates = util::checked_cast<int>(cands.size());
    if (cands.empty()) {
        out.stats.runtime_s = timer.seconds();
        return out;
    }

    const double bw = inst.uav.bandwidth_mbps;
    const double eta_h = inst.uav.hover_power_w;
    const double energy_cap = inst.uav.energy_j;

    std::vector<char> covered(inst.devices.size(), 0);
    std::vector<char> used(cands.size(), 0);
    std::vector<double> dwell_of(cands.size(), 0.0);  // dwell when inserted
    TourBuilder tour(inst.depot);
    double hover_energy = 0.0;
    double hover_seconds = 0.0;
    double collected_mb = 0.0;
    const double deadline = cfg_.max_tour_time_s;

    std::vector<Score> scores(cands.size());
    const bool parallel =
        cfg_.parallel_threshold > 0 &&
        cands.size() >= static_cast<std::size_t>(cfg_.parallel_threshold);

    int iterations = 0;
    int since_retour = 0;
    for (;;) {
        ++iterations;
        auto score_one = [&](std::size_t i) {
            Score s{};
            if (used[i] == 0) {
                const auto& c = cands[i];
                const Gain g = residual_gain(inst, c, covered, bw);
                s.new_mb = g.new_mb;
                s.dwell_s = g.dwell_s;
                if (s.new_mb > 0.0) {
                    if (cfg_.exact_ratio_tsp) {
                        // Literal Eq. 13: TSP(S_j) via Christofides over the
                        // current stops plus this candidate. Thread-local
                        // scratch: one allocation per thread, not one per
                        // candidate per iteration.
                        static thread_local std::vector<geom::Vec2> pts;
                        pts.clear();
                        pts.reserve(tour.size() + 2);
                        pts.push_back(inst.depot);
                        for (const auto& q : tour.stops()) pts.push_back(q);
                        pts.push_back(c.pos);
                        // The reference engine is the equivalence oracle and
                        // keeps the original per-candidate rebuild.
                        // NOLINTNEXTLINE(uavdc-no-dense-rebuild-in-loop): oracle
                        const auto g2 = graph::DenseGraph::euclidean(pts);
                        const auto order = graph::christofides_tour(g2, 0);
                        const double new_len = g2.tour_length(order);
                        s.travel_delta_m =
                            std::max(0.0, new_len - tour.length());
                        s.ins = tour.cheapest_insertion(c.pos);
                    } else {
                        s.ins = tour.cheapest_insertion(c.pos);
                        s.travel_delta_m = s.ins.delta_m;
                    }
                    const double extra_hover = s.dwell_s * eta_h;
                    const double extra_travel =
                        inst.uav.travel_energy(s.travel_delta_m);
                    const double total =
                        hover_energy + extra_hover +
                        inst.uav.travel_energy(tour.length() +
                                               s.travel_delta_m);
                    s.feasible = total <= energy_cap + kEps;
                    if (s.feasible && deadline > 0.0) {
                        const double tour_time =
                            hover_seconds + s.dwell_s +
                            inst.uav.travel_time(tour.length() +
                                                 s.travel_delta_m);
                        s.feasible = tour_time <= deadline + kEps;
                    }
                    if (s.feasible) {
                        s.ratio = rank_ratio(cfg_.ratio_rule, s.new_mb,
                                             extra_hover, extra_travel);
                    }
                }
            }
            scores[i] = s;
        };
        util::maybe_parallel_for(parallel, 0, cands.size(), score_one, 64);

        // Deterministic argmax: (ratio desc, index asc), threshold > kEps.
        std::size_t best = cands.size();
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (scores[i].feasible && scores[i].ratio > kEps &&
                (best == cands.size() ||
                 scores[i].ratio > scores[best].ratio)) {
                best = i;
            }
        }
        if (best == cands.size()) break;

        const auto& c = cands[best];
        const Score& s = scores[best];
        tour.insert(c.pos, util::checked_cast<int>(best), s.ins);
        used[best] = 1;
        dwell_of[best] = s.dwell_s;
        hover_energy += s.dwell_s * eta_h;
        hover_seconds += s.dwell_s;
        collected_mb += s.new_mb;
        for (const int v : c.covered) {
            covered[static_cast<std::size_t>(v)] = 1;
        }

        if (cfg_.retour_every > 0 && ++since_retour >= cfg_.retour_every) {
            tour.reoptimize();
            since_retour = 0;
        }
    }
    tour.reoptimize();

    for (std::size_t i = 0; i < tour.size(); ++i) {
        const auto ci = static_cast<std::size_t>(tour.keys()[i]);
        out.plan.stops.push_back(
            {tour.stops()[i], dwell_of[ci], cands[ci].cell_id});
    }
    out.stats.planned_mb = collected_mb;
    out.stats.planned_energy_j =
        hover_energy + inst.uav.travel_energy(tour.length());
    out.stats.iterations = iterations;
    out.stats.runtime_s = timer.seconds();
    return out;
}

PlanResult GreedyCoveragePlanner::plan_incremental(
    const PlanningContext& ctx, const CandidateView& view) {
    util::Timer timer;
    PlanResult out;
    const model::Instance& inst = ctx.instance();

    const auto& cands = view.set->candidates;
    out.stats.candidates = util::checked_cast<int>(cands.size());
    if (cands.empty()) {
        out.stats.runtime_s = timer.seconds();
        return out;
    }
    const std::size_t n = cands.size();

    const double eta_h = inst.uav.hover_power_w;
    const double energy_cap = inst.uav.energy_j;
    const double deadline = cfg_.max_tour_time_s;
    const bool tsp = cfg_.exact_ratio_tsp;
    const bool parallel =
        cfg_.parallel_threshold > 0 &&
        n >= static_cast<std::size_t>(cfg_.parallel_threshold);

    // Per-plan scratch lives in the context's arena: back-to-back plans on
    // the same context reuse one warmed block (zero allocation).
    ArenaLease lease = ctx.acquire_arena();
    std::pmr::memory_resource* mr = lease.resource();

    std::pmr::vector<char> covered(inst.devices.size(), 0, mr);
    std::pmr::vector<char> used(n, 0, mr);
    std::pmr::vector<double> dwell_of(n, 0.0, mr);
    TourBuilder tour(inst.depot);
    double hover_energy = 0.0;
    double hover_seconds = 0.0;
    double collected_mb = 0.0;

    // SoA planes shared across plans through the context (or the reduced
    // mirrors owned by the memoized ReducedCandidates).
    const DeviceSoa& dsoa = ctx.device_soa();
    const CandidateSoa& csoa = *view.soa;
    InsertionCache cache(tour, std::span(csoa.pos.xs.data(), n),
                         std::span(csoa.pos.ys.data(), n), mr);
    // Device -> covering-candidates inversion: reuse the view's prebuilt
    // index (context- or reduction-memoized; the warm-serve win), building
    // locally only for bare views.
    std::optional<InvertedCoverageIndex> local_inverted;
    if (view.inverted == nullptr) {
        local_inverted.emplace(*view.set, inst.devices.size());
    }
    const InvertedCoverageIndex& inverted =
        view.inverted != nullptr ? *view.inverted : *local_inverted;
    LazyGreedyQueue queue(n);

    // Residual gains, refreshed only for candidates whose coverage
    // intersects newly covered devices. The ordered kernel walks the
    // forward CSR coverage list with the exact accumulation order of the
    // reference residual_gain (bit-identical); the opt-in fast kernel
    // reassociates the sum into 8 fixed lanes (epsilon tier).
    const bool fast = cfg_.scoring == ScoringEngine::kIncrementalFast;
    std::pmr::vector<double> gain_mb(n, 0.0, mr);
    std::pmr::vector<double> gain_dwell(n, 0.0, mr);
    auto refresh_gain = [&](std::size_t i) {
        const auto cov = csoa.covered(i);
        const kernels::GainAccum g =
            fast ? kernels::residual_gain_fast(cov.data(), cov.size(),
                                               dsoa.data_mb.data(),
                                               dsoa.upload_s.data(),
                                               covered.data())
                 : kernels::residual_gain_ordered(cov.data(), cov.size(),
                                                  dsoa.data_mb.data(),
                                                  dsoa.upload_s.data(),
                                                  covered.data());
        gain_mb[i] = g.sum_mb;
        gain_dwell[i] = g.max_s;
    };

    // Heap key. Default path: the exact (state-independent) ratio — policy
    // A. exact_ratio_tsp: an upper bound on the ratio (travel >= 0, so
    // dropping the travel term can only increase eq13/per-hover) — policy B.
    auto key_of = [&](std::size_t i) {
        const double extra_hover = gain_dwell[i] * eta_h;
        if (!tsp) {
            return rank_ratio(cfg_.ratio_rule, gain_mb[i], extra_hover,
                              inst.uav.travel_energy(cache.get(i).delta_m));
        }
        switch (cfg_.ratio_rule) {
            case RatioRule::kPaper:
            case RatioRule::kPerHover:
                return gain_mb[i] / std::max(extra_hover, kEps);
            case RatioRule::kVolumeOnly:
                return gain_mb[i];
        }
        return -1.0;
    };

    // TSP(S_j) - TSP(S_{j-1}) for the exact_ratio_tsp path, served from the
    // PlanningContext distance matrix (node 0 = depot, node j+1 = *original*
    // candidate j) instead of rebuilding Euclidean rows per candidate. The
    // context matrix covers the full set, so view-local indices are mapped
    // back through view.original().
    std::pmr::vector<std::size_t> nodes(mr);
    auto tsp_delta = [&](std::size_t i) {
        const std::size_t m = tour.size() + 2;
        nodes.clear();
        nodes.reserve(m);
        nodes.push_back(0);
        for (const int key : tour.keys()) {
            nodes.push_back(view.original(static_cast<std::size_t>(key)) + 1);
        }
        nodes.push_back(view.original(i) + 1);
        graph::DenseGraph g(m);
        ctx.fill_submatrix({nodes.data(), nodes.size()}, g);
        const auto order = graph::christofides_tour(g, 0);
        const double new_len = g.tour_length(order);
        return std::max(0.0, new_len - tour.length());
    };

    // Exact score + selectability, with the identical expressions (and
    // operand order) as the reference engine's score_one.
    auto eval = [&](std::size_t i) -> std::pair<double, bool> {
        const double travel_delta = tsp ? tsp_delta(i) : cache.get(i).delta_m;
        const double extra_hover = gain_dwell[i] * eta_h;
        const double extra_travel = inst.uav.travel_energy(travel_delta);
        const double total =
            hover_energy + extra_hover +
            inst.uav.travel_energy(tour.length() + travel_delta);
        bool feasible = total <= energy_cap + kEps;
        if (feasible && deadline > 0.0) {
            const double tour_time =
                hover_seconds + gain_dwell[i] +
                inst.uav.travel_time(tour.length() + travel_delta);
            feasible = tour_time <= deadline + kEps;
        }
        const double ratio = rank_ratio(cfg_.ratio_rule, gain_mb[i],
                                        extra_hover, extra_travel);
        return {ratio, feasible && ratio > kEps};
    };

    // Initial full scoring pass.
    cache.rebuild_all(parallel);
    util::maybe_parallel_for(parallel, 0, n, refresh_gain, 64);
    for (std::size_t i = 0; i < n; ++i) {
        if (gain_mb[i] <= 0.0) {
            // No residual prize now means none ever (coverage only grows).
            queue.deactivate(i);
            cache.deactivate(i);
        } else {
            queue.update(i, key_of(i));
        }
    }

    int iterations = 0;
    int since_retour = 0;
    std::pmr::vector<std::size_t> gain_dirty(mr);
    std::pmr::vector<std::pair<std::size_t, double>> requeue(mr);
    std::pmr::vector<char> dirty_mark(n, 0, mr);
    std::pmr::vector<std::size_t> ins_changed(mr);
    for (;;) {
        ++iterations;
        const auto pick = queue.pop_best(/*exact_keys=*/!tsp, eval);
        if (!pick.found) break;
        const std::size_t best = pick.index;
        const auto& c = cands[best];
        const TourBuilder::Insertion ins = cache.get(best);

        tour.insert(c.pos, util::checked_cast<int>(best), ins);
        used[best] = 1;
        queue.deactivate(best);
        cache.deactivate(best);
        dwell_of[best] = gain_dwell[best];
        hover_energy += gain_dwell[best] * eta_h;
        hover_seconds += gain_dwell[best];
        collected_mb += gain_mb[best];

        // Newly covered devices dirty exactly the candidates that share
        // them (inverted index) — nobody else's gain moved.
        gain_dirty.clear();
        for (const int v : c.covered) {
            const auto dv = static_cast<std::size_t>(v);
            if (covered[dv] != 0) continue;
            covered[dv] = 1;
            for (const std::int32_t j : inverted.covering(dv)) {
                const auto cj = static_cast<std::size_t>(j);
                if (cj == best || used[cj] != 0 || !queue.active(cj) ||
                    dirty_mark[cj] != 0) {
                    continue;
                }
                dirty_mark[cj] = 1;
                gain_dirty.push_back(cj);
            }
        }

        ins_changed.clear();
        const bool do_retour =
            cfg_.retour_every > 0 && ++since_retour >= cfg_.retour_every;
        if (do_retour) {
            since_retour = 0;
            tour.reoptimize();
            cache.invalidate_all();
            cache.rebuild_all(parallel);
        } else {
            cache.on_insert(ins, ins_changed);
        }

        util::maybe_parallel_for(
            parallel && gain_dirty.size() >= 256, 0, gain_dirty.size(),
            [&](std::size_t t) { refresh_gain(gain_dirty[t]); }, 64);
        for (const std::size_t j : gain_dirty) {
            dirty_mark[j] = 0;
            if (gain_mb[j] <= 0.0) {
                queue.deactivate(j);
                cache.deactivate(j);
            }
        }

        if (do_retour) {
            // Every insertion delta changed and feasibility may have
            // loosened (shorter tour): refresh every live key, as a single
            // O(n) heapify instead of n heap pushes.
            requeue.clear();
            for (std::size_t j = 0; j < n; ++j) {
                if (used[j] == 0 && queue.active(j)) {
                    requeue.push_back({j, key_of(j)});
                }
            }
            queue.rebuild(requeue);
        } else {
            for (const std::size_t j : gain_dirty) {
                if (queue.active(j)) queue.update(j, key_of(j));
            }
            for (const std::size_t j : ins_changed) {
                if (queue.active(j)) queue.update(j, key_of(j));
            }
        }
    }
    tour.reoptimize();

    for (std::size_t i = 0; i < tour.size(); ++i) {
        const auto ci = static_cast<std::size_t>(tour.keys()[i]);
        out.plan.stops.push_back(
            {tour.stops()[i], dwell_of[ci], cands[ci].cell_id});
    }
    out.stats.planned_mb = collected_mb;
    out.stats.planned_energy_j =
        hover_energy + inst.uav.travel_energy(tour.length());
    out.stats.iterations = iterations;
    out.stats.runtime_s = timer.seconds();
    return out;
}

}  // namespace uavdc::core
