#pragma once

#include <string>

#include "uavdc/core/candidate_reduction.hpp"
#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/incremental_scorer.hpp"
#include "uavdc/core/planner.hpp"

namespace uavdc::core {

/// Candidate-ranking rule for the greedy insertion loop. The paper's
/// Eq. (13) scores marginal data per marginal energy; the alternatives
/// isolate how load-bearing that design choice is (abl_ratio bench).
enum class RatioRule {
    kPaper,       ///< P'(s) / (t'(s) eta_h + Delta-travel energy), Eq. 13
    kVolumeOnly,  ///< P'(s) — grab the biggest pile, ignore cost
    kPerHover,    ///< P'(s) / hover energy only — travel treated as free
};

[[nodiscard]] std::string to_string(RatioRule rule);

/// Configuration for Algorithm 2.
struct Algorithm2Config {
    HoverCandidateConfig candidates;
    /// Candidate-ranking rule (the paper's Eq. 13 by default).
    RatioRule ratio_rule = RatioRule::kPaper;
    /// Rank candidates with the literal paper rule — a full Christofides
    /// re-tour TSP(S_j) per candidate per iteration (O(M) TSP calls per
    /// insertion). Tractable only for small instances; the default uses the
    /// cheapest-insertion travel delta instead (DESIGN.md substitution #3).
    bool exact_ratio_tsp = false;
    /// Re-optimise the tour (Christofides + 2-opt over the selected stops)
    /// after this many insertions; 0 disables periodic re-touring (a final
    /// re-tour still runs). Shorter tours free energy for more stops.
    int retour_every = 8;
    /// Score candidates on the global thread pool when there are at least
    /// this many of them (0 = always serial).
    int parallel_threshold = 512;
    /// Optional mission deadline: total tour time T = T_h + T_t must not
    /// exceed this many seconds (0 = unconstrained). An operational
    /// extension beyond the paper's energy-only budget.
    double max_tour_time_s = 0.0;
    /// Scoring engine. kIncremental (lazy-greedy heap + inverted coverage
    /// index + insertion cache) and kReference (full rescan per iteration)
    /// produce bit-identical plans; the reference engine is the equivalence
    /// oracle.
    ScoringEngine scoring = ScoringEngine::kIncremental;
    /// Candidate-space reduction applied before planning (disabled by
    /// default). When `reduction.refine_band_m > 0` the planner re-plans
    /// once over the reduced set plus the originals within the band of the
    /// incumbent tour and keeps the better plan.
    CandidateReductionConfig reduction;
};

/// The paper's Algorithm 2 (Sec. V): heuristic for the data collection
/// maximization problem *with* hovering coverage overlapping.
///
/// Iteratively grows the tour from {depot}: each round picks the unvisited
/// candidate maximising the ratio rho(s) = P'(s) / (t'(s) eta_h + Delta
/// travel energy) (Eq. 13), where P'(s) counts only devices not already
/// covered (Eq. 11) and t'(s) is the max residual upload time among them
/// (Eq. 12); stops when no candidate fits the remaining energy.
class GreedyCoveragePlanner final : public Planner {
  public:
    explicit GreedyCoveragePlanner(Algorithm2Config cfg = {})
        : cfg_(std::move(cfg)) {}

    using Planner::plan;
    [[nodiscard]] PlanResult plan(const PlanningContext& ctx) override;
    [[nodiscard]] HoverCandidateConfig candidate_config() const override {
        return cfg_.candidates;
    }
    [[nodiscard]] std::string name() const override { return "alg2-greedy"; }

  private:
    [[nodiscard]] PlanResult plan_reference(const PlanningContext& ctx,
                                            const CandidateView& view);
    [[nodiscard]] PlanResult plan_incremental(const PlanningContext& ctx,
                                              const CandidateView& view);

    Algorithm2Config cfg_;
};

}  // namespace uavdc::core
