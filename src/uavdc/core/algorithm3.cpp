#include "uavdc/core/algorithm3.hpp"

#include <algorithm>
#include <limits>
#include <memory_resource>
#include <optional>

#include "uavdc/core/batch_kernels.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/tour_builder.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

namespace {

constexpr double kEps = 1e-9;
constexpr double kMinGainMb = 1e-6;

/// Best virtual-location choice for one real candidate this iteration.
struct Score {
    double new_mb{0.0};    ///< P'(s_{j,k}) under current residuals
    double extra_dwell_s{0.0};  ///< k * t'(s_j) / K
    TourBuilder::Insertion ins{};
    bool in_tour{false};
    bool feasible{false};
    double ratio{-1.0};
};

}  // namespace

PlanResult PartialCollectionPlanner::plan(const PlanningContext& ctx) {
    UAVDC_REQUIRE(cfg_.k >= 1)
        << "PartialCollectionPlanner: k must be >= 1, got " << cfg_.k;
    auto run = [&](const CandidateView& view) {
        return cfg_.scoring == ScoringEngine::kReference
                   ? plan_reference(ctx, view)
                   : plan_incremental(ctx, view);
    };
    if (!cfg_.reduction.enabled()) {
        return run(CandidateView{&ctx.candidates(), &ctx.candidate_soa(), {},
                                 &ctx.inverted_coverage()});
    }
    util::Timer timer;
    const ReducedCandidates& reduced = ctx.reduced_candidates(cfg_.reduction);
    PlanResult out = run(reduced.view());
    int iterations = out.stats.iterations;
    if (cfg_.reduction.refine_band_m > 0.0 && !out.plan.stops.empty()) {
        // Refine-and-replan: reinstate the originals near the incumbent tour
        // and keep the better of the two plans (by collected volume).
        std::vector<geom::Vec2> stops;
        stops.reserve(out.plan.stops.size());
        for (const auto& s : out.plan.stops) stops.push_back(s.pos);
        const ReducedCandidates refined = refine_near_tour(
            ctx.candidates(), reduced, stops, ctx.instance().depot,
            cfg_.reduction.refine_band_m, ctx.instance().devices.size());
        if (refined.set.candidates.size() > reduced.set.candidates.size()) {
            PlanResult replanned = run(refined.view());
            iterations += replanned.stats.iterations;
            if (replanned.stats.planned_mb > out.stats.planned_mb) {
                out = std::move(replanned);
            }
        }
    }
    if (out.plan.stops.empty()) {
        // Same fallback as GreedyCoveragePlanner::plan: an empty reduced
        // plan means the pruning removed every reachable candidate, so
        // re-plan on the full set rather than report zero collection.
        PlanResult full =
            run(CandidateView{&ctx.candidates(), &ctx.candidate_soa(), {},
                              &ctx.inverted_coverage()});
        iterations += full.stats.iterations;
        if (full.stats.planned_mb > out.stats.planned_mb) {
            out = std::move(full);
        }
    }
    out.stats.iterations = iterations;
    out.stats.runtime_s = timer.seconds();
    return out;
}

PlanResult PartialCollectionPlanner::plan_reference(
    const PlanningContext& ctx, const CandidateView& view) {
    util::Timer timer;
    PlanResult out;
    const model::Instance& inst = ctx.instance();

    const auto& cands = view.set->candidates;
    out.stats.candidates = util::checked_cast<int>(cands.size());
    if (cands.empty()) {
        out.stats.runtime_s = timer.seconds();
        return out;
    }

    const double bw = inst.uav.bandwidth_mbps;
    const double eta_h = inst.uav.hover_power_w;
    const double energy_cap = inst.uav.energy_j;
    const int k_max = cfg_.k;

    std::vector<double> residual(inst.devices.size());
    for (std::size_t v = 0; v < inst.devices.size(); ++v) {
        residual[v] = inst.devices[v].data_mb;
    }
    std::vector<double> dwell_of(cands.size(), 0.0);
    std::vector<char> in_tour(cands.size(), 0);
    TourBuilder tour(inst.depot);
    double hover_energy = 0.0;
    double hover_seconds = 0.0;
    double collected_mb = 0.0;
    const double deadline = cfg_.max_tour_time_s;

    std::vector<Score> scores(cands.size());
    const bool parallel =
        cfg_.parallel_threshold > 0 &&
        cands.size() >= static_cast<std::size_t>(cfg_.parallel_threshold);

    int iterations = 0;
    int since_retour = 0;
    for (;;) {
        ++iterations;
        auto score_one = [&](std::size_t j) {
            Score best{};
            const auto& c = cands[j];
            // t'(s_j): max residual upload time over C(s_j) (Eq. 12 with
            // residual volumes, per Alg. 3 lines 11-12).
            double t_full = 0.0;
            for (int v : c.covered) {
                t_full = std::max(
                    t_full, residual[static_cast<std::size_t>(v)] / bw);
            }
            if (t_full > kEps) {
                const TourBuilder::Insertion ins =
                    in_tour[j] != 0 ? TourBuilder::Insertion{0, 0.0}
                                    : tour.cheapest_insertion(c.pos);
                const double travel_j_extra =
                    inst.uav.travel_energy(ins.delta_m);
                // Evaluate each virtual location s_{j,k}; keep the best
                // feasible ratio (the argmax in Alg. 3 line 6 ranges over
                // all virtual locations).
                for (int k = 1; k <= k_max; ++k) {
                    const double dt = static_cast<double>(k) * t_full /
                                      static_cast<double>(k_max);
                    double gain = 0.0;  // Eq. 4 under residual volumes
                    for (int v : c.covered) {
                        gain += std::min(
                            residual[static_cast<std::size_t>(v)], bw * dt);
                    }
                    if (gain <= kMinGainMb) continue;
                    const double extra_hover = dt * eta_h;
                    const double total =
                        hover_energy + extra_hover +
                        inst.uav.travel_energy(tour.length() + ins.delta_m);
                    if (total > energy_cap + kEps) continue;
                    if (deadline > 0.0) {
                        const double tour_time =
                            hover_seconds + dt +
                            inst.uav.travel_time(tour.length() +
                                                 ins.delta_m);
                        if (tour_time > deadline + kEps) continue;
                    }
                    const double ratio =
                        gain /
                        std::max(extra_hover + travel_j_extra, kEps);
                    if (ratio > best.ratio) {
                        best.new_mb = gain;
                        best.extra_dwell_s = dt;
                        best.ins = ins;
                        best.in_tour = in_tour[j] != 0;
                        best.feasible = true;
                        best.ratio = ratio;
                    }
                }
            }
            scores[j] = best;
        };
        util::maybe_parallel_for(parallel, 0, cands.size(), score_one, 32);

        // Deterministic argmax: (ratio desc, index asc), threshold > kEps.
        std::size_t best = cands.size();
        for (std::size_t j = 0; j < cands.size(); ++j) {
            if (scores[j].feasible && scores[j].ratio > kEps &&
                (best == cands.size() ||
                 scores[j].ratio > scores[best].ratio)) {
                best = j;
            }
        }
        if (best == cands.size()) break;

        const auto& c = cands[best];
        const Score& s = scores[best];
        if (!s.in_tour) {
            tour.insert(c.pos, util::checked_cast<int>(best), s.ins);
            in_tour[best] = 1;
            if (cfg_.retour_every > 0 &&
                ++since_retour >= cfg_.retour_every) {
                tour.reoptimize();
                since_retour = 0;
            }
        }
        dwell_of[best] += s.extra_dwell_s;
        hover_energy += s.extra_dwell_s * eta_h;
        hover_seconds += s.extra_dwell_s;
        collected_mb += s.new_mb;
        const double budget_mb = bw * s.extra_dwell_s;
        for (int v : c.covered) {
            auto& r = residual[static_cast<std::size_t>(v)];
            r -= std::min(r, budget_mb);
        }
    }
    tour.reoptimize();

    for (std::size_t i = 0; i < tour.size(); ++i) {
        const auto ci = static_cast<std::size_t>(tour.keys()[i]);
        out.plan.stops.push_back(
            {tour.stops()[i], dwell_of[ci], cands[ci].cell_id});
    }
    out.stats.planned_mb = collected_mb;
    out.stats.planned_energy_j =
        hover_energy + inst.uav.travel_energy(tour.length());
    out.stats.iterations = iterations;
    out.stats.runtime_s = timer.seconds();
    return out;
}

PlanResult PartialCollectionPlanner::plan_incremental(
    const PlanningContext& ctx, const CandidateView& view) {
    util::Timer timer;
    PlanResult out;
    const model::Instance& inst = ctx.instance();

    const auto& cands = view.set->candidates;
    out.stats.candidates = util::checked_cast<int>(cands.size());
    if (cands.empty()) {
        out.stats.runtime_s = timer.seconds();
        return out;
    }
    const std::size_t n = cands.size();

    const double bw = inst.uav.bandwidth_mbps;
    const double eta_h = inst.uav.hover_power_w;
    const double energy_cap = inst.uav.energy_j;
    const int k_max = cfg_.k;
    const double deadline = cfg_.max_tour_time_s;
    const bool parallel =
        cfg_.parallel_threshold > 0 &&
        n >= static_cast<std::size_t>(cfg_.parallel_threshold);

    // Per-plan scratch lives in the context's arena: back-to-back plans on
    // the same context reuse one warmed block (zero allocation).
    ArenaLease lease = ctx.acquire_arena();
    std::pmr::memory_resource* mr = lease.resource();

    std::pmr::vector<double> residual(inst.devices.size(), 0.0, mr);
    for (std::size_t v = 0; v < inst.devices.size(); ++v) {
        residual[v] = inst.devices[v].data_mb;
    }
    std::pmr::vector<double> dwell_of(n, 0.0, mr);
    std::pmr::vector<char> in_tour(n, 0, mr);
    TourBuilder tour(inst.depot);
    double hover_energy = 0.0;
    double hover_seconds = 0.0;
    double collected_mb = 0.0;

    // SoA candidate plane (coords + forward CSR coverage) shared across
    // plans through the context. The gain loops below walk the CSR lists
    // with kernels whose accumulation order matches the reference engine
    // exactly (ordered) or reassociates into 8 fixed lanes (fast, opt-in
    // epsilon tier).
    const CandidateSoa& csoa = *view.soa;
    const bool fast = cfg_.scoring == ScoringEngine::kIncrementalFast;
    InsertionCache cache(tour, std::span(csoa.pos.xs.data(), n),
                         std::span(csoa.pos.ys.data(), n), mr);
    // Device -> covering-candidates inversion: reuse the view's prebuilt
    // index (context- or reduction-memoized; the warm-serve win), building
    // locally only for bare views.
    std::optional<InvertedCoverageIndex> local_inverted;
    if (view.inverted == nullptr) {
        local_inverted.emplace(*view.set, inst.devices.size());
    }
    const InvertedCoverageIndex& inverted =
        view.inverted != nullptr ? *view.inverted : *local_inverted;
    LazyGreedyQueue queue(n);
    std::pmr::vector<Score> scores(n, Score{}, mr);  // read back on selection

    auto capped_sum = [&](std::span<const std::int32_t> cov, double cap) {
        return fast ? kernels::capped_sum_fast(cov.data(), cov.size(),
                                               residual.data(), cap)
                    : kernels::capped_sum_ordered(cov.data(), cov.size(),
                                                  residual.data(), cap);
    };

    // Upper-bound key: the best per-k ratio *ignoring feasibility*. Each
    // per-k value is computed with the exact expressions of score_one, so
    // the max over all k is >= the max over the feasible subset — a valid
    // bound with no floating-point slack. Returns -1 when the candidate is
    // permanently dead (residuals only shrink, so t'(s) <= eps or all-k
    // gains <= kMinGainMb can never revert).
    auto key_of = [&](std::size_t j) {
        const auto cov = csoa.covered(j);
        const double t_full = kernels::max_residual_time_ordered(
            cov.data(), cov.size(), residual.data(), bw);
        if (t_full <= kEps) return -1.0;
        const double travel_extra =
            in_tour[j] != 0 ? inst.uav.travel_energy(0.0)
                            : inst.uav.travel_energy(cache.get(j).delta_m);
        double ub = -1.0;
        for (int k = 1; k <= k_max; ++k) {
            const double dt = static_cast<double>(k) * t_full /
                              static_cast<double>(k_max);
            const double gain = capped_sum(cov, bw * dt);
            if (gain <= kMinGainMb) continue;
            const double extra_hover = dt * eta_h;
            ub = std::max(ub,
                          gain / std::max(extra_hover + travel_extra, kEps));
        }
        return ub;
    };

    // Exact evaluation: byte-for-byte the reference score_one, with the
    // cached insertion standing in for tour.cheapest_insertion.
    auto eval = [&](std::size_t j) -> std::pair<double, bool> {
        Score best{};
        const auto cov = csoa.covered(j);
        const double t_full = kernels::max_residual_time_ordered(
            cov.data(), cov.size(), residual.data(), bw);
        if (t_full > kEps) {
            const TourBuilder::Insertion ins =
                in_tour[j] != 0 ? TourBuilder::Insertion{0, 0.0}
                                : cache.get(j);
            const double travel_j_extra = inst.uav.travel_energy(ins.delta_m);
            for (int k = 1; k <= k_max; ++k) {
                const double dt = static_cast<double>(k) * t_full /
                                  static_cast<double>(k_max);
                const double gain = capped_sum(cov, bw * dt);
                if (gain <= kMinGainMb) continue;
                const double extra_hover = dt * eta_h;
                const double total =
                    hover_energy + extra_hover +
                    inst.uav.travel_energy(tour.length() + ins.delta_m);
                if (total > energy_cap + kEps) continue;
                if (deadline > 0.0) {
                    const double tour_time =
                        hover_seconds + dt +
                        inst.uav.travel_time(tour.length() + ins.delta_m);
                    if (tour_time > deadline + kEps) continue;
                }
                const double ratio =
                    gain / std::max(extra_hover + travel_j_extra, kEps);
                if (ratio > best.ratio) {
                    best.new_mb = gain;
                    best.extra_dwell_s = dt;
                    best.ins = ins;
                    best.in_tour = in_tour[j] != 0;
                    best.feasible = true;
                    best.ratio = ratio;
                }
            }
        }
        scores[j] = best;
        return {best.ratio, best.feasible && best.ratio > kEps};
    };

    cache.rebuild_all(parallel);
    for (std::size_t j = 0; j < n; ++j) {
        const double key = key_of(j);
        if (key < 0.0) {
            queue.deactivate(j);
            cache.deactivate(j);
        } else {
            queue.update(j, key);
        }
    }

    int iterations = 0;
    int since_retour = 0;
    std::pmr::vector<std::size_t> gain_dirty(mr);
    std::pmr::vector<std::pair<std::size_t, double>> requeue(mr);
    std::pmr::vector<char> dirty_mark(n, 0, mr);
    std::pmr::vector<std::size_t> ins_changed(mr);
    for (;;) {
        ++iterations;
        const auto pick = queue.pop_best(/*exact_keys=*/false, eval);
        if (!pick.found) break;
        const std::size_t best = pick.index;
        const auto& c = cands[best];
        const Score s = scores[best];

        const bool was_new = !s.in_tour;
        bool do_retour = false;
        if (was_new) {
            tour.insert(c.pos, util::checked_cast<int>(best), s.ins);
            in_tour[best] = 1;
            cache.deactivate(best);
            if (cfg_.retour_every > 0 &&
                ++since_retour >= cfg_.retour_every) {
                do_retour = true;
                since_retour = 0;
            }
        }
        dwell_of[best] += s.extra_dwell_s;
        hover_energy += s.extra_dwell_s * eta_h;
        hover_seconds += s.extra_dwell_s;
        collected_mb += s.new_mb;

        // Drain residuals; a device whose residual moved dirties exactly
        // the candidates covering it (the selected one included — it needs
        // a fresh key or retirement).
        const double budget_mb = bw * s.extra_dwell_s;
        gain_dirty.clear();
        for (int v : c.covered) {
            const auto dv = static_cast<std::size_t>(v);
            auto& r = residual[dv];
            const double before = r;
            r -= std::min(r, budget_mb);
            if (r == before) continue;
            for (const std::int32_t j : inverted.covering(dv)) {
                const auto cj = static_cast<std::size_t>(j);
                if (!queue.active(cj) || dirty_mark[cj] != 0) continue;
                dirty_mark[cj] = 1;
                gain_dirty.push_back(cj);
            }
        }

        ins_changed.clear();
        if (do_retour) {
            tour.reoptimize();
            cache.invalidate_all();
            cache.rebuild_all(parallel);
        } else if (was_new) {
            cache.on_insert(s.ins, ins_changed);
        }

        auto refresh_key = [&](std::size_t j) {
            if (!queue.active(j)) return;
            const double key = key_of(j);
            if (key < 0.0) {
                queue.deactivate(j);
                if (in_tour[j] == 0) cache.deactivate(j);
            } else {
                queue.update(j, key);
            }
        };
        if (do_retour) {
            for (const std::size_t j : gain_dirty) dirty_mark[j] = 0;
            // Every insertion delta changed: refresh every live key, as a
            // single O(n) heapify instead of n heap pushes.
            requeue.clear();
            for (std::size_t j = 0; j < n; ++j) {
                if (!queue.active(j)) continue;
                const double key = key_of(j);
                if (key < 0.0) {
                    queue.deactivate(j);
                    if (in_tour[j] == 0) cache.deactivate(j);
                } else {
                    requeue.push_back({j, key});
                }
            }
            queue.rebuild(requeue);
        } else {
            for (const std::size_t j : gain_dirty) {
                dirty_mark[j] = 0;
                refresh_key(j);
            }
            for (const std::size_t j : ins_changed) refresh_key(j);
        }
    }
    tour.reoptimize();

    for (std::size_t i = 0; i < tour.size(); ++i) {
        const auto ci = static_cast<std::size_t>(tour.keys()[i]);
        out.plan.stops.push_back(
            {tour.stops()[i], dwell_of[ci], cands[ci].cell_id});
    }
    out.stats.planned_mb = collected_mb;
    out.stats.planned_energy_j =
        hover_energy + inst.uav.travel_energy(tour.length());
    out.stats.iterations = iterations;
    out.stats.runtime_s = timer.seconds();
    return out;
}

}  // namespace uavdc::core
