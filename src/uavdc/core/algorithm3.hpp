#pragma once

#include "uavdc/core/candidate_reduction.hpp"
#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/incremental_scorer.hpp"
#include "uavdc/core/planner.hpp"

namespace uavdc::core {

/// Configuration for Algorithm 3.
struct Algorithm3Config {
    HoverCandidateConfig candidates;
    /// K: number of equal sojourn-duration fractions per hovering location
    /// (Sec. III-C). K = 1 degenerates to full collection (Algorithm 2's
    /// problem); larger K plans dwell in finer steps.
    int k = 2;
    /// Re-optimise the tour after this many new stops (0 = final pass only).
    int retour_every = 8;
    /// Parallel candidate scoring threshold (0 = always serial).
    int parallel_threshold = 512;
    /// Optional mission deadline on T = T_h + T_t in seconds
    /// (0 = unconstrained); see Algorithm2Config::max_tour_time_s.
    double max_tour_time_s = 0.0;
    /// Scoring engine (see Algorithm2Config::scoring); both engines produce
    /// bit-identical plans.
    ScoringEngine scoring = ScoringEngine::kIncremental;
    /// Candidate-space reduction applied before planning (disabled by
    /// default); see Algorithm2Config::reduction.
    CandidateReductionConfig reduction;
};

/// The paper's Algorithm 3 (Sec. VI): heuristic for the *partial* data
/// collection maximization problem.
///
/// Every real hovering location s_j spawns K virtual locations with dwell
/// k * t(s_j) / K and prize P(s_{j,k}) (Eq. 4-5). Following Lemma 2, at
/// most one virtual location per real location lives in the tour: choosing
/// a longer virtual location of an already-included s_j replaces the
/// shorter one. We implement this with residual-data bookkeeping — the
/// replacement rule is exactly "extend the dwell at s_j by k * t(s_j) / K
/// where t(s_j) is recomputed from residual volumes" (Alg. 3 lines 7-12),
/// and each device's residual may be drained across multiple overlapping
/// stops (the paper's multi-location pickup).
class PartialCollectionPlanner final : public Planner {
  public:
    explicit PartialCollectionPlanner(Algorithm3Config cfg = {})
        : cfg_(std::move(cfg)) {}

    using Planner::plan;
    [[nodiscard]] PlanResult plan(const PlanningContext& ctx) override;
    [[nodiscard]] HoverCandidateConfig candidate_config() const override {
        return cfg_.candidates;
    }
    [[nodiscard]] std::string name() const override {
        return "alg3-k" + std::to_string(cfg_.k);
    }

  private:
    [[nodiscard]] PlanResult plan_reference(const PlanningContext& ctx,
                                            const CandidateView& view);
    [[nodiscard]] PlanResult plan_incremental(const PlanningContext& ctx,
                                              const CandidateView& view);

    Algorithm3Config cfg_;
};

}  // namespace uavdc::core
