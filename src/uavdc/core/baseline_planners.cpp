#include "uavdc/core/baseline_planners.hpp"

#include <algorithm>
#include <cmath>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/tour_builder.hpp"
#include "uavdc/geom/coverage.hpp"
#include "uavdc/geom/kmeans.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

namespace {

/// Build a plan hovering at `centers` with dwell = max upload time of the
/// devices each centre actually covers; returns the plan and the volume of
/// data it would collect (each device counted at its first covering stop).
struct CenterPlan {
    model::FlightPlan plan;
    double collected_mb{0.0};
    double tour_m{0.0};
    double hover_s{0.0};
};

CenterPlan plan_from_centers(const model::Instance& inst,
                             const std::vector<geom::Vec2>& centers) {
    CenterPlan out;
    if (centers.empty()) return out;
    const auto dev_pos = inst.device_positions();
    const geom::CoverageIndex cov(centers, dev_pos,
                                  inst.uav.coverage_radius_m);
    // Order the stops with the tour builder, skipping centres covering
    // nothing.
    TourBuilder tour(inst.depot);
    std::vector<double> dwell(centers.size(), 0.0);
    std::vector<bool> claimed(inst.devices.size(), false);
    for (std::size_t c = 0; c < centers.size(); ++c) {
        double max_t = 0.0;
        for (int v : cov.covered(util::checked_cast<int>(c))) {
            const auto d = static_cast<std::size_t>(v);
            max_t = std::max(max_t,
                             inst.devices[d].upload_time(
                                 inst.uav.bandwidth_mbps));
            if (!claimed[d]) {
                claimed[d] = true;
                out.collected_mb += inst.devices[d].data_mb;
            }
        }
        if (max_t <= 0.0) continue;
        dwell[c] = max_t;
        tour.insert(centers[c], util::checked_cast<int>(c),
                    tour.cheapest_insertion(centers[c]));
        out.hover_s += max_t;
    }
    tour.reoptimize();
    for (std::size_t i = 0; i < tour.size(); ++i) {
        const auto c = static_cast<std::size_t>(tour.keys()[i]);
        out.plan.stops.push_back({tour.stops()[i], dwell[c], -1});
    }
    out.tour_m = tour.length();
    return out;
}

}  // namespace

PlanResult ClusterPlanner::plan(const PlanningContext& ctx) {
    util::Timer timer;
    PlanResult res;
    const model::Instance& inst = ctx.instance();
    if (inst.devices.empty()) {
        res.stats.runtime_s = timer.seconds();
        return res;
    }
    const auto pts = inst.device_positions();
    std::vector<double> weights;
    if (cfg_.weight_by_data) {
        weights.reserve(inst.devices.size());
        for (const auto& d : inst.devices) weights.push_back(d.data_mb);
    }

    const int k_max = std::min<int>(cfg_.max_clusters,
                                    util::checked_cast<int>(pts.size()));
    // Decrease k until the tour fits the battery (fewer, bigger clusters =
    // shorter tours but more devices out of range).
    for (int k = k_max; k >= 1; --k) {
        geom::KMeansConfig kc;
        kc.seed = cfg_.seed;
        const auto clusters = geom::kmeans(pts, k, weights, kc);
        CenterPlan cand = plan_from_centers(inst, clusters.centroids);
        const double energy =
            inst.uav.travel_energy(
                cand.plan.travel_length(inst.depot)) +
            inst.uav.hover_energy(cand.plan.hover_time());
        ++res.stats.iterations;
        if (energy <= inst.uav.energy_j + 1e-9) {
            res.plan = std::move(cand.plan);
            res.stats.planned_mb = cand.collected_mb;
            res.stats.planned_energy_j = energy;
            res.stats.candidates = k;
            break;
        }
    }
    res.stats.runtime_s = timer.seconds();
    return res;
}

PlanResult SweepPlanner::plan(const PlanningContext& ctx) {
    util::Timer timer;
    PlanResult res;
    const model::Instance& inst = ctx.instance();
    const double r0 = inst.uav.coverage_radius_m;
    const double lattice = std::sqrt(2.0) * r0;  // gap-free disk coverage
    const double dy = std::max(1.0, lattice * cfg_.row_overlap);
    const double dx = std::max(1.0, lattice * cfg_.along_overlap);
    const auto& region = inst.region;

    // Serpentine waypoints over the whole region. Starting half a lattice
    // step inside the region keeps every boundary device within range of
    // some waypoint.
    std::vector<geom::Vec2> route;
    bool left_to_right = true;
    for (double y = region.lo.y + dy / 2.0; y < region.hi.y + dy / 2.0;
         y += dy) {
        std::vector<double> xs;
        for (double x = region.lo.x + dx / 2.0; x < region.hi.x + dx / 2.0;
             x += dx) {
            xs.push_back(std::min(x, region.hi.x));
        }
        if (!left_to_right) std::reverse(xs.begin(), xs.end());
        for (double x : xs) {
            route.push_back({x, std::min(y, region.hi.y)});
        }
        left_to_right = !left_to_right;
    }

    // Walk the sweep, stopping at each waypoint that still covers residual
    // data, until the battery (including the flight home) runs out.
    const auto dev_pos = inst.device_positions();
    const geom::CoverageIndex cov(route, dev_pos, r0);
    std::vector<bool> claimed(inst.devices.size(), false);
    geom::Vec2 here = inst.depot;
    double used_travel_m = 0.0;
    double used_hover_s = 0.0;
    for (std::size_t w = 0; w < route.size(); ++w) {
        double max_t = 0.0;
        double gain = 0.0;
        for (int v : cov.covered(util::checked_cast<int>(w))) {
            const auto d = static_cast<std::size_t>(v);
            if (claimed[d]) continue;
            max_t = std::max(max_t, inst.devices[d].upload_time(
                                        inst.uav.bandwidth_mbps));
            gain += inst.devices[d].data_mb;
        }
        if (max_t <= 0.0) continue;
        // NOLINTBEGIN(uavdc-batched-distance): the baseline walks its fixed
        // route once; the scalar form is the documented reference behaviour
        const double leg = geom::distance(here, route[w]);
        const double home = geom::distance(route[w], inst.depot);
        // NOLINTEND(uavdc-batched-distance)
        const double energy_if_stop =
            inst.uav.travel_energy(used_travel_m + leg + home) +
            inst.uav.hover_energy(used_hover_s + max_t);
        if (energy_if_stop > inst.uav.energy_j + 1e-9) break;
        used_travel_m += leg;
        used_hover_s += max_t;
        here = route[w];
        res.plan.stops.push_back({route[w], max_t, -1});
        res.stats.planned_mb += gain;
        for (int v : cov.covered(util::checked_cast<int>(w))) {
            claimed[static_cast<std::size_t>(v)] = true;
        }
        ++res.stats.iterations;
    }
    res.stats.planned_energy_j =
        res.plan.total_energy(inst.depot, inst.uav);
    res.stats.candidates = util::checked_cast<int>(route.size());
    res.stats.runtime_s = timer.seconds();
    return res;
}

}  // namespace uavdc::core
