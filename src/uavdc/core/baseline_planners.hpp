#pragma once

#include "uavdc/core/planner.hpp"

namespace uavdc::core {

/// Related-work baseline after Mozaffari et al. [10] (the paper's Sec. II):
/// cluster the devices with (data-weighted) k-means and hover at the
/// cluster centroids. Devices outside R0 of their centroid are simply
/// missed — the citation's clusters are radio cells, not coverage-aware
/// disks, which is exactly the weakness the paper's grid candidates fix.
/// k is chosen by decreasing k from `max_clusters` until the Christofides
/// tour over the centroids fits the energy budget.
struct ClusterPlannerConfig {
    int max_clusters = 64;
    std::uint64_t seed = 17;
    /// Weight clusters by stored data volume instead of uniformly.
    bool weight_by_data = true;
};

class ClusterPlanner final : public Planner {
  public:
    explicit ClusterPlanner(ClusterPlannerConfig cfg = {}) : cfg_(cfg) {}
    using Planner::plan;
    [[nodiscard]] PlanResult plan(const PlanningContext& ctx) override;
    [[nodiscard]] std::string name() const override { return "kmeans"; }

  private:
    ClusterPlannerConfig cfg_;
};

/// Classic survey baseline: a boustrophedon (lawn-mower) sweep over a
/// square lattice of hover points, pausing at each point that still covers
/// residual data. A lattice with spacing s is fully covered by disks of
/// radius R0 iff s <= sqrt(2) * R0 (worst case is the cell centre), so the
/// defaults use sqrt(2) * R0 * overlap. The sweep is truncated when the
/// energy budget runs out. No workload awareness at all — the "what if we
/// just fly the whole field" strawman.
struct SweepPlannerConfig {
    /// Row spacing as a fraction of sqrt(2) * R0 (<= 1 guarantees
    /// gap-free coverage).
    double row_overlap = 0.95;
    /// Hover-point spacing along a row, as a fraction of sqrt(2) * R0.
    double along_overlap = 0.95;
};

class SweepPlanner final : public Planner {
  public:
    explicit SweepPlanner(SweepPlannerConfig cfg = {}) : cfg_(cfg) {}
    using Planner::plan;
    [[nodiscard]] PlanResult plan(const PlanningContext& ctx) override;
    [[nodiscard]] std::string name() const override { return "sweep"; }

  private:
    SweepPlannerConfig cfg_;
};

}  // namespace uavdc::core
