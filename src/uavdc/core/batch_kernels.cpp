#include "uavdc/core/batch_kernels.hpp"

#include <cmath>
#include <cstdint>

#include "uavdc/core/soa_layout.hpp"

// This TU is compiled with -ffp-contract=off (see src/CMakeLists.txt): gcc
// defaults to -ffp-contract=fast, and letting an AVX2-targeted clone fuse
// dx*dx + dy*dy into an FMA would change the result bits relative to the
// scalar reference expression. With contraction off, sqrt/add/mul are all
// IEEE correctly-rounded per lane, so the vectorized loops below are
// bit-identical to geom::distance / geom::distance2 at every width.
//
// Dispatch: each kernel has a portable body (inlined into a baseline and,
// on x86-64, an __attribute__((target("avx2"))) clone) selected once via
// __builtin_cpu_supports. We deliberately avoid target_clones/ifunc (fragile
// under sanitizers) and intrinsics (ISSUE: "no intrinsics required").

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UAVDC_HAVE_AVX2_DISPATCH 1
#else
#define UAVDC_HAVE_AVX2_DISPATCH 0
#endif

#if UAVDC_HAVE_AVX2_DISPATCH
#define UAVDC_KERNEL_BODY inline __attribute__((always_inline))
#else
#define UAVDC_KERNEL_BODY inline
#endif

namespace uavdc::core::kernels {

namespace {

UAVDC_KERNEL_BODY void squared_distances_body(const double* xs,
                                              const double* ys, std::size_t n,
                                              double px, double py,
                                              double* out) {
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - px;
        const double dy = ys[i] - py;
        out[i] = dx * dx + dy * dy;
    }
}

UAVDC_KERNEL_BODY void distances_body(const double* xs, const double* ys,
                                      std::size_t n, double px, double py,
                                      double* out) {
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - px;
        const double dy = ys[i] - py;
        out[i] = std::sqrt(dx * dx + dy * dy);
    }
}

UAVDC_KERNEL_BODY void insertion_edge_deltas_body(
    const double* xs, const double* ys, std::size_t n, geom::Vec2 a,
    geom::Vec2 p, geom::Vec2 b, double len_ap, double len_pb, double* n1,
    double* n2) {
    for (std::size_t i = 0; i < n; ++i) {
        const double x = xs[i];
        const double y = ys[i];
        const double dxp_x = x - p.x;
        const double dxp_y = y - p.y;
        const double d_xp = std::sqrt(dxp_x * dxp_x + dxp_y * dxp_y);
        const double dax_x = a.x - x;
        const double dax_y = a.y - y;
        const double d_ax = std::sqrt(dax_x * dax_x + dax_y * dax_y);
        const double dxb_x = x - b.x;
        const double dxb_y = y - b.y;
        const double d_xb = std::sqrt(dxb_x * dxb_x + dxb_y * dxb_y);
        n1[i] = (d_ax + d_xp) - len_ap;
        n2[i] = (d_xp + d_xb) - len_pb;
    }
}

UAVDC_KERNEL_BODY void fill_distance_tile_body(const double* xs,
                                               const double* ys,
                                               std::size_t c0, std::size_t c1,
                                               double px, double py,
                                               double* row) {
    for (std::size_t c = c0; c < c1; ++c) {
        const double dx = px - xs[c];
        const double dy = py - ys[c];
        row[c] = std::sqrt(dx * dx + dy * dy);
    }
}

UAVDC_KERNEL_BODY void fill_squared_distance_tile_body(
    const double* xs, const double* ys, std::size_t c0, std::size_t c1,
    double px, double py, double* row) {
    for (std::size_t c = c0; c < c1; ++c) {
        const double dx = px - xs[c];
        const double dy = py - ys[c];
        row[c] = dx * dx + dy * dy;
    }
}

UAVDC_KERNEL_BODY void squared_insertion_lower_bounds_body(
    const double* xs, const double* ys, std::size_t n, geom::Vec2 a,
    geom::Vec2 p, geom::Vec2 b, double* s1, double* s2) {
    for (std::size_t i = 0; i < n; ++i) {
        const double x = xs[i];
        const double y = ys[i];
        const double dxp_x = x - p.x;
        const double dxp_y = y - p.y;
        const double d2_xp = dxp_x * dxp_x + dxp_y * dxp_y;
        const double dax_x = a.x - x;
        const double dax_y = a.y - y;
        const double d2_ax = dax_x * dax_x + dax_y * dax_y;
        const double dxb_x = x - b.x;
        const double dxb_y = y - b.y;
        const double d2_xb = dxb_x * dxb_x + dxb_y * dxb_y;
        s1[i] = d2_ax + d2_xp;
        s2[i] = d2_xp + d2_xb;
    }
}

#if UAVDC_HAVE_AVX2_DISPATCH

[[nodiscard]] bool cpu_has_avx2() {
    static const bool v = __builtin_cpu_supports("avx2") != 0;
    return v;
}

__attribute__((target("avx2"))) void squared_distances_avx2(
    const double* xs, const double* ys, std::size_t n, double px, double py,
    double* out) {
    squared_distances_body(xs, ys, n, px, py, out);
}

__attribute__((target("avx2"))) void distances_avx2(const double* xs,
                                                    const double* ys,
                                                    std::size_t n, double px,
                                                    double py, double* out) {
    distances_body(xs, ys, n, px, py, out);
}

__attribute__((target("avx2"))) void insertion_edge_deltas_avx2(
    const double* xs, const double* ys, std::size_t n, geom::Vec2 a,
    geom::Vec2 p, geom::Vec2 b, double len_ap, double len_pb, double* n1,
    double* n2) {
    insertion_edge_deltas_body(xs, ys, n, a, p, b, len_ap, len_pb, n1, n2);
}

__attribute__((target("avx2"))) void fill_distance_tile_avx2(
    const double* xs, const double* ys, std::size_t c0, std::size_t c1,
    double px, double py, double* row) {
    fill_distance_tile_body(xs, ys, c0, c1, px, py, row);
}

__attribute__((target("avx2"))) void fill_squared_distance_tile_avx2(
    const double* xs, const double* ys, std::size_t c0, std::size_t c1,
    double px, double py, double* row) {
    fill_squared_distance_tile_body(xs, ys, c0, c1, px, py, row);
}

__attribute__((target("avx2"))) void squared_insertion_lower_bounds_avx2(
    const double* xs, const double* ys, std::size_t n, geom::Vec2 a,
    geom::Vec2 p, geom::Vec2 b, double* s1, double* s2) {
    squared_insertion_lower_bounds_body(xs, ys, n, a, p, b, s1, s2);
}

#endif  // UAVDC_HAVE_AVX2_DISPATCH

}  // namespace

void squared_distances_to_point(const double* xs, const double* ys,
                                std::size_t n, double px, double py,
                                double* out) {
#if UAVDC_HAVE_AVX2_DISPATCH
    if (cpu_has_avx2()) {
        squared_distances_avx2(xs, ys, n, px, py, out);
        return;
    }
#endif
    squared_distances_body(xs, ys, n, px, py, out);
}

void distances_to_point(const double* xs, const double* ys, std::size_t n,
                        double px, double py, double* out) {
#if UAVDC_HAVE_AVX2_DISPATCH
    if (cpu_has_avx2()) {
        distances_avx2(xs, ys, n, px, py, out);
        return;
    }
#endif
    distances_body(xs, ys, n, px, py, out);
}

void insertion_edge_deltas(const double* xs, const double* ys, std::size_t n,
                           geom::Vec2 a, geom::Vec2 p, geom::Vec2 b,
                           double len_ap, double len_pb, double* n1,
                           double* n2) {
#if UAVDC_HAVE_AVX2_DISPATCH
    if (cpu_has_avx2()) {
        insertion_edge_deltas_avx2(xs, ys, n, a, p, b, len_ap, len_pb, n1,
                                   n2);
        return;
    }
#endif
    insertion_edge_deltas_body(xs, ys, n, a, p, b, len_ap, len_pb, n1, n2);
}

void fill_distance_tile(const double* xs, const double* ys, std::size_t c0,
                        std::size_t c1, double px, double py, double* row) {
#if UAVDC_HAVE_AVX2_DISPATCH
    if (cpu_has_avx2()) {
        fill_distance_tile_avx2(xs, ys, c0, c1, px, py, row);
        return;
    }
#endif
    fill_distance_tile_body(xs, ys, c0, c1, px, py, row);
}

void fill_squared_distance_tile(const double* xs, const double* ys,
                                std::size_t c0, std::size_t c1, double px,
                                double py, double* row) {
#if UAVDC_HAVE_AVX2_DISPATCH
    if (cpu_has_avx2()) {
        fill_squared_distance_tile_avx2(xs, ys, c0, c1, px, py, row);
        return;
    }
#endif
    fill_squared_distance_tile_body(xs, ys, c0, c1, px, py, row);
}

void squared_insertion_lower_bounds(const double* xs, const double* ys,
                                    std::size_t n, geom::Vec2 a, geom::Vec2 p,
                                    geom::Vec2 b, double* s1, double* s2) {
#if UAVDC_HAVE_AVX2_DISPATCH
    if (cpu_has_avx2()) {
        squared_insertion_lower_bounds_avx2(xs, ys, n, a, p, b, s1, s2);
        return;
    }
#endif
    squared_insertion_lower_bounds_body(xs, ys, n, a, p, b, s1, s2);
}

// ---------------------------------------------------------------------------
// Fast reductions (epsilon tier). The accumulation scheme is written out
// explicitly — kSoaLanes partial sums filled round-robin, combined in a
// fixed pairwise tree — so the result is a deterministic function of the
// input order on every compiler/ISA, independent of auto-vectorization.
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] UAVDC_KERNEL_BODY double combine8(const double (&acc)[8]) {
    return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
           ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

}  // namespace

GainAccum residual_gain_fast(const std::int32_t* idx, std::size_t m,
                             const double* data_mb, const double* upload_s,
                             const char* covered_mask) {
    static_assert(kSoaLanes == 8);
    double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    GainAccum g;
    std::size_t j = 0;
    for (; j + 8 <= m; j += 8) {
        for (std::size_t l = 0; l < 8; ++l) {
            const auto v = static_cast<std::size_t>(idx[j + l]);
            if (covered_mask[v] != 0 || data_mb[v] <= 0.0) continue;
            acc[l] += data_mb[v];
            g.max_s = std::max(g.max_s, upload_s[v]);
        }
    }
    for (std::size_t l = 0; j < m; ++j, ++l) {
        const auto v = static_cast<std::size_t>(idx[j]);
        if (covered_mask[v] != 0 || data_mb[v] <= 0.0) continue;
        acc[l] += data_mb[v];
        g.max_s = std::max(g.max_s, upload_s[v]);
    }
    g.sum_mb = combine8(acc);
    return g;
}

double capped_sum_fast(const std::int32_t* idx, std::size_t m,
                       const double* residual, double cap) {
    static_assert(kSoaLanes == 8);
    double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t j = 0;
    for (; j + 8 <= m; j += 8) {
        for (std::size_t l = 0; l < 8; ++l) {
            acc[l] +=
                std::min(residual[static_cast<std::size_t>(idx[j + l])], cap);
        }
    }
    for (std::size_t l = 0; j < m; ++j, ++l) {
        acc[l] += std::min(residual[static_cast<std::size_t>(idx[j])], cap);
    }
    return combine8(acc);
}

}  // namespace uavdc::core::kernels
