#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "uavdc/geom/vec2.hpp"

/// Batched geometry / coverage kernels behind the SoA data plane
/// (core/soa_layout). Two tiers:
///
///  * Elementwise kernels (this header's declarations, bodies in
///    batch_kernels.cpp): N-at-a-time distance, insertion-edge deltas, and
///    the cache-blocked distance-matrix tile fill. Written as plain loops
///    the compiler auto-vectorizes (CI greps `-Rpass=loop-vectorize` /
///    optimization records for them — scripts/check_vectorization.sh); the
///    TU is built with -ffp-contract=off and per-lane IEEE ops only, so
///    every lane is bit-identical to the scalar geom::distance expression
///    regardless of vector width or ISA.
///
///  * Reduction kernels. The *ordered* forms below are inline templates
///    that keep the exact accumulation order of the reference engines —
///    they exist so the hot loops read the SoA arrays (locality) without
///    perturbing a single bit; `ScoringEngine::kIncremental` stays
///    EXPECT_EQ-identical to the reference oracle through them. The *fast*
///    forms (batch_kernels.cpp) accumulate into kSoaLanes fixed partial
///    sums combined in a fixed pairwise order — deterministic on every
///    compiler and ISA, but NOT bit-identical to the ordered sum; they back
///    the opt-in `ScoringEngine::kIncrementalFast` epsilon-conformance tier
///    (tolerances documented in DESIGN.md "Memory layout & vectorization").
namespace uavdc::core::kernels {

// ---------------------------------------------------------------------------
// Elementwise batched kernels (auto-vectorized; bit-identical per lane).
// ---------------------------------------------------------------------------

/// out[i] = (xs[i] - p.x)^2 + (ys[i] - p.y)^2 — the geom::distance2(q_i, p)
/// expression, N at a time.
void squared_distances_to_point(const double* xs, const double* ys,
                                std::size_t n, double px, double py,
                                double* out);

/// out[i] = sqrt((xs[i] - p.x)^2 + (ys[i] - p.y)^2) — geom::distance(q_i, p)
/// (and, since squares kill the sign, geom::distance(p, q_i)) N at a time.
void distances_to_point(const double* xs, const double* ys, std::size_t n,
                        double px, double py, double* out);

/// The InsertionCache::on_insert edge scan, batched over candidates: for
/// each candidate x_i = (xs[i], ys[i]) compute the insertion deltas of the
/// two tour edges created by inserting p between a and b,
///   n1[i] = d(a, x_i) + d(x_i, p) - len_ap   (edge a -> p)
///   n2[i] = d(x_i, p) + d(x_i, b) - len_pb   (edge p -> b)
/// with the exact operand order of the scalar code it replaces.
void insertion_edge_deltas(const double* xs, const double* ys, std::size_t n,
                           geom::Vec2 a, geom::Vec2 p, geom::Vec2 b,
                           double len_ap, double len_pb, double* n1,
                           double* n2);

/// One tile of the flat distance-matrix fill: row[c] = d(p, node_c) for
/// c in [c0, c1), where node coordinates live in xs/ys. `row` points at the
/// row's column 0, i.e. the tile writes row[c0..c1). Expression order
/// matches geom::distance(p, node) — (p - node), squared, summed, sqrt.
void fill_distance_tile(const double* xs, const double* ys, std::size_t c0,
                        std::size_t c1, double px, double py, double* row);

/// Squared-form companion of fill_distance_tile: row[c] = d2(p, node_c) for
/// c in [c0, c1) — the same (p - node) difference expressions with the sqrt
/// deferred. Each lane satisfies fill_distance_tile's output ==
/// std::sqrt(this output) bit-for-bit (the deferral identity the
/// micro_kernels cross-check asserts), so squared-space prefilters can
/// resolve survivors by sqrt-ing exactly the values this kernel produced.
void fill_squared_distance_tile(const double* xs, const double* ys,
                                std::size_t c0, std::size_t c1, double px,
                                double py, double* row);

/// Squared lower-bound inputs for the InsertionCache::on_insert prune pass:
/// for each candidate x_i = (xs[i], ys[i]),
///   s1[i] = d2(a, x_i) + d2(x_i, p)   (edge a -> p)
///   s2[i] = d2(x_i, p) + d2(x_i, b)   (edge p -> b)
/// using the same difference expressions as insertion_edge_deltas but with
/// every sqrt deferred. With |d(a,x) - d(x,p)| <= d(a,p) = len_ap (reverse
/// triangle inequality over the edge), the exact delta obeys
///   (d(a,x) + d(x,p))^2 = 2 * s1[i] - (d(a,x) - d(x,p))^2
///                       >= 2 * s1[i] - len_ap^2,
/// so a candidate whose squared sum fails the bound test cannot beat the
/// caller's threshold; only survivors pay insertion_edge_deltas' 3 sqrts.
void squared_insertion_lower_bounds(const double* xs, const double* ys,
                                    std::size_t n, geom::Vec2 a, geom::Vec2 p,
                                    geom::Vec2 b, double* s1, double* s2);

// ---------------------------------------------------------------------------
// Ordered reductions (bit-identical to the reference engines' loops).
// Inline templates so both the int (HoverCandidate::covered) and
// std::int32_t (CSR) index types route through one definition; they are
// deliberately scalar — reassociating them would break the EXPECT_EQ
// equivalence contract.
// ---------------------------------------------------------------------------

struct GainAccum {
    double sum_mb{0.0};
    double max_s{0.0};
};

/// Algorithm 2's residual prize P'(s) and dwell t'(s) (Eq. 11-12): over the
/// candidate's covered list, sum data of uncovered devices with positive
/// data and take the max precomputed upload time. Accumulation order is the
/// covered-list order, exactly as the reference residual_gain.
template <typename Index>
[[nodiscard]] GainAccum residual_gain_ordered(const Index* idx, std::size_t m,
                                              const double* data_mb,
                                              const double* upload_s,
                                              const char* covered_mask) {
    GainAccum g;
    for (std::size_t j = 0; j < m; ++j) {
        const auto v = static_cast<std::size_t>(idx[j]);
        if (covered_mask[v] != 0) continue;
        if (data_mb[v] <= 0.0) continue;
        g.sum_mb += data_mb[v];
        g.max_s = std::max(g.max_s, upload_s[v]);
    }
    return g;
}

/// Hover-candidate construction (Eq. 6-8): unconditional award sum and max
/// upload time over a cell's covered devices, in covered-list order.
template <typename Index>
[[nodiscard]] GainAccum award_dwell_ordered(const Index* idx, std::size_t m,
                                            const double* data_mb,
                                            const double* upload_s) {
    GainAccum g;
    for (std::size_t j = 0; j < m; ++j) {
        const auto v = static_cast<std::size_t>(idx[j]);
        g.sum_mb += data_mb[v];
        g.max_s = std::max(g.max_s, upload_s[v]);
    }
    return g;
}

/// Algorithm 3's t'(s_j): max residual upload time, max(residual[v] / bw),
/// in covered-list order (the division is per-element, as in the oracle).
template <typename Index>
[[nodiscard]] double max_residual_time_ordered(const Index* idx,
                                               std::size_t m,
                                               const double* residual,
                                               double bw) {
    double t = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        t = std::max(t, residual[static_cast<std::size_t>(idx[j])] / bw);
    }
    return t;
}

/// Algorithm 3's partial gain (Eq. 4 under residual volumes):
/// sum of min(residual[v], cap), in covered-list order.
template <typename Index>
[[nodiscard]] double capped_sum_ordered(const Index* idx, std::size_t m,
                                        const double* residual, double cap) {
    double gain = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        gain += std::min(residual[static_cast<std::size_t>(idx[j])], cap);
    }
    return gain;
}

/// Coverage-spread accumulation (hover-candidate dedupe): sum of
/// geom::distance2(pos, device_v) over the covered list, in list order.
template <typename Index>
[[nodiscard]] double sum_squared_distances_ordered(const Index* idx,
                                                   std::size_t m,
                                                   const double* xs,
                                                   const double* ys,
                                                   geom::Vec2 pos) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        const auto v = static_cast<std::size_t>(idx[j]);
        const double dx = pos.x - xs[v];
        const double dy = pos.y - ys[v];
        s += dx * dx + dy * dy;
    }
    return s;
}

// ---------------------------------------------------------------------------
// Fast reductions (epsilon tier): kSoaLanes fixed partial accumulators,
// combined pairwise in a fixed order — deterministic everywhere, within
// O(m * ulp) of the ordered sum, never bit-guaranteed against it.
// ---------------------------------------------------------------------------

/// residual_gain_ordered with 8-lane partial sums for sum_mb (max_s is an
/// exact reduction under any association for non-negative inputs).
[[nodiscard]] GainAccum residual_gain_fast(const std::int32_t* idx,
                                           std::size_t m,
                                           const double* data_mb,
                                           const double* upload_s,
                                           const char* covered_mask);

/// capped_sum_ordered with 8-lane partial sums.
[[nodiscard]] double capped_sum_fast(const std::int32_t* idx, std::size_t m,
                                     const double* residual, double cap);

}  // namespace uavdc::core::kernels
