#include "uavdc/core/benchmark_planner.hpp"

#include <algorithm>
#include <limits>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/tour_builder.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

namespace {
constexpr double kEps = 1e-9;
}

PlanResult PruneTspPlanner::plan(const PlanningContext& ctx) {
    util::Timer timer;
    PlanResult out;
    const model::Instance& inst = ctx.instance();
    out.stats.candidates = util::checked_cast<int>(inst.devices.size());
    if (inst.devices.empty()) {
        out.stats.runtime_s = timer.seconds();
        return out;
    }

    const double bw = inst.uav.bandwidth_mbps;
    const double eta_h = inst.uav.hover_power_w;
    const bool incremental = cfg_.scoring != ScoringEngine::kReference;

    // Initial tour over every device (cheapest insertion, then a
    // Christofides + 2-opt pass — the paper's "closed tour C that includes
    // all aggregate sensor nodes").
    TourBuilder tour(inst.depot);
    double hover_energy = 0.0;
    double collected_mb = 0.0;
    for (const auto& d : inst.devices) {
        tour.insert(d.pos, d.id, tour.cheapest_insertion(d.pos));
        hover_energy += d.upload_time(bw) * eta_h;
        collected_mb += d.data_mb;
    }
    tour.reoptimize();

    // Removal score of the stop at tour position i. The incremental engine
    // caches these: removal_delta(i) depends only on stops i-1, i, i+1, so
    // deleting position w invalidates positions w-1 and w of the shrunken
    // tour and nothing else — bit-identical values, recomputed O(1) per
    // round instead of O(n).
    auto prune_ratio = [&](std::size_t i) {
        const auto& d =
            inst.devices[static_cast<std::size_t>(tour.keys()[i])];
        const double saved = d.upload_time(bw) * eta_h +
                             inst.uav.travel_energy(-tour.removal_delta(i));
        return d.data_mb / std::max(saved, kEps);
    };
    std::vector<double> ratio_cache;
    if (incremental) {
        ratio_cache.resize(tour.size());
        for (std::size_t i = 0; i < tour.size(); ++i) {
            ratio_cache[i] = prune_ratio(i);
        }
    }

    // Prune until the tour fits the battery.
    int iterations = 0;
    while (tour.size() > 0) {
        const double total =
            hover_energy + inst.uav.travel_energy(tour.length());
        if (total <= inst.uav.energy_j + kEps) break;
        ++iterations;
        std::size_t worst = 0;
        double worst_ratio = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < tour.size(); ++i) {
            const double r = incremental ? ratio_cache[i] : prune_ratio(i);
            if (r < worst_ratio) {
                worst_ratio = r;
                worst = i;
            }
        }
        const auto& d =
            inst.devices[static_cast<std::size_t>(tour.keys()[worst])];
        hover_energy -= d.upload_time(bw) * eta_h;
        collected_mb -= d.data_mb;
        tour.remove(worst);
        if (incremental) {
            ratio_cache.erase(ratio_cache.begin() +
                              static_cast<std::ptrdiff_t>(worst));
            // Only the removed stop's neighbours changed context.
            if (worst > 0) ratio_cache[worst - 1] = prune_ratio(worst - 1);
            if (worst < tour.size()) ratio_cache[worst] = prune_ratio(worst);
        }
    }
    if (cfg_.reoptimize_after_prune) tour.reoptimize();

    for (std::size_t i = 0; i < tour.size(); ++i) {
        const auto& d =
            inst.devices[static_cast<std::size_t>(tour.keys()[i])];
        out.plan.stops.push_back({tour.stops()[i], d.upload_time(bw), -1});
    }
    out.stats.planned_mb = std::max(0.0, collected_mb);
    out.stats.planned_energy_j =
        hover_energy + inst.uav.travel_energy(tour.length());
    out.stats.iterations = iterations;
    out.stats.runtime_s = timer.seconds();
    return out;
}

}  // namespace uavdc::core
