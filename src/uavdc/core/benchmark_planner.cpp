#include "uavdc/core/benchmark_planner.hpp"

#include <algorithm>
#include <limits>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/tour_builder.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

namespace {
constexpr double kEps = 1e-9;
}

PlanResult PruneTspPlanner::plan(const PlanningContext& ctx) {
    util::Timer timer;
    PlanResult out;
    const model::Instance& inst = ctx.instance();
    out.stats.candidates = static_cast<int>(inst.devices.size());
    if (inst.devices.empty()) {
        out.stats.runtime_s = timer.seconds();
        return out;
    }

    const double bw = inst.uav.bandwidth_mbps;
    const double eta_h = inst.uav.hover_power_w;

    // Initial tour over every device (cheapest insertion, then a
    // Christofides + 2-opt pass — the paper's "closed tour C that includes
    // all aggregate sensor nodes").
    TourBuilder tour(inst.depot);
    double hover_energy = 0.0;
    double collected_mb = 0.0;
    for (const auto& d : inst.devices) {
        tour.insert(d.pos, d.id, tour.cheapest_insertion(d.pos));
        hover_energy += d.upload_time(bw) * eta_h;
        collected_mb += d.data_mb;
    }
    tour.reoptimize();

    // Prune until the tour fits the battery.
    int iterations = 0;
    while (tour.size() > 0) {
        const double total =
            hover_energy + inst.uav.travel_energy(tour.length());
        if (total <= inst.uav.energy_j + kEps) break;
        ++iterations;
        std::size_t worst = 0;
        double worst_ratio = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < tour.size(); ++i) {
            const auto& d =
                inst.devices[static_cast<std::size_t>(tour.keys()[i])];
            const double saved =
                d.upload_time(bw) * eta_h +
                inst.uav.travel_energy(-tour.removal_delta(i));
            const double ratio = d.data_mb / std::max(saved, kEps);
            if (ratio < worst_ratio) {
                worst_ratio = ratio;
                worst = i;
            }
        }
        const auto& d =
            inst.devices[static_cast<std::size_t>(tour.keys()[worst])];
        hover_energy -= d.upload_time(bw) * eta_h;
        collected_mb -= d.data_mb;
        tour.remove(worst);
    }
    if (cfg_.reoptimize_after_prune) tour.reoptimize();

    for (std::size_t i = 0; i < tour.size(); ++i) {
        const auto& d =
            inst.devices[static_cast<std::size_t>(tour.keys()[i])];
        out.plan.stops.push_back({tour.stops()[i], d.upload_time(bw), -1});
    }
    out.stats.planned_mb = std::max(0.0, collected_mb);
    out.stats.planned_energy_j =
        hover_energy + inst.uav.travel_energy(tour.length());
    out.stats.iterations = iterations;
    out.stats.runtime_s = timer.seconds();
    return out;
}

}  // namespace uavdc::core
