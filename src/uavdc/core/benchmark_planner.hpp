#pragma once

#include "uavdc/core/incremental_scorer.hpp"
#include "uavdc/core/planner.hpp"

namespace uavdc::core {

/// Configuration for the benchmark heuristic.
struct BenchmarkPlannerConfig {
    /// Re-run Christofides + 2-opt on the surviving stops once pruning ends.
    bool reoptimize_after_prune = true;
    /// Scoring engine for the prune loop (see Algorithm2Config::scoring);
    /// kIncremental caches removal ratios and refreshes only the removed
    /// stop's neighbours. Both engines produce bit-identical plans.
    ScoringEngine scoring = ScoringEngine::kIncremental;
};

/// The paper's evaluation benchmark (Sec. VII-A): build a Christofides tour
/// through the depot and *every* aggregate sensor node (hovering directly
/// above each node, dwelling D_v / B to drain it), then, while the tour
/// exceeds the energy capacity, repeatedly delete the node whose removal
/// loses the least data volume per unit of energy saved (hover energy plus
/// the travel shortcut).
class PruneTspPlanner final : public Planner {
  public:
    explicit PruneTspPlanner(BenchmarkPlannerConfig cfg = {}) : cfg_(cfg) {}

    using Planner::plan;
    [[nodiscard]] PlanResult plan(const PlanningContext& ctx) override;
    [[nodiscard]] std::string name() const override { return "benchmark"; }

  private:
    BenchmarkPlannerConfig cfg_;
};

}  // namespace uavdc::core
