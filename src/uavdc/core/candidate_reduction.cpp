#include "uavdc/core/candidate_reduction.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "uavdc/core/incremental_scorer.hpp"
#include "uavdc/geom/kmeans.hpp"
#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::core {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xffULL;
        h *= kFnvPrime;
    }
}

void fnv_mix(std::uint64_t& h, double v) {
    if (v == 0.0) v = 0.0;  // normalise -0.0
    fnv_mix(h, std::bit_cast<std::uint64_t>(v));
}

/// a ⊆ b over sorted device-index vectors (two-pointer scan).
bool subset_of(const std::vector<int>& a, const std::vector<int>& b) {
    if (a.size() > b.size()) return false;
    std::size_t ib = 0;
    for (const int v : a) {
        while (ib < b.size() && b[ib] < v) ++ib;
        if (ib == b.size() || b[ib] != v) return false;
        ++ib;
    }
    return true;
}

/// Squared distance from p to segment [a, b] (no sqrt — callers compare
/// against squared thresholds).
double segment_dist2(const geom::Vec2& p, const geom::Vec2& a,
                     const geom::Vec2& b) {
    const double abx = b.x - a.x;
    const double aby = b.y - a.y;
    const double apx = p.x - a.x;
    const double apy = p.y - a.y;
    const double len2 = abx * abx + aby * aby;
    double t = 0.0;
    if (len2 > 0.0) {
        t = std::clamp((apx * abx + apy * aby) / len2, 0.0, 1.0);
    }
    const double dx = apx - t * abx;
    const double dy = apy - t * aby;
    return dx * dx + dy * dy;
}

/// Stage 1: mark dominated candidates. A candidate j is dropped when some
/// neighbour k within `radius` covers a superset of j's devices with no
/// smaller award and a dwell j cannot beat by more than `slack`
/// (relative); exact coverage ties keep the lowest index. Deterministic:
/// the verdict for j depends only on the full set, never on drop order.
void mark_dominated(const HoverCandidateSet& full, double radius,
                    double slack, std::vector<char>& kept, int& dropped) {
    const auto& cands = full.candidates;
    std::vector<geom::Vec2> positions(cands.size());
    for (std::size_t j = 0; j < cands.size(); ++j) {
        positions[j] = cands[j].pos;
    }
    const geom::SpatialHash index(positions, std::max(radius, 1e-9));
    const double r2 = radius * radius;
    for (std::size_t j = 0; j < cands.size(); ++j) {
        const auto& cj = cands[j];
        bool dominated = false;
        index.for_each_in_disk(cj.pos, radius, [&](int ki) {
            if (dominated) return;
            const auto k = static_cast<std::size_t>(ki);
            if (k == j) return;
            const auto& ck = cands[k];
            if (ck.covered.size() < cj.covered.size()) return;
            if (ck.award_mb < cj.award_mb) return;
            if (cj.dwell_s < ck.dwell_s * (1.0 - slack)) return;
            const double dx = ck.pos.x - cj.pos.x;
            const double dy = ck.pos.y - cj.pos.y;
            if (dx * dx + dy * dy > r2) return;
            if (ck.covered.size() == cj.covered.size()) {
                // Equal size + subset = identical coverage: keep the
                // lowest index so mutual dominators never both drop.
                if (k > j) return;
            }
            if (subset_of(cj.covered, ck.covered)) dominated = true;
        });
        if (dominated) {
            kept[j] = 0;
            ++dropped;
        }
    }
}

/// Stage 2: keep the best candidate per coarse cell of edge
/// `factor * delta` (award desc, dwell asc, index asc).
void mark_coarsened(const HoverCandidateSet& full, int factor,
                    std::vector<char>& kept, int& dropped) {
    const double edge =
        static_cast<double>(factor) * std::max(full.delta_m, 1e-9);
    const auto& cands = full.candidates;
    std::unordered_map<std::uint64_t, std::size_t> best;
    best.reserve(cands.size());
    auto cell_key = [&](const geom::Vec2& p) {
        const auto cx = static_cast<std::int64_t>(std::floor(p.x / edge));
        const auto cy = static_cast<std::int64_t>(std::floor(p.y / edge));
        return (static_cast<std::uint64_t>(cx) << 32) ^
               (static_cast<std::uint64_t>(cy) & 0xffffffffULL);
    };
    auto better = [&](std::size_t a, std::size_t b) {
        const auto& ca = cands[a];
        const auto& cb = cands[b];
        if (ca.award_mb != cb.award_mb) return ca.award_mb > cb.award_mb;
        if (ca.dwell_s != cb.dwell_s) return ca.dwell_s < cb.dwell_s;
        return a < b;
    };
    for (std::size_t j = 0; j < cands.size(); ++j) {
        if (kept[j] == 0) continue;
        const std::uint64_t key = cell_key(cands[j].pos);
        auto [it, inserted] = best.try_emplace(key, j);
        if (!inserted && better(j, it->second)) it->second = j;
    }
    std::vector<char> winner(cands.size(), 0);
    // NOLINTNEXTLINE(uavdc-unordered-iteration): writes commutative flags
    // into an index-addressed array; visit order cannot reach the output.
    for (const auto& [key, j] : best) winner[j] = 1;
    for (std::size_t j = 0; j < cands.size(); ++j) {
        if (kept[j] != 0 && winner[j] == 0) {
            kept[j] = 0;
            ++dropped;
        }
    }
}

/// Stage 3: cluster the survivors (award-weighted k-means) and keep the
/// member nearest each centroid (squared distance, index tie-break).
void mark_consolidated(const HoverCandidateSet& full, int target,
                       std::vector<char>& kept, int& dropped) {
    const auto& cands = full.candidates;
    std::vector<std::size_t> alive;
    for (std::size_t j = 0; j < cands.size(); ++j) {
        if (kept[j] != 0) alive.push_back(j);
    }
    if (alive.size() <= static_cast<std::size_t>(target)) return;
    std::vector<geom::Vec2> pts(alive.size());
    std::vector<double> weights(alive.size());
    for (std::size_t i = 0; i < alive.size(); ++i) {
        pts[i] = cands[alive[i]].pos;
        weights[i] = std::max(cands[alive[i]].award_mb, 1e-9);
    }
    const auto km = geom::kmeans(pts, target, weights);
    const std::size_t k = km.centroids.size();
    std::vector<std::size_t> rep(k, alive.size());
    std::vector<double> rep_d2(k, 0.0);
    for (std::size_t i = 0; i < alive.size(); ++i) {
        const auto c = static_cast<std::size_t>(km.assignment[i]);
        const double dx = pts[i].x - km.centroids[c].x;
        const double dy = pts[i].y - km.centroids[c].y;
        const double d2 = dx * dx + dy * dy;
        if (rep[c] == alive.size() || d2 < rep_d2[c]) {
            rep[c] = i;
            rep_d2[c] = d2;
        }
    }
    std::vector<char> winner(cands.size(), 0);
    for (std::size_t c = 0; c < k; ++c) {
        if (rep[c] != alive.size()) winner[alive[rep[c]]] = 1;
    }
    for (const std::size_t j : alive) {
        if (winner[j] == 0) {
            kept[j] = 0;
            ++dropped;
        }
    }
}

/// Safety pass: every device covered by the full set must keep at least
/// one surviving coverer. Devices are healed in ascending order; each
/// reinstates its best dropped coverer (award desc, index asc).
void reinstate_coverage(const HoverCandidateSet& full,
                        std::size_t num_devices, std::vector<char>& kept,
                        int& reinstated) {
    const auto& cands = full.candidates;
    std::vector<char> device_ok(num_devices, 0);
    for (std::size_t j = 0; j < cands.size(); ++j) {
        if (kept[j] == 0) continue;
        for (const int v : cands[j].covered) {
            device_ok[static_cast<std::size_t>(v)] = 1;
        }
    }
    const InvertedCoverageIndex inverted(full, num_devices);
    for (std::size_t v = 0; v < num_devices; ++v) {
        if (device_ok[v] != 0) continue;
        const auto coverers = inverted.covering(v);
        if (coverers.empty()) continue;  // uncoverable in the full set too
        std::size_t pick = cands.size();
        for (const std::int32_t ji : coverers) {
            const auto j = static_cast<std::size_t>(ji);
            if (pick == cands.size() ||
                cands[j].award_mb > cands[pick].award_mb) {
                pick = j;
            }
        }
        kept[pick] = 1;
        ++reinstated;
        for (const int u : cands[pick].covered) {
            device_ok[static_cast<std::size_t>(u)] = 1;
        }
    }
}

/// Materialise the kept subset (original relative order) with its SoA
/// mirror and back-map.
ReducedCandidates gather(const HoverCandidateSet& full,
                         std::size_t num_devices,
                         const std::vector<char>& kept,
                         CandidateReductionStats stats) {
    ReducedCandidates out;
    out.set.grid_cells = full.grid_cells;
    out.set.nonzero_cells = full.nonzero_cells;
    out.set.after_dedupe = full.after_dedupe;
    out.set.delta_m = full.delta_m;
    for (std::size_t j = 0; j < full.candidates.size(); ++j) {
        if (kept[j] == 0) continue;
        out.set.candidates.push_back(full.candidates[j]);
        out.original_index.push_back(util::checked_cast<std::int32_t>(j));
    }
    stats.kept = util::checked_cast<int>(out.set.candidates.size());
    out.stats = stats;
    out.soa = build_candidate_soa(out.set, num_devices);
    // Invert coverage once here so memoized reductions hand every planner a
    // ready device -> candidates index (reduced ids) instead of a per-plan
    // rebuild.
    out.inverted =
        std::make_shared<InvertedCoverageIndex>(out.set, num_devices);
    return out;
}

}  // namespace

std::uint64_t CandidateReductionConfig::fingerprint() const {
    std::uint64_t h = kFnvOffset;
    fnv_mix(h, static_cast<std::uint64_t>(dominance));
    fnv_mix(h, dominance_radius_m);
    fnv_mix(h, dominance_dwell_slack);
    fnv_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(coarsen_factor)));
    fnv_mix(h, refine_band_m);
    fnv_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(consolidate_to)));
    return h;
}

ReducedCandidates reduce_candidates(const HoverCandidateSet& full,
                                    std::size_t num_devices,
                                    const CandidateReductionConfig& cfg) {
    UAVDC_REQUIRE(cfg.coarsen_factor >= 1)
        << "reduce_candidates: coarsen_factor must be >= 1, got "
        << cfg.coarsen_factor;
    UAVDC_REQUIRE(cfg.consolidate_to >= 0)
        << "reduce_candidates: consolidate_to must be >= 0, got "
        << cfg.consolidate_to;
    UAVDC_REQUIRE(cfg.dominance_radius_m >= 0.0)
        << "reduce_candidates: dominance_radius_m must be >= 0, got "
        << cfg.dominance_radius_m;

    CandidateReductionStats stats;
    stats.original = util::checked_cast<int>(full.size());
    std::vector<char> kept(full.size(), 1);
    if (!full.candidates.empty()) {
        if (cfg.dominance) {
            const double radius =
                cfg.dominance_radius_m > 0.0
                    ? cfg.dominance_radius_m
                    : 2.0 * std::max(full.delta_m, 1e-9);
            mark_dominated(full, radius, cfg.dominance_dwell_slack, kept,
                           stats.dominated);
        }
        if (cfg.coarsen_factor > 1) {
            mark_coarsened(full, cfg.coarsen_factor, kept, stats.coarsened);
        }
        if (cfg.consolidate_to > 0) {
            mark_consolidated(full, cfg.consolidate_to, kept,
                              stats.consolidated);
        }
        reinstate_coverage(full, num_devices, kept, stats.reinstated);
    }
    return gather(full, num_devices, kept, stats);
}

ReducedCandidates refine_near_tour(const HoverCandidateSet& full,
                                   const ReducedCandidates& reduced,
                                   std::span<const geom::Vec2> tour_stops,
                                   const geom::Vec2& depot, double band_m,
                                   std::size_t num_devices) {
    UAVDC_REQUIRE(band_m > 0.0)
        << "refine_near_tour: band_m must be > 0, got " << band_m;
    std::vector<char> kept(full.size(), 0);
    for (const std::int32_t j : reduced.original_index) {
        kept[static_cast<std::size_t>(j)] = 1;
    }
    // Closed polyline depot -> stops -> depot.
    std::vector<geom::Vec2> poly;
    poly.reserve(tour_stops.size() + 2);
    poly.push_back(depot);
    for (const auto& p : tour_stops) poly.push_back(p);
    poly.push_back(depot);
    const double band2 = band_m * band_m;
    for (std::size_t j = 0; j < full.size(); ++j) {
        if (kept[j] != 0) continue;
        const geom::Vec2& p = full.candidates[j].pos;
        for (std::size_t s = 0; s + 1 < poly.size(); ++s) {
            if (segment_dist2(p, poly[s], poly[s + 1]) <= band2) {
                kept[j] = 1;
                break;
            }
        }
    }
    return gather(full, num_devices, kept, reduced.stats);
}

}  // namespace uavdc::core
