#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/soa_layout.hpp"
#include "uavdc/geom/vec2.hpp"

namespace uavdc::core {

class InvertedCoverageIndex;

/// Candidate-space reduction options, applied between hover-candidate
/// generation and planning (DESIGN.md "Candidate-space reduction"). All
/// stages are deterministic, preserve the original candidate order among
/// survivors, and never synthesize hovering positions — every surviving
/// candidate is one of the generator's, with its exact Eq. 6-8 award /
/// dwell / coverage, so planning a reduced set needs no re-scoring.
struct CandidateReductionConfig {
    /// Stage 1 — dominance filtering: drop candidate j when a nearby
    /// candidate k covers a superset of j's devices with no smaller award
    /// and no cheaper dwell (within `dominance_dwell_slack`, relative).
    /// Visiting k instead of j then collects at least as much data for
    /// essentially the same hover cost and a detour bounded by
    /// `dominance_radius_m`.
    bool dominance = false;
    /// Neighbourhood radius for the dominance scan; 0 = auto (2x the
    /// generating grid's delta, i.e. the adjacent-cell ring where
    /// subset-coverage pairs actually occur).
    double dominance_radius_m = 0.0;
    /// Relative dwell slack for dominance: j may be dropped when
    /// dwell(j) >= dwell(k) * (1 - slack). Subset coverage already implies
    /// dwell(j) <= dwell(k), so 0 demands exact dwell equality (the same
    /// bottleneck device) — the quasi-lossless rule.
    double dominance_dwell_slack = 0.0;
    /// Stage 2 — grid coarsening: >= 2 keeps only the best candidate
    /// (award desc, dwell asc, index asc) per coarse cell of edge
    /// `coarsen_factor * delta`. 1 disables.
    int coarsen_factor = 1;
    /// Refinement band: > 0 makes the planner re-plan once over the reduced
    /// set plus every original candidate within this distance of the
    /// incumbent tour polyline, keeping the better plan. Recovers the
    /// local detail coarsening discarded, but only where the tour goes.
    double refine_band_m = 0.0;
    /// Stage 3 — k-means consolidation: > 0 clusters the surviving
    /// candidates (award-weighted) into at most this many groups and keeps
    /// the member nearest each centroid. 0 disables.
    int consolidate_to = 0;

    [[nodiscard]] bool enabled() const {
        return dominance || coarsen_factor > 1 || consolidate_to > 0;
    }
    /// FNV-1a over every field (for the PlanningContext memo and the
    /// service response-cache key).
    [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Per-stage drop counts of one reduction run.
struct CandidateReductionStats {
    int original{0};      ///< candidates entering the pipeline
    int dominated{0};     ///< dropped by stage 1
    int coarsened{0};     ///< dropped by stage 2
    int consolidated{0};  ///< dropped by stage 3
    int reinstated{0};    ///< put back by the coverage-safety pass
    int kept{0};          ///< candidates leaving the pipeline
};

/// A planner-facing view of a candidate set: the set, its SoA mirror, and
/// (for reduced sets) the mapping back to the generator's candidate
/// indices. `original_index` empty means the identity view over the full
/// set — exactly what planners consumed before reduction existed.
struct CandidateView {
    const HoverCandidateSet* set{nullptr};
    const CandidateSoa* soa{nullptr};
    std::span<const std::int32_t> original_index{};
    /// Optional device -> covering-candidates index over `set` (view-local
    /// candidate ids). Null when the owner has not built one; planners then
    /// fall back to constructing a per-plan index.
    const InvertedCoverageIndex* inverted{nullptr};

    [[nodiscard]] std::size_t size() const { return set->size(); }
    /// Map a view-local candidate index to the full set's index (identity
    /// when this view is the full set).
    [[nodiscard]] std::size_t original(std::size_t i) const {
        return original_index.empty()
                   ? i
                   : static_cast<std::size_t>(original_index[i]);
    }
};

/// A reduced candidate set: survivors in original relative order, with a
/// fresh SoA mirror and the map back to full-set indices.
struct ReducedCandidates {
    HoverCandidateSet set;
    CandidateSoa soa;
    std::vector<std::int32_t> original_index;  ///< reduced idx -> full idx
    CandidateReductionStats stats;
    /// Device -> covering-candidates index over `set`, built alongside the
    /// SoA mirror so memoized reductions (PlanningContext, warm service
    /// traffic) hand planners a ready inversion. shared_ptr keeps the struct
    /// copyable.
    std::shared_ptr<const InvertedCoverageIndex> inverted;

    [[nodiscard]] CandidateView view() const {
        return {&set, &soa,
                std::span<const std::int32_t>(original_index.data(),
                                              original_index.size()),
                inverted.get()};
    }
};

/// Run the configured reduction stages over `full`, then reinstate dropped
/// candidates until every device covered by the full set has at least one
/// surviving coverer (the safety invariant dominance preserves by
/// construction and coarsening/consolidation may break). Deterministic:
/// output depends only on (`full`, `num_devices`, `cfg`).
[[nodiscard]] ReducedCandidates reduce_candidates(
    const HoverCandidateSet& full, std::size_t num_devices,
    const CandidateReductionConfig& cfg);

/// Refinement step: the reduced set plus every full-set candidate within
/// `band_m` of the closed tour polyline depot -> stops -> depot. Survivors
/// keep original relative order; the result's stats are `reduced.stats`
/// with `kept` updated.
[[nodiscard]] ReducedCandidates refine_near_tour(
    const HoverCandidateSet& full, const ReducedCandidates& reduced,
    std::span<const geom::Vec2> tour_stops, const geom::Vec2& depot,
    double band_m, std::size_t num_devices);

}  // namespace uavdc::core
