#include "uavdc/core/compare.hpp"

#include <algorithm>
#include <exception>
#include <future>

#include "uavdc/util/check.hpp"

namespace uavdc::core {

namespace {

/// Plan + validate + evaluate one planner. Independent of every other
/// planner, which is what makes the pooled fan-out below safe: each call
/// fills exactly one output slot.
PlannerComparison compare_one(const PlanningContext& ctx,
                              const PlannerOptions& opts,
                              const std::string& name) {
    const model::Instance& inst = ctx.instance();
    auto planner = make_planner(name, opts);
    auto res = planner->plan(ctx);
    PlannerComparison cmp;
    cmp.name = planner->name();
    cmp.runtime_s = res.stats.runtime_s;
    cmp.validation = validate_plan(inst, res.plan);
    std::string violations;
    for (const auto& v : cmp.validation.errors) {
        violations += " [" + to_string(v.kind) + " @ stop " +
                      std::to_string(v.stop) + ": " + v.detail + "]";
    }
    UAVDC_CHECK(cmp.validation.ok())
        << "compare_planners: planner '" << cmp.name
        << "' produced an invalid plan:" << violations;
    cmp.evaluation = evaluate_plan(inst, res.plan);
    cmp.metrics = compute_metrics(inst, res.plan);
    cmp.plan = std::move(res.plan);
    return cmp;
}

}  // namespace

std::vector<PlannerComparison> compare_planners(const model::Instance& inst,
                                                const PlannerOptions& opts,
                                                std::vector<std::string> names,
                                                util::ThreadPool* pool) {
    const auto ctx = PlanningContext::obtain(inst, opts.hover_config());
    return compare_planners(*ctx, opts, std::move(names), pool);
}

std::vector<PlannerComparison> compare_planners(const PlanningContext& ctx,
                                                const PlannerOptions& opts,
                                                std::vector<std::string> names,
                                                util::ThreadPool* pool) {
    if (names.empty()) names = planner_names();
    std::vector<PlannerComparison> out;
    out.reserve(names.size());
    if (pool != nullptr && names.size() > 1 && !pool->on_worker_thread()) {
        std::vector<std::future<PlannerComparison>> futures;
        futures.reserve(names.size());
        for (const auto& name : names) {
            futures.push_back(pool->submit(
                [&ctx, &opts, &name]() { return compare_one(ctx, opts, name); }));
        }
        // get() in submission order: results land in the same slots as the
        // serial loop, and the first planner failure propagates as the same
        // exception a serial run would have thrown. Every future must be
        // drained before propagating — packaged_task futures do not block
        // in their destructor, so bailing on the first get() would leave
        // running tasks dereferencing this frame's `names`/`opts`/`ctx`.
        std::exception_ptr first_error;
        for (auto& fut : futures) {
            try {
                out.push_back(fut.get());
            } catch (...) {
                if (!first_error) first_error = std::current_exception();
            }
        }
        if (first_error) std::rethrow_exception(first_error);
    } else {
        for (const auto& name : names) {
            out.push_back(compare_one(ctx, opts, name));
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const PlannerComparison& a,
                        const PlannerComparison& b) {
                         return a.evaluation.collected_mb >
                                b.evaluation.collected_mb;
                     });
    return out;
}

}  // namespace uavdc::core
