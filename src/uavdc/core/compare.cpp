#include "uavdc/core/compare.hpp"

#include <algorithm>

#include "uavdc/util/check.hpp"

namespace uavdc::core {

std::vector<PlannerComparison> compare_planners(const model::Instance& inst,
                                                const PlannerOptions& opts,
                                                std::vector<std::string> names) {
    const auto ctx = PlanningContext::obtain(inst, opts.hover_config());
    return compare_planners(*ctx, opts, std::move(names));
}

std::vector<PlannerComparison> compare_planners(const PlanningContext& ctx,
                                                const PlannerOptions& opts,
                                                std::vector<std::string> names) {
    if (names.empty()) names = planner_names();
    const model::Instance& inst = ctx.instance();
    std::vector<PlannerComparison> out;
    out.reserve(names.size());
    for (const auto& name : names) {
        auto planner = make_planner(name, opts);
        auto res = planner->plan(ctx);
        PlannerComparison cmp;
        cmp.name = planner->name();
        cmp.runtime_s = res.stats.runtime_s;
        cmp.validation = validate_plan(inst, res.plan);
        std::string violations;
        for (const auto& v : cmp.validation.errors) {
            violations += " [" + to_string(v.kind) + " @ stop " +
                          std::to_string(v.stop) + ": " + v.detail + "]";
        }
        UAVDC_CHECK(cmp.validation.ok())
            << "compare_planners: planner '" << cmp.name
            << "' produced an invalid plan:" << violations;
        cmp.evaluation = evaluate_plan(inst, res.plan);
        cmp.metrics = compute_metrics(inst, res.plan);
        cmp.plan = std::move(res.plan);
        out.push_back(std::move(cmp));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const PlannerComparison& a,
                        const PlannerComparison& b) {
                         return a.evaluation.collected_mb >
                                b.evaluation.collected_mb;
                     });
    return out;
}

}  // namespace uavdc::core
