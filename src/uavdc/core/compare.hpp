#pragma once

#include <string>
#include <vector>

#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/metrics.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/core/validate_plan.hpp"
#include "uavdc/util/thread_pool.hpp"

namespace uavdc::core {

/// One planner's outcome on a shared instance.
struct PlannerComparison {
    std::string name;
    model::FlightPlan plan;
    Evaluation evaluation;
    PlanMetrics metrics;
    PlanValidation validation;  ///< never carries errors (those throw)
    double runtime_s{0.0};
};

/// Run every registered planner (or the given subset) on `inst` with the
/// same options and evaluate each plan. Results are ordered by collected
/// volume, best first. The one-call backend for `uavdc compare` and for
/// quick side-by-side studies in user code.
///
/// All planners share one `PlanningContext` (obtained through the global
/// cache with `opts.hover_config()`), so the grid precompute runs exactly
/// once per instance regardless of how many planners are compared.
///
/// Every plan is passed through `validate_plan` before evaluation; a plan
/// with hard violations (energy exceeded, NaN coordinates, ...) throws
/// `std::runtime_error` naming the planner — a planner emitting broken
/// plans is a bug to surface, not a row to rank. Warnings are kept in
/// `PlannerComparison::validation`.
///
/// `pool` != nullptr fans the planners out across the caller's thread pool
/// (one task per planner) instead of running them back to back — no pool
/// is ever constructed internally, so callers that already own workers
/// (the plan service, `uavdc compare`) avoid per-call thread churn. The
/// result is bit-identical to the serial run: each planner writes its own
/// slot and the final ranking pass is sequential.
[[nodiscard]] std::vector<PlannerComparison> compare_planners(
    const model::Instance& inst, const PlannerOptions& opts = {},
    std::vector<std::string> names = {}, util::ThreadPool* pool = nullptr);

/// Same, against a caller-supplied context (e.g. reused across sweeps).
[[nodiscard]] std::vector<PlannerComparison> compare_planners(
    const PlanningContext& ctx, const PlannerOptions& opts = {},
    std::vector<std::string> names = {}, util::ThreadPool* pool = nullptr);

}  // namespace uavdc::core
