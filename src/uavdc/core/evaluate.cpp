#include "uavdc/core/evaluate.hpp"

#include <algorithm>

#include "uavdc/geom/spatial_hash.hpp"

namespace uavdc::core {

Evaluation evaluate_plan(const model::Instance& inst,
                         const model::FlightPlan& plan, double eps) {
    Evaluation ev;
    ev.per_device_mb.assign(inst.devices.size(), 0.0);

    const auto breakdown = plan.energy(inst.depot, inst.uav);
    ev.energy_j = breakdown.total_j();
    ev.tour_time_s = breakdown.total_s();
    ev.energy_feasible = ev.energy_j <= inst.uav.energy_j + eps;

    if (!inst.devices.empty() && !plan.stops.empty()) {
        const auto positions = inst.device_positions();
        const geom::SpatialHash hash(positions, inst.uav.coverage_radius_m);
        std::vector<double> residual(inst.devices.size());
        for (std::size_t i = 0; i < inst.devices.size(); ++i) {
            residual[i] = inst.devices[i].data_mb;
        }
        const double bw = inst.uav.bandwidth_mbps;
        for (const auto& stop : plan.stops) {
            const double budget_mb = bw * stop.dwell_s;
            hash.for_each_in_disk(
                stop.pos, inst.uav.coverage_radius_m, [&](int dev) {
                    const auto d = static_cast<std::size_t>(dev);
                    const double got = std::min(residual[d], budget_mb);
                    if (got > 0.0) {
                        residual[d] -= got;
                        ev.per_device_mb[d] += got;
                    }
                });
        }
    }

    for (std::size_t i = 0; i < ev.per_device_mb.size(); ++i) {
        ev.collected_mb += ev.per_device_mb[i];
        if (ev.per_device_mb[i] > 0.0) ++ev.devices_touched;
        if (ev.per_device_mb[i] >= inst.devices[i].data_mb - 1e-9) {
            if (inst.devices[i].data_mb > 0.0) ++ev.devices_drained;
        }
    }
    return ev;
}

}  // namespace uavdc::core
