#include "uavdc/core/evaluate.hpp"

#include <algorithm>

#include "uavdc/model/energy_view.hpp"
#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/sim/battery.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::core {

Evaluation evaluate_plan(const model::Instance& inst,
                         const model::FlightPlan& plan, double eps) {
    Evaluation ev;
    ev.per_device_mb.assign(inst.devices.size(), 0.0);

    const model::EnergyView energy(inst.uav);
    const auto breakdown = plan.energy(inst.depot, inst.uav);
    ev.energy_j = breakdown.total_j();
    ev.tour_time_s = breakdown.total_s();
    ev.energy_feasible = ev.energy_j <= energy.budget_j() + eps;

    const geom::SpatialHash* hash = nullptr;
    geom::SpatialHash storage({}, 1.0);
    if (!inst.devices.empty()) {
        const auto positions = inst.device_positions();
        storage = geom::SpatialHash(positions, inst.uav.coverage_radius_m);
        hash = &storage;
    }

    // `residual` feeds the battery-aware accounting; `optimistic` the
    // battery-blind one. The same drain/truncation arithmetic as the
    // simulator (via sim::Battery) keeps the two layers bit-comparable.
    std::vector<double> residual(inst.devices.size());
    std::vector<double> optimistic(inst.devices.size());
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        residual[i] = inst.devices[i].data_mb;
        optimistic[i] = inst.devices[i].data_mb;
    }

    sim::Battery battery(energy.budget_j());
    const double bw = inst.uav.bandwidth_mbps;
    geom::Vec2 here = inst.depot;
    bool aborted = false;
    for (std::size_t si = 0; si < plan.stops.size(); ++si) {
        const auto& stop = plan.stops[si];
        if (!aborted) {
            // NOLINTNEXTLINE(uavdc-batched-distance): the evaluator replays
            // each stop once; the scalar oracle form is the spec
            const double dist = geom::distance(here, stop.pos);
            const double fly_t = energy.travel_time(dist);
            const double flown = battery.drain(energy.travel_power_w(),
                                               fly_t);
            ev.executed_time_s += flown;
            if (flown + 1e-12 < fly_t) {
                ev.truncated = true;
                ev.first_unreached_stop = util::checked_cast<int>(si);
                aborted = true;
            } else {
                here = stop.pos;
            }
        }
        double hover_t = 0.0;
        if (!aborted) {
            const double hover_budget =
                battery.time_until_empty(energy.hover_power_w());
            hover_t = std::min(stop.dwell_s, hover_budget);
        }
        if (hash != nullptr) {
            const double actual_mb = bw * hover_t;
            const double optimistic_mb = bw * stop.dwell_s;
            hash->for_each_in_disk(
                stop.pos, inst.uav.coverage_radius_m, [&](int dev) {
                    const auto d = static_cast<std::size_t>(dev);
                    const double got = std::min(residual[d], actual_mb);
                    if (got > 0.0) {
                        residual[d] -= got;
                        ev.per_device_mb[d] += got;
                        ev.collected_mb += got;
                    }
                    const double wish = std::min(optimistic[d],
                                                 optimistic_mb);
                    if (wish > 0.0) {
                        optimistic[d] -= wish;
                        ev.optimistic_mb += wish;
                    }
                });
        }
        if (!aborted) {
            battery.drain(energy.hover_power_w(), hover_t);
            ev.executed_time_s += hover_t;
            if (hover_t + 1e-12 < stop.dwell_s) {
                ev.truncated = true;
                if (si + 1 < plan.stops.size()) {
                    ev.first_unreached_stop = util::checked_cast<int>(si + 1);
                }
                aborted = true;
            }
        }
    }

    if (!aborted && !plan.stops.empty()) {
        const double dist = geom::distance(here, inst.depot);
        const double fly_t = energy.travel_time(dist);
        const double flown = battery.drain(energy.travel_power_w(), fly_t);
        ev.executed_time_s += flown;
        if (flown + 1e-12 < fly_t) ev.truncated = true;
    }
    ev.energy_spent_j = battery.consumed_j();

    for (std::size_t i = 0; i < ev.per_device_mb.size(); ++i) {
        if (ev.per_device_mb[i] > 0.0) ++ev.devices_touched;
        // Same drained rule (and arithmetic) as the simulator: residual
        // tracked by decrement, threshold 1e-9.
        if (inst.devices[i].data_mb > 0.0 && residual[i] <= 1e-9) {
            ++ev.devices_drained;
        }
    }
    return ev;
}

}  // namespace uavdc::core
