#pragma once

#include <vector>

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::core {

/// Ground-truth outcome of executing a plan, computed in closed form.
/// Each stop uploads concurrently (OFDMA) from every device within R0 at
/// bandwidth B for the stop's dwell; a device's data is collected at most
/// once in total (residual carried across stops, Sec. VI semantics).
///
/// Accounting is battery-aware: data is only credited while the battery
/// lasts, mirroring the simulator's truncation-at-depletion semantics. An
/// energy-infeasible plan therefore reports what the UAV would actually
/// bring home (`collected_mb`), with the no-battery-limit credit kept as a
/// separate field (`optimistic_mb`). For feasible plans the two coincide.
struct Evaluation {
    double collected_mb{0.0};     ///< data actually collected (battery-aware)
    double optimistic_mb{0.0};    ///< full-plan credit ignoring the battery
    double energy_j{0.0};         ///< energy the full plan demands
    double energy_spent_j{0.0};   ///< energy actually spent (<= battery E)
    double tour_time_s{0.0};      ///< full-plan T = T_h + T_t
    double executed_time_s{0.0};  ///< time until return or depletion
    bool energy_feasible{false};  ///< energy_j <= E (+eps)
    bool truncated{false};        ///< battery died before returning home
    int first_unreached_stop{-1};  ///< first stop never arrived at (-1: none)
    std::vector<double> per_device_mb;  ///< actually collected per device
    int devices_touched{0};             ///< devices with any data collected
    int devices_drained{0};             ///< devices fully collected
};

/// Evaluate `plan` against `inst`. Stops are processed in tour order;
/// devices upload min(residual, B * dwell) at each covering stop. All
/// energy math goes through `EnergyView`/`sim::Battery`, so the result
/// agrees with the discrete-event `Simulator` (calm wind, constant radio)
/// to floating-point accuracy — including for energy-infeasible plans,
/// where both truncate at the first unreachable stop. The conformance
/// oracle (`conformance.hpp`) asserts this agreement.
[[nodiscard]] Evaluation evaluate_plan(const model::Instance& inst,
                                       const model::FlightPlan& plan,
                                       double eps = 1e-6);

}  // namespace uavdc::core
