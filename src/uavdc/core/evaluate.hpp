#pragma once

#include <vector>

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::core {

/// Ground-truth outcome of executing a plan, computed in closed form.
/// Each stop uploads concurrently (OFDMA) from every device within R0 at
/// bandwidth B for the stop's dwell; a device's data is collected at most
/// once in total (residual carried across stops, Sec. VI semantics).
struct Evaluation {
    double collected_mb{0.0};           ///< total data actually collected
    double energy_j{0.0};               ///< total energy spent
    double tour_time_s{0.0};            ///< T = T_h + T_t
    bool energy_feasible{false};        ///< energy_j <= E (+eps)
    std::vector<double> per_device_mb;  ///< collected per device
    int devices_touched{0};             ///< devices with any data collected
    int devices_drained{0};             ///< devices fully collected
};

/// Evaluate `plan` against `inst`. Stops are processed in tour order;
/// devices upload min(residual, B * dwell) at each covering stop.
[[nodiscard]] Evaluation evaluate_plan(const model::Instance& inst,
                                       const model::FlightPlan& plan,
                                       double eps = 1e-6);

}  // namespace uavdc::core
