#include "uavdc/core/exact_dcm.hpp"

#include "uavdc/graph/held_karp.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::core {

ExactDcmResult solve_exact_dcm(const model::Instance& inst,
                               const ExactDcmConfig& cfg) {
    const auto ctx = PlanningContext::obtain(inst, cfg.candidates);
    return solve_exact_dcm(*ctx, cfg);
}

ExactDcmResult solve_exact_dcm(const PlanningContext& ctx,
                               const ExactDcmConfig& cfg) {
    ExactDcmResult out;
    const model::Instance& inst = ctx.instance();
    const auto& cands = ctx.candidates().candidates;
    const std::size_t m = cands.size();
    UAVDC_REQUIRE(m <= static_cast<std::size_t>(cfg.max_candidates_for_exact))
        << "solve_exact_dcm: candidate set too large (" << m << " > "
        << cfg.max_candidates_for_exact << ")";
    if (m == 0) return out;

    const model::EnergyView& energy = ctx.energy();
    const std::size_t nmask = std::size_t{1} << m;
    for (std::size_t mask = 1; mask < nmask; ++mask) {
        ++out.subsets_checked;
        // Union coverage volume and hover energy of the subset.
        std::vector<bool> covered(inst.devices.size(), false);
        double volume = 0.0;
        double hover_s = 0.0;
        std::vector<std::size_t> nodes{0};  // depot
        for (std::size_t c = 0; c < m; ++c) {
            if (!(mask & (std::size_t{1} << c))) continue;
            nodes.push_back(c + 1);
            hover_s += cands[c].dwell_s;
            for (int v : cands[c].covered) {
                const auto d = static_cast<std::size_t>(v);
                if (!covered[d]) {
                    covered[d] = true;
                    volume += inst.devices[d].data_mb;
                }
            }
        }
        if (volume <= out.collected_mb) continue;  // cannot improve
        // Optimal tour over depot + chosen candidates, distances served
        // from the context's lazily-filled pair cache.
        graph::DenseGraph sub(nodes.size());
        ctx.fill_submatrix(nodes, sub);
        const auto order = graph::held_karp_tour(sub, 0);
        const double tour_m = sub.tour_length(order);
        const double energy_j = energy.tour_cost(tour_m, hover_s);
        if (energy_j > energy.budget_j() + 1e-9) continue;
        // New best: materialise the plan in tour order.
        out.collected_mb = volume;
        out.energy_j = energy_j;
        out.plan.stops.clear();
        for (std::size_t i = 1; i < order.size(); ++i) {
            const auto c = nodes[order[i]] - 1;
            out.plan.stops.push_back(
                {cands[c].pos, cands[c].dwell_s, cands[c].cell_id});
        }
    }
    return out;
}

}  // namespace uavdc::core
