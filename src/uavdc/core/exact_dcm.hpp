#pragma once

#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/planner.hpp"
#include "uavdc/core/planning_context.hpp"

namespace uavdc::core {

/// Exact solver for the data collection maximization problem WITH hovering
/// coverage overlapping, on tiny candidate sets: enumerate every subset of
/// candidate hovering locations, collect the union of their coverage
/// (full-collection dwell = each candidate's t(s_j)), route the subset with
/// Held-Karp, and keep the best energy-feasible subset.
///
/// Exponential — intended as the ground-truth oracle for optimality-gap
/// tests of Algorithms 1/2/3 (the problems are NP-hard, Theorem 1, so no
/// polynomial exact solver exists). Throws std::invalid_argument when the
/// candidate set exceeds `max_candidates_for_exact`.
struct ExactDcmConfig {
    HoverCandidateConfig candidates;
    /// Enumeration guard: 2^n subsets, Held-Karp per subset.
    int max_candidates_for_exact = 12;
};

struct ExactDcmResult {
    model::FlightPlan plan;
    double collected_mb{0.0};  ///< union volume of the chosen subset
    double energy_j{0.0};
    int subsets_checked{0};
};

/// Solve exactly. The candidate set is built with cfg.candidates (memoized
/// through the global context cache); pass a coarse delta / small instance
/// so the set stays within the guard.
[[nodiscard]] ExactDcmResult solve_exact_dcm(const model::Instance& inst,
                                             const ExactDcmConfig& cfg);

/// Context form: reuses `ctx.candidates()` (the context's candidate config
/// wins over cfg.candidates) and the context's pair-distance cache.
[[nodiscard]] ExactDcmResult solve_exact_dcm(const PlanningContext& ctx,
                                             const ExactDcmConfig& cfg);

}  // namespace uavdc::core
