#include "uavdc/core/fleet.hpp"

#include <algorithm>

#include "uavdc/core/evaluate.hpp"
#include "uavdc/geom/kmeans.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

namespace {

/// Sub-instance containing only the devices in `keep` (ids re-densified);
/// `origin[i]` maps the sub-instance device i back to the parent id.
model::Instance sub_instance(const model::Instance& inst,
                             const std::vector<int>& keep,
                             std::vector<int>& origin) {
    model::Instance sub;
    sub.name = inst.name + "-zone";
    sub.region = inst.region;
    sub.depot = inst.depot;
    sub.uav = inst.uav;
    origin.clear();
    int id = 0;
    for (int v : keep) {
        const auto& d = inst.devices[static_cast<std::size_t>(v)];
        sub.devices.push_back({id++, d.pos, d.data_mb});
        origin.push_back(v);
    }
    return sub;
}

}  // namespace

FleetResult plan_fleet(const model::Instance& inst, const FleetConfig& cfg) {
    util::Timer timer;
    FleetResult out;
    if (cfg.uavs < 1 || inst.devices.empty()) {
        out.runtime_s = timer.seconds();
        return out;
    }

    // Partition devices into m zones (data-weighted k-means).
    const auto pts = inst.device_positions();
    std::vector<double> weights;
    weights.reserve(inst.devices.size());
    for (const auto& d : inst.devices) weights.push_back(d.data_mb);
    geom::KMeansConfig kc;
    kc.seed = cfg.seed;
    const auto clusters = geom::kmeans(pts, cfg.uavs, weights, kc);
    const std::size_t zones = clusters.centroids.size();

    std::vector<std::vector<int>> members(zones);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        members[static_cast<std::size_t>(clusters.assignment[i])].push_back(
            util::checked_cast<int>(i));
    }

    // Plan each zone independently; collect leftovers for the rebalance
    // pass.
    std::vector<bool> collected(inst.devices.size(), false);
    out.tours.resize(zones);
    for (std::size_t z = 0; z < zones; ++z) {
        if (members[z].empty()) continue;
        std::vector<int> origin;
        const auto sub = sub_instance(inst, members[z], origin);
        PartialCollectionPlanner planner(cfg.inner);
        auto res = planner.plan(sub);
        const auto ev = evaluate_plan(sub, res.plan);
        for (std::size_t d = 0; d < origin.size(); ++d) {
            if (ev.per_device_mb[d] >= sub.devices[d].data_mb - 1e-9 &&
                sub.devices[d].data_mb > 0.0) {
                collected[static_cast<std::size_t>(origin[d])] = true;
            }
        }
        out.tours[z] = std::move(res.plan);
    }

    if (cfg.rebalance) {
        // One pass: offer every fully-missed device to the zone whose
        // centroid is nearest after its own, then replan zones that gained.
        std::vector<std::vector<int>> extra(zones);
        bool any = false;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (collected[i] || inst.devices[i].data_mb <= 0.0) continue;
            const auto own =
                static_cast<std::size_t>(clusters.assignment[i]);
            double best = std::numeric_limits<double>::infinity();
            std::size_t target = own;
            for (std::size_t z = 0; z < zones; ++z) {
                if (z == own) continue;
                const double d =
                    // NOLINTNEXTLINE(uavdc-batched-distance): handoff scans
                    // a handful of zone centroids, not the candidate set
                    geom::distance(pts[i], clusters.centroids[z]);
                if (d < best) {
                    best = d;
                    target = z;
                }
            }
            if (target != own) {
                extra[target].push_back(util::checked_cast<int>(i));
                any = true;
            }
        }
        if (any) {
            for (std::size_t z = 0; z < zones; ++z) {
                if (extra[z].empty()) continue;
                std::vector<int> keep = members[z];
                keep.insert(keep.end(), extra[z].begin(), extra[z].end());
                std::sort(keep.begin(), keep.end());
                std::vector<int> origin;
                const auto sub = sub_instance(inst, keep, origin);
                PartialCollectionPlanner planner(cfg.inner);
                auto res = planner.plan(sub);
                // Keep whichever plan collects more for this zone.
                const double before =
                    evaluate_plan(inst, out.tours[z]).collected_mb;
                const double after =
                    evaluate_plan(sub, res.plan).collected_mb;
                if (after > before) out.tours[z] = std::move(res.plan);
            }
        }
    }

    out.planned_mb = evaluate_fleet(inst, out.tours);
    for (const auto& tour : out.tours) {
        out.makespan_s = std::max(
            out.makespan_s, tour.energy(inst.depot, inst.uav).total_s());
    }
    out.runtime_s = timer.seconds();
    return out;
}

double evaluate_fleet(const model::Instance& inst,
                      const std::vector<model::FlightPlan>& tours) {
    model::Instance residual = inst;
    double total = 0.0;
    for (const auto& tour : tours) {
        const auto ev = evaluate_plan(residual, tour);
        total += ev.collected_mb;
        for (std::size_t d = 0; d < residual.devices.size(); ++d) {
            residual.devices[d].data_mb = std::max(
                0.0, residual.devices[d].data_mb - ev.per_device_mb[d]);
        }
    }
    return total;
}

}  // namespace uavdc::core
