#pragma once

#include <vector>

#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/planner.hpp"

namespace uavdc::core {

/// Coordinated fleet planning (extension): m UAVs fly *simultaneously*
/// from the shared depot, so unlike multi-tour (sequential sorties with
/// residual hand-off) the fleet must split the field up front. Devices are
/// partitioned by data-weighted k-means into m zones, each UAV plans its
/// zone independently with Algorithm 3, and the mission makespan is the
/// slowest tour (not the sum).
struct FleetConfig {
    int uavs = 2;                ///< m: fleet size
    Algorithm3Config inner;      ///< per-UAV planner configuration
    std::uint64_t seed = 29;     ///< partitioning seed
    /// Rebalance pass: move boundary devices to the neighbouring zone when
    /// their own zone's planner left them uncollected (one pass).
    bool rebalance = true;
};

struct FleetResult {
    std::vector<model::FlightPlan> tours;  ///< one per UAV (may be empty)
    double planned_mb{0.0};                ///< de-duplicated fleet total
    double makespan_s{0.0};                ///< slowest tour's T
    double runtime_s{0.0};
};

/// Plan a simultaneous m-UAV mission on `inst`. Every tour independently
/// satisfies the per-UAV energy budget E; the fleet total never counts a
/// device twice (zones partition the devices, and the evaluation is
/// residual-aware anyway).
[[nodiscard]] FleetResult plan_fleet(const model::Instance& inst,
                                     const FleetConfig& cfg);

/// Fleet-level evaluation: total volume collected when all tours execute
/// (shared residuals, so overlapping pickups are not double counted).
[[nodiscard]] double evaluate_fleet(const model::Instance& inst,
                                    const std::vector<model::FlightPlan>& tours);

}  // namespace uavdc::core
