#include "uavdc/core/hover_candidates.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "uavdc/core/batch_kernels.hpp"
#include "uavdc/core/soa_layout.hpp"
#include "uavdc/geom/coverage.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/parallel_for.hpp"

namespace uavdc::core {

namespace {

/// FNV-1a over the covered-device list, for coverage-set dedup buckets.
std::uint64_t hash_coverage(const std::vector<int>& covered) {
    std::uint64_t h = 1469598103934665603ULL;
    for (int v : covered) {
        // NOLINTNEXTLINE(uavdc-unchecked-narrowing): device ids are
        // dense non-negative indices; mixing their 32-bit pattern is
        // the hash, wraparound would be harmless by design
        h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
        h *= 1099511628211ULL;
    }
    return h;
}

/// Mean squared distance from `pos` to its covered devices — dedup keeps
/// the candidate centred best over its coverage set.
double coverage_spread(const geom::Vec2& pos, const std::vector<int>& covered,
                       const DeviceSoa& soa) {
    if (covered.empty()) return 0.0;
    const double s = kernels::sum_squared_distances_ordered(
        covered.data(), covered.size(), soa.pos.xs.data(), soa.pos.ys.data(),
        pos);
    return s / static_cast<double>(covered.size());
}

}  // namespace

HoverCandidateSet build_hover_candidates(const model::Instance& inst,
                                         const HoverCandidateConfig& cfg,
                                         const DeviceSoa* device_soa) {
    HoverCandidateSet out;
    out.delta_m = cfg.delta_m;

    geom::Aabb hover_region = inst.region;
    if (cfg.inflate_by_coverage) {
        hover_region = hover_region.inflated(inst.uav.coverage_radius_m);
    }
    const geom::Grid grid(hover_region, cfg.delta_m);
    out.grid_cells = grid.num_cells();

    const auto dev_pos = inst.device_positions();
    const auto centers = grid.all_centers();
    const geom::CoverageIndex cov(centers, dev_pos,
                                  inst.uav.coverage_radius_m);

    const double eta_h = inst.uav.hover_power_w;
    // SoA device plane for the scoring kernels: data volumes plus
    // precomputed upload times (bit-identical to Device::upload_time).
    // Reuse the caller's copy when offered (build_device_soa is itself
    // deterministic, so either path yields the same values).
    const DeviceSoa local_soa =
        device_soa == nullptr ? build_device_soa(inst) : DeviceSoa{};
    const DeviceSoa& soa = device_soa == nullptr ? local_soa : *device_soa;
    UAVDC_DCHECK(soa.data_mb.size() >= inst.devices.size());

    // Per-cell Eq. 6-8 quantities are independent: score every cell into
    // its own slot on the thread pool, then compact in cell order (keeps
    // the output identical to a serial pass regardless of thread count).
    const auto num_cells = static_cast<std::size_t>(grid.num_cells());
    std::vector<HoverCandidate> slots(num_cells);
    auto score_cell = [&](std::size_t id) {
        const auto& covered = cov.covered(util::checked_cast<int>(id));
        HoverCandidate& c = slots[id];
        c.cell_id = -1;  // stays -1 when the cell yields no candidate
        if (covered.empty()) return;
        if (cfg.position_ok && !cfg.position_ok(centers[id])) return;
        c.pos = centers[id];
        c.cell_id = util::checked_cast<int>(id);
        c.covered = covered;
        // Eq. 6-8 award/dwell, accumulated in covered-list order (the same
        // order and expressions as the scalar loop this replaces).
        const kernels::GainAccum g = kernels::award_dwell_ordered(
            covered.data(), covered.size(), soa.data_mb.data(),
            soa.upload_s.data());
        c.award_mb = g.sum_mb;
        c.dwell_s = g.max_s;
        c.hover_energy_j = c.dwell_s * eta_h;
    };
    constexpr std::size_t kParallelCells = 1024;
    if (num_cells >= kParallelCells) {
        util::parallel_for(0, num_cells, score_cell, 128);
    } else {
        for (std::size_t id = 0; id < num_cells; ++id) score_cell(id);
    }
    std::vector<HoverCandidate> cands;
    for (auto& slot : slots) {
        if (slot.cell_id >= 0) cands.push_back(std::move(slot));
    }
    out.nonzero_cells = util::checked_cast<int>(cands.size());

    if (cfg.dedupe_identical_coverage && !cands.empty()) {
        std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            buckets[hash_coverage(cands[i].covered)].push_back(i);
        }
        std::vector<bool> keep(cands.size(), true);
        // NOLINTNEXTLINE(uavdc-unordered-iteration): per-bucket winners are
        // chosen by spread comparisons alone and survivors are emitted in
        // candidate index order below, so bucket order cannot reach output.
        for (auto& [h, idxs] : buckets) {
            if (idxs.size() < 2) continue;
            // Within a hash bucket, group truly-equal coverage sets and keep
            // the best-centred representative of each group.
            for (std::size_t a = 0; a < idxs.size(); ++a) {
                if (!keep[idxs[a]]) continue;
                std::size_t best = idxs[a];
                double best_spread =
                    coverage_spread(cands[best].pos, cands[best].covered,
                                    soa);
                for (std::size_t b = a + 1; b < idxs.size(); ++b) {
                    if (!keep[idxs[b]]) continue;
                    if (cands[idxs[a]].covered != cands[idxs[b]].covered) {
                        continue;
                    }
                    const double sp = coverage_spread(
                        cands[idxs[b]].pos, cands[idxs[b]].covered, soa);
                    if (sp < best_spread) {
                        keep[best] = false;
                        best = idxs[b];
                        best_spread = sp;
                    } else {
                        keep[idxs[b]] = false;
                    }
                }
            }
        }
        std::vector<HoverCandidate> deduped;
        deduped.reserve(cands.size());
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (keep[i]) deduped.push_back(std::move(cands[i]));
        }
        cands = std::move(deduped);
    }
    out.after_dedupe = util::checked_cast<int>(cands.size());

    if (cfg.max_candidates > 0 &&
        cands.size() > static_cast<std::size_t>(cfg.max_candidates)) {
        // Pass 1: greedy set cover so every coverable device keeps at least
        // one candidate (prefer higher award per pick).
        std::vector<std::size_t> order(cands.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return cands[a].award_mb > cands[b].award_mb;
                  });
        std::vector<bool> device_hit(inst.devices.size(), false);
        std::vector<bool> selected(cands.size(), false);
        std::size_t n_selected = 0;
        for (std::size_t i : order) {
            bool adds = false;
            for (int v : cands[i].covered) {
                if (!device_hit[static_cast<std::size_t>(v)]) {
                    adds = true;
                    break;
                }
            }
            if (!adds) continue;
            selected[i] = true;
            ++n_selected;
            for (int v : cands[i].covered) {
                device_hit[static_cast<std::size_t>(v)] = true;
            }
            if (n_selected >= static_cast<std::size_t>(cfg.max_candidates)) {
                break;
            }
        }
        // Pass 2: fill remaining slots by award.
        for (std::size_t i : order) {
            if (n_selected >= static_cast<std::size_t>(cfg.max_candidates)) {
                break;
            }
            if (!selected[i]) {
                selected[i] = true;
                ++n_selected;
            }
        }
        std::vector<HoverCandidate> capped;
        capped.reserve(n_selected);
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (selected[i]) capped.push_back(std::move(cands[i]));
        }
        cands = std::move(capped);
    }

    out.candidates = std::move(cands);
    return out;
}

}  // namespace uavdc::core
