#pragma once

#include <functional>
#include <vector>

#include "uavdc/geom/grid.hpp"
#include "uavdc/geom/vec2.hpp"
#include "uavdc/model/instance.hpp"

namespace uavdc::core {

struct DeviceSoa;

/// Candidate-generation options (Sec. III-B / IV-A grid discretisation).
struct HoverCandidateConfig {
    double delta_m = 10.0;  ///< grid edge length delta
    /// Drop duplicate candidates whose covered-device set is identical to an
    /// earlier candidate's (keeps the one closest to its coverage centroid).
    bool dedupe_identical_coverage = true;
    /// Upper bound on the candidate count after dedup (0 = unlimited).
    /// When exceeded, a greedy set-cover pass keeps at least one candidate
    /// per coverable device, then the remaining slots go to the
    /// highest-award candidates (DESIGN.md substitution #5).
    int max_candidates = 4000;
    /// Also consider hovering locations in a band of width R0 around the
    /// region, so edge devices can be covered from outside the region.
    bool inflate_by_coverage = false;
    /// Optional admissibility predicate on hovering positions (e.g. "not
    /// inside a no-fly zone"); cells whose centre fails it are dropped
    /// before any other processing. Empty = all positions admissible.
    std::function<bool(const geom::Vec2&)> position_ok;
};

/// One candidate hovering location s_j with its precomputed quantities
/// from Sec. III-B: C(s_j), award p(s_j) (Eq. 6), dwell t(s_j) (Eq. 7),
/// hover energy w1(s_j) (Eq. 8).
struct HoverCandidate {
    geom::Vec2 pos;             ///< cell centre (projected to ground)
    int cell_id{-1};            ///< id in the generating grid
    std::vector<int> covered;   ///< device indices in C(s_j), sorted
    double award_mb{0.0};       ///< p(s_j) = sum of covered D_v
    double dwell_s{0.0};        ///< t(s_j) = max covered D_v / B
    double hover_energy_j{0.0}; ///< w1(s_j) = t(s_j) * eta_h
};

/// The generated candidate set plus provenance.
struct HoverCandidateSet {
    std::vector<HoverCandidate> candidates;
    int grid_cells{0};        ///< total cells in the grid before filtering
    int nonzero_cells{0};     ///< cells covering at least one device
    int after_dedupe{0};      ///< candidates left after coverage dedup
    double delta_m{0.0};

    [[nodiscard]] std::size_t size() const { return candidates.size(); }
};

/// Build candidate hovering locations for `inst`: partition the region into
/// delta-squares, keep cells covering >= 1 device, compute Eq. 6-8
/// quantities, dedupe and cap per `cfg`. When the caller already holds the
/// instance's SoA device plane (PlanningContext builds it eagerly), passing
/// it via `device_soa` skips the redundant rebuild; it must mirror `inst`.
[[nodiscard]] HoverCandidateSet build_hover_candidates(
    const model::Instance& inst, const HoverCandidateConfig& cfg,
    const DeviceSoa* device_soa = nullptr);

}  // namespace uavdc::core
