#include "uavdc/core/incremental_scorer.hpp"

#include "uavdc/util/check.hpp"

namespace uavdc::core {

std::string to_string(ScoringEngine engine) {
    switch (engine) {
        case ScoringEngine::kIncremental:
            return "incremental";
        case ScoringEngine::kReference:
            return "reference";
        case ScoringEngine::kIncrementalFast:
            return "incremental-fast";
    }
    return "unknown";
}

std::optional<ScoringEngine> scoring_engine_from_string(
    const std::string& name) {
    if (name == "incremental") return ScoringEngine::kIncremental;
    if (name == "incremental-fast") return ScoringEngine::kIncrementalFast;
    if (name == "reference") return ScoringEngine::kReference;
    return std::nullopt;
}

InvertedCoverageIndex::InvertedCoverageIndex(const HoverCandidateSet& cands,
                                             std::size_t num_devices) {
    starts_.assign(num_devices + 1, 0);
    for (const auto& c : cands.candidates) {
        for (const int v : c.covered) {
            const auto dv = static_cast<std::size_t>(v);
            UAVDC_DCHECK(dv < num_devices);
            ++starts_[dv + 1];
        }
    }
    for (std::size_t v = 0; v < num_devices; ++v) {
        starts_[v + 1] += starts_[v];
    }
    cand_.resize(starts_[num_devices]);
    std::vector<std::size_t> cursor(starts_.begin(), starts_.end() - 1);
    // Candidates are visited in ascending index order, so each device's
    // covering list comes out sorted.
    for (std::size_t j = 0; j < cands.candidates.size(); ++j) {
        for (const int v : cands.candidates[j].covered) {
            cand_[cursor[static_cast<std::size_t>(v)]++] =
                util::checked_cast<std::int32_t>(j);
        }
    }
}

}  // namespace uavdc::core
