#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "uavdc/core/hover_candidates.hpp"

namespace uavdc::core {

/// Which scoring engine a greedy planner runs. kIncremental and kReference
/// must produce bit-identical plans; the reference engine is retained as the
/// equivalence oracle (tests/test_incremental_scorer.cpp) and as a fallback.
/// kIncrementalFast additionally reassociates the coverage-gain sums into
/// fixed 8-lane partials (kernels::*_fast) — deterministic on every
/// compiler/ISA but only epsilon-equal to the oracle; it is opt-in and
/// validated by the epsilon tier of `uavdc conformance` (tolerances in
/// DESIGN.md "Memory layout & vectorization").
enum class ScoringEngine {
    kIncremental,      ///< lazy-greedy heap + inverted index + insertion cache
    kReference,        ///< from-scratch rescan of every candidate per iteration
    kIncrementalFast,  ///< kIncremental with reassociated (8-lane) gain sums
};

[[nodiscard]] std::string to_string(ScoringEngine engine);

/// Parses the `to_string` names ("incremental" | "incremental-fast" |
/// "reference"); nullopt on anything else. Shared by the CLI `--scoring`
/// flag and the service request schema so the spellings cannot drift.
[[nodiscard]] std::optional<ScoringEngine> scoring_engine_from_string(
    const std::string& name);

/// CSR inverted index mapping each device to the hover candidates whose
/// coverage set contains it. Covering a device then touches only
/// `covering(device)` — the candidates that actually lose residual gain —
/// instead of every candidate.
class InvertedCoverageIndex {
  public:
    InvertedCoverageIndex(const HoverCandidateSet& cands,
                          std::size_t num_devices);

    [[nodiscard]] std::size_t num_devices() const {
        return starts_.empty() ? 0 : starts_.size() - 1;
    }

    /// Candidate indices covering `device`, in ascending order.
    [[nodiscard]] std::span<const std::int32_t> covering(
        std::size_t device) const {
        return {cand_.data() + starts_[device],
                starts_[device + 1] - starts_[device]};
    }

  private:
    std::vector<std::size_t> starts_;  // num_devices + 1 offsets into cand_
    std::vector<std::int32_t> cand_;
};

/// Lazy-greedy (Minoux-style) argmax over candidate scores.
///
/// Entries carry a per-candidate version; `update()` bumps the version and
/// pushes a fresh entry, so stale heap entries are recognised and discarded
/// on pop. The heap orders by (key desc, index asc) — the same deterministic
/// lexicographic rule the reference scorer's ascending argmax scan applies —
/// so serial and parallel planner paths pick identical candidates.
class LazyGreedyQueue {
  public:
    explicit LazyGreedyQueue(std::size_t n)
        : key_(n, 0.0), version_(n, 0), active_(n, 1) {}

    /// Set candidate `i`'s key (exact score or upper bound) and enqueue it.
    void update(std::size_t i, double key) {
        key_[i] = key;
        ++version_[i];
        heap_.push(Entry{key, i, version_[i]});
    }

    /// Permanently retire candidate `i` (selected, or provably never
    /// selectable again). Its heap entries become stale.
    void deactivate(std::size_t i) {
        active_[i] = 0;
        ++version_[i];
    }

    [[nodiscard]] bool active(std::size_t i) const { return active_[i] != 0; }
    [[nodiscard]] double key(std::size_t i) const { return key_[i]; }

    /// Drop every queued entry (keys and versions are kept); callers re-add
    /// live candidates with `update()` after a global invalidation.
    void clear() { heap_ = {}; }

    /// clear() + update() for every (index, key) pair, as one O(n) heapify
    /// instead of n O(log n) pushes — the post-re-tour path where every
    /// live key changes at once.
    void rebuild(std::span<const std::pair<std::size_t, double>> items) {
        std::vector<Entry> entries;
        entries.reserve(items.size());
        for (const auto& [i, key] : items) {
            key_[i] = key;
            ++version_[i];
            entries.push_back(Entry{key, i, version_[i]});
        }
        heap_ = decltype(heap_)(Less{}, std::move(entries));
    }

    struct Pick {
        std::size_t index{0};
        double exact{0.0};
        bool found{false};
    };

    /// Lazy argmax. Pops entries in (key desc, index asc) order and calls
    /// `eval(i) -> {exact_score, selectable}` on each until the top key can
    /// no longer lexicographically beat the best evaluated candidate.
    ///
    /// `exact_keys` selects the re-enqueue policy:
    ///  - true (policy A): keys ARE exact scores; an unselectable pop is
    ///    dropped from the heap — valid only when unselectability is
    ///    monotone until the next `update()` of that candidate (Alg. 2's
    ///    energy/deadline feasibility between re-tours).
    ///  - false (policy B): keys are upper bounds; every evaluated,
    ///    non-picked candidate is re-enqueued under its current key.
    template <typename Eval>
    Pick pop_best(bool exact_keys, Eval&& eval) {
        Pick best;
        evaluated_.clear();
        while (!heap_.empty()) {
            const Entry top = heap_.top();
            if (active_[top.idx] == 0 || top.version != version_[top.idx]) {
                heap_.pop();  // stale
                continue;
            }
            if (best.found &&
                !(top.key > best.exact ||
                  (top.key == best.exact && top.idx < best.index))) {
                break;  // nothing left can beat the incumbent
            }
            heap_.pop();
            const std::pair<double, bool> r = eval(top.idx);
            evaluated_.push_back({top.idx, r.second});
            if (r.second &&
                (!best.found || r.first > best.exact ||
                 (r.first == best.exact && top.idx < best.index))) {
                best = Pick{top.idx, r.first, true};
            }
        }
        // Re-enqueue after the loop (re-pushing inside it would re-pop the
        // same entries forever under policy B).
        for (const auto& [idx, selectable] : evaluated_) {
            if (best.found && idx == best.index) continue;
            if (exact_keys && !selectable) continue;
            heap_.push(Entry{key_[idx], idx, version_[idx]});
        }
        return best;
    }

  private:
    struct Entry {
        double key;
        std::size_t idx;
        std::uint64_t version;
    };
    struct Less {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.key != b.key) return a.key < b.key;
            return a.idx > b.idx;  // max-heap pops the smaller index first
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Less> heap_;
    std::vector<double> key_;
    std::vector<std::uint64_t> version_;
    std::vector<char> active_;
    std::vector<std::pair<std::size_t, bool>> evaluated_;  // pop_best scratch
};

}  // namespace uavdc::core
