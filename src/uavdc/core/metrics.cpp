#include "uavdc/core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "uavdc/geom/spatial_hash.hpp"

namespace uavdc::core {

namespace {

// Geometric bucket grid: kLoSeconds * kGrowth^b for b in [0, kBuckets).
// 96 buckets spanning 1e-6 s .. ~1e3 s gives a per-bucket growth factor of
// ~1.24, i.e. quantiles resolve to ~12% before interpolation.
constexpr double kLoSeconds = 1e-6;
constexpr double kHiSeconds = 1e3;

double bucket_growth() {
    static const double kGrowth =
        std::pow(kHiSeconds / kLoSeconds,
                 1.0 / static_cast<double>(LatencyHistogram::kBuckets - 1));
    return kGrowth;
}

}  // namespace

std::size_t LatencyHistogram::bucket_of(double seconds) {
    if (seconds <= kLoSeconds) return 0;
    const std::size_t b = static_cast<std::size_t>(
        std::log(seconds / kLoSeconds) / std::log(bucket_growth()) + 1.0);
    return std::min(b, kBuckets - 1);
}

double LatencyHistogram::bucket_lo(std::size_t b) {
    return b == 0 ? 0.0
                  : kLoSeconds *
                        std::pow(bucket_growth(),
                                 static_cast<double>(b) - 1.0);
}

void LatencyHistogram::record(double seconds) {
    seconds = std::max(seconds, 0.0);
    ++counts_[bucket_of(seconds)];
    if (n_ == 0) {
        min_ = max_ = seconds;
    } else {
        min_ = std::min(min_, seconds);
        max_ = std::max(max_, seconds);
    }
    ++n_;
    sum_ += seconds;
}

double LatencyHistogram::quantile(double q) const {
    if (n_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(n_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (counts_[b] == 0) continue;
        const auto next = seen + counts_[b];
        if (static_cast<double>(next) >= target) {
            // Interpolate within the bucket by rank.
            const double lo = bucket_lo(b);
            const double hi =
                b + 1 < kBuckets ? bucket_lo(b + 1) : max_;
            const double frac =
                (target - static_cast<double>(seen)) /
                static_cast<double>(counts_[b]);
            const double v = lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
            return std::clamp(v, min_, max_);
        }
        seen = next;
    }
    return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& o) {
    if (o.n_ == 0) return;
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    min_ = n_ == 0 ? o.min_ : std::min(min_, o.min_);
    max_ = n_ == 0 ? o.max_ : std::max(max_, o.max_);
    n_ += o.n_;
    sum_ += o.sum_;
}

PlanMetrics compute_metrics(const model::Instance& inst,
                            const model::FlightPlan& plan) {
    PlanMetrics m;
    const auto breakdown = plan.energy(inst.depot, inst.uav);
    m.hover_energy_j = breakdown.hover_j;
    m.travel_energy_j = breakdown.travel_j;
    const double total_j = breakdown.total_j();
    m.hover_fraction = total_j > 0.0 ? breakdown.hover_j / total_j : 0.0;
    m.tour_length_m = breakdown.travel_m;
    m.tour_time_s = breakdown.total_s();
    if (!plan.stops.empty()) {
        // Legs: depot -> s0, s_i -> s_{i+1}, s_last -> depot.
        m.mean_leg_m = breakdown.travel_m /
                       static_cast<double>(plan.stops.size() + 1);
    }

    std::vector<double> residual(inst.devices.size());
    std::vector<double> collected(inst.devices.size(), 0.0);
    std::vector<double> drain_time(inst.devices.size(), -1.0);
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        residual[i] = inst.devices[i].data_mb;
    }

    if (!inst.devices.empty() && !plan.stops.empty()) {
        const auto positions = inst.device_positions();
        const geom::SpatialHash hash(positions, inst.uav.coverage_radius_m);
        double clock = 0.0;
        geom::Vec2 here = inst.depot;
        const double bw = inst.uav.bandwidth_mbps;
        for (const auto& stop : plan.stops) {
            // NOLINTNEXTLINE(uavdc-batched-distance): metrics replay each
            // stop once, mirroring the evaluator oracle
            clock += inst.uav.travel_time(geom::distance(here, stop.pos));
            here = stop.pos;
            hash.for_each_in_disk(
                stop.pos, inst.uav.coverage_radius_m, [&](int dev) {
                    const auto d = static_cast<std::size_t>(dev);
                    if (residual[d] <= 0.0) return;
                    const double got =
                        std::min(residual[d], bw * stop.dwell_s);
                    residual[d] -= got;
                    collected[d] += got;
                    if (residual[d] <= 1e-9 && drain_time[d] < 0.0) {
                        // Drained partway through this hover.
                        drain_time[d] = clock + got / bw;
                    }
                });
            clock += stop.dwell_s;
        }
    }

    double fairness_num = 0.0;
    double fairness_den = 0.0;
    int holders = 0;
    double latency_sum = 0.0;
    int drained = 0;
    for (std::size_t d = 0; d < inst.devices.size(); ++d) {
        const double total = inst.devices[d].data_mb;
        m.collected_mb += collected[d];
        if (total <= 0.0) continue;
        ++holders;
        const double frac = collected[d] / total;
        fairness_num += frac;
        fairness_den += frac * frac;
        if (collected[d] > 0.0) {
            ++m.devices_touched;
        } else {
            ++m.devices_missed;
        }
        if (drain_time[d] >= 0.0) {
            ++drained;
            latency_sum += drain_time[d];
            m.max_drain_latency_s =
                std::max(m.max_drain_latency_s, drain_time[d]);
        }
    }
    m.devices_drained = drained;
    const double total_mb = inst.total_data_mb();
    m.collected_fraction = total_mb > 0.0 ? m.collected_mb / total_mb : 0.0;
    m.energy_per_gb_j =
        m.collected_mb > 0.0 ? total_j / (m.collected_mb / 1000.0) : 0.0;
    if (holders > 0 && fairness_den > 0.0) {
        m.jain_fairness = fairness_num * fairness_num /
                          (static_cast<double>(holders) * fairness_den);
    }
    if (drained > 0) {
        m.mean_drain_latency_s = latency_sum / static_cast<double>(drained);
    }
    return m;
}

}  // namespace uavdc::core
