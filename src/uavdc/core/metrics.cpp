#include "uavdc/core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "uavdc/geom/spatial_hash.hpp"

namespace uavdc::core {

PlanMetrics compute_metrics(const model::Instance& inst,
                            const model::FlightPlan& plan) {
    PlanMetrics m;
    const auto breakdown = plan.energy(inst.depot, inst.uav);
    m.hover_energy_j = breakdown.hover_j;
    m.travel_energy_j = breakdown.travel_j;
    const double total_j = breakdown.total_j();
    m.hover_fraction = total_j > 0.0 ? breakdown.hover_j / total_j : 0.0;
    m.tour_length_m = breakdown.travel_m;
    m.tour_time_s = breakdown.total_s();
    if (!plan.stops.empty()) {
        // Legs: depot -> s0, s_i -> s_{i+1}, s_last -> depot.
        m.mean_leg_m = breakdown.travel_m /
                       static_cast<double>(plan.stops.size() + 1);
    }

    std::vector<double> residual(inst.devices.size());
    std::vector<double> collected(inst.devices.size(), 0.0);
    std::vector<double> drain_time(inst.devices.size(), -1.0);
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        residual[i] = inst.devices[i].data_mb;
    }

    if (!inst.devices.empty() && !plan.stops.empty()) {
        const auto positions = inst.device_positions();
        const geom::SpatialHash hash(positions, inst.uav.coverage_radius_m);
        double clock = 0.0;
        geom::Vec2 here = inst.depot;
        const double bw = inst.uav.bandwidth_mbps;
        for (const auto& stop : plan.stops) {
            clock += inst.uav.travel_time(geom::distance(here, stop.pos));
            here = stop.pos;
            hash.for_each_in_disk(
                stop.pos, inst.uav.coverage_radius_m, [&](int dev) {
                    const auto d = static_cast<std::size_t>(dev);
                    if (residual[d] <= 0.0) return;
                    const double got =
                        std::min(residual[d], bw * stop.dwell_s);
                    residual[d] -= got;
                    collected[d] += got;
                    if (residual[d] <= 1e-9 && drain_time[d] < 0.0) {
                        // Drained partway through this hover.
                        drain_time[d] = clock + got / bw;
                    }
                });
            clock += stop.dwell_s;
        }
    }

    double fairness_num = 0.0;
    double fairness_den = 0.0;
    int holders = 0;
    double latency_sum = 0.0;
    int drained = 0;
    for (std::size_t d = 0; d < inst.devices.size(); ++d) {
        const double total = inst.devices[d].data_mb;
        m.collected_mb += collected[d];
        if (total <= 0.0) continue;
        ++holders;
        const double frac = collected[d] / total;
        fairness_num += frac;
        fairness_den += frac * frac;
        if (collected[d] > 0.0) {
            ++m.devices_touched;
        } else {
            ++m.devices_missed;
        }
        if (drain_time[d] >= 0.0) {
            ++drained;
            latency_sum += drain_time[d];
            m.max_drain_latency_s =
                std::max(m.max_drain_latency_s, drain_time[d]);
        }
    }
    m.devices_drained = drained;
    const double total_mb = inst.total_data_mb();
    m.collected_fraction = total_mb > 0.0 ? m.collected_mb / total_mb : 0.0;
    m.energy_per_gb_j =
        m.collected_mb > 0.0 ? total_j / (m.collected_mb / 1000.0) : 0.0;
    if (holders > 0 && fairness_den > 0.0) {
        m.jain_fairness = fairness_num * fairness_num /
                          (static_cast<double>(holders) * fairness_den);
    }
    if (drained > 0) {
        m.mean_drain_latency_s = latency_sum / static_cast<double>(drained);
    }
    return m;
}

}  // namespace uavdc::core
