#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::core {

/// Fixed-footprint log-bucketed latency histogram. Buckets are geometric
/// from 1 microsecond to ~1000 seconds, so p50/p95/p99 resolve to a few
/// percent across six decades without storing samples. Quantiles are read
/// from the bucket whose cumulative count first reaches q * n, linearly
/// interpolated within the bucket and clamped to the observed [min, max].
///
/// Not internally synchronized — the plan service guards each per-planner
/// histogram with its stats mutex.
class LatencyHistogram {
  public:
    void record(double seconds);

    [[nodiscard]] std::uint64_t count() const { return n_; }
    [[nodiscard]] double mean_s() const {
        return n_ ? sum_ / static_cast<double>(n_) : 0.0;
    }
    [[nodiscard]] double min_s() const { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max_s() const { return n_ ? max_ : 0.0; }

    /// q-th quantile in seconds, q in [0, 1]; 0 when empty.
    [[nodiscard]] double quantile(double q) const;

    /// Merge another histogram (e.g. per-worker shards).
    void merge(const LatencyHistogram& o);

    static constexpr std::size_t kBuckets = 96;

  private:
    [[nodiscard]] static std::size_t bucket_of(double seconds);
    [[nodiscard]] static double bucket_lo(std::size_t b);

    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t n_{0};
    double sum_{0.0};
    double min_{0.0};
    double max_{0.0};
};

/// Per-plan analytics beyond raw collected volume — the quantities an
/// operator would track sortie over sortie.
struct PlanMetrics {
    // Energy split (the hover/travel trade-off the paper optimises).
    double hover_energy_j{0.0};
    double travel_energy_j{0.0};
    double hover_fraction{0.0};   ///< hover_j / (hover_j + travel_j)
    double energy_per_gb_j{0.0};  ///< total energy / collected GB (0 if none)

    // Collection outcome.
    double collected_mb{0.0};
    double collected_fraction{0.0};  ///< of the instance total
    int devices_touched{0};
    int devices_drained{0};
    int devices_missed{0};           ///< data > 0, nothing collected

    /// Jain's fairness index over per-device collected fractions of
    /// devices holding data: 1.0 = perfectly even service, 1/n = one
    /// device served. 0 when nothing was collected.
    double jain_fairness{0.0};

    // Latency: when each device's data became fully available at the UAV.
    // Measured in tour time from departure; only devices fully drained
    // count. 0 when none.
    double mean_drain_latency_s{0.0};
    double max_drain_latency_s{0.0};

    // Tour geometry.
    double tour_length_m{0.0};
    double tour_time_s{0.0};
    double mean_leg_m{0.0};          ///< mean inter-stop flight leg
};

/// Compute metrics by walking the plan stop by stop (same upload semantics
/// as core::evaluate_plan / the simulator).
[[nodiscard]] PlanMetrics compute_metrics(const model::Instance& inst,
                                          const model::FlightPlan& plan);

}  // namespace uavdc::core
