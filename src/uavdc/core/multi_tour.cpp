#include "uavdc/core/multi_tour.hpp"

#include <algorithm>

#include "uavdc/core/evaluate.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

MultiTourResult plan_multi_tour(const model::Instance& inst,
                                const MultiTourConfig& cfg) {
    util::Timer timer;
    MultiTourResult out;
    model::Instance residual = inst;
    for (int r = 0; r < cfg.tours; ++r) {
        PartialCollectionPlanner planner(cfg.inner);
        auto res = planner.plan(residual);
        const auto ev = evaluate_plan(residual, res.plan);
        if (ev.collected_mb < cfg.min_sortie_gain_mb) break;
        out.planned_mb += ev.collected_mb;
        if (out.sorties_used > 0) out.makespan_s += cfg.recharge_s;
        out.makespan_s +=
            res.plan.energy(inst.depot, inst.uav).total_s();
        ++out.sorties_used;
        // Subtract this sortie's pickups from the residual instance.
        for (std::size_t d = 0; d < residual.devices.size(); ++d) {
            residual.devices[d].data_mb = std::max(
                0.0, residual.devices[d].data_mb - ev.per_device_mb[d]);
        }
        out.tours.push_back(std::move(res.plan));
    }
    out.runtime_s = timer.seconds();
    return out;
}

double evaluate_multi_tour(const model::Instance& inst,
                           const std::vector<model::FlightPlan>& tours) {
    model::Instance residual = inst;
    double total = 0.0;
    for (const auto& tour : tours) {
        const auto ev = evaluate_plan(residual, tour);
        total += ev.collected_mb;
        for (std::size_t d = 0; d < residual.devices.size(); ++d) {
            residual.devices[d].data_mb = std::max(
                0.0, residual.devices[d].data_mb - ev.per_device_mb[d]);
        }
    }
    return total;
}

}  // namespace uavdc::core
