#pragma once

#include <vector>

#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/planner.hpp"

namespace uavdc::core {

/// Extension beyond the paper's single-tour setting: plan R consecutive
/// tours. The two operational readings share the same planning problem:
///  * multi-trip — one UAV that returns to the depot, swaps battery, and
///    flies again (each tour gets the full energy budget E);
///  * fleet — R UAVs flying disjoint sorties from the same depot.
/// Planning is sequential with residual data: tour r is planned by the
/// inner Algorithm-3 planner against the data left behind by tours
/// 1..r-1, which is exactly the greedy set-function heuristic the paper's
/// Algorithm 2/3 use within a single tour, lifted one level up.
struct MultiTourConfig {
    int tours = 2;                 ///< R: number of sorties
    Algorithm3Config inner;        ///< per-sortie planner configuration
    /// Stop early if a sortie adds less than this volume (MB).
    double min_sortie_gain_mb = 1.0;
    /// Turnaround between sorties (battery swap / recharge, seconds);
    /// enters the makespan, not the energy budget.
    double recharge_s = 0.0;
};

/// Result: one FlightPlan per sortie, in flight order.
struct MultiTourResult {
    std::vector<model::FlightPlan> tours;
    double planned_mb{0.0};
    double runtime_s{0.0};
    int sorties_used{0};
    /// Mission makespan: sum of tour times plus (sorties-1) turnarounds.
    double makespan_s{0.0};
};

/// Plan up to cfg.tours sorties on `inst`.
[[nodiscard]] MultiTourResult plan_multi_tour(const model::Instance& inst,
                                              const MultiTourConfig& cfg);

/// Evaluate a sequence of sorties with shared residual data; returns the
/// total volume collected across all tours (each tour must individually be
/// energy-feasible — check via FlightPlan::feasible).
[[nodiscard]] double evaluate_multi_tour(
    const model::Instance& inst, const std::vector<model::FlightPlan>& tours);

}  // namespace uavdc::core
