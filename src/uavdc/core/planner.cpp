#include "uavdc/core/planner.hpp"

#include "uavdc/core/planning_context.hpp"

namespace uavdc::core {

PlanResult Planner::plan(const model::Instance& inst) {
    const auto ctx = PlanningContext::obtain(inst, candidate_config());
    return plan(*ctx);
}

}  // namespace uavdc::core
