#pragma once

#include <string>

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::core {

/// Planner-side bookkeeping reported alongside the plan.
struct PlanStats {
    double runtime_s{0.0};     ///< wall-clock planning time
    int iterations{0};         ///< algorithm-specific iteration count
    int candidates{0};         ///< candidate hovering locations considered
    double planned_mb{0.0};    ///< volume the planner believes it collects
    double planned_energy_j{0.0};  ///< energy the planner budgets
};

/// Result of planning: the tour plus stats.
struct PlanResult {
    model::FlightPlan plan;
    PlanStats stats;
};

/// Abstract tour planner. Implementations: GridOrienteeringPlanner (Alg. 1),
/// GreedyCoveragePlanner (Alg. 2), PartialCollectionPlanner (Alg. 3),
/// PruneTspPlanner (the paper's benchmark heuristic).
class Planner {
  public:
    virtual ~Planner() = default;

    /// Produce an energy-feasible closed tour for `inst`.
    [[nodiscard]] virtual PlanResult plan(const model::Instance& inst) = 0;

    /// Short identifier for tables/CSV (e.g. "alg1-grasp").
    [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace uavdc::core
