#pragma once

#include <string>

#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::core {

class PlanningContext;

/// Planner-side bookkeeping reported alongside the plan.
struct PlanStats {
    double runtime_s{0.0};     ///< wall-clock planning time
    int iterations{0};         ///< algorithm-specific iteration count
    int candidates{0};         ///< candidate hovering locations considered
    double planned_mb{0.0};    ///< volume the planner believes it collects
    double planned_energy_j{0.0};  ///< energy the planner budgets
};

/// Result of planning: the tour plus stats.
struct PlanResult {
    model::FlightPlan plan;
    PlanStats stats;
};

/// Abstract tour planner. Implementations: GridOrienteeringPlanner (Alg. 1),
/// GreedyCoveragePlanner (Alg. 2), PartialCollectionPlanner (Alg. 3),
/// PruneTspPlanner (the paper's benchmark heuristic), plus the related-work
/// baselines (ClusterPlanner, SweepPlanner).
///
/// Planners consume a `PlanningContext` — the shared per-instance precompute
/// bundle — so several planners run against one instance (compare_planners,
/// sweeps) reuse the same candidate set instead of each rebuilding it. The
/// non-virtual `plan(Instance)` adapter keeps the legacy call-site shape:
/// it obtains a context through the global cache (keyed on the instance
/// fingerprint and this planner's `candidate_config()`) and delegates.
class Planner {
  public:
    virtual ~Planner() = default;

    /// Produce an energy-feasible closed tour for `ctx.instance()`.
    [[nodiscard]] virtual PlanResult plan(const PlanningContext& ctx) = 0;

    /// Compatibility adapter: memoized context build, then plan(context).
    /// Derived classes re-export it with `using Planner::plan;`.
    [[nodiscard]] PlanResult plan(const model::Instance& inst);

    /// Candidate-generation options to use when a context is built on this
    /// planner's behalf by the Instance adapter. Planners that never touch
    /// `PlanningContext::candidates()` keep the (never-built) default.
    [[nodiscard]] virtual HoverCandidateConfig candidate_config() const {
        return {};
    }

    /// Short identifier for tables/CSV (e.g. "alg1-grasp").
    [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace uavdc::core
