#include "uavdc/core/planning_context.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>

#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

namespace {

// Node counts above this skip the precomputed triangular distance matrix
// (O(n^2 / 2) doubles) and compute distances on demand.
constexpr std::size_t kMaxCachedDistanceNodes = 4097;  // depot + 4096

std::atomic<std::uint64_t> g_candidate_builds{0};
std::atomic<std::uint64_t> g_candidate_build_ns{0};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xffULL;
        h *= kFnvPrime;
    }
}

void fnv_mix(std::uint64_t& h, double v) {
    // Normalise -0.0 so numerically-identical instances hash identically.
    if (v == 0.0) v = 0.0;
    fnv_mix(h, std::bit_cast<std::uint64_t>(v));
}

void fnv_mix(std::uint64_t& h, const geom::Vec2& v) {
    fnv_mix(h, v.x);
    fnv_mix(h, v.y);
}

}  // namespace

PlanningContext::PlanningContext(model::Instance inst,
                                 HoverCandidateConfig cfg)
    : inst_(std::move(inst)),
      cfg_(std::move(cfg)),
      energy_(inst_.uav),
      device_index_(inst_.device_positions(),
                    std::max(inst_.uav.coverage_radius_m, 1e-9)) {
    std::uint64_t h = instance_fingerprint(inst_);
    fnv_mix(h, config_fingerprint(cfg_));
    fingerprint_ = h;
}

std::uint64_t PlanningContext::instance_fingerprint(
    const model::Instance& inst) {
    std::uint64_t h = kFnvOffset;
    fnv_mix(h, inst.region.lo);
    fnv_mix(h, inst.region.hi);
    fnv_mix(h, inst.depot);
    fnv_mix(h, static_cast<std::uint64_t>(inst.devices.size()));
    for (const auto& d : inst.devices) {
        fnv_mix(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(d.id)));
        fnv_mix(h, d.pos);
        fnv_mix(h, d.data_mb);
    }
    const auto& u = inst.uav;
    fnv_mix(h, u.energy_j);
    fnv_mix(h, u.speed_mps);
    fnv_mix(h, u.hover_power_w);
    fnv_mix(h, u.travel_rate);
    fnv_mix(h, static_cast<std::uint64_t>(u.travel_energy_model));
    fnv_mix(h, u.coverage_radius_m);
    fnv_mix(h, u.bandwidth_mbps);
    return h;
}

std::uint64_t PlanningContext::config_fingerprint(
    const HoverCandidateConfig& cfg) {
    std::uint64_t h = kFnvOffset;
    fnv_mix(h, cfg.delta_m);
    fnv_mix(h, static_cast<std::uint64_t>(cfg.dedupe_identical_coverage));
    fnv_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(cfg.max_candidates)));
    fnv_mix(h, static_cast<std::uint64_t>(cfg.inflate_by_coverage));
    // position_ok is opaque; obtain() refuses to cache such configs, so the
    // fingerprint only needs to distinguish "has one" from "hasn't".
    fnv_mix(h, static_cast<std::uint64_t>(cfg.position_ok != nullptr));
    return h;
}

const HoverCandidateSet& PlanningContext::candidates() const {
    std::call_once(cand_once_, [this] {
        util::Timer timer;
        cands_ = build_hover_candidates(inst_, cfg_);
        g_candidate_build_ns.fetch_add(
            static_cast<std::uint64_t>(timer.seconds() * 1e9),
            std::memory_order_relaxed);
        g_candidate_builds.fetch_add(1, std::memory_order_relaxed);
        cands_built_ = true;
    });
    return cands_;
}

bool PlanningContext::candidates_built() const { return cands_built_; }

geom::Vec2 PlanningContext::node_pos(std::size_t i) const {
    return i == 0 ? inst_.depot : cands_.candidates[i - 1].pos;
}

void PlanningContext::ensure_distance_matrix() const {
    std::call_once(dist_once_, [this] {
        const std::size_t n = candidates().size() + 1;
        if (n > kMaxCachedDistanceNodes) return;  // dist_matrix_ stays false
        tri_.resize(n * (n + 1) / 2);
        // Rows have wildly different lengths; a small grain keeps the
        // chunks balanced. Safe on a worker thread: parallel_for runs
        // inline there.
        util::parallel_for(
            0, n,
            [this](std::size_t r) {
                const geom::Vec2 p = node_pos(r);
                double* row = tri_.data() + r * (r + 1) / 2;
                for (std::size_t c = 0; c <= r; ++c) {
                    row[c] = geom::distance(p, node_pos(c));
                }
            },
            64);
        dist_matrix_ = true;
    });
}

bool PlanningContext::has_distance_matrix() const {
    ensure_distance_matrix();
    return dist_matrix_;
}

double PlanningContext::node_distance(std::size_t i, std::size_t j) const {
    if (i == j) return 0.0;
    ensure_distance_matrix();
    if (!dist_matrix_) {
        return geom::distance(node_pos(i), node_pos(j));
    }
    const std::size_t r = std::max(i, j);
    const std::size_t c = std::min(i, j);
    return tri_[r * (r + 1) / 2 + c];
}

std::uint64_t PlanningContext::total_candidate_builds() {
    return g_candidate_builds.load(std::memory_order_relaxed);
}

double PlanningContext::total_candidate_build_time_s() {
    return static_cast<double>(
               g_candidate_build_ns.load(std::memory_order_relaxed)) *
           1e-9;
}

std::shared_ptr<const PlanningContext> PlanningContext::build(
    model::Instance inst, HoverCandidateConfig cfg) {
    return std::make_shared<const PlanningContext>(std::move(inst),
                                                   std::move(cfg));
}

std::shared_ptr<const PlanningContext> PlanningContext::obtain(
    const model::Instance& inst, const HoverCandidateConfig& cfg) {
    return PlanningContextCache::global().obtain(inst, cfg);
}

PlanningContextCache::PlanningContextCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const PlanningContext> PlanningContextCache::obtain(
    const model::Instance& inst, const HoverCandidateConfig& cfg) {
    if (cfg.position_ok) {
        // Opaque predicate: two configs with different predicates would
        // collide, so never memoize these.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++uncached_;
        }
        return PlanningContext::build(inst, cfg);
    }
    std::uint64_t key = PlanningContext::instance_fingerprint(inst);
    fnv_mix(key, PlanningContext::config_fingerprint(cfg));

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].key == key) {
                ++hits_;
                // Move to front (MRU).
                const auto mid =
                    entries_.begin() + static_cast<std::ptrdiff_t>(i);
                std::rotate(entries_.begin(), mid, mid + 1);
                return entries_.front().ctx;
            }
        }
    }
    // Build outside the lock: context construction copies the instance and
    // indexes devices, which should not serialise unrelated lookups. A
    // racing builder of the same key is tolerated — the first insert wins
    // and the loser's context is used once then dropped; the expensive
    // candidate build is lazy, so the duplicate costs only the copy.
    auto ctx = PlanningContext::build(inst, cfg);
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].key == key) {
            const auto mid =
                entries_.begin() + static_cast<std::ptrdiff_t>(i);
            std::rotate(entries_.begin(), mid, mid + 1);
            return entries_.front().ctx;
        }
    }
    entries_.insert(entries_.begin(), Entry{key, ctx});
    if (entries_.size() > capacity_) {
        entries_.pop_back();
        ++evictions_;
    }
    return ctx;
}

ContextCacheStats PlanningContextCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ContextCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.uncached_builds = uncached_;
    s.candidate_builds = PlanningContext::total_candidate_builds();
    s.candidate_build_time_s = PlanningContext::total_candidate_build_time_s();
    return s;
}

std::size_t PlanningContextCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void PlanningContextCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = misses_ = evictions_ = uncached_ = 0;
}

PlanningContextCache& PlanningContextCache::global() {
    static PlanningContextCache cache;
    return cache;
}

}  // namespace uavdc::core
