#include "uavdc/core/planning_context.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>

#include "uavdc/core/batch_kernels.hpp"
#include "uavdc/graph/dense_graph.hpp"
#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/timer.hpp"

namespace uavdc::core {

namespace {

// Node counts above this skip the precomputed triangular distance matrix
// (O(n^2 / 2) doubles) and compute distances on demand.
constexpr std::size_t kMaxCachedDistanceNodes = 4097;  // depot + 4096

std::atomic<std::uint64_t> g_candidate_builds{0};
std::atomic<std::uint64_t> g_candidate_build_ns{0};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xffULL;
        h *= kFnvPrime;
    }
}

void fnv_mix(std::uint64_t& h, double v) {
    // Normalise -0.0 so numerically-identical instances hash identically.
    if (v == 0.0) v = 0.0;
    fnv_mix(h, std::bit_cast<std::uint64_t>(v));
}

void fnv_mix(std::uint64_t& h, const geom::Vec2& v) {
    fnv_mix(h, v.x);
    fnv_mix(h, v.y);
}

}  // namespace

PlanningContext::PlanningContext(model::Instance inst,
                                 HoverCandidateConfig cfg)
    : inst_(std::move(inst)),
      cfg_(std::move(cfg)),
      energy_(inst_.uav),
      device_index_(inst_.device_positions(),
                    std::max(inst_.uav.coverage_radius_m, 1e-9)),
      device_soa_(build_device_soa(inst_)) {
    std::uint64_t h = instance_fingerprint(inst_);
    fnv_mix(h, config_fingerprint(cfg_));
    fingerprint_ = h;
}

std::uint64_t PlanningContext::instance_fingerprint(
    const model::Instance& inst) {
    std::uint64_t h = kFnvOffset;
    fnv_mix(h, inst.region.lo);
    fnv_mix(h, inst.region.hi);
    fnv_mix(h, inst.depot);
    fnv_mix(h, static_cast<std::uint64_t>(inst.devices.size()));
    for (const auto& d : inst.devices) {
        fnv_mix(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(d.id)));
        fnv_mix(h, d.pos);
        fnv_mix(h, d.data_mb);
    }
    const auto& u = inst.uav;
    fnv_mix(h, u.energy_j);
    fnv_mix(h, u.speed_mps);
    fnv_mix(h, u.hover_power_w);
    fnv_mix(h, u.travel_rate);
    fnv_mix(h, static_cast<std::uint64_t>(u.travel_energy_model));
    fnv_mix(h, u.coverage_radius_m);
    fnv_mix(h, u.bandwidth_mbps);
    return h;
}

std::uint64_t PlanningContext::config_fingerprint(
    const HoverCandidateConfig& cfg) {
    std::uint64_t h = kFnvOffset;
    fnv_mix(h, cfg.delta_m);
    fnv_mix(h, static_cast<std::uint64_t>(cfg.dedupe_identical_coverage));
    fnv_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(cfg.max_candidates)));
    fnv_mix(h, static_cast<std::uint64_t>(cfg.inflate_by_coverage));
    // position_ok is opaque; obtain() refuses to cache such configs, so the
    // fingerprint only needs to distinguish "has one" from "hasn't".
    fnv_mix(h, static_cast<std::uint64_t>(cfg.position_ok != nullptr));
    return h;
}

const HoverCandidateSet& PlanningContext::candidates() const {
    std::call_once(cand_once_, [this] {
        util::Timer timer;
        cands_ = build_hover_candidates(inst_, cfg_, &device_soa_);
        g_candidate_build_ns.fetch_add(
            static_cast<std::uint64_t>(timer.seconds() * 1e9),
            std::memory_order_relaxed);
        g_candidate_builds.fetch_add(1, std::memory_order_relaxed);
        cands_built_ = true;
    });
    return cands_;
}

bool PlanningContext::candidates_built() const { return cands_built_; }

const CandidateSoa& PlanningContext::candidate_soa() const {
    std::call_once(soa_once_, [this] {
        cand_soa_ = build_candidate_soa(candidates(), inst_.devices.size());
    });
    return cand_soa_;
}

const InvertedCoverageIndex& PlanningContext::inverted_coverage() const {
    std::call_once(inv_once_, [this] {
        inverted_ = std::make_unique<InvertedCoverageIndex>(
            candidates(), inst_.devices.size());
    });
    return *inverted_;
}

const ReducedCandidates& PlanningContext::reduced_candidates(
    const CandidateReductionConfig& cfg) const {
    const std::uint64_t fp = cfg.fingerprint();
    // Ensure the candidate build (its own call_once) happens outside the
    // reduction lock, so a concurrent candidates() caller never waits on a
    // reduction in progress.
    const HoverCandidateSet& full = candidates();
    std::lock_guard<std::mutex> lock(reduction_mutex_);
    for (const auto& [key, red] : reductions_) {
        if (key == fp) return *red;
    }
    reductions_.emplace_back(
        fp, std::make_unique<ReducedCandidates>(
                reduce_candidates(full, inst_.devices.size(), cfg)));
    return *reductions_.back().second;
}

ArenaLease PlanningContext::acquire_arena() const {
    {
        std::lock_guard<std::mutex> lock(arena_mutex_);
        if (!arena_pool_.empty()) {
            auto a = std::move(arena_pool_.back());
            arena_pool_.pop_back();
            return ArenaLease(this, std::move(a));
        }
    }
    return ArenaLease(this, std::make_unique<ScratchArena>());
}

std::size_t PlanningContext::arena_pool_size() const {
    std::lock_guard<std::mutex> lock(arena_mutex_);
    return arena_pool_.size();
}

ArenaLease::~ArenaLease() {
    if (!arena_ || owner_ == nullptr) return;
    arena_->reset();
    std::lock_guard<std::mutex> lock(owner_->arena_mutex_);
    owner_->arena_pool_.push_back(std::move(arena_));
}

geom::Vec2 PlanningContext::node_pos(std::size_t i) const {
    return i == 0 ? inst_.depot : cands_.candidates[i - 1].pos;
}

void PlanningContext::ensure_distance_matrix() const {
    std::call_once(dist_once_, [this] {
        const std::size_t n = candidates().size() + 1;
        if (n > kMaxCachedDistanceNodes) return;  // dist_matrix_ stays false
        tri_.resize(n * (n + 1) / 2);
        // Node coordinate plane: node 0 = depot, node j >= 1 = candidate
        // j-1, copied once so the fill is a pure SoA sweep.
        const CandidateSoa& soa = candidate_soa();
        util::AlignedVector<double> nx(n);
        util::AlignedVector<double> ny(n);
        nx[0] = inst_.depot.x;
        ny[0] = inst_.depot.y;
        std::copy_n(soa.pos.xs.begin(), n - 1, nx.begin() + 1);
        std::copy_n(soa.pos.ys.begin(), n - 1, ny.begin() + 1);
        // Cache-blocked batched fill: blocks of kRowBlock rows walk the
        // column plane in kColTile-wide tiles, so one tile of nx/ny stays
        // hot in L1 across the whole row block. Row blocks are independent
        // (parallel); tile rows write disjoint tri_ segments. Each segment
        // is bit-identical to the scalar geom::distance(p, node_pos(c))
        // expression it replaces. Safe on a worker thread: parallel_for
        // runs inline there.
        constexpr std::size_t kRowBlock = 8;
        constexpr std::size_t kColTile = 1024;
        const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
        util::parallel_for(
            0, blocks,
            [&](std::size_t bi) {
                const std::size_t r0 = bi * kRowBlock;
                const std::size_t r1 = std::min(r0 + kRowBlock, n);
                for (std::size_t c0 = 0; c0 < r1; c0 += kColTile) {
                    const std::size_t c1 = std::min(c0 + kColTile, r1);
                    for (std::size_t r = std::max(r0, c0); r < r1; ++r) {
                        const std::size_t ce = std::min(c1, r + 1);
                        kernels::fill_distance_tile(
                            nx.data(), ny.data(), c0, ce, nx[r], ny[r],
                            tri_.data() + r * (r + 1) / 2);
                    }
                }
            },
            8);
        dist_matrix_ = true;
    });
}

bool PlanningContext::has_distance_matrix() const {
    ensure_distance_matrix();
    return dist_matrix_;
}

double PlanningContext::node_distance(std::size_t i, std::size_t j) const {
    if (i == j) return 0.0;
    ensure_distance_matrix();
    if (!dist_matrix_) {
        return geom::distance(node_pos(i), node_pos(j));
    }
    const std::size_t r = std::max(i, j);
    const std::size_t c = std::min(i, j);
    return tri_[r * (r + 1) / 2 + c];
}

void PlanningContext::fill_submatrix(std::span<const std::size_t> nodes,
                                     graph::DenseGraph& g) const {
    const std::size_t m = nodes.size();
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = r + 1; c < m; ++c) {
            g.set_weight(r, c, node_distance(nodes[r], nodes[c]));
        }
    }
}

std::uint64_t PlanningContext::total_candidate_builds() {
    return g_candidate_builds.load(std::memory_order_relaxed);
}

double PlanningContext::total_candidate_build_time_s() {
    return static_cast<double>(
               g_candidate_build_ns.load(std::memory_order_relaxed)) *
           1e-9;
}

std::shared_ptr<const PlanningContext> PlanningContext::build(
    model::Instance inst, HoverCandidateConfig cfg) {
    return std::make_shared<const PlanningContext>(std::move(inst),
                                                   std::move(cfg));
}

std::shared_ptr<const PlanningContext> PlanningContext::obtain(
    const model::Instance& inst, const HoverCandidateConfig& cfg) {
    return PlanningContextCache::global().obtain(inst, cfg);
}

PlanningContextCache::PlanningContextCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const PlanningContext> PlanningContextCache::obtain(
    const model::Instance& inst, const HoverCandidateConfig& cfg) {
    if (cfg.position_ok) {
        // Opaque predicate: two configs with different predicates would
        // collide, so never memoize these.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++uncached_;
        }
        return PlanningContext::build(inst, cfg);
    }
    std::uint64_t key = PlanningContext::instance_fingerprint(inst);
    fnv_mix(key, PlanningContext::config_fingerprint(cfg));

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].key == key) {
                ++hits_;
                // Move to front (MRU).
                const auto mid =
                    entries_.begin() + static_cast<std::ptrdiff_t>(i);
                std::rotate(entries_.begin(), mid, mid + 1);
                return entries_.front().ctx;
            }
        }
    }
    // Build outside the lock: context construction copies the instance and
    // indexes devices, which should not serialise unrelated lookups. A
    // racing builder of the same key is tolerated — the first insert wins
    // and the loser's context is used once then dropped; the expensive
    // candidate build is lazy, so the duplicate costs only the copy.
    auto ctx = PlanningContext::build(inst, cfg);
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].key == key) {
            const auto mid =
                entries_.begin() + static_cast<std::ptrdiff_t>(i);
            std::rotate(entries_.begin(), mid, mid + 1);
            return entries_.front().ctx;
        }
    }
    entries_.insert(entries_.begin(), Entry{key, ctx});
    if (entries_.size() > capacity_) {
        entries_.pop_back();
        ++evictions_;
    }
    return ctx;
}

ContextCacheStats PlanningContextCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ContextCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.uncached_builds = uncached_;
    s.candidate_builds = PlanningContext::total_candidate_builds();
    s.candidate_build_time_s = PlanningContext::total_candidate_build_time_s();
    return s;
}

std::size_t PlanningContextCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void PlanningContextCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = misses_ = evictions_ = uncached_ = 0;
}

PlanningContextCache& PlanningContextCache::global() {
    static PlanningContextCache cache;
    return cache;
}

}  // namespace uavdc::core
