#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <mutex>
#include <span>
#include <vector>

#include "uavdc/core/candidate_reduction.hpp"
#include "uavdc/core/incremental_scorer.hpp"
#include "uavdc/model/energy_view.hpp"
#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/scratch_arena.hpp"
#include "uavdc/core/soa_layout.hpp"
#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/model/instance.hpp"

namespace uavdc::graph {
class DenseGraph;
}

namespace uavdc::core {

class PlanningContext;

/// RAII loan of a ScratchArena from a PlanningContext's pool. On
/// destruction the arena is reset (rewound, capacity kept) and returned, so
/// the next plan() on the same context reuses the warmed block instead of
/// reallocating per-plan scratch.
class ArenaLease {
  public:
    ArenaLease(const PlanningContext* owner,
               std::unique_ptr<ScratchArena> arena)
        : owner_(owner), arena_(std::move(arena)) {}
    ArenaLease(ArenaLease&&) noexcept = default;
    ArenaLease& operator=(ArenaLease&&) = delete;
    ArenaLease(const ArenaLease&) = delete;
    ArenaLease& operator=(const ArenaLease&) = delete;
    ~ArenaLease();

    [[nodiscard]] ScratchArena& arena() { return *arena_; }
    [[nodiscard]] std::pmr::memory_resource* resource() {
        return arena_.get();
    }

  private:
    const PlanningContext* owner_;
    std::unique_ptr<ScratchArena> arena_;
};

/// Counters for the process-wide context cache (see
/// `PlanningContextCache::stats`). `candidate_builds` / `build_time_s`
/// aggregate over *all* contexts in the process, cached or not, so tests and
/// benches can assert "candidates were built exactly once".
struct ContextCacheStats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t evictions{0};
    std::uint64_t uncached_builds{0};  ///< cache bypasses (position_ok set)
    std::uint64_t candidate_builds{0};
    double candidate_build_time_s{0.0};
};

/// Immutable, shareable bundle of per-instance planning precompute
/// (Sec. III-B): the problem instance itself, the grid hover-candidate set
/// (Eq. 6-8 awards/dwells, built lazily on first use and parallelised over
/// the thread pool), a spatial index over device positions, a lazily-filled
/// candidate-pair distance cache, and the `EnergyView`. Build one per
/// instance — directly with `build()`, or memoized through `obtain()` — and
/// hand the same context to every planner so a `compare_planners` or sweep
/// run pays the precompute once instead of once per planner.
///
/// Thread-safe: all lazy fills are guarded, and every accessor is const, so
/// one context may serve concurrent planners.
class PlanningContext {
  public:
    /// Owns a copy of `inst`; candidate construction is deferred until
    /// `candidates()` is first called.
    explicit PlanningContext(model::Instance inst,
                             HoverCandidateConfig cfg = {});

    PlanningContext(const PlanningContext&) = delete;
    PlanningContext& operator=(const PlanningContext&) = delete;

    [[nodiscard]] const model::Instance& instance() const { return inst_; }
    [[nodiscard]] const HoverCandidateConfig& candidate_config() const {
        return cfg_;
    }
    [[nodiscard]] const model::EnergyView& energy() const { return energy_; }

    /// The Sec. III-B candidate set; built on first call (thread-safe).
    [[nodiscard]] const HoverCandidateSet& candidates() const;
    /// True once `candidates()` has run (for laziness/caching tests).
    [[nodiscard]] bool candidates_built() const;

    /// Spatial index over device positions (bucket edge = R0); empty
    /// instances yield an index with size() == 0.
    [[nodiscard]] const geom::SpatialHash& device_index() const {
        return device_index_;
    }

    /// SoA view of the instance's devices (positions, data volumes,
    /// precomputed upload times); built eagerly at construction (O(devices))
    /// and shared by every planner on this context.
    [[nodiscard]] const DeviceSoa& device_soa() const { return device_soa_; }

    /// SoA view of the hover-candidate set plus its forward CSR coverage
    /// lists; built once on first call (thread-safe), after candidates().
    [[nodiscard]] const CandidateSoa& candidate_soa() const;

    /// Device -> covering-candidates index over the FULL candidate set;
    /// built once on first call (thread-safe). Warm PlanService traffic and
    /// repeat plans on a shared context reuse it instead of rebuilding the
    /// inversion per plan() call.
    [[nodiscard]] const InvertedCoverageIndex& inverted_coverage() const;

    /// Reduced candidate set for `cfg`, memoized per config fingerprint
    /// next to the SoA mirrors (thread-safe; stable address for the
    /// context's lifetime). Planners sharing a context therefore pay each
    /// reduction once per distinct config, exactly like the candidate
    /// build itself.
    [[nodiscard]] const ReducedCandidates& reduced_candidates(
        const CandidateReductionConfig& cfg) const;

    /// Borrow a per-plan scratch arena from the context's pool (thread-safe;
    /// concurrent planners each get their own arena). The lease returns the
    /// arena, reset but with capacity kept, so back-to-back plans on the
    /// same context hit a warm block and allocate nothing.
    [[nodiscard]] ArenaLease acquire_arena() const;

    /// Arenas currently parked in the pool (for reuse tests).
    [[nodiscard]] std::size_t arena_pool_size() const;

    /// Distance between tour nodes, where node 0 is the depot and node
    /// j >= 1 is candidate j-1. Below the size threshold the full distance
    /// matrix is precomputed once (on first call, via std::call_once) into a
    /// flat lower-triangular array, making every subsequent read lock-free
    /// and contention-free; larger sets compute distances on the fly.
    [[nodiscard]] double node_distance(std::size_t i, std::size_t j) const;

    /// True when node_distance is served from the precomputed triangular
    /// matrix (candidate set below the size threshold).
    [[nodiscard]] bool has_distance_matrix() const;

    /// Fill the dense graph `g` (size nodes.size()) with the pairwise
    /// node_distance of every pair in `nodes` — the shared induced-submatrix
    /// path of the exact oracles (exact_dcm, exact_ratio_tsp).
    void fill_submatrix(std::span<const std::size_t> nodes,
                        graph::DenseGraph& g) const;

    /// Cache key: FNV-1a over every instance field (region, depot, devices,
    /// all UAV parameters) combined with the candidate-config fields.
    [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
    [[nodiscard]] static std::uint64_t instance_fingerprint(
        const model::Instance& inst);
    [[nodiscard]] static std::uint64_t config_fingerprint(
        const HoverCandidateConfig& cfg);

    /// Process-wide count of candidate-set builds (every context counts its
    /// first `candidates()` call here). The cross-planner caching invariant
    /// — "one build per instance per sweep" — is asserted against deltas of
    /// this counter.
    [[nodiscard]] static std::uint64_t total_candidate_builds();
    /// Process-wide seconds spent building candidate sets.
    [[nodiscard]] static double total_candidate_build_time_s();

    /// Build a fresh, uncached context.
    [[nodiscard]] static std::shared_ptr<const PlanningContext> build(
        model::Instance inst, HoverCandidateConfig cfg = {});
    /// Memoized build through the global `PlanningContextCache`. Configs
    /// carrying a `position_ok` predicate are not hashable and bypass the
    /// cache (a fresh context is returned each call).
    [[nodiscard]] static std::shared_ptr<const PlanningContext> obtain(
        const model::Instance& inst, const HoverCandidateConfig& cfg = {});

  private:
    geom::Vec2 node_pos(std::size_t i) const;

    model::Instance inst_;
    HoverCandidateConfig cfg_;
    model::EnergyView energy_;
    geom::SpatialHash device_index_;
    DeviceSoa device_soa_;
    std::uint64_t fingerprint_{0};

    mutable std::once_flag cand_once_;
    mutable HoverCandidateSet cands_;
    mutable std::atomic<bool> cands_built_{false};

    mutable std::once_flag soa_once_;
    mutable CandidateSoa cand_soa_;

    mutable std::once_flag inv_once_;
    mutable std::unique_ptr<InvertedCoverageIndex> inverted_;

    // Reduced-set memo: (reduction-config fingerprint -> reduction), built
    // under the mutex, unique_ptr for address stability across growth.
    mutable std::mutex reduction_mutex_;
    mutable std::vector<
        std::pair<std::uint64_t, std::unique_ptr<ReducedCandidates>>>
        reductions_;

    friend class ArenaLease;
    mutable std::mutex arena_mutex_;
    mutable std::vector<std::unique_ptr<ScratchArena>> arena_pool_;

    void ensure_distance_matrix() const;

    // Flat lower-triangular distance matrix over depot + candidates
    // (tri_[r * (r + 1) / 2 + c] = distance(node r, node c) for c <= r),
    // built once under dist_once_; readers then index it without any lock.
    // Left empty (dist_matrix_ == false) above the size threshold.
    mutable std::once_flag dist_once_;
    mutable std::vector<double> tri_;
    mutable bool dist_matrix_{false};
};

/// Bounded LRU memo of `PlanningContext`s keyed on (instance fingerprint,
/// candidate-config fingerprint). `compare_planners`, `analyze_sensitivity`,
/// the CLI, and the `Planner::plan(Instance)` adapter all share the global
/// instance, which is what turns an N-planner sweep into a single candidate
/// build per instance.
class PlanningContextCache {
  public:
    explicit PlanningContextCache(std::size_t capacity = 64);

    /// Find-or-build. Never returns null.
    [[nodiscard]] std::shared_ptr<const PlanningContext> obtain(
        const model::Instance& inst, const HoverCandidateConfig& cfg);

    [[nodiscard]] ContextCacheStats stats() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Drop every entry and zero the hit/miss/eviction counters (the
    /// process-wide build counters are monotone and unaffected).
    void clear();

    /// The process-global cache used by `PlanningContext::obtain`.
    [[nodiscard]] static PlanningContextCache& global();

  private:
    struct Entry {
        std::uint64_t key;
        std::shared_ptr<const PlanningContext> ctx;
    };

    std::size_t capacity_;
    mutable std::mutex mutex_;
    // Most-recently-used first; linear scan is fine at cache sizes ~64.
    std::vector<Entry> entries_;
    std::uint64_t hits_{0};
    std::uint64_t misses_{0};
    std::uint64_t evictions_{0};
    std::uint64_t uncached_{0};
};

}  // namespace uavdc::core
