#include "uavdc/core/registry.hpp"

#include "uavdc/core/algorithm1.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/baseline_planners.hpp"
#include "uavdc/core/benchmark_planner.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::core {

std::vector<std::string> planner_names() {
    return {"alg1", "alg2", "alg3", "benchmark", "kmeans", "sweep"};
}

std::unique_ptr<Planner> make_planner(const std::string& name,
                                      const PlannerOptions& opts) {
    if (name == "alg1") {
        Algorithm1Config cfg;
        cfg.candidates = opts.hover_config();
        cfg.solver = opts.solver;
        cfg.grasp.iterations = opts.grasp_iterations;
        return std::make_unique<GridOrienteeringPlanner>(cfg);
    }
    if (name == "alg2") {
        Algorithm2Config cfg;
        cfg.candidates = opts.hover_config();
        cfg.scoring = opts.scoring;
        cfg.reduction = opts.reduction;
        return std::make_unique<GreedyCoveragePlanner>(cfg);
    }
    if (name == "alg3") {
        Algorithm3Config cfg;
        cfg.candidates = opts.hover_config();
        cfg.k = opts.k;
        cfg.scoring = opts.scoring;
        cfg.reduction = opts.reduction;
        return std::make_unique<PartialCollectionPlanner>(cfg);
    }
    if (name == "benchmark") {
        BenchmarkPlannerConfig cfg;
        cfg.scoring = opts.scoring;
        return std::make_unique<PruneTspPlanner>(cfg);
    }
    if (name == "kmeans") {
        return std::make_unique<ClusterPlanner>();
    }
    if (name == "sweep") {
        return std::make_unique<SweepPlanner>();
    }
    UAVDC_REQUIRE(false) << "make_planner: unknown planner '" << name
                         << "' (expected alg1|alg2|alg3|benchmark|"
                         << "kmeans|sweep)";
    return nullptr;  // unreachable: UAVDC_REQUIRE(false) always throws
}

}  // namespace uavdc::core
