#pragma once

#include <memory>
#include <string>
#include <vector>

#include "uavdc/core/candidate_reduction.hpp"
#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/incremental_scorer.hpp"
#include "uavdc/core/planner.hpp"
#include "uavdc/orienteering/solver.hpp"

namespace uavdc::core {

/// Options shared by all planners constructible by name (the CLI and bench
/// harnesses use this to avoid hand-rolled switch statements).
///
/// Candidate-generation defaults are inherited from `HoverCandidateConfig`
/// — the one source of truth — so registry-built planners and hand-built
/// ones agree on the grid precompute.
struct PlannerOptions {
    double delta_m =
        HoverCandidateConfig{}.delta_m;  ///< grid resolution (alg1/2/3)
    int max_candidates =
        HoverCandidateConfig{}.max_candidates;  ///< candidate cap (alg1/2/3)
    int k = 2;                   ///< Algorithm 3 sojourn partitions
    int grasp_iterations = 8;    ///< Algorithm 1 GRASP restarts
    /// Scoring engine for the greedy planners (alg2/alg3/benchmark);
    /// kReference keeps the from-scratch rescan oracle.
    ScoringEngine scoring = ScoringEngine::kIncremental;
    orienteering::SolverKind solver =
        orienteering::SolverKind::kGrasp;  ///< Algorithm 1 backend
    /// Candidate-space reduction for alg2/alg3 (disabled by default; the
    /// other planners ignore it).
    CandidateReductionConfig reduction{};

    /// The candidate config these options denote; also the config to build
    /// a shared `PlanningContext` with so registry planners hit the same
    /// cache entry.
    [[nodiscard]] HoverCandidateConfig hover_config() const {
        HoverCandidateConfig c;
        c.delta_m = delta_m;
        c.max_candidates = max_candidates;
        return c;
    }
};

/// Names accepted by make_planner: "alg1", "alg2", "alg3",
/// "benchmark", "kmeans", "sweep".
[[nodiscard]] std::vector<std::string> planner_names();

/// Construct a planner by name; throws std::invalid_argument for unknown
/// names.
[[nodiscard]] std::unique_ptr<Planner> make_planner(
    const std::string& name, const PlannerOptions& opts = {});

}  // namespace uavdc::core
