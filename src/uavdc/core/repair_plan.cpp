#include "uavdc/core/repair_plan.hpp"

#include <algorithm>

#include "uavdc/core/tour_builder.hpp"
#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::core {

RepairResult repair_plan(const model::Instance& inst,
                         const model::FlightPlan& previous) {
    RepairResult out;
    const double before_j = previous.total_energy(inst.depot, inst.uav);

    const geom::SpatialHash* hash = nullptr;
    geom::SpatialHash storage({}, 1.0);
    if (!inst.devices.empty()) {
        const auto positions = inst.device_positions();
        storage = geom::SpatialHash(positions, inst.uav.coverage_radius_m);
        hash = &storage;
    }

    // Walk stops in tour order with residual bookkeeping: each stop keeps
    // only the dwell the current volumes still justify.
    std::vector<double> residual(inst.devices.size());
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        residual[i] = inst.devices[i].data_mb;
    }
    const double bw = inst.uav.bandwidth_mbps;
    std::vector<model::HoverStop> kept;
    for (const auto& stop : previous.stops) {
        double need_s = 0.0;
        if (hash != nullptr) {
            hash->for_each_in_disk(
                stop.pos, inst.uav.coverage_radius_m, [&](int dev) {
                    const auto d = static_cast<std::size_t>(dev);
                    need_s = std::max(need_s, residual[d] / bw);
                });
        }
        const double dwell = std::min(stop.dwell_s, need_s);
        if (dwell <= 1e-9) {
            ++out.stops_dropped;
            out.dwell_trimmed_s += stop.dwell_s;
            continue;
        }
        out.dwell_trimmed_s += stop.dwell_s - dwell;
        // Drain what this dwell collects before considering later stops.
        if (hash != nullptr) {
            const double budget = bw * dwell;
            hash->for_each_in_disk(
                stop.pos, inst.uav.coverage_radius_m, [&](int dev) {
                    const auto d = static_cast<std::size_t>(dev);
                    residual[d] -= std::min(residual[d], budget);
                });
        }
        kept.push_back({stop.pos, dwell, stop.cell_id});
    }

    // Re-optimise the visiting order of the surviving stops.
    TourBuilder tour(inst.depot);
    for (std::size_t i = 0; i < kept.size(); ++i) {
        tour.insert(kept[i].pos, util::checked_cast<int>(i),
                    tour.cheapest_insertion(kept[i].pos));
    }
    tour.reoptimize();
    for (std::size_t i = 0; i < tour.size(); ++i) {
        out.plan.stops.push_back(
            kept[static_cast<std::size_t>(tour.keys()[i])]);
        out.plan.stops.back().pos = tour.stops()[i];
    }

    const double after_j = out.plan.total_energy(inst.depot, inst.uav);
    out.energy_freed_j = std::max(0.0, before_j - after_j);
    return out;
}

}  // namespace uavdc::core
