#pragma once

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::core {

/// Warm-start plan repair for periodic collection (the paper's data is
/// gathered "periodically"; between rounds, device backlogs change but the
/// field geometry doesn't). Instead of replanning from scratch, repair the
/// previous round's tour against the new volumes:
///   1. drop stops that no longer cover any data,
///   2. trim each remaining stop's dwell to the current residual need
///      (never lengthen — repair only removes energy),
///   3. re-optimise the visiting order.
/// The result is always energy-feasible if the input was, and repairing is
/// orders of magnitude cheaper than planning.
struct RepairResult {
    model::FlightPlan plan;
    int stops_dropped{0};
    double dwell_trimmed_s{0.0};   ///< total dwell removed
    double energy_freed_j{0.0};    ///< energy the repair returned unused
};

[[nodiscard]] RepairResult repair_plan(const model::Instance& inst,
                                       const model::FlightPlan& previous);

}  // namespace uavdc::core
