#include "uavdc/core/route_around.hpp"

namespace uavdc::core {

RoutedPlan route_around(const model::Instance& inst,
                        const model::FlightPlan& plan,
                        const geom::ObstacleField& field) {
    RoutedPlan out;
    out.plan = plan;

    std::vector<geom::Vec2> points{inst.depot};
    for (const auto& s : plan.stops) points.push_back(s.pos);
    points.push_back(inst.depot);

    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
        const auto res = field.shortest_path(points[i], points[i + 1]);
        // NOLINTNEXTLINE(uavdc-batched-distance): per-leg accounting over
        // the plan's stops; not a candidate-scoring loop
        const double direct = geom::distance(points[i], points[i + 1]);
        out.direct_m += direct;
        if (!res.reachable) {
            out.reachable = false;
            // Account the straight-line length so totals stay meaningful.
            out.travel_m += direct;
            out.legs.push_back({points[i], points[i + 1]});
            continue;
        }
        out.travel_m += res.length_m;
        out.legs.push_back(res.waypoints);
    }
    out.extra_m = std::max(0.0, out.travel_m - out.direct_m);
    out.energy_j = inst.uav.travel_energy(out.travel_m) +
                   inst.uav.hover_energy(plan.hover_time());
    out.energy_feasible =
        out.reachable && out.energy_j <= inst.uav.energy_j + 1e-6;
    return out;
}

}  // namespace uavdc::core
