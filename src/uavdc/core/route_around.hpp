#pragma once

#include <vector>

#include "uavdc/geom/obstacle_field.hpp"
#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::core {

/// A flight plan whose legs have been routed around no-fly zones:
/// leg i connects the previous stop (or the depot) to stop i via
/// `legs[i]`; the final entry is the return leg to the depot.
struct RoutedPlan {
    model::FlightPlan plan;  ///< the original stops and dwells
    std::vector<std::vector<geom::Vec2>> legs;  ///< waypoints per leg
    double travel_m{0.0};        ///< total routed distance
    double direct_m{0.0};        ///< Euclidean (unrouted) distance
    double extra_m{0.0};         ///< detour = travel_m - direct_m
    double energy_j{0.0};        ///< hover + routed-travel energy
    bool reachable{true};        ///< every leg found a path
    bool energy_feasible{true};  ///< energy_j <= E

    /// Detour ratio (1.0 = no zones in the way).
    [[nodiscard]] double detour_factor() const {
        return direct_m > 0.0 ? travel_m / direct_m : 1.0;
    }
};

/// Route every leg of `plan` around `field` and re-account energy.
/// Stops inside a no-fly zone make the result unreachable.
[[nodiscard]] RoutedPlan route_around(const model::Instance& inst,
                                      const model::FlightPlan& plan,
                                      const geom::ObstacleField& field);

/// Margin-aware planning helper: plan with a reduced energy budget, route
/// the result, and iterate until the routed plan fits the true budget (or
/// `max_rounds` passes). `plan_fn` maps an energy budget to a plan.
template <typename PlanFn>
[[nodiscard]] RoutedPlan plan_with_zones(const model::Instance& inst,
                                         const geom::ObstacleField& field,
                                         PlanFn&& plan_fn,
                                         int max_rounds = 4) {
    double budget = inst.uav.energy_j;
    RoutedPlan best;
    for (int round = 0; round < max_rounds; ++round) {
        const model::FlightPlan plan = plan_fn(budget);
        RoutedPlan routed = route_around(inst, plan, field);
        if (routed.reachable && routed.energy_feasible) return routed;
        if (!routed.reachable) return routed;
        // Shrink the planning budget by the observed detour energy.
        const double overshoot = routed.energy_j - inst.uav.energy_j;
        budget -= std::max(overshoot, 0.05 * inst.uav.energy_j);
        best = std::move(routed);
        if (budget <= 0.0) break;
    }
    return best;
}

}  // namespace uavdc::core
