#include "uavdc/core/scratch_arena.hpp"

#include <algorithm>
#include <cstdint>

#include "uavdc/util/aligned.hpp"

namespace uavdc::core {

ScratchArena::ScratchArena(std::size_t initial_bytes) {
    if (initial_bytes > 0) add_chunk(initial_bytes);
}

void ScratchArena::add_chunk(std::size_t min_bytes) {
    // Grow geometrically from the current capacity so a cold arena converges
    // in O(log need) chunks; reset() then folds them into one.
    const std::size_t want = std::max(min_bytes, capacity_);
    Chunk c;
    c.size = std::max<std::size_t>(want, 1024);
    c.data = std::make_unique<std::byte[]>(c.size + util::kSoaAlignment);
    chunks_.push_back(std::move(c));
    capacity_ += chunks_.back().size;
    ++chunks_allocated_;
}

void* ScratchArena::do_allocate(std::size_t bytes, std::size_t alignment) {
    const std::size_t align = std::max(alignment, util::kSoaAlignment);
    if (chunks_.empty()) add_chunk(bytes + align);
    Chunk* c = &chunks_.back();
    auto base = reinterpret_cast<std::uintptr_t>(c->data.get());
    std::uintptr_t p = (base + c->used + align - 1) & ~(align - 1);
    if (p + bytes > base + c->size + util::kSoaAlignment ||
        p + bytes < p /* overflow */) {
        add_chunk(bytes + align);
        c = &chunks_.back();
        base = reinterpret_cast<std::uintptr_t>(c->data.get());
        p = (base + align - 1) & ~(align - 1);
    }
    c->used = (p + bytes) - base;
    bytes_in_use_ += bytes;
    return reinterpret_cast<void*>(p);
}

void ScratchArena::reset() {
    bytes_in_use_ = 0;
    if (chunks_.size() > 1) {
        // Fragmented run: replace the chunk list with one block covering the
        // whole high-water mark so the next run fits without a new malloc.
        const std::size_t total = capacity_;
        chunks_.clear();
        capacity_ = 0;
        add_chunk(total);
    }
    for (auto& c : chunks_) c.used = 0;
}

}  // namespace uavdc::core
