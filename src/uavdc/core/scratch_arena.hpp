#pragma once

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <vector>

namespace uavdc::core {

/// Grow-only bump allocator behind std::pmr::memory_resource, built for
/// per-plan scratch (scorer keys, dirty lists, insertion-cache buffers).
/// Allocation bumps a pointer inside the current chunk; deallocation is a
/// no-op; reset() rewinds to empty while KEEPING the high-water-mark
/// capacity, so a warmed arena serves a whole plan() without touching
/// malloc. If a run overflowed into multiple chunks, the next reset()
/// coalesces them into one chunk of the combined size — the steady state is
/// always a single block, and PlanningContext's reuse test can assert
/// chunks_allocated() stays flat across repeated plans.
///
/// Not thread-safe; each planner thread takes its own arena via
/// PlanningContext::acquire_arena().
class ScratchArena final : public std::pmr::memory_resource {
public:
    explicit ScratchArena(std::size_t initial_bytes = 64 * 1024);

    ScratchArena(const ScratchArena&) = delete;
    ScratchArena& operator=(const ScratchArena&) = delete;

    /// Rewind to empty, keeping (and if fragmented, consolidating) capacity.
    void reset();

    /// Total number of chunk mallocs over the arena's lifetime. Flat counter
    /// across plan() calls == the warm path allocated nothing new.
    [[nodiscard]] std::size_t chunks_allocated() const {
        return chunks_allocated_;
    }

    /// Bytes currently handed out (since the last reset).
    [[nodiscard]] std::size_t bytes_in_use() const { return bytes_in_use_; }

    /// Total capacity across chunks.
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        std::size_t size{0};
        std::size_t used{0};
    };

    void* do_allocate(std::size_t bytes, std::size_t alignment) override;
    void do_deallocate(void*, std::size_t, std::size_t) noexcept override {}
    [[nodiscard]] bool do_is_equal(
        const std::pmr::memory_resource& other) const noexcept override {
        return this == &other;
    }

    void add_chunk(std::size_t min_bytes);

    std::vector<Chunk> chunks_;
    std::size_t chunks_allocated_{0};
    std::size_t bytes_in_use_{0};
    std::size_t capacity_{0};
};

}  // namespace uavdc::core
