#include "uavdc/core/sensitivity.hpp"

#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::core {

namespace {

double plan_volume_gb(const model::Instance& inst, const std::string& name,
                      const PlannerOptions& opts) {
    // Memoized context: replans of the same perturbed instance (and the
    // baseline, shared with any enclosing compare/sweep) reuse one
    // candidate build.
    const auto ctx = PlanningContext::obtain(inst, opts.hover_config());
    auto planner = make_planner(name, opts);
    const auto res = planner->plan(*ctx);
    return evaluate_plan(inst, res.plan).collected_mb / 1000.0;
}

}  // namespace

std::vector<SensitivityEntry> analyze_sensitivity(
    const model::Instance& inst, const std::string& planner_name,
    const PlannerOptions& opts, double perturbation) {
    UAVDC_REQUIRE(perturbation > 0.0 && perturbation < 1.0)
        << "analyze_sensitivity: perturbation must be in (0, 1), got "
        << perturbation;
    struct Knob {
        const char* name;
        std::function<double&(model::UavConfig&)> ref;
    };
    const std::vector<Knob> knobs{
        {"energy_j",
         [](model::UavConfig& u) -> double& { return u.energy_j; }},
        {"coverage_radius_m",
         [](model::UavConfig& u) -> double& { return u.coverage_radius_m; }},
        {"bandwidth_mbps",
         [](model::UavConfig& u) -> double& { return u.bandwidth_mbps; }},
        {"hover_power_w",
         [](model::UavConfig& u) -> double& { return u.hover_power_w; }},
        {"travel_rate",
         [](model::UavConfig& u) -> double& { return u.travel_rate; }},
    };

    const double baseline = plan_volume_gb(inst, planner_name, opts);
    std::vector<SensitivityEntry> out;
    out.reserve(knobs.size());
    for (const auto& knob : knobs) {
        SensitivityEntry e;
        e.parameter = knob.name;
        {
            model::UavConfig probe = inst.uav;
            e.baseline_value = knob.ref(probe);
        }
        e.baseline_gb = baseline;

        auto run_at = [&](double factor) {
            model::Instance varied = inst;
            knob.ref(varied.uav) *= factor;
            return plan_volume_gb(varied, planner_name, opts);
        };
        e.up_gb = run_at(1.0 + perturbation);
        e.down_gb = run_at(1.0 - perturbation);
        if (baseline > 1e-12) {
            // Central difference: (V+ - V-) / (2 p V).
            e.elasticity =
                (e.up_gb - e.down_gb) / (2.0 * perturbation * baseline);
        }
        out.push_back(std::move(e));
    }
    return out;
}

}  // namespace uavdc::core
