#pragma once

#include <functional>
#include <string>
#include <vector>

#include "uavdc/core/registry.hpp"
#include "uavdc/model/instance.hpp"

namespace uavdc::core {

/// One parameter's effect on collected volume: replan after nudging the
/// parameter by ±perturbation and report the elasticity
///   (dV / V) / (dp / p)
/// estimated by central differences. Elasticity ~1 means volume moves
/// one-for-one with the parameter; ~0 means the parameter is slack.
struct SensitivityEntry {
    std::string parameter;
    double baseline_value{0.0};
    double baseline_gb{0.0};
    double up_gb{0.0};     ///< volume at (1 + perturbation) * value
    double down_gb{0.0};   ///< volume at (1 - perturbation) * value
    double elasticity{0.0};
};

/// Sweep the instance-level knobs that an operator actually controls:
/// battery capacity E, coverage radius R0, bandwidth B, hover power
/// eta_h, and travel rate eta_t. Plans with the given planner name and
/// options at every point. `perturbation` is the relative nudge (0.2 =
/// ±20%).
[[nodiscard]] std::vector<SensitivityEntry> analyze_sensitivity(
    const model::Instance& inst, const std::string& planner_name,
    const PlannerOptions& opts = {}, double perturbation = 0.2);

}  // namespace uavdc::core
