#include "uavdc/core/soa_layout.hpp"

#include <limits>

#include "uavdc/util/check.hpp"

namespace uavdc::core {

namespace {

constexpr std::size_t kMaxInt32 =
    static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());

}  // namespace

PointsSoa PointsSoa::from(std::span<const geom::Vec2> pts) {
    PointsSoa out;
    out.count = pts.size();
    const std::size_t padded = soa_padded(pts.size());
    out.xs.assign(padded, 0.0);
    out.ys.assign(padded, 0.0);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        out.xs[i] = pts[i].x;
        out.ys[i] = pts[i].y;
    }
    return out;
}

DeviceSoa build_device_soa(const model::Instance& inst) {
    DeviceSoa out;
    const std::size_t n = inst.devices.size();
    const std::size_t padded = soa_padded(n);
    out.pos.count = n;
    out.pos.xs.assign(padded, 0.0);
    out.pos.ys.assign(padded, 0.0);
    out.data_mb.assign(padded, 0.0);
    out.upload_s.assign(padded, 0.0);
    const double bw = inst.uav.bandwidth_mbps;
    for (std::size_t i = 0; i < n; ++i) {
        const auto& d = inst.devices[i];
        out.pos.xs[i] = d.pos.x;
        out.pos.ys[i] = d.pos.y;
        out.data_mb[i] = d.data_mb;
        out.upload_s[i] = d.upload_time(bw);
    }
    return out;
}

CandidateSoa build_candidate_soa(const HoverCandidateSet& set) {
    CandidateSoa out;
    const auto& cands = set.candidates;
    const std::size_t n = cands.size();
    // Candidate indices are stored as int32 throughout the hot layers
    // (inverted index, reduction back-maps); refuse to build a layout those
    // layers cannot index.
    UAVDC_CHECK(n <= kMaxInt32)
        << "build_candidate_soa: " << n
        << " candidates exceed the int32 index space";
    const std::size_t padded = soa_padded(n);
    out.pos.count = n;
    out.pos.xs.assign(padded, 0.0);
    out.pos.ys.assign(padded, 0.0);
    out.award_mb.assign(padded, 0.0);
    out.dwell_s.assign(padded, 0.0);
    out.cov_starts.assign(n + 1, 0);
    std::size_t total = 0;
    for (std::size_t j = 0; j < n; ++j) total += cands[j].covered.size();
    out.cov.reserve(total);
    for (std::size_t j = 0; j < n; ++j) {
        const auto& c = cands[j];
        out.pos.xs[j] = c.pos.x;
        out.pos.ys[j] = c.pos.y;
        out.award_mb[j] = c.award_mb;
        out.dwell_s[j] = c.dwell_s;
        for (const int v : c.covered) {
            out.cov.push_back(util::checked_cast<std::int32_t>(v));
        }
        out.cov_starts[j + 1] = out.cov.size();
    }
    return out;
}

CandidateSoa build_candidate_soa(const HoverCandidateSet& set,
                                 std::size_t num_devices) {
    // The CSR pool narrows device ids to std::int32_t; an instance with
    // more devices than int32 can address would wrap silently, so fail at
    // build time — before any id is narrowed.
    UAVDC_CHECK(num_devices <= kMaxInt32)
        << "build_candidate_soa: " << num_devices
        << " devices exceed the int32 CSR id space";
    for (std::size_t j = 0; j < set.candidates.size(); ++j) {
        for (const int v : set.candidates[j].covered) {
            UAVDC_CHECK(v >= 0 && static_cast<std::size_t>(v) < num_devices)
                << "build_candidate_soa: candidate " << j
                << " covers device id " << v << " outside [0, "
                << num_devices << ")";
        }
    }
    return build_candidate_soa(set);
}

}  // namespace uavdc::core
