#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/model/instance.hpp"
#include "uavdc/util/aligned.hpp"

namespace uavdc::core {

/// Lane count the SoA arrays are padded to. The batched kernels in
/// core/batch_kernels are written as plain loops the compiler widens; the
/// padding guarantees a whole number of 8-lane groups so full-width reads
/// past size() stay inside the allocation (padding values are 0.0 and are
/// never allowed to influence a result).
inline constexpr std::size_t kSoaLanes = 8;

/// size() rounded up to a multiple of kSoaLanes.
[[nodiscard]] constexpr std::size_t soa_padded(std::size_t n) {
    return (n + kSoaLanes - 1) / kSoaLanes * kSoaLanes;
}

/// Planar point cloud in structure-of-arrays form: `xs`/`ys` are contiguous,
/// 32-byte-aligned, and padded to a multiple of kSoaLanes (padding = 0.0).
/// The model is 2-D — the UAV's fixed altitude enters only through the
/// derived ground coverage radius R0 (PAPER Sec. III-A) — so there is no zs
/// plane to carry.
struct PointsSoa {
    util::AlignedVector<double> xs;
    util::AlignedVector<double> ys;
    std::size_t count{0};

    [[nodiscard]] std::size_t size() const { return count; }
    [[nodiscard]] bool empty() const { return count == 0; }
    [[nodiscard]] geom::Vec2 at(std::size_t i) const {
        return {xs[i], ys[i]};
    }

    /// Build from an array of points.
    [[nodiscard]] static PointsSoa from(std::span<const geom::Vec2> pts);
};

/// Device fields hot in the scoring loops, in SoA form. `upload_s[v]` is
/// the nominal full-upload dwell `data_mb[v] / B` (Eq. 7) precomputed with
/// the exact division Device::upload_time performs, so substituting the
/// array for the per-element call is bit-identical.
struct DeviceSoa {
    PointsSoa pos;
    util::AlignedVector<double> data_mb;
    util::AlignedVector<double> upload_s;

    [[nodiscard]] std::size_t size() const { return pos.size(); }
};

/// Hover-candidate fields hot in the scoring loops, in SoA form, plus the
/// forward CSR coverage lists (candidate -> covered devices) — the
/// transpose of InvertedCoverageIndex — so coverage-gain accumulation walks
/// one flat std::int32_t array instead of chasing per-candidate
/// std::vector<int> buffers.
struct CandidateSoa {
    PointsSoa pos;
    util::AlignedVector<double> award_mb;
    util::AlignedVector<double> dwell_s;
    /// CSR offsets: candidate j covers cov[cov_starts[j] .. cov_starts[j+1]).
    std::vector<std::size_t> cov_starts;
    util::AlignedVector<std::int32_t> cov;

    [[nodiscard]] std::size_t size() const { return pos.size(); }
    [[nodiscard]] std::span<const std::int32_t> covered(std::size_t j) const {
        return {cov.data() + cov_starts[j], cov_starts[j + 1] - cov_starts[j]};
    }
};

/// SoA view of an instance's devices (O(devices) build).
[[nodiscard]] DeviceSoa build_device_soa(const model::Instance& inst);

/// SoA view of a hover-candidate set (O(candidates + coverage) build).
/// Covered-device ids are narrowed into the std::int32_t CSR pool; this
/// overload cannot range-check them (the device count is unknown here) but
/// still guards the candidate count, whose indices other layers
/// (InvertedCoverageIndex, reduction back-maps) also store as int32.
[[nodiscard]] CandidateSoa build_candidate_soa(const HoverCandidateSet& set);

/// Checked build: additionally UAVDC_CHECKs that `num_devices` fits the
/// int32 id space and that every covered-device id lies in
/// [0, num_devices), so a scale-large instance cannot silently wrap in the
/// CSR pool. Prefer this overload whenever the instance is at hand.
[[nodiscard]] CandidateSoa build_candidate_soa(const HoverCandidateSet& set,
                                               std::size_t num_devices);

}  // namespace uavdc::core
