#include "uavdc/core/tour_builder.hpp"

#include <cmath>
#include <limits>

#include "uavdc/core/batch_kernels.hpp"
#include "uavdc/graph/christofides.hpp"
#include "uavdc/graph/local_search.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/parallel_for.hpp"

namespace uavdc::core {

namespace {

// reoptimize() switches from the exact O(n^2)-per-sweep 2-opt/Or-opt inside
// christofides_tour to neighbor-list (k-nearest) sweeps at this many nodes
// (depot + stops); below it the exact polish is cheap and kept as-is.
constexpr std::size_t kNeighborReoptMinNodes = 64;
constexpr std::size_t kReoptNeighbors = 12;

/// Per-thread squared-distance scratch for the batched insertion scans
/// (rebuild_all fans cheapest_insertion2 out over pool threads). Grow-only.
thread_local std::vector<double> t_scan_dist2;

/// Relative slack on the squared-space prune tests. The bound compares
/// 2 * (d2_a + d2_b) - len^2 against thr^2; every operand carries a few ulp
/// of rounding, amplified by up to (d_a + d_b) / thr when the sums are far
/// apart, so a 1e-10 relative margin keeps the test conservative (a pruned
/// edge's exact computed delta is strictly above the threshold) with orders
/// of magnitude to spare over double rounding error.
constexpr double kSqrtPruneSlack = 1.0 + 1e-10;

}  // namespace

template <typename Threshold, typename Consider>
void TourBuilder::scan_edges(const geom::Vec2& p, Threshold&& bound,
                             Consider&& consider) const {
    const std::size_t n = stops_.size();
    UAVDC_DCHECK(n > 0 && edge_len_.size() == n + 1 &&
                 edge_len2_.size() == n + 1);
    std::vector<double>& d2 = t_scan_dist2;
    if (d2.size() < n) d2.resize(n);
    // d2[i] = d2(stops[i], p), batched. sqrt(d2[i]) is bit-identical to the
    // distances_to_point lane the pre-deferral scan used: same difference
    // expression in the same contraction-off kernel TU, and sqrt of the
    // identical squared value is correctly rounded wherever it runs.
    kernels::squared_distances_to_point(sx_.data(), sy_.data(), n, p.x, p.y,
                                        d2.data());
    // The depot distance keeps the exact pre-deferral expression (survivor
    // deltas must not change bits); its squared form feeds only the
    // conservative bound, where a ulp of drift vanishes in the slack.
    const double d_depot = geom::distance(depot_, p);
    const double d2_depot = geom::distance2(depot_, p);
    // Prune edge e iff squared space proves d_a + d_b > bound() + len_e,
    // i.e. the exact delta d_a + d_b - len_e is strictly above bound():
    //   (d_a + d_b)^2 = 2 * (d2_a + d2_b) - (d_a - d_b)^2
    //                >= 2 * (d2_a + d2_b) - len_e^2
    // by the reverse triangle inequality over the edge endpoints. A pruned
    // edge can never win the strict-< argmin (nor tie for it), so the scan
    // verdicts — position ties included — are bit-identical to considering
    // every edge. bound() <= 0 (or +inf) disables the test.
    const auto pruned = [&](std::size_t e, double s_sum) {
        const double thr = bound() + edge_len_[e];
        return thr > 0.0 &&
               2.0 * s_sum - edge_len2_[e] >= thr * thr * kSqrtPruneSlack;
    };
    // Edge depot -> stops[0].
    if (!pruned(0, d2_depot + d2[0])) {
        consider(std::size_t{0}, d_depot + std::sqrt(d2[0]) - edge_len_[0]);
    }
    // Edges stops[i] -> stops[i+1].
    // NOLINTBEGIN(uavdc-batched-distance): survivor resolution — the batched
    // squared kernel already ran above; only the few unpruned edges pay
    // these scalar sqrts, which must be sqrt-of-the-buffered-value exactly.
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (pruned(i + 1, d2[i] + d2[i + 1])) continue;
        consider(i + 1,
                 std::sqrt(d2[i]) + std::sqrt(d2[i + 1]) - edge_len_[i + 1]);
    }
    // NOLINTEND(uavdc-batched-distance)
    // Edge stops[n-1] -> depot.
    if (!pruned(n, d2[n - 1] + d2_depot)) {
        consider(n, std::sqrt(d2[n - 1]) + d_depot - edge_len_[n]);
    }
}

TourBuilder::Insertion TourBuilder::cheapest_insertion(
    const geom::Vec2& p) const {
    if (stops_.empty()) {
        return {0, 2.0 * geom::distance(depot_, p)};
    }
    Insertion best{0, std::numeric_limits<double>::infinity()};
    // Scan order is ascending position, so the strict < keeps the earliest
    // position among equal deltas. The running best is the prune bound: an
    // edge provably worse than it cannot win.
    scan_edges(
        p, [&] { return best.delta_m; },
        [&](std::size_t pos, double d) {
            if (d < best.delta_m) best = {pos, d};
        });
    return best;
}

TourBuilder::Insertion2 TourBuilder::cheapest_insertion2(
    const geom::Vec2& p) const {
    Insertion2 out;
    if (stops_.empty()) {
        out.best = {0, 2.0 * geom::distance(depot_, p)};
        return out;
    }
    constexpr double kInf = std::numeric_limits<double>::infinity();
    Insertion best{0, kInf};
    Insertion second{0, kInf};
    // Ascending positions + strict < keep the earliest position among equal
    // deltas — for the runner-up too. The prune bound is the running
    // *runner-up*: an edge beating only the second must still be seen.
    scan_edges(
        p, [&] { return second.delta_m; },
        [&](std::size_t pos, double d) {
            if (d < best.delta_m) {
                second = best;
                best = {pos, d};
            } else if (d < second.delta_m) {
                second = {pos, d};
            }
        });
    out.best = best;
    if (second.delta_m < kInf) {
        out.second = second;
        out.has_second = true;
    }
    return out;
}

std::vector<double> TourBuilder::edge_lengths() const {
    const std::size_t n = stops_.size();
    if (n == 0) return {};
    std::vector<double> len(n + 1);
    // NOLINTBEGIN(uavdc-batched-distance): oracle recomputation — the
    // reference the maintained edge_len() span is checked against.
    len[0] = geom::distance(depot_, stops_[0]);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        len[i + 1] = geom::distance(stops_[i], stops_[i + 1]);
    }
    len[n] = geom::distance(stops_[n - 1], depot_);
    // NOLINTEND(uavdc-batched-distance)
    return len;
}

std::vector<double> TourBuilder::edge_lengths2() const {
    const std::size_t n = stops_.size();
    if (n == 0) return {};
    std::vector<double> len2(n + 1);
    // NOLINTBEGIN(uavdc-batched-distance): oracle recomputation — the
    // reference the maintained edge_len2() span is checked against.
    len2[0] = geom::distance2(depot_, stops_[0]);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        len2[i + 1] = geom::distance2(stops_[i], stops_[i + 1]);
    }
    len2[n] = geom::distance2(stops_[n - 1], depot_);
    // NOLINTEND(uavdc-batched-distance)
    return len2;
}

void TourBuilder::insert(const geom::Vec2& p, int key, const Insertion& ins) {
    UAVDC_REQUIRE(ins.position <= stops_.size())
        << "insert at " << ins.position << " of " << stops_.size();
    const std::size_t q = ins.position;
    const auto qd = static_cast<std::ptrdiff_t>(q);
    // Edge endpoints around the insertion point, read before mutation.
    const geom::Vec2 a = q == 0 ? depot_ : stops_[q - 1];
    const geom::Vec2 b = q == stops_.size() ? depot_ : stops_[q];
    stops_.insert(stops_.begin() + qd, p);
    keys_.insert(keys_.begin() + qd, key);
    sx_.insert(sx_.begin() + qd, p.x);
    sy_.insert(sy_.begin() + qd, p.y);
    // Maintain both mirrors with the exact expressions edge_lengths() /
    // edge_lengths2() would recompute: the removed edge a -> b becomes
    // a -> p and p -> b.
    if (edge_len_.empty()) {
        edge_len_ = {geom::distance(depot_, p), geom::distance(p, depot_)};
        edge_len2_ = {geom::distance2(depot_, p), geom::distance2(p, depot_)};
    } else {
        edge_len_[q] = geom::distance(a, p);
        edge_len_.insert(edge_len_.begin() + qd + 1, geom::distance(p, b));
        edge_len2_[q] = geom::distance2(a, p);
        edge_len2_.insert(edge_len2_.begin() + qd + 1, geom::distance2(p, b));
    }
    UAVDC_DCHECK(edge_len2_.size() == edge_len_.size());
    length_ += ins.delta_m;
}

double TourBuilder::removal_delta(std::size_t pos) const {
    UAVDC_REQUIRE(pos < stops_.size());
    const std::size_t n = stops_.size();
    const geom::Vec2& prev = pos == 0 ? depot_ : stops_[pos - 1];
    const geom::Vec2& next = pos + 1 == n ? depot_ : stops_[pos + 1];
    // The two incident edge lengths come from the maintained mirror instead
    // of fresh sqrts; same operand order as the fresh expressions (and
    // geom::distance is FP-symmetric), so the delta bits are unchanged.
    UAVDC_DCHECK(edge_len_[pos] == geom::distance(prev, stops_[pos]) &&
                 edge_len_[pos + 1] == geom::distance(stops_[pos], next))
        << "edge_len mirror drifted from the fresh recomputation";
    return geom::distance(prev, next) - edge_len_[pos] - edge_len_[pos + 1];
}

void TourBuilder::remove(std::size_t pos) {
    length_ += removal_delta(pos);
    const std::size_t n = stops_.size();
    const geom::Vec2 prev = pos == 0 ? depot_ : stops_[pos - 1];
    const geom::Vec2 next = pos + 1 == n ? depot_ : stops_[pos + 1];
    const auto posd = static_cast<std::ptrdiff_t>(pos);
    stops_.erase(stops_.begin() + posd);
    keys_.erase(keys_.begin() + posd);
    sx_.erase(sx_.begin() + posd);
    sy_.erase(sy_.begin() + posd);
    if (stops_.empty()) {
        edge_len_.clear();
        edge_len2_.clear();
    } else {
        // Edges pos and pos+1 merge into prev -> next at pos.
        edge_len_[pos] = geom::distance(prev, next);
        edge_len_.erase(edge_len_.begin() + posd + 1);
        edge_len2_[pos] = geom::distance2(prev, next);
        edge_len2_.erase(edge_len2_.begin() + posd + 1);
    }
}

double TourBuilder::reoptimize() {
    if (stops_.size() < 3) {
        length_ = recompute_length();
        return length_;
    }
    std::vector<geom::Vec2> pts;
    pts.reserve(stops_.size() + 1);
    pts.push_back(depot_);
    pts.insert(pts.end(), stops_.begin(), stops_.end());
    const graph::DenseGraph g = graph::DenseGraph::euclidean(pts);
    std::vector<std::size_t> order;
    if (pts.size() < kNeighborReoptMinNodes) {
        order = graph::christofides_tour(g, 0);
    } else {
        // Large tours: construct without the built-in exact polish, then run
        // neighbor-list 2-opt / Or-opt (O(n * k) per sweep instead of
        // O(n^2)).
        graph::ChristofidesConfig ccfg;
        ccfg.improve_two_opt = false;
        ccfg.improve_or_opt = false;
        order = graph::christofides_tour(g, 0, ccfg);
        const auto nb = graph::nearest_neighbor_lists(g, kReoptNeighbors);
        graph::two_opt_neighbors(g, order, nb);
        graph::or_opt_neighbors(g, order, nb);
        graph::two_opt_neighbors(g, order, nb);
    }
    // order[0] == 0 (depot); rebuild stops/keys in the new order.
    UAVDC_CHECK(!order.empty() && order[0] == 0)
        << "christofides_tour must start at the depot node";
    std::vector<geom::Vec2> new_stops;
    std::vector<int> new_keys;
    new_stops.reserve(stops_.size());
    new_keys.reserve(keys_.size());
    for (std::size_t i = 1; i < order.size(); ++i) {
        new_stops.push_back(stops_[order[i] - 1]);
        new_keys.push_back(keys_[order[i] - 1]);
    }
    const double new_len = g.tour_length(order);
    // Keep the better of the old and re-optimised orders.
    if (new_len <= length_) {
        stops_ = std::move(new_stops);
        keys_ = std::move(new_keys);
        for (std::size_t i = 0; i < stops_.size(); ++i) {
            sx_[i] = stops_[i].x;
            sy_[i] = stops_[i].y;
        }
        edge_len_ = edge_lengths();
        edge_len2_ = edge_lengths2();
        length_ = new_len;
    } else {
        length_ = recompute_length();
    }
    return length_;
}

double TourBuilder::recompute_length() const {
    if (stops_.empty()) return 0.0;
    // NOLINTBEGIN(uavdc-batched-distance): drift-guard oracle; stays scalar.
    double len = geom::distance(depot_, stops_.front());
    for (std::size_t i = 0; i + 1 < stops_.size(); ++i) {
        len += geom::distance(stops_[i], stops_[i + 1]);
    }
    len += geom::distance(stops_.back(), depot_);
    // NOLINTEND(uavdc-batched-distance)
    return len;
}

namespace {

/// Fresh-scan ordering: strictly smaller delta wins; equal deltas resolve
/// to the smaller (earlier-scanned) position.
bool lex_less(const TourBuilder::Insertion& a,
              const TourBuilder::Insertion& b) {
    return a.delta_m < b.delta_m ||
           (a.delta_m == b.delta_m && a.position < b.position);
}

}  // namespace

InsertionCache::InsertionCache(const TourBuilder& tour,
                               std::span<const geom::Vec2> points,
                               std::pmr::memory_resource* mr)
    : tour_(&tour),
      ids_(mr),
      slot_(mr),
      xs_(mr),
      ys_(mr),
      cached_(mr),
      second_(mr),
      second_ok_(mr),
      n1_(mr),
      n2_(mr) {
    const std::size_t n = points.size();
    ids_.resize(n);
    slot_.resize(n);
    xs_.resize(n);
    ys_.resize(n);
    cached_.resize(n);
    second_.resize(n);
    second_ok_.assign(n, 0);
    n1_.resize(n);
    n2_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        ids_[i] = i;
        slot_[i] = static_cast<std::ptrdiff_t>(i);
        xs_[i] = points[i].x;
        ys_[i] = points[i].y;
    }
}

InsertionCache::InsertionCache(const TourBuilder& tour,
                               std::span<const double> xs,
                               std::span<const double> ys,
                               std::pmr::memory_resource* mr)
    : tour_(&tour),
      ids_(mr),
      slot_(mr),
      xs_(mr),
      ys_(mr),
      cached_(mr),
      second_(mr),
      second_ok_(mr),
      n1_(mr),
      n2_(mr) {
    UAVDC_DCHECK(xs.size() == ys.size());
    const std::size_t n = xs.size();
    ids_.resize(n);
    slot_.resize(n);
    xs_.assign(xs.begin(), xs.end());
    ys_.assign(ys.begin(), ys.end());
    cached_.resize(n);
    second_.resize(n);
    second_ok_.assign(n, 0);
    n1_.resize(n);
    n2_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        ids_[i] = i;
        slot_[i] = static_cast<std::ptrdiff_t>(i);
    }
}

void InsertionCache::deactivate(std::size_t i) {
    const std::ptrdiff_t k = slot_[i];
    if (k < 0) return;
    const auto kk = static_cast<std::size_t>(k);
    const std::size_t last = ids_.size() - 1;
    if (kk != last) {
        ids_[kk] = ids_[last];
        xs_[kk] = xs_[last];
        ys_[kk] = ys_[last];
        slot_[ids_[kk]] = k;
    }
    ids_.pop_back();
    xs_.pop_back();
    ys_.pop_back();
    slot_[i] = -1;
}

const TourBuilder::Insertion& InsertionCache::get(std::size_t i) const {
    UAVDC_DCHECK(!dirty_) << "InsertionCache::get on a dirty cache";
    UAVDC_DCHECK(i < cached_.size() && slot_[i] >= 0);
    return cached_[i];
}

void InsertionCache::on_insert(const TourBuilder::Insertion& ins,
                               std::pmr::vector<std::size_t>& changed) {
    UAVDC_DCHECK(!dirty_) << "InsertionCache::on_insert on a dirty cache";
    const std::size_t q = ins.position;
    const std::size_t n = tour_->size();  // post-insert stop count
    UAVDC_DCHECK(q < n);
    const geom::Vec2& p = tour_->stops()[q];
    const geom::Vec2& a = q == 0 ? tour_->depot() : tour_->stops()[q - 1];
    const geom::Vec2& b = q + 1 == n ? tour_->depot() : tour_->stops()[q + 1];
    // The two new edge lengths, already maintained by TourBuilder::insert
    // with the exact fresh-distance expressions.
    const auto edge_len = tour_->edge_len();
    UAVDC_DCHECK(edge_len.size() == n + 1);
    const double len_ap = edge_len[q];
    const double len_pb = edge_len[q + 1];
    const auto edge_len2 = tour_->edge_len2();
    const double len2_ap = edge_len2[q];
    const double len2_pb = edge_len2[q + 1];
    // Batched squared pass over the dense active pool: n1_[k]/n2_[k] hold
    // the squared-distance sums of candidate ids_[k] against the two new
    // edges (a -> p at position q, p -> b at position q+1), feeding the
    // same reverse-triangle lower bound as TourBuilder::scan_edges. Only
    // candidates a new edge might actually affect resolve exact deltas via
    // insertion_edge_deltas (n = 1), whose lanes keep the operand order of
    // the scalar expressions they replace (geom::distance is FP-symmetric,
    // so d(x, p) substitutes d(p, x) bit-for-bit).
    const std::size_t m = ids_.size();
    kernels::squared_insertion_lower_bounds(xs_.data(), ys_.data(), m, a, p, b,
                                            n1_.data(), n2_.data());
    const auto exact_deltas = [&](std::size_t k, double& e1d, double& e2d) {
        kernels::insertion_edge_deltas(&xs_[k], &ys_[k], 1, a, p, b, len_ap,
                                       len_pb, &e1d, &e2d);
    };
    for (std::size_t k = 0; k < m; ++k) {
        const std::size_t i = ids_[k];
        TourBuilder::Insertion& c = cached_[i];
        if (c.position == q) {
            // Straddlers always resolve exactly (their entry must change).
            double e1d = 0.0;
            double e2d = 0.0;
            exact_deltas(k, e1d, e2d);
            // Ties resolve to the smaller position, matching the strict-<
            // scan order of TourBuilder::cheapest_insertion.
            const TourBuilder::Insertion e1{q, e1d};
            const TourBuilder::Insertion e2{q + 1, e2d};
            const bool e1_wins = !lex_less(e2, e1);
            const TourBuilder::Insertion& nbest = e1_wins ? e1 : e2;
            const TourBuilder::Insertion& nother = e1_wins ? e2 : e1;
            // Straddler: the cached best edge is the one the insertion
            // removed. Every surviving old edge is lex->= the runner-up, so
            // the new best is the lex-min of the runner-up and the two new
            // edges; a full rescan is needed only when the runner-up is
            // unknown (consumed by an earlier straddle).
            if (second_ok_[i] == 0) {
                const auto r = tour_->cheapest_insertion2(point(k));
                c = r.best;
                second_[i] = r.second;
                second_ok_[i] = r.has_second ? 1 : 0;
            } else {
                TourBuilder::Insertion s = second_[i];
                if (s.position > q) s.position += 1;
                if (lex_less(nbest, s)) {
                    c = nbest;
                    second_[i] = lex_less(s, nother) ? s : nother;
                } else {
                    // The runner-up took over; the true runner-up may now
                    // be an edge the cache never tracked.
                    c = s;
                    second_ok_[i] = 0;
                }
            }
            changed.push_back(i);
            continue;
        }
        if (c.position > q) c.position += 1;
        if (second_ok_[i] != 0) {
            if (second_[i].position == q) {
                // The runner-up edge was the one removed.
                second_ok_[i] = 0;
            } else if (second_[i].position > q) {
                second_[i].position += 1;
            }
        }
        // Prune: existing edges kept their deltas, so a new edge can touch
        // this entry only by beating (or tying) the tightest tracked delta —
        // the runner-up when it is known, else the best. An edge whose
        // squared lower bound proves its delta strictly above that threshold
        // can neither displace the best nor become the runner-up; when both
        // new edges are pruned the entry is untouched and pays no sqrt.
        const double t = second_ok_[i] != 0 ? second_[i].delta_m : c.delta_m;
        const double thr1 = t + len_ap;
        const double thr2 = t + len_pb;
        if ((thr1 > 0.0 &&
             2.0 * n1_[k] - len2_ap >= thr1 * thr1 * kSqrtPruneSlack) &&
            (thr2 > 0.0 &&
             2.0 * n2_[k] - len2_pb >= thr2 * thr2 * kSqrtPruneSlack)) {
            continue;
        }
        double e1d = 0.0;
        double e2d = 0.0;
        exact_deltas(k, e1d, e2d);
        const TourBuilder::Insertion e1{q, e1d};
        const TourBuilder::Insertion e2{q + 1, e2d};
        const bool e1_wins = !lex_less(e2, e1);
        const TourBuilder::Insertion& nbest = e1_wins ? e1 : e2;
        const TourBuilder::Insertion& nother = e1_wins ? e2 : e1;
        if (lex_less(nbest, c)) {
            // A new edge displaces the best; the old best becomes the
            // runner-up bound for every surviving old edge, so the exact
            // runner-up is the lex-min of it and the losing new edge —
            // this holds even when the stored runner-up was unknown.
            second_[i] = lex_less(c, nother) ? c : nother;
            second_ok_[i] = 1;
            c = nbest;
            changed.push_back(i);
        } else if (second_ok_[i] != 0 && lex_less(nbest, second_[i])) {
            second_[i] = nbest;
        }
    }
}

void InsertionCache::rebuild_all(bool parallel) {
    util::maybe_parallel_for(
        parallel, 0, ids_.size(),
        [&](std::size_t k) {
            const std::size_t i = ids_[k];
            const auto r = tour_->cheapest_insertion2(point(k));
            cached_[i] = r.best;
            second_[i] = r.second;
            second_ok_[i] = r.has_second ? 1 : 0;
        },
        64);
    dirty_ = false;
}

}  // namespace uavdc::core
