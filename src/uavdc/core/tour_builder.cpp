#include "uavdc/core/tour_builder.hpp"

#include <limits>

#include "uavdc/graph/christofides.hpp"
#include "uavdc/graph/local_search.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/parallel_for.hpp"

namespace uavdc::core {

namespace {

// reoptimize() switches from the exact O(n^2)-per-sweep 2-opt/Or-opt inside
// christofides_tour to neighbor-list (k-nearest) sweeps at this many nodes
// (depot + stops); below it the exact polish is cheap and kept as-is.
constexpr std::size_t kNeighborReoptMinNodes = 64;
constexpr std::size_t kReoptNeighbors = 12;

}  // namespace

TourBuilder::Insertion TourBuilder::cheapest_insertion(
    const geom::Vec2& p) const {
    const std::size_t n = stops_.size();
    if (n == 0) {
        return {0, 2.0 * geom::distance(depot_, p)};
    }
    Insertion best{0, std::numeric_limits<double>::infinity()};
    // Edge depot -> stops[0].
    {
        const double d = geom::distance(depot_, p) +
                         geom::distance(p, stops_[0]) -
                         geom::distance(depot_, stops_[0]);
        if (d < best.delta_m) best = {0, d};
    }
    // Edges stops[i] -> stops[i+1].
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double d = geom::distance(stops_[i], p) +
                         geom::distance(p, stops_[i + 1]) -
                         geom::distance(stops_[i], stops_[i + 1]);
        if (d < best.delta_m) best = {i + 1, d};
    }
    // Edge stops[n-1] -> depot.
    {
        const double d = geom::distance(stops_[n - 1], p) +
                         geom::distance(p, depot_) -
                         geom::distance(stops_[n - 1], depot_);
        if (d < best.delta_m) best = {n, d};
    }
    return best;
}

TourBuilder::Insertion2 TourBuilder::cheapest_insertion2(
    const geom::Vec2& p) const {
    return cheapest_insertion2(p, {});
}

TourBuilder::Insertion2 TourBuilder::cheapest_insertion2(
    const geom::Vec2& p, std::span<const double> edge_len) const {
    const std::size_t n = stops_.size();
    Insertion2 out;
    if (n == 0) {
        out.best = {0, 2.0 * geom::distance(depot_, p)};
        return out;
    }
    UAVDC_DCHECK(edge_len.empty() || edge_len.size() == n + 1);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    Insertion best{0, kInf};
    Insertion second{0, kInf};
    // Scan order is ascending position, so a strict < keeps the earliest
    // position among equal deltas — for the runner-up too.
    auto consider = [&](std::size_t pos, double d) {
        if (d < best.delta_m) {
            second = best;
            best = {pos, d};
        } else if (d < second.delta_m) {
            second = {pos, d};
        }
    };
    const bool have_len = !edge_len.empty();
    consider(0, geom::distance(depot_, p) + geom::distance(p, stops_[0]) -
                    (have_len ? edge_len[0]
                              : geom::distance(depot_, stops_[0])));
    for (std::size_t i = 0; i + 1 < n; ++i) {
        consider(i + 1, geom::distance(stops_[i], p) +
                            geom::distance(p, stops_[i + 1]) -
                            (have_len ? edge_len[i + 1]
                                      : geom::distance(stops_[i],
                                                       stops_[i + 1])));
    }
    consider(n, geom::distance(stops_[n - 1], p) +
                    geom::distance(p, depot_) -
                    (have_len ? edge_len[n]
                              : geom::distance(stops_[n - 1], depot_)));
    out.best = best;
    if (second.delta_m < kInf) {
        out.second = second;
        out.has_second = true;
    }
    return out;
}

std::vector<double> TourBuilder::edge_lengths() const {
    const std::size_t n = stops_.size();
    if (n == 0) return {};
    std::vector<double> len(n + 1);
    len[0] = geom::distance(depot_, stops_[0]);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        len[i + 1] = geom::distance(stops_[i], stops_[i + 1]);
    }
    len[n] = geom::distance(stops_[n - 1], depot_);
    return len;
}

void TourBuilder::insert(const geom::Vec2& p, int key, const Insertion& ins) {
    UAVDC_REQUIRE(ins.position <= stops_.size())
        << "insert at " << ins.position << " of " << stops_.size();
    stops_.insert(stops_.begin() + static_cast<std::ptrdiff_t>(ins.position),
                  p);
    keys_.insert(keys_.begin() + static_cast<std::ptrdiff_t>(ins.position),
                 key);
    length_ += ins.delta_m;
}

double TourBuilder::removal_delta(std::size_t pos) const {
    UAVDC_REQUIRE(pos < stops_.size());
    const std::size_t n = stops_.size();
    const geom::Vec2& prev = pos == 0 ? depot_ : stops_[pos - 1];
    const geom::Vec2& next = pos + 1 == n ? depot_ : stops_[pos + 1];
    return geom::distance(prev, next) - geom::distance(prev, stops_[pos]) -
           geom::distance(stops_[pos], next);
}

void TourBuilder::remove(std::size_t pos) {
    length_ += removal_delta(pos);
    stops_.erase(stops_.begin() + static_cast<std::ptrdiff_t>(pos));
    keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(pos));
}

double TourBuilder::reoptimize() {
    if (stops_.size() < 3) {
        length_ = recompute_length();
        return length_;
    }
    std::vector<geom::Vec2> pts;
    pts.reserve(stops_.size() + 1);
    pts.push_back(depot_);
    pts.insert(pts.end(), stops_.begin(), stops_.end());
    const graph::DenseGraph g = graph::DenseGraph::euclidean(pts);
    std::vector<std::size_t> order;
    if (pts.size() < kNeighborReoptMinNodes) {
        order = graph::christofides_tour(g, 0);
    } else {
        // Large tours: construct without the built-in exact polish, then run
        // neighbor-list 2-opt / Or-opt (O(n * k) per sweep instead of
        // O(n^2)).
        graph::ChristofidesConfig ccfg;
        ccfg.improve_two_opt = false;
        ccfg.improve_or_opt = false;
        order = graph::christofides_tour(g, 0, ccfg);
        const auto nb = graph::nearest_neighbor_lists(g, kReoptNeighbors);
        graph::two_opt_neighbors(g, order, nb);
        graph::or_opt_neighbors(g, order, nb);
        graph::two_opt_neighbors(g, order, nb);
    }
    // order[0] == 0 (depot); rebuild stops/keys in the new order.
    UAVDC_CHECK(!order.empty() && order[0] == 0)
        << "christofides_tour must start at the depot node";
    std::vector<geom::Vec2> new_stops;
    std::vector<int> new_keys;
    new_stops.reserve(stops_.size());
    new_keys.reserve(keys_.size());
    for (std::size_t i = 1; i < order.size(); ++i) {
        new_stops.push_back(stops_[order[i] - 1]);
        new_keys.push_back(keys_[order[i] - 1]);
    }
    const double new_len = g.tour_length(order);
    // Keep the better of the old and re-optimised orders.
    if (new_len <= length_) {
        stops_ = std::move(new_stops);
        keys_ = std::move(new_keys);
        length_ = new_len;
    } else {
        length_ = recompute_length();
    }
    return length_;
}

double TourBuilder::recompute_length() const {
    if (stops_.empty()) return 0.0;
    double len = geom::distance(depot_, stops_.front());
    for (std::size_t i = 0; i + 1 < stops_.size(); ++i) {
        len += geom::distance(stops_[i], stops_[i + 1]);
    }
    len += geom::distance(stops_.back(), depot_);
    return len;
}

namespace {

/// Fresh-scan ordering: strictly smaller delta wins; equal deltas resolve
/// to the smaller (earlier-scanned) position.
bool lex_less(const TourBuilder::Insertion& a,
              const TourBuilder::Insertion& b) {
    return a.delta_m < b.delta_m ||
           (a.delta_m == b.delta_m && a.position < b.position);
}

}  // namespace

InsertionCache::InsertionCache(const TourBuilder& tour,
                               std::span<const geom::Vec2> points)
    : tour_(&tour),
      points_(points.begin(), points.end()),
      cached_(points.size()),
      second_(points.size()),
      second_ok_(points.size(), 0),
      active_(points.size(), 1) {}

const TourBuilder::Insertion& InsertionCache::get(std::size_t i) const {
    UAVDC_DCHECK(!dirty_) << "InsertionCache::get on a dirty cache";
    UAVDC_DCHECK(i < cached_.size() && active_[i] != 0);
    return cached_[i];
}

void InsertionCache::on_insert(const TourBuilder::Insertion& ins,
                               std::vector<std::size_t>& changed) {
    UAVDC_DCHECK(!dirty_) << "InsertionCache::on_insert on a dirty cache";
    const std::size_t q = ins.position;
    const std::size_t n = tour_->size();  // post-insert stop count
    UAVDC_DCHECK(q < n);
    const geom::Vec2& p = tour_->stops()[q];
    const geom::Vec2& a = q == 0 ? tour_->depot() : tour_->stops()[q - 1];
    const geom::Vec2& b = q + 1 == n ? tour_->depot() : tour_->stops()[q + 1];
    // New edge lengths, hoisted out of the candidate loop (loop-invariant)
    // and folded into the maintained edge-length array.
    const double len_ap = geom::distance(a, p);
    const double len_pb = geom::distance(p, b);
    if (edge_len_.empty()) {
        edge_len_ = {len_ap, len_pb};
    } else {
        UAVDC_DCHECK(edge_len_.size() == n);  // n - 1 stops before insert
        edge_len_[q] = len_ap;
        edge_len_.insert(edge_len_.begin() + static_cast<std::ptrdiff_t>(q) +
                             1,
                         len_pb);
    }
    for (std::size_t i = 0; i < cached_.size(); ++i) {
        if (active_[i] == 0) continue;
        TourBuilder::Insertion& c = cached_[i];
        // Existing edges kept their deltas; only the two new edges
        // (a -> p at position q, p -> b at position q+1) can improve an
        // entry. Ties resolve to the smaller position, matching the
        // strict-< scan order of TourBuilder::cheapest_insertion.
        // geom::distance is FP-symmetric, so d(x, p) substitutes d(p, x)
        // bit-for-bit in the second delta.
        const geom::Vec2& x = points_[i];
        const double d_xp = geom::distance(x, p);
        const double d_ap = geom::distance(a, x) + d_xp - len_ap;
        const double d_pb = d_xp + geom::distance(x, b) - len_pb;
        const TourBuilder::Insertion n1{q, d_ap};
        const TourBuilder::Insertion n2{q + 1, d_pb};
        const bool n1_wins = !lex_less(n2, n1);
        const TourBuilder::Insertion& nbest = n1_wins ? n1 : n2;
        const TourBuilder::Insertion& nother = n1_wins ? n2 : n1;
        if (c.position == q) {
            // Straddler: the cached best edge is the one the insertion
            // removed. Every surviving old edge is lex->= the runner-up, so
            // the new best is the lex-min of the runner-up and the two new
            // edges; a full rescan is needed only when the runner-up is
            // unknown (consumed by an earlier straddle).
            if (second_ok_[i] == 0) {
                const auto r = tour_->cheapest_insertion2(x, edge_len_);
                c = r.best;
                second_[i] = r.second;
                second_ok_[i] = r.has_second ? 1 : 0;
            } else {
                TourBuilder::Insertion s = second_[i];
                if (s.position > q) s.position += 1;
                if (lex_less(nbest, s)) {
                    c = nbest;
                    second_[i] = lex_less(s, nother) ? s : nother;
                } else {
                    // The runner-up took over; the true runner-up may now
                    // be an edge the cache never tracked.
                    c = s;
                    second_ok_[i] = 0;
                }
            }
            changed.push_back(i);
            continue;
        }
        if (c.position > q) c.position += 1;
        if (second_ok_[i] != 0) {
            if (second_[i].position == q) {
                // The runner-up edge was the one removed.
                second_ok_[i] = 0;
            } else if (second_[i].position > q) {
                second_[i].position += 1;
            }
        }
        if (lex_less(nbest, c)) {
            // A new edge displaces the best; the old best becomes the
            // runner-up bound for every surviving old edge, so the exact
            // runner-up is the lex-min of it and the losing new edge —
            // this holds even when the stored runner-up was unknown.
            second_[i] = lex_less(c, nother) ? c : nother;
            second_ok_[i] = 1;
            c = nbest;
            changed.push_back(i);
        } else if (second_ok_[i] != 0 && lex_less(nbest, second_[i])) {
            second_[i] = nbest;
        }
    }
}

void InsertionCache::rebuild_all(bool parallel) {
    edge_len_ = tour_->edge_lengths();
    util::maybe_parallel_for(
        parallel, 0, cached_.size(),
        [&](std::size_t i) {
            if (active_[i] != 0) {
                const auto r = tour_->cheapest_insertion2(points_[i],
                                                          edge_len_);
                cached_[i] = r.best;
                second_[i] = r.second;
                second_ok_[i] = r.has_second ? 1 : 0;
            }
        },
        64);
    dirty_ = false;
}

}  // namespace uavdc::core
