#include "uavdc/core/tour_builder.hpp"

#include <limits>

#include "uavdc/graph/christofides.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::core {

TourBuilder::Insertion TourBuilder::cheapest_insertion(
    const geom::Vec2& p) const {
    const std::size_t n = stops_.size();
    if (n == 0) {
        return {0, 2.0 * geom::distance(depot_, p)};
    }
    Insertion best{0, std::numeric_limits<double>::infinity()};
    // Edge depot -> stops[0].
    {
        const double d = geom::distance(depot_, p) +
                         geom::distance(p, stops_[0]) -
                         geom::distance(depot_, stops_[0]);
        if (d < best.delta_m) best = {0, d};
    }
    // Edges stops[i] -> stops[i+1].
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double d = geom::distance(stops_[i], p) +
                         geom::distance(p, stops_[i + 1]) -
                         geom::distance(stops_[i], stops_[i + 1]);
        if (d < best.delta_m) best = {i + 1, d};
    }
    // Edge stops[n-1] -> depot.
    {
        const double d = geom::distance(stops_[n - 1], p) +
                         geom::distance(p, depot_) -
                         geom::distance(stops_[n - 1], depot_);
        if (d < best.delta_m) best = {n, d};
    }
    return best;
}

void TourBuilder::insert(const geom::Vec2& p, int key, const Insertion& ins) {
    UAVDC_REQUIRE(ins.position <= stops_.size())
        << "insert at " << ins.position << " of " << stops_.size();
    stops_.insert(stops_.begin() + static_cast<std::ptrdiff_t>(ins.position),
                  p);
    keys_.insert(keys_.begin() + static_cast<std::ptrdiff_t>(ins.position),
                 key);
    length_ += ins.delta_m;
}

double TourBuilder::removal_delta(std::size_t pos) const {
    UAVDC_REQUIRE(pos < stops_.size());
    const std::size_t n = stops_.size();
    const geom::Vec2& prev = pos == 0 ? depot_ : stops_[pos - 1];
    const geom::Vec2& next = pos + 1 == n ? depot_ : stops_[pos + 1];
    return geom::distance(prev, next) - geom::distance(prev, stops_[pos]) -
           geom::distance(stops_[pos], next);
}

void TourBuilder::remove(std::size_t pos) {
    length_ += removal_delta(pos);
    stops_.erase(stops_.begin() + static_cast<std::ptrdiff_t>(pos));
    keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(pos));
}

double TourBuilder::reoptimize() {
    if (stops_.size() < 3) {
        length_ = recompute_length();
        return length_;
    }
    std::vector<geom::Vec2> pts;
    pts.reserve(stops_.size() + 1);
    pts.push_back(depot_);
    pts.insert(pts.end(), stops_.begin(), stops_.end());
    const graph::DenseGraph g = graph::DenseGraph::euclidean(pts);
    const std::vector<std::size_t> order = graph::christofides_tour(g, 0);
    // order[0] == 0 (depot); rebuild stops/keys in the new order.
    UAVDC_CHECK(!order.empty() && order[0] == 0)
        << "christofides_tour must start at the depot node";
    std::vector<geom::Vec2> new_stops;
    std::vector<int> new_keys;
    new_stops.reserve(stops_.size());
    new_keys.reserve(keys_.size());
    for (std::size_t i = 1; i < order.size(); ++i) {
        new_stops.push_back(stops_[order[i] - 1]);
        new_keys.push_back(keys_[order[i] - 1]);
    }
    const double new_len = g.tour_length(order);
    // Keep the better of the old and re-optimised orders.
    if (new_len <= length_) {
        stops_ = std::move(new_stops);
        keys_ = std::move(new_keys);
        length_ = new_len;
    } else {
        length_ = recompute_length();
    }
    return length_;
}

double TourBuilder::recompute_length() const {
    if (stops_.empty()) return 0.0;
    double len = geom::distance(depot_, stops_.front());
    for (std::size_t i = 0; i + 1 < stops_.size(); ++i) {
        len += geom::distance(stops_[i], stops_[i + 1]);
    }
    len += geom::distance(stops_.back(), depot_);
    return len;
}

}  // namespace uavdc::core
