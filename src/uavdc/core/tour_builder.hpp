#pragma once

#include <cstddef>
#include <memory_resource>
#include <span>
#include <vector>

#include "uavdc/geom/vec2.hpp"
#include "uavdc/util/aligned.hpp"

namespace uavdc::core {

/// Incrementally maintained closed tour over the depot plus a growing set
/// of hovering locations, shared by Algorithms 2/3 and the benchmark
/// planner. Supports cheapest-insertion deltas (the TSP(S_j) - TSP(S_{j-1})
/// surrogate of Eq. 13), actual insertion/removal, and a Christofides +
/// 2-opt re-optimisation pass.
///
/// Hot-path layout: stop coordinates are mirrored into SoA arrays
/// (`stop_xs`/`stop_ys`) and the current edge lengths are maintained
/// incrementally in both metric (`edge_len`) and squared (`edge_len2`)
/// form. The cheapest-insertion scans run as one batched *squared*-distance
/// kernel over the stops plus a scalar bound-then-verify pass: each edge is
/// first tested against the current best delta entirely in squared space
/// (no sqrt), and only the few surviving edges resolve their exact delta
/// with scalar sqrts of the already-computed squared distances. Survivor
/// deltas use the identical expressions (and operand order) as the
/// pre-deferral full-sqrt scan, and the prune bound is strict-worse-only,
/// so scan verdicts — including position ties — are bit-identical. All
/// mirrors are bit-identical to a fresh recomputation (maintenance uses the
/// same geom::distance/distance2 expressions; see edge_len()/edge_len2()).
class TourBuilder {
  public:
    explicit TourBuilder(geom::Vec2 depot) : depot_(depot) {}

    [[nodiscard]] const geom::Vec2& depot() const { return depot_; }
    /// Number of non-depot stops.
    [[nodiscard]] std::size_t size() const { return stops_.size(); }
    [[nodiscard]] bool empty() const { return stops_.empty(); }
    /// Stop positions in tour order (depot excluded).
    [[nodiscard]] const std::vector<geom::Vec2>& stops() const {
        return stops_;
    }
    /// SoA mirrors of stops() (same order, same values).
    [[nodiscard]] std::span<const double> stop_xs() const { return sx_; }
    [[nodiscard]] std::span<const double> stop_ys() const { return sy_; }
    /// Caller keys in tour order (parallel to stops()).
    [[nodiscard]] const std::vector<int>& keys() const { return keys_; }
    /// Current closed-tour length (metres), maintained incrementally.
    [[nodiscard]] double length() const { return length_; }

    /// Maintained edge lengths in position order (size() + 1 entries; empty
    /// for an empty tour). Invariant: bit-identical to edge_lengths() —
    /// every maintenance step stores a fresh geom::distance over the same
    /// operands a recomputation would use.
    [[nodiscard]] std::span<const double> edge_len() const {
        return edge_len_;
    }

    /// Squared companion of edge_len(), maintained in lockstep. Invariant:
    /// edge_len()[i] == std::sqrt(edge_len2()[i]) exactly — both mirrors are
    /// derived from ONE geom::distance2 evaluation per edge (the sqrt of
    /// which is the geom::distance value, same expression, same TU), so the
    /// squared form is usable as an exact prune bound against edge_len().
    [[nodiscard]] std::span<const double> edge_len2() const {
        return edge_len2_;
    }

    /// Cheapest-insertion result: inserting at `position` (index into
    /// stops(), 0..size()) lengthens the tour by `delta_m` metres.
    struct Insertion {
        std::size_t position{0};
        double delta_m{0.0};
    };
    [[nodiscard]] Insertion cheapest_insertion(const geom::Vec2& p) const;

    /// Cheapest insertion plus the runner-up edge (the insertion that a
    /// fresh scan would pick if the best edge were excluded). `has_second`
    /// is false when the tour has fewer than two insertion edges (i.e. it
    /// is empty). Same tie-break as cheapest_insertion: strictly smaller
    /// delta wins; equal deltas resolve to the smaller position.
    struct Insertion2 {
        Insertion best;
        Insertion second;
        bool has_second{false};
    };
    [[nodiscard]] Insertion2 cheapest_insertion2(const geom::Vec2& p) const;

    /// Fresh O(n) recomputation of the current edge lengths (edge i runs
    /// prev(i) -> next(i)); the oracle for the maintained edge_len() span.
    [[nodiscard]] std::vector<double> edge_lengths() const;

    /// Fresh O(n) recomputation of the squared edge lengths; the oracle for
    /// the maintained edge_len2() span.
    [[nodiscard]] std::vector<double> edge_lengths2() const;

    /// Insert stop `p` (with caller key `key`) at `ins.position`.
    void insert(const geom::Vec2& p, int key, const Insertion& ins);

    /// Length change (metres, <= 0 for metric inputs) from removing the
    /// stop at `pos`.
    [[nodiscard]] double removal_delta(std::size_t pos) const;

    /// Remove the stop at index `pos`.
    void remove(std::size_t pos);

    /// Re-optimise the visiting order (Christofides over depot + stops,
    /// then 2-opt/Or-opt). Returns the new length. No-op below 3 stops.
    double reoptimize();

    /// Exact recomputation of the closed-tour length (O(n)); used to guard
    /// against incremental drift.
    [[nodiscard]] double recompute_length() const;

  private:
    /// Batched scan core: *squared* distances from every stop to p into a
    /// thread-local buffer, then a scalar bound-then-verify pass. `bound()`
    /// returns the caller's current prune threshold (a delta in metres; +inf
    /// or non-positive disables pruning); edges whose squared lower bound
    /// proves delta strictly above it are skipped, every other edge resolves
    /// its exact delta (sqrt of the buffered squared values, original
    /// operand order) and is fed to `consider` in ascending position order.
    template <typename Threshold, typename Consider>
    void scan_edges(const geom::Vec2& p, Threshold&& bound,
                    Consider&& consider) const;

    geom::Vec2 depot_;
    std::vector<geom::Vec2> stops_;
    std::vector<int> keys_;
    /// SoA mirrors of stops_ for the batched insertion scans.
    util::AlignedVector<double> sx_;
    util::AlignedVector<double> sy_;
    /// Maintained edge lengths (stops_.size() + 1 when non-empty) plus the
    /// squared companion (see edge_len2()).
    std::vector<double> edge_len_;
    std::vector<double> edge_len2_;
    double length_{0.0};
};

/// Edge-local cheapest-insertion cache: maintains, for a fixed set of
/// candidate points, each point's current `TourBuilder::cheapest_insertion`
/// result as the tour grows — without rescanning every tour edge per
/// candidate per iteration.
///
/// Invariant (when not dirty()): for every active candidate i, get(i) is
/// bit-identical to tour.cheapest_insertion(points[i]).
///
/// Maintained under `on_insert` in O(1) per candidate: inserting p at
/// position q removes one tour edge and creates two. A candidate's best
/// insertion can only *improve* via the two new edges (checked directly) and
/// can only *worsen* if its cached best edge was the removed one (cached
/// position == q). For those "straddlers" the cache keeps the runner-up
/// edge: the new best is the lex-min of the runner-up and the two new edges.
/// A full O(tour) rescan is needed only when the runner-up itself was
/// consumed by an earlier straddle (tracked per candidate), which is rare —
/// straddlers sit near the new stop, so a new edge usually wins. Any other
/// cached entry stays optimal, with positions > q shifted by one.
///
/// Layout: active candidates live in a dense SoA pool (`xs_`/`ys_` parallel
/// to the dense-id list), compacted by swap-remove on deactivate, so the
/// on_insert pass is one call to kernels::squared_insertion_lower_bounds
/// over a contiguous array; only candidates whose squared bound fails to
/// prove the new edges strictly worse than their tracked entries resolve
/// exact deltas (kernels::insertion_edge_deltas, n = 1 per survivor). Per-candidate state (cached best, runner-up) stays
/// indexed by the ORIGINAL candidate id. All per-plan buffers draw from the
/// std::pmr resource passed at construction (PlanningContext's ScratchArena
/// on the planner hot path), so repeated plans on a warm arena allocate
/// nothing.
///
/// `reoptimize()` invalidates every entry (the whole edge set changes);
/// callers mark the cache dirty with `invalidate_all` and restore the
/// invariant with `rebuild_all` — the dirty-bit fallback to full recompute.
class InsertionCache {
  public:
    /// Snapshot of `points` scored against `tour`; starts dirty — call
    /// rebuild_all() before the first get(). `tour` must outlive the cache;
    /// `mr` must outlive it too.
    InsertionCache(const TourBuilder& tour, std::span<const geom::Vec2> points,
                   std::pmr::memory_resource* mr =
                       std::pmr::get_default_resource());

    /// As above with the candidate coordinates already in SoA form
    /// (xs.size() == ys.size() == candidate count).
    InsertionCache(const TourBuilder& tour, std::span<const double> xs,
                   std::span<const double> ys,
                   std::pmr::memory_resource* mr =
                       std::pmr::get_default_resource());

    [[nodiscard]] std::size_t size() const { return cached_.size(); }
    [[nodiscard]] bool dirty() const { return dirty_; }
    [[nodiscard]] bool active(std::size_t i) const { return slot_[i] >= 0; }

    /// Stop maintaining candidate i (inserted into the tour, or provably
    /// never needed again). Swap-removes i from the dense pool.
    void deactivate(std::size_t i);

    /// Cached cheapest insertion for active candidate i. Requires a clean
    /// cache (rebuild_all after any invalidate_all).
    [[nodiscard]] const TourBuilder::Insertion& get(std::size_t i) const;

    /// Account for `tour.insert(p, key, ins)` — call immediately *after* the
    /// insertion. Appends to `changed` every active candidate whose cached
    /// delta may have changed (improved via a new edge, or straddled the
    /// removed one). Order of appended ids is unspecified.
    void on_insert(const TourBuilder::Insertion& ins,
                   std::pmr::vector<std::size_t>& changed);

    /// Mark every entry stale (after TourBuilder::reoptimize()).
    void invalidate_all() { dirty_ = true; }

    /// Recompute every active entry from scratch (on the global thread pool
    /// when `parallel`) and clear the dirty bit.
    void rebuild_all(bool parallel);

  private:
    [[nodiscard]] geom::Vec2 point(std::size_t dense) const {
        return {xs_[dense], ys_[dense]};
    }

    const TourBuilder* tour_;
    /// Dense active pool: ids_[k] is the original id at dense slot k;
    /// xs_/ys_ are parallel to ids_. slot_[orig] is the dense slot or -1.
    std::pmr::vector<std::size_t> ids_;
    std::pmr::vector<std::ptrdiff_t> slot_;
    std::pmr::vector<double> xs_;
    std::pmr::vector<double> ys_;
    /// Original-indexed per-candidate state.
    std::pmr::vector<TourBuilder::Insertion> cached_;
    /// Runner-up edge per candidate; exact only where second_ok_[i] != 0.
    std::pmr::vector<TourBuilder::Insertion> second_;
    std::pmr::vector<char> second_ok_;
    /// Batched squared-bound outputs (on_insert prune pass), parallel to
    /// the dense pool.
    std::pmr::vector<double> n1_;
    std::pmr::vector<double> n2_;
    bool dirty_{true};
};

}  // namespace uavdc::core
