#pragma once

#include <cstddef>
#include <vector>

#include "uavdc/geom/vec2.hpp"

namespace uavdc::core {

/// Incrementally maintained closed tour over the depot plus a growing set
/// of hovering locations, shared by Algorithms 2/3 and the benchmark
/// planner. Supports cheapest-insertion deltas (the TSP(S_j) - TSP(S_{j-1})
/// surrogate of Eq. 13), actual insertion/removal, and a Christofides +
/// 2-opt re-optimisation pass.
class TourBuilder {
  public:
    explicit TourBuilder(geom::Vec2 depot) : depot_(depot) {}

    [[nodiscard]] const geom::Vec2& depot() const { return depot_; }
    /// Number of non-depot stops.
    [[nodiscard]] std::size_t size() const { return stops_.size(); }
    [[nodiscard]] bool empty() const { return stops_.empty(); }
    /// Stop positions in tour order (depot excluded).
    [[nodiscard]] const std::vector<geom::Vec2>& stops() const {
        return stops_;
    }
    /// Caller keys in tour order (parallel to stops()).
    [[nodiscard]] const std::vector<int>& keys() const { return keys_; }
    /// Current closed-tour length (metres), maintained incrementally.
    [[nodiscard]] double length() const { return length_; }

    /// Cheapest-insertion result: inserting at `position` (index into
    /// stops(), 0..size()) lengthens the tour by `delta_m` metres.
    struct Insertion {
        std::size_t position{0};
        double delta_m{0.0};
    };
    [[nodiscard]] Insertion cheapest_insertion(const geom::Vec2& p) const;

    /// Insert stop `p` (with caller key `key`) at `ins.position`.
    void insert(const geom::Vec2& p, int key, const Insertion& ins);

    /// Length change (metres, <= 0 for metric inputs) from removing the
    /// stop at `pos`.
    [[nodiscard]] double removal_delta(std::size_t pos) const;

    /// Remove the stop at index `pos`.
    void remove(std::size_t pos);

    /// Re-optimise the visiting order (Christofides over depot + stops,
    /// then 2-opt/Or-opt). Returns the new length. No-op below 3 stops.
    double reoptimize();

    /// Exact recomputation of the closed-tour length (O(n)); used to guard
    /// against incremental drift.
    [[nodiscard]] double recompute_length() const;

  private:
    geom::Vec2 depot_;
    std::vector<geom::Vec2> stops_;
    std::vector<int> keys_;
    double length_{0.0};
};

}  // namespace uavdc::core
