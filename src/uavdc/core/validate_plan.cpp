#include "uavdc/core/validate_plan.hpp"

#include <cmath>

#include "uavdc/model/energy_view.hpp"
#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::core {

std::string to_string(PlanViolation::Kind kind) {
    switch (kind) {
        case PlanViolation::Kind::kNegativeDwell:
            return "negative-dwell";
        case PlanViolation::Kind::kNonFiniteValue:
            return "non-finite-value";
        case PlanViolation::Kind::kEnergyExceeded:
            return "energy-exceeded";
        case PlanViolation::Kind::kStopFarFromField:
            return "stop-far-from-field";
        case PlanViolation::Kind::kUselessStop:
            return "useless-stop";
        case PlanViolation::Kind::kDuplicateStop:
            return "duplicate-stop";
        case PlanViolation::Kind::kEmptyPlanWithData:
            return "empty-plan-with-data";
    }
    return "unknown";
}

PlanValidation validate_plan(const model::Instance& inst,
                             const model::FlightPlan& plan) {
    PlanValidation out;
    auto error = [&](PlanViolation::Kind k, int stop, std::string detail) {
        out.errors.push_back({k, stop, std::move(detail)});
    };
    auto warn = [&](PlanViolation::Kind k, int stop, std::string detail) {
        out.warnings.push_back({k, stop, std::move(detail)});
    };

    const double r0 = inst.uav.coverage_radius_m;
    const geom::SpatialHash* hash = nullptr;
    geom::SpatialHash storage({}, 1.0);
    if (!inst.devices.empty()) {
        const auto positions = inst.device_positions();
        storage = geom::SpatialHash(positions, r0);
        hash = &storage;
    }

    bool numerics_ok = true;
    for (std::size_t i = 0; i < plan.stops.size(); ++i) {
        const auto& s = plan.stops[i];
        const int idx = util::checked_cast<int>(i);
        if (!std::isfinite(s.pos.x) || !std::isfinite(s.pos.y) ||
            !std::isfinite(s.dwell_s)) {
            error(PlanViolation::Kind::kNonFiniteValue, idx,
                  "stop has NaN/inf coordinates or dwell");
            numerics_ok = false;
            continue;
        }
        if (s.dwell_s < 0.0) {
            error(PlanViolation::Kind::kNegativeDwell, idx,
                  "dwell is " + std::to_string(s.dwell_s) + " s");
        }
        if (inst.region.distance_to(s.pos) > r0) {
            error(PlanViolation::Kind::kStopFarFromField, idx,
                  "stop is " +
                      std::to_string(inst.region.distance_to(s.pos)) +
                      " m outside the region (> R0)");
        } else if (s.dwell_s == 0.0) {
            // A zero-dwell stop collects nothing: pure travel-energy waste,
            // whether or not devices are in range.
            warn(PlanViolation::Kind::kUselessStop, idx,
                 "zero dwell collects nothing but still costs travel");
        } else if (s.dwell_s > 0.0 && hash != nullptr) {
            bool any = false;
            hash->for_each_in_disk(s.pos, r0, [&](int) { any = true; });
            if (!any) {
                warn(PlanViolation::Kind::kUselessStop, idx,
                     "positive dwell but no device within R0");
            }
        }
        if (i > 0 && s.pos.x == plan.stops[i - 1].pos.x &&
            s.pos.y == plan.stops[i - 1].pos.y) {
            warn(PlanViolation::Kind::kDuplicateStop, idx,
                 "same position as stop " + std::to_string(i - 1) +
                     " (dwells should be merged)");
        }
    }

    if (numerics_ok) {
        // Same EnergyView cost model the planners and evaluator use.
        const model::EnergyView view(inst.uav);
        const double energy = view.tour_cost(plan.travel_length(inst.depot),
                                             plan.hover_time());
        if (energy > view.budget_j() + 1e-6) {
            error(PlanViolation::Kind::kEnergyExceeded, -1,
                  "plan needs " + std::to_string(energy) + " J of " +
                      std::to_string(view.budget_j()));
        }
    }
    if (plan.stops.empty() && inst.total_data_mb() > 0.0) {
        warn(PlanViolation::Kind::kEmptyPlanWithData, -1,
             "instance holds data but the plan has no stops");
    }
    return out;
}

}  // namespace uavdc::core
