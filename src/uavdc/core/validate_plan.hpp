#pragma once

#include <string>
#include <vector>

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::core {

/// One violation found while checking a plan against an instance.
struct PlanViolation {
    enum class Kind {
        kNegativeDwell,      ///< stop.dwell_s < 0
        kNonFiniteValue,     ///< NaN/inf position or dwell
        kEnergyExceeded,     ///< total energy > E
        kStopFarFromField,   ///< stop > R0 outside the region (covers
                             ///< nothing, wastes travel)
        kUselessStop,        ///< collects nothing: no device in range, or
                             ///< zero dwell (travel energy wasted either way)
        kDuplicateStop,      ///< same position as the previous stop (dwells
                             ///< should have been merged)
        kEmptyPlanWithData,  ///< nothing planned although data exists
    };
    Kind kind;
    int stop{-1};        ///< offending stop index (-1 = whole plan)
    std::string detail;  ///< human-readable explanation
};

[[nodiscard]] std::string to_string(PlanViolation::Kind kind);

/// Result of validation; `ok()` means no hard violations (useless stops
/// and the empty-plan notice are warnings, not errors).
struct PlanValidation {
    std::vector<PlanViolation> errors;
    std::vector<PlanViolation> warnings;
    [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Check a (possibly externally loaded) plan against an instance: numeric
/// sanity, energy feasibility, and coverage usefulness. Never throws —
/// intended as the gate before handing a JSON plan to a real autopilot.
[[nodiscard]] PlanValidation validate_plan(const model::Instance& inst,
                                           const model::FlightPlan& plan);

}  // namespace uavdc::core
