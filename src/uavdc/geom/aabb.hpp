#pragma once

#include <algorithm>

#include "uavdc/geom/vec2.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::geom {

/// Axis-aligned bounding box. Used for the monitoring region (the paper's
/// 1000 x 1000 m field) and for grid-cell extents.
struct Aabb {
    Vec2 lo{0.0, 0.0};
    Vec2 hi{0.0, 0.0};

    constexpr Aabb() = default;
    constexpr Aabb(Vec2 lo_, Vec2 hi_) : lo(lo_), hi(hi_) {
        UAVDC_REQUIRE(lo.x <= hi.x && lo.y <= hi.y);
    }

    /// Box spanning [0,w] x [0,h].
    [[nodiscard]] static constexpr Aabb of_size(double w, double h) {
        return Aabb{{0.0, 0.0}, {w, h}};
    }

    [[nodiscard]] constexpr double width() const { return hi.x - lo.x; }
    [[nodiscard]] constexpr double height() const { return hi.y - lo.y; }
    [[nodiscard]] constexpr double area() const { return width() * height(); }
    [[nodiscard]] constexpr Vec2 center() const {
        return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
    }

    /// Closed containment test.
    [[nodiscard]] constexpr bool contains(const Vec2& p) const {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
    }

    /// Clamp a point into the box.
    [[nodiscard]] constexpr Vec2 clamp(const Vec2& p) const {
        return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
    }

    /// Smallest box containing this box and point p.
    [[nodiscard]] constexpr Aabb expanded(const Vec2& p) const {
        return Aabb{{std::min(lo.x, p.x), std::min(lo.y, p.y)},
                    {std::max(hi.x, p.x), std::max(hi.y, p.y)}};
    }

    /// Box grown by margin m on every side.
    [[nodiscard]] constexpr Aabb inflated(double m) const {
        return Aabb{{lo.x - m, lo.y - m}, {hi.x + m, hi.y + m}};
    }

    /// Distance from p to the box (0 if inside).
    [[nodiscard]] double distance_to(const Vec2& p) const {
        return distance(p, clamp(p));
    }

    /// True if a disk of radius r centred at c intersects the box.
    [[nodiscard]] bool intersects_disk(const Vec2& c, double r) const {
        return distance_to(c) <= r;
    }

    friend constexpr bool operator==(const Aabb& a, const Aabb& b) {
        return a.lo == b.lo && a.hi == b.hi;
    }
};

}  // namespace uavdc::geom
