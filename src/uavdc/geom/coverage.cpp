#include "uavdc/geom/coverage.hpp"

#include <algorithm>
#include <stdexcept>

namespace uavdc::geom {

CoverageIndex::CoverageIndex(std::span<const Vec2> centers,
                             std::span<const Vec2> devices, double radius)
    : radius_(radius),
      covered_(centers.size()),
      covering_(devices.size()) {
    if (radius < 0.0) {
        throw std::invalid_argument("CoverageIndex: radius must be >= 0");
    }
    if (devices.empty() || centers.empty()) return;

    const double cell = std::max(radius, 1e-9);
    const SpatialHash hash(devices, cell);
    for (std::size_t c = 0; c < centers.size(); ++c) {
        auto& lst = covered_[c];
        hash.for_each_in_disk(centers[c], radius,
                              [&](int dev) { lst.push_back(dev); });
        std::sort(lst.begin(), lst.end());
        for (int dev : lst) {
            covering_[static_cast<std::size_t>(dev)].push_back(
                static_cast<int>(c));
        }
    }
    // covering_ lists are already sorted: centres are visited in order.
}

int CoverageIndex::num_uncovered_devices() const {
    int n = 0;
    for (const auto& lst : covering_) {
        if (lst.empty()) ++n;
    }
    return n;
}

}  // namespace uavdc::geom
