#include "uavdc/geom/coverage.hpp"

#include <algorithm>
#include <stdexcept>

#include "uavdc/util/parallel_for.hpp"

namespace uavdc::geom {

namespace {
// Centre counts below this are cheaper to scan serially than to fan out.
constexpr std::size_t kParallelCenters = 512;
}  // namespace

CoverageIndex::CoverageIndex(std::span<const Vec2> centers,
                             std::span<const Vec2> devices, double radius)
    : radius_(radius),
      covered_(centers.size()),
      covering_(devices.size()) {
    if (radius < 0.0) {
        throw std::invalid_argument("CoverageIndex: radius must be >= 0");
    }
    if (devices.empty() || centers.empty()) return;

    const double cell = std::max(radius, 1e-9);
    const SpatialHash hash(devices, cell);
    // Per-centre coverage lists are independent — fill them across the
    // thread pool (each worker writes only its own slots, so the result is
    // identical to the serial order).
    auto cover_one = [&](std::size_t c) {
        auto& lst = covered_[c];
        hash.for_each_in_disk(centers[c], radius,
                              [&](int dev) { lst.push_back(dev); });
        std::sort(lst.begin(), lst.end());
    };
    if (centers.size() >= kParallelCenters) {
        util::parallel_for(0, centers.size(), cover_one, 64);
    } else {
        for (std::size_t c = 0; c < centers.size(); ++c) cover_one(c);
    }
    // Invert serially in centre order so covering_ lists come out sorted.
    for (std::size_t c = 0; c < centers.size(); ++c) {
        for (int dev : covered_[c]) {
            covering_[static_cast<std::size_t>(dev)].push_back(
                static_cast<int>(c));
        }
    }
}

int CoverageIndex::num_uncovered_devices() const {
    int n = 0;
    for (const auto& lst : covering_) {
        if (lst.empty()) ++n;
    }
    return n;
}

}  // namespace uavdc::geom
