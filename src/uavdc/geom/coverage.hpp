#pragma once

#include <span>
#include <vector>

#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/geom/vec2.hpp"

namespace uavdc::geom {

/// Bidirectional coverage map between candidate hovering locations and
/// devices: C(s_j) = { v_i : |v_i - s_j| <= R0 } (Sec. III-B, Eq. 2) and the
/// inverse map (which hovering locations cover a given device).
///
/// Built once per instance via a spatial hash over device positions; queries
/// are O(1) lookups afterwards.
class CoverageIndex {
  public:
    /// `centers` are the candidate hovering locations (projected to ground),
    /// `devices` the device positions, `radius` the coverage radius R0.
    CoverageIndex(std::span<const Vec2> centers, std::span<const Vec2> devices,
                  double radius);

    [[nodiscard]] double radius() const { return radius_; }
    [[nodiscard]] std::size_t num_centers() const { return covered_.size(); }
    [[nodiscard]] std::size_t num_devices() const { return covering_.size(); }

    /// Device indices covered from hovering location `center` (sorted).
    [[nodiscard]] const std::vector<int>& covered(int center) const {
        return covered_[static_cast<std::size_t>(center)];
    }
    /// Hovering-location indices covering `device` (sorted).
    [[nodiscard]] const std::vector<int>& covering(int device) const {
        return covering_[static_cast<std::size_t>(device)];
    }

    /// Number of devices covered by no centre at all (unreachable data).
    [[nodiscard]] int num_uncovered_devices() const;

  private:
    double radius_;
    std::vector<std::vector<int>> covered_;   // centre -> devices
    std::vector<std::vector<int>> covering_;  // device -> centres
};

}  // namespace uavdc::geom
