#include "uavdc/geom/grid.hpp"

#include <cmath>
#include <stdexcept>

#include "uavdc/util/check.hpp"

namespace uavdc::geom {

namespace {

int cells_along(double extent, double delta) {
    // At least one cell; round up so the grid covers the whole region.
    const double n = std::ceil(extent / delta);
    return std::max(1, static_cast<int>(n));
}

}  // namespace

Grid::Grid(Aabb region, double delta)
    : region_(region),
      delta_(delta),
      nx_(0),
      ny_(0) {
    if (!(delta > 0.0)) {
        throw std::invalid_argument("Grid: delta must be positive");
    }
    nx_ = cells_along(region_.width(), delta_);
    ny_ = cells_along(region_.height(), delta_);
}

Vec2 Grid::center(int id) const {
    UAVDC_DCHECK(id >= 0 && id < num_cells());
    const int ix = ix_of(id);
    const int iy = iy_of(id);
    return {region_.lo.x + (ix + 0.5) * delta_,
            region_.lo.y + (iy + 0.5) * delta_};
}

Aabb Grid::cell_box(int id) const {
    UAVDC_DCHECK(id >= 0 && id < num_cells());
    const int ix = ix_of(id);
    const int iy = iy_of(id);
    const Vec2 lo{region_.lo.x + ix * delta_, region_.lo.y + iy * delta_};
    return Aabb{lo, lo + Vec2{delta_, delta_}};
}

int Grid::cell_of(const Vec2& p) const {
    auto clamp_idx = [](double v, int n) {
        const int i = static_cast<int>(std::floor(v));
        return std::clamp(i, 0, n - 1);
    };
    const int ix = clamp_idx((p.x - region_.lo.x) / delta_, nx_);
    const int iy = clamp_idx((p.y - region_.lo.y) / delta_, ny_);
    return id_of(ix, iy);
}

std::vector<int> Grid::cells_with_center_in_disk(const Vec2& p,
                                                 double r) const {
    std::vector<int> out;
    if (r < 0.0) return out;
    // Candidate index window around p.
    const int ix_lo = static_cast<int>(
        std::floor((p.x - r - region_.lo.x) / delta_ - 0.5));
    const int ix_hi = static_cast<int>(
        std::ceil((p.x + r - region_.lo.x) / delta_ - 0.5));
    const int iy_lo = static_cast<int>(
        std::floor((p.y - r - region_.lo.y) / delta_ - 0.5));
    const int iy_hi = static_cast<int>(
        std::ceil((p.y + r - region_.lo.y) / delta_ - 0.5));
    const double r2 = r * r;
    for (int iy = std::max(0, iy_lo); iy <= std::min(ny_ - 1, iy_hi); ++iy) {
        for (int ix = std::max(0, ix_lo); ix <= std::min(nx_ - 1, ix_hi);
             ++ix) {
            const int id = id_of(ix, iy);
            if (distance2(center(id), p) <= r2) out.push_back(id);
        }
    }
    return out;
}

std::vector<Vec2> Grid::all_centers() const {
    std::vector<Vec2> out;
    out.reserve(static_cast<std::size_t>(num_cells()));
    for (int id = 0; id < num_cells(); ++id) out.push_back(center(id));
    return out;
}

}  // namespace uavdc::geom
