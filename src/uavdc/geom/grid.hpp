#pragma once

#include <cstdint>
#include <vector>

#include "uavdc/geom/aabb.hpp"
#include "uavdc/geom/vec2.hpp"

namespace uavdc::geom {

/// Uniform square partition of a monitoring region (Sec. III-B of the paper):
/// the region is split into squares of edge length delta, and the centre of
/// each square is a potential hovering location for the UAV.
///
/// Cells are indexed row-major: id = iy * nx + ix, with (ix, iy) counting
/// from the region's lower-left corner. The last row/column of cells may
/// extend slightly past the region when width/height is not a multiple of
/// delta; their centres are still used as hovering locations (the UAV may
/// hover anywhere, only the devices are confined to the region).
class Grid {
  public:
    /// Build a grid over `region` with square edge `delta` (> 0).
    Grid(Aabb region, double delta);

    [[nodiscard]] const Aabb& region() const { return region_; }
    [[nodiscard]] double delta() const { return delta_; }
    [[nodiscard]] int nx() const { return nx_; }
    [[nodiscard]] int ny() const { return ny_; }
    [[nodiscard]] int num_cells() const { return nx_ * ny_; }

    /// Centre of cell `id` (the hovering location).
    [[nodiscard]] Vec2 center(int id) const;
    /// Extent of cell `id`.
    [[nodiscard]] Aabb cell_box(int id) const;

    /// Cell id containing point p (clamped to the grid).
    [[nodiscard]] int cell_of(const Vec2& p) const;

    /// (ix, iy) -> id.
    [[nodiscard]] int id_of(int ix, int iy) const { return iy * nx_ + ix; }
    [[nodiscard]] int ix_of(int id) const { return id % nx_; }
    [[nodiscard]] int iy_of(int id) const { return id / nx_; }

    /// Ids of all cells whose *centre* lies within distance r of p.
    /// This is exactly the set of hovering locations that cover a device at
    /// p with coverage radius r.
    [[nodiscard]] std::vector<int> cells_with_center_in_disk(const Vec2& p,
                                                             double r) const;

    /// Centres of every cell, indexed by cell id.
    [[nodiscard]] std::vector<Vec2> all_centers() const;

  private:
    Aabb region_;
    double delta_;
    int nx_;
    int ny_;
};

}  // namespace uavdc::geom
