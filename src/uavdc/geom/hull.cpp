#include "uavdc/geom/hull.hpp"

#include <algorithm>

namespace uavdc::geom {

std::vector<Vec2> convex_hull(std::span<const Vec2> pts) {
    std::vector<Vec2> p(pts.begin(), pts.end());
    std::sort(p.begin(), p.end(), [](const Vec2& a, const Vec2& b) {
        return a.x < b.x || (a.x == b.x && a.y < b.y);
    });
    p.erase(std::unique(p.begin(), p.end()), p.end());
    const std::size_t n = p.size();
    if (n <= 2) return p;

    auto cross3 = [](const Vec2& o, const Vec2& a, const Vec2& b) {
        return (a - o).cross(b - o);
    };
    std::vector<Vec2> hull(2 * n);
    std::size_t k = 0;
    // Lower hull.
    for (std::size_t i = 0; i < n; ++i) {
        while (k >= 2 && cross3(hull[k - 2], hull[k - 1], p[i]) <= 0.0) --k;
        hull[k++] = p[i];
    }
    // Upper hull.
    const std::size_t lower = k + 1;
    for (std::size_t i = n - 1; i-- > 0;) {
        while (k >= lower && cross3(hull[k - 2], hull[k - 1], p[i]) <= 0.0) {
            --k;
        }
        hull[k++] = p[i];
    }
    hull.resize(k - 1);  // last point repeats the first
    return hull;
}

double polygon_perimeter(std::span<const Vec2> pts) {
    if (pts.size() < 2) return 0.0;
    double len = 0.0;
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
        len += distance(pts[i], pts[i + 1]);
    }
    len += distance(pts.back(), pts.front());
    return len;
}

bool point_in_convex_hull(std::span<const Vec2> hull, const Vec2& q,
                          double eps) {
    if (hull.empty()) return false;
    if (hull.size() == 1) return distance(hull[0], q) <= eps;
    if (hull.size() == 2) {
        // On the segment?
        const Vec2 d = hull[1] - hull[0];
        const double t =
            d.norm2() > 0.0 ? (q - hull[0]).dot(d) / d.norm2() : 0.0;
        const Vec2 proj = hull[0] + d * std::clamp(t, 0.0, 1.0);
        return distance(proj, q) <= eps;
    }
    for (std::size_t i = 0; i < hull.size(); ++i) {
        const Vec2& a = hull[i];
        const Vec2& b = hull[(i + 1) % hull.size()];
        if ((b - a).cross(q - a) < -eps) return false;
    }
    return true;
}

}  // namespace uavdc::geom
