#pragma once

#include <span>
#include <vector>

#include "uavdc/geom/vec2.hpp"

namespace uavdc::geom {

/// Convex hull (Andrew's monotone chain), counter-clockwise, without the
/// duplicated closing point. Collinear boundary points are dropped.
/// Degenerate inputs: < 3 distinct points return the distinct points.
[[nodiscard]] std::vector<Vec2> convex_hull(std::span<const Vec2> pts);

/// Perimeter of the polygon through `pts` (closing edge included).
[[nodiscard]] double polygon_perimeter(std::span<const Vec2> pts);

/// True if point q lies inside or on the convex polygon `hull`
/// (counter-clockwise order, as returned by convex_hull).
[[nodiscard]] bool point_in_convex_hull(std::span<const Vec2> hull,
                                        const Vec2& q, double eps = 1e-9);

}  // namespace uavdc::geom
