#include "uavdc/geom/kmeans.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "uavdc/util/rng.hpp"

namespace uavdc::geom {

namespace {

/// k-means++ seeding: first centre weighted-uniform, then proportional to
/// squared distance from the nearest chosen centre.
std::vector<Vec2> seed_centroids(std::span<const Vec2> pts,
                                 std::span<const double> w, int k,
                                 util::Rng& rng) {
    std::vector<Vec2> centers;
    centers.reserve(static_cast<std::size_t>(k));
    const auto n = pts.size();
    auto weight = [&](std::size_t i) { return w.empty() ? 1.0 : w[i]; };

    // First centre: weighted-uniform draw.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += weight(i);
    double pick = rng.uniform(0.0, total);
    std::size_t first = 0;
    for (std::size_t i = 0; i < n; ++i) {
        pick -= weight(i);
        if (pick <= 0.0) {
            first = i;
            break;
        }
    }
    centers.push_back(pts[first]);

    std::vector<double> d2(n);
    while (centers.size() < static_cast<std::size_t>(k)) {
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            for (const auto& c : centers) {
                best = std::min(best, distance2(pts[i], c));
            }
            d2[i] = best * weight(i);
            sum += d2[i];
        }
        if (sum <= 0.0) break;  // fewer distinct points than k
        double r = rng.uniform(0.0, sum);
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            r -= d2[i];
            if (r <= 0.0) {
                chosen = i;
                break;
            }
        }
        centers.push_back(pts[chosen]);
    }
    return centers;
}

}  // namespace

KMeansResult kmeans(std::span<const Vec2> points, int k,
                    std::span<const double> weights,
                    const KMeansConfig& cfg) {
    if (k < 1) throw std::invalid_argument("kmeans: k must be >= 1");
    if (!weights.empty() && weights.size() != points.size()) {
        throw std::invalid_argument("kmeans: weight/point size mismatch");
    }
    KMeansResult out;
    if (points.empty()) return out;

    util::Rng rng(cfg.seed);
    out.centroids = seed_centroids(points, weights, k, rng);
    const std::size_t kk = out.centroids.size();
    out.assignment.assign(points.size(), 0);
    auto weight = [&](std::size_t i) {
        return weights.empty() ? 1.0 : weights[i];
    };

    double prev_inertia = std::numeric_limits<double>::infinity();
    for (int it = 0; it < cfg.max_iterations; ++it) {
        ++out.iterations;
        // Assign.
        double inertia = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            double best = std::numeric_limits<double>::infinity();
            int best_c = 0;
            for (std::size_t c = 0; c < kk; ++c) {
                const double d = distance2(points[i], out.centroids[c]);
                if (d < best) {
                    best = d;
                    best_c = static_cast<int>(c);
                }
            }
            out.assignment[i] = best_c;
            inertia += best * weight(i);
        }
        out.inertia = inertia;
        // Update.
        std::vector<Vec2> sums(kk, Vec2{});
        std::vector<double> mass(kk, 0.0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto c = static_cast<std::size_t>(out.assignment[i]);
            sums[c] += points[i] * weight(i);
            mass[c] += weight(i);
        }
        for (std::size_t c = 0; c < kk; ++c) {
            if (mass[c] > 0.0) {
                out.centroids[c] = sums[c] / mass[c];
            } else {
                // Re-seed an empty cluster from the farthest point.
                double far = -1.0;
                std::size_t far_i = 0;
                for (std::size_t i = 0; i < points.size(); ++i) {
                    const auto a =
                        static_cast<std::size_t>(out.assignment[i]);
                    const double d = distance2(points[i], out.centroids[a]);
                    if (d > far) {
                        far = d;
                        far_i = i;
                    }
                }
                out.centroids[c] = points[far_i];
            }
        }
        if (prev_inertia - inertia < cfg.tol) break;
        prev_inertia = inertia;
    }
    out.cluster_sizes.assign(kk, 0);
    for (int a : out.assignment) {
        ++out.cluster_sizes[static_cast<std::size_t>(a)];
    }
    return out;
}

}  // namespace uavdc::geom
