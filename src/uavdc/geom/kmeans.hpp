#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "uavdc/geom/vec2.hpp"

namespace uavdc::geom {

/// K-means clustering result.
struct KMeansResult {
    std::vector<Vec2> centroids;      ///< k cluster centres
    std::vector<int> assignment;      ///< point index -> cluster id
    std::vector<int> cluster_sizes;   ///< points per cluster
    double inertia{0.0};              ///< sum of squared distances
    int iterations{0};                ///< Lloyd iterations executed
};

/// Options for Lloyd's algorithm.
struct KMeansConfig {
    int max_iterations = 50;
    double tol = 1e-6;        ///< stop when inertia improves less than this
    std::uint64_t seed = 42;  ///< k-means++ seeding
};

/// Weighted k-means (Lloyd) with k-means++ seeding. `weights` may be empty
/// (uniform); otherwise it must match `points`. k is clamped to the number
/// of distinct points; empty clusters are re-seeded from the farthest
/// point. Deterministic for a fixed config.
[[nodiscard]] KMeansResult kmeans(std::span<const Vec2> points, int k,
                                  std::span<const double> weights = {},
                                  const KMeansConfig& cfg = {});

}  // namespace uavdc::geom
