#include "uavdc/geom/obstacle_field.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace uavdc::geom {

namespace {

constexpr double kBoundaryEps = 1e-9;
constexpr double kCornerPush = 1e-6;

/// Does the open segment (a, b) pass through the open interior of `box`?
/// Implemented with the slab method on the segment parameter t in [0, 1];
/// grazing the boundary is not an intersection.
bool segment_hits_box(const Vec2& a, const Vec2& b, const Aabb& box) {
    const Aabb open = box.inflated(-kBoundaryEps);
    if (open.lo.x >= open.hi.x || open.lo.y >= open.hi.y) return false;
    const Vec2 d = b - a;
    double t0 = 0.0;
    double t1 = 1.0;
    for (int axis = 0; axis < 2; ++axis) {
        const double da = axis == 0 ? d.x : d.y;
        const double pa = axis == 0 ? a.x : a.y;
        const double lo = axis == 0 ? open.lo.x : open.lo.y;
        const double hi = axis == 0 ? open.hi.x : open.hi.y;
        if (da == 0.0) {
            if (pa <= lo || pa >= hi) return false;
        } else {
            double ta = (lo - pa) / da;
            double tb = (hi - pa) / da;
            if (ta > tb) std::swap(ta, tb);
            t0 = std::max(t0, ta);
            t1 = std::min(t1, tb);
            if (t0 >= t1) return false;
        }
    }
    return t1 > t0;
}

}  // namespace

ObstacleField::ObstacleField(std::vector<Aabb> zones, double clearance)
    : clearance_(clearance) {
    zones_.reserve(zones.size());
    for (const auto& z : zones) {
        zones_.push_back(z.inflated(clearance));
    }
    // Routing corners sit just outside each inflated zone so edges may hug
    // the boundary.
    for (const auto& z : zones_) {
        const Aabb out = z.inflated(kCornerPush);
        corners_.push_back({out.lo.x, out.lo.y});
        corners_.push_back({out.hi.x, out.lo.y});
        corners_.push_back({out.hi.x, out.hi.y});
        corners_.push_back({out.lo.x, out.hi.y});
    }
}

bool ObstacleField::blocked(const Vec2& p) const {
    for (const auto& z : zones_) {
        if (p.x > z.lo.x + kBoundaryEps && p.x < z.hi.x - kBoundaryEps &&
            p.y > z.lo.y + kBoundaryEps && p.y < z.hi.y - kBoundaryEps) {
            return true;
        }
    }
    return false;
}

bool ObstacleField::segment_clear(const Vec2& a, const Vec2& b) const {
    for (const auto& z : zones_) {
        if (segment_hits_box(a, b, z)) return false;
    }
    return true;
}

PathResult ObstacleField::shortest_path(const Vec2& a, const Vec2& b) const {
    PathResult out;
    if (blocked(a) || blocked(b)) return out;
    if (segment_clear(a, b)) {
        out.reachable = true;
        out.length_m = distance(a, b);
        out.waypoints = {a, b};
        return out;
    }

    // Visibility graph over {a, b} + zone corners (blocked corners, e.g.
    // inside an overlapping neighbour zone, are unusable).
    std::vector<Vec2> nodes{a, b};
    for (const auto& c : corners_) {
        if (!blocked(c)) nodes.push_back(c);
    }
    const std::size_t n = nodes.size();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(n, kInf);
    std::vector<std::size_t> prev(n, n);
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[0] = 0.0;
    heap.push({0.0, 0});
    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d > dist[u] + 1e-12) continue;
        if (u == 1) break;
        for (std::size_t v = 0; v < n; ++v) {
            if (v == u) continue;
            const double w = distance(nodes[u], nodes[v]);
            if (dist[u] + w >= dist[v]) continue;  // cheap reject first
            if (!segment_clear(nodes[u], nodes[v])) continue;
            dist[v] = dist[u] + w;
            prev[v] = u;
            heap.push({dist[v], v});
        }
    }
    if (dist[1] == kInf) return out;
    out.reachable = true;
    out.length_m = dist[1];
    std::vector<Vec2> rev;
    for (std::size_t v = 1; v != n; v = prev[v]) {
        rev.push_back(nodes[v]);
        if (v == 0) break;
    }
    out.waypoints.assign(rev.rbegin(), rev.rend());
    return out;
}

double ObstacleField::distance_around(const Vec2& a, const Vec2& b) const {
    const auto res = shortest_path(a, b);
    return res.reachable ? res.length_m
                         : std::numeric_limits<double>::infinity();
}

}  // namespace uavdc::geom
