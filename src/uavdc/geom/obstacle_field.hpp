#pragma once

#include <span>
#include <vector>

#include "uavdc/geom/aabb.hpp"
#include "uavdc/geom/vec2.hpp"

namespace uavdc::geom {

/// Result of a shortest-path query around no-fly zones.
struct PathResult {
    bool reachable{false};
    double length_m{0.0};
    std::vector<Vec2> waypoints;  ///< includes both endpoints
};

/// Axis-aligned no-fly zones with visibility-graph shortest paths.
///
/// The paper motivates UAVs by their ability to fly over ground obstacles,
/// but real deployments also carry horizontal no-fly zones
/// (airports, crowds, restricted facilities). This substrate routes flight
/// legs around rectangular zones: a visibility graph over the (slightly
/// inflated) zone corners plus the query endpoints, searched with Dijkstra.
/// Intended zone counts are small (tens); queries are O((4z+2)^2 * z).
class ObstacleField {
  public:
    /// `zones` are forbidden rectangles; `clearance` grows each zone on
    /// every side before routing (UAV safety margin).
    explicit ObstacleField(std::vector<Aabb> zones, double clearance = 0.0);

    [[nodiscard]] const std::vector<Aabb>& zones() const { return zones_; }
    [[nodiscard]] double clearance() const { return clearance_; }
    [[nodiscard]] bool empty() const { return zones_.empty(); }

    /// True if p lies strictly inside any inflated zone.
    [[nodiscard]] bool blocked(const Vec2& p) const;

    /// True if the open segment (a, b) avoids every inflated zone interior
    /// (touching a boundary does not block).
    [[nodiscard]] bool segment_clear(const Vec2& a, const Vec2& b) const;

    /// Shortest obstacle-avoiding path from a to b. Unreachable when either
    /// endpoint is inside a zone (overlapping zones can also wall off
    /// regions).
    [[nodiscard]] PathResult shortest_path(const Vec2& a,
                                           const Vec2& b) const;

    /// Shortest-path length, or +inf when unreachable.
    [[nodiscard]] double distance_around(const Vec2& a, const Vec2& b) const;

  private:
    std::vector<Aabb> zones_;      ///< inflated by clearance
    std::vector<Vec2> corners_;    ///< routing waypoint candidates
    double clearance_;
};

}  // namespace uavdc::geom
