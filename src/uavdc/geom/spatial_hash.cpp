#include "uavdc/geom/spatial_hash.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace uavdc::geom {

SpatialHash::SpatialHash(std::span<const Vec2> points, double cell_size)
    : points_(points.begin(), points.end()), cell_size_(cell_size) {
    if (!(cell_size > 0.0)) {
        throw std::invalid_argument("SpatialHash: cell_size must be positive");
    }
    if (points_.empty()) {
        nbx_ = nby_ = 0;
        starts_.assign(1, 0);
        return;
    }
    Aabb box{points_[0], points_[0]};
    for (const auto& p : points_) box = box.expanded(p);
    origin_ = box.lo;
    nbx_ = std::max(1, static_cast<int>(
                           std::floor(box.width() / cell_size_)) +
                           1);
    nby_ = std::max(1, static_cast<int>(
                           std::floor(box.height() / cell_size_)) +
                           1);

    const std::size_t nb =
        static_cast<std::size_t>(nbx_) * static_cast<std::size_t>(nby_);
    std::vector<std::size_t> counts(nb, 0);
    auto bucket_of = [&](const Vec2& p) {
        const int bx = std::clamp(
            static_cast<int>(std::floor((p.x - origin_.x) / cell_size_)), 0,
            nbx_ - 1);
        const int by = std::clamp(
            static_cast<int>(std::floor((p.y - origin_.y) / cell_size_)), 0,
            nby_ - 1);
        return static_cast<std::size_t>(by) * static_cast<std::size_t>(nbx_) +
               static_cast<std::size_t>(bx);
    };
    for (const auto& p : points_) ++counts[bucket_of(p)];
    starts_.assign(nb + 1, 0);
    for (std::size_t b = 0; b < nb; ++b) starts_[b + 1] = starts_[b] + counts[b];
    order_.assign(points_.size(), 0);
    std::vector<std::size_t> cursor(starts_.begin(), starts_.end() - 1);
    for (std::size_t i = 0; i < points_.size(); ++i) {
        order_[cursor[bucket_of(points_[i])]++] = static_cast<int>(i);
    }
    // Bucket-ordered SoA mirror for the chunked disk scans.
    xs_.resize(points_.size());
    ys_.resize(points_.size());
    for (std::size_t k = 0; k < points_.size(); ++k) {
        const auto idx = static_cast<std::size_t>(order_[k]);
        xs_[k] = points_[idx].x;
        ys_[k] = points_[idx].y;
    }
}

int SpatialHash::bucket_coord(double offset) const {
    return static_cast<int>(std::floor(offset / cell_size_));
}

std::vector<int> SpatialHash::query_disk(const Vec2& q, double r) const {
    std::vector<int> out;
    for_each_in_disk(q, r, [&](int idx) { out.push_back(idx); });
    std::sort(out.begin(), out.end());
    return out;
}

int SpatialHash::nearest(const Vec2& q) const {
    if (points_.empty()) return -1;
    // Expanding-ring search: start from the query's bucket ring and widen
    // until a hit is found, then verify one extra ring for correctness.
    int best = -1;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (double r = cell_size_;; r *= 2.0) {
        for_each_in_disk(q, r, [&](int idx) {
            const double d2 =
                distance2(points_[static_cast<std::size_t>(idx)], q);
            if (d2 < best_d2) {
                best_d2 = d2;
                best = idx;
            }
        });
        // Squared-form termination test: sqrt(best_d2) <= r iff
        // best_d2 <= r * r (both sides non-negative, sqrt monotone and
        // correctly rounded), and scanning an extra ring never changes the
        // final argmin — verdict-identical, no sqrt.
        if (best >= 0 && best_d2 <= r * r) return best;
        // Guard against pathological far-away point sets.
        if (r > 4.0 * (cell_size_ * (nbx_ + nby_ + 2) +
                       distance(q, origin_))) {
            break;
        }
    }
    // Fallback: linear scan (only reached for degenerate layouts).
    for (std::size_t i = 0; i < points_.size(); ++i) {
        const double d2 = distance2(points_[i], q);
        if (d2 < best_d2) {
            best_d2 = d2;
            best = static_cast<int>(i);
        }
    }
    return best;
}

std::vector<int> SpatialHash::k_nearest(const Vec2& q, std::size_t k) const {
    std::vector<int> out;
    if (points_.empty() || k == 0) return out;
    k = std::min(k, points_.size());
    std::vector<std::pair<double, int>> found;
    const auto finish = [&] {
        std::sort(found.begin(), found.end());
        out.reserve(k);
        for (std::size_t i = 0; i < k; ++i) out.push_back(found[i].second);
        return out;
    };
    for (double r = cell_size_;; r *= 2.0) {
        found.clear();
        for_each_in_disk(q, r, [&](int idx) {
            found.emplace_back(
                distance2(points_[static_cast<std::size_t>(idx)], q), idx);
        });
        if (found.size() >= k) {
            std::nth_element(found.begin(),
                             found.begin() + static_cast<std::ptrdiff_t>(k - 1),
                             found.end());
            // The k-th hit must lie inside the scanned disk, else a closer
            // point may still be hiding outside it. Squared-form test:
            // sqrt(d2) <= r iff d2 <= r * r (see nearest()).
            if (found[k - 1].first <= r * r) return finish();
        }
        // Guard against pathological far-away point sets (see nearest()).
        if (r > 4.0 * (cell_size_ * (nbx_ + nby_ + 2) +
                       distance(q, origin_))) {
            break;
        }
    }
    // Fallback: full scan (only reached for degenerate layouts).
    found.clear();
    found.reserve(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) {
        found.emplace_back(distance2(points_[i], q), static_cast<int>(i));
    }
    return finish();
}

}  // namespace uavdc::geom
