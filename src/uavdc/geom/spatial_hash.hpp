#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "uavdc/geom/aabb.hpp"
#include "uavdc/geom/vec2.hpp"
#include "uavdc/util/aligned.hpp"

namespace uavdc::geom {

/// Bucketed point index for fixed-radius neighbour queries.
///
/// Points are hashed into square buckets of edge `cell_size`; a radius-r
/// query scans the O((r/cell_size + 2)^2) buckets overlapping the query disk.
/// With cell_size ~= R0 this makes coverage-set construction
/// O(devices-in-disk) per hovering location instead of O(|V|), which matters
/// when scoring tens of thousands of candidate cells.
class SpatialHash {
  public:
    /// Build an index over `points` with bucket edge `cell_size` (> 0).
    SpatialHash(std::span<const Vec2> points, double cell_size);

    [[nodiscard]] std::size_t size() const { return points_.size(); }
    [[nodiscard]] double cell_size() const { return cell_size_; }

    /// Indices (into the original span) of points within distance r of q,
    /// in ascending index order.
    [[nodiscard]] std::vector<int> query_disk(const Vec2& q, double r) const;

    /// Visit indices of points within distance r of q.
    ///
    /// The candidate distances of each bucket run are computed over the
    /// bucket-ordered SoA mirror (`xs_`/`ys_`) in fixed-size chunks — a
    /// plain elementwise loop the compiler vectorizes — then the callback
    /// fires for hits in the original scan order. Each lane evaluates the
    /// exact `distance2(points_[idx], q)` expression, so the visited set is
    /// bit-identical to the scalar scan this replaces. (geom may not depend
    /// on core, so the chunk loop lives here rather than in
    /// core/batch_kernels.)
    template <typename F>
    void for_each_in_disk(const Vec2& q, double r, F&& f) const {
        if (points_.empty() || r < 0.0) return;
        const double r2 = r * r;
        const int bx_lo = bucket_coord(q.x - r - origin_.x);
        const int bx_hi = bucket_coord(q.x + r - origin_.x);
        const int by_lo = bucket_coord(q.y - r - origin_.y);
        const int by_hi = bucket_coord(q.y + r - origin_.y);
        constexpr std::size_t kChunk = 64;
        double d2[kChunk];
        for (int by = std::max(0, by_lo); by <= std::min(nby_ - 1, by_hi);
             ++by) {
            for (int bx = std::max(0, bx_lo); bx <= std::min(nbx_ - 1, bx_hi);
                 ++bx) {
                const std::size_t b =
                    static_cast<std::size_t>(by) *
                        static_cast<std::size_t>(nbx_) +
                    static_cast<std::size_t>(bx);
                for (std::size_t k = starts_[b]; k < starts_[b + 1];) {
                    const std::size_t end =
                        std::min(starts_[b + 1], k + kChunk);
                    const std::size_t len = end - k;
                    for (std::size_t t = 0; t < len; ++t) {
                        const double dx = xs_[k + t] - q.x;
                        const double dy = ys_[k + t] - q.y;
                        d2[t] = dx * dx + dy * dy;
                    }
                    for (std::size_t t = 0; t < len; ++t) {
                        if (d2[t] <= r2) f(order_[k + t]);
                    }
                    k = end;
                }
            }
        }
    }

    /// Index of the nearest point to q, or -1 if the index is empty.
    [[nodiscard]] int nearest(const Vec2& q) const;

    /// Indices of the (up to) k nearest points to q, ordered by
    /// (distance, index) — deterministic under distance ties. Uses the same
    /// expanding-ring search as nearest().
    [[nodiscard]] std::vector<int> k_nearest(const Vec2& q,
                                             std::size_t k) const;

  private:
    [[nodiscard]] int bucket_coord(double offset) const;

    std::vector<Vec2> points_;
    double cell_size_;
    Vec2 origin_;
    int nbx_{0};
    int nby_{0};
    // CSR layout: order_ holds point indices grouped by bucket,
    // starts_[b]..starts_[b+1] delimit bucket b. xs_/ys_ mirror the point
    // coordinates in bucket order (xs_[k] == points_[order_[k]].x), so disk
    // queries stream contiguous memory instead of gathering through order_.
    std::vector<std::size_t> starts_;
    std::vector<int> order_;
    util::AlignedVector<double> xs_;
    util::AlignedVector<double> ys_;
};

}  // namespace uavdc::geom
