#include "uavdc/geom/vec2.hpp"

#include <ostream>

namespace uavdc::geom {

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
    return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace uavdc::geom
