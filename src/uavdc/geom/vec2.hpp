#pragma once

#include <cmath>
#include <iosfwd>

namespace uavdc::geom {

/// A 2-D point/vector in metres. Hovering locations are projected to the
/// ground plane (the paper's altitude H only enters via the derived coverage
/// radius R0 = sqrt(R^2 - H^2)), so all planning geometry is planar.
struct Vec2 {
    double x{0.0};
    double y{0.0};

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2& operator+=(const Vec2& o) {
        x += o.x;
        y += o.y;
        return *this;
    }
    constexpr Vec2& operator-=(const Vec2& o) {
        x -= o.x;
        y -= o.y;
        return *this;
    }
    constexpr Vec2& operator*=(double s) {
        x *= s;
        y *= s;
        return *this;
    }
    constexpr Vec2& operator/=(double s) {
        x /= s;
        y /= s;
        return *this;
    }

    friend constexpr Vec2 operator+(Vec2 a, const Vec2& b) { return a += b; }
    friend constexpr Vec2 operator-(Vec2 a, const Vec2& b) { return a -= b; }
    friend constexpr Vec2 operator*(Vec2 a, double s) { return a *= s; }
    friend constexpr Vec2 operator*(double s, Vec2 a) { return a *= s; }
    friend constexpr Vec2 operator/(Vec2 a, double s) { return a /= s; }
    friend constexpr Vec2 operator-(const Vec2& a) { return {-a.x, -a.y}; }

    friend constexpr bool operator==(const Vec2& a, const Vec2& b) {
        return a.x == b.x && a.y == b.y;
    }
    friend constexpr bool operator!=(const Vec2& a, const Vec2& b) {
        return !(a == b);
    }

    /// Squared Euclidean norm.
    [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
    /// Euclidean norm.
    [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
    /// Dot product.
    [[nodiscard]] constexpr double dot(const Vec2& o) const {
        return x * o.x + y * o.y;
    }
    /// 2-D cross product (z component).
    [[nodiscard]] constexpr double cross(const Vec2& o) const {
        return x * o.y - y * o.x;
    }
    /// Unit vector in the same direction; the zero vector maps to itself.
    [[nodiscard]] Vec2 normalized() const {
        const double n = norm();
        return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
    }
};

/// Euclidean distance between two points.
[[nodiscard]] inline double distance(const Vec2& a, const Vec2& b) {
    return (a - b).norm();
}

/// Squared Euclidean distance (cheaper; use for radius comparisons).
[[nodiscard]] constexpr double distance2(const Vec2& a, const Vec2& b) {
    return (a - b).norm2();
}

/// Linear interpolation: t=0 gives a, t=1 gives b.
[[nodiscard]] constexpr Vec2 lerp(const Vec2& a, const Vec2& b, double t) {
    return a + (b - a) * t;
}

std::ostream& operator<<(std::ostream& os, const Vec2& v);

}  // namespace uavdc::geom
