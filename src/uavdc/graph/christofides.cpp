#include "uavdc/graph/christofides.hpp"

#include <algorithm>

#include "uavdc/graph/euler.hpp"
#include "uavdc/graph/local_search.hpp"
#include "uavdc/graph/matching.hpp"
#include "uavdc/graph/mst.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::graph {

std::vector<std::size_t> christofides_tour(const DenseGraph& g,
                                           std::size_t start,
                                           const ChristofidesConfig& cfg) {
    const std::size_t n = g.size();
    UAVDC_REQUIRE(start < n || n == 0)
        << "christofides_tour: bad start node " << start;
    if (n == 0) return {};
    if (n == 1) return {0};
    if (n == 2) return {start, 1 - start};

    // 1. MST.
    std::vector<Edge> tree = mst_prim(g);

    // 2. Min-weight perfect matching on odd-degree nodes.
    const std::vector<int> deg = degrees(n, tree);
    std::vector<std::size_t> odd;
    for (std::size_t v = 0; v < n; ++v) {
        if (deg[v] % 2 != 0) odd.push_back(v);
    }
    const Matching match =
        min_weight_matching(g, odd, cfg.exact_matching_limit);

    // 3. Union multigraph: MST edges + matching edges.
    std::vector<Edge> multi = tree;
    multi.reserve(tree.size() + match.size());
    for (const auto& [u, v] : match) {
        multi.push_back({u, v, g.weight(u, v)});
    }

    // 4. Eulerian circuit, 5. shortcut.
    const std::vector<std::size_t> walk = eulerian_circuit(n, multi, start);
    std::vector<std::size_t> tour = shortcut_walk(walk);

    // 6. Optional local-search polish.
    if (cfg.improve_two_opt) two_opt(g, tour);
    if (cfg.improve_or_opt) or_opt(g, tour);
    return tour;
}

std::vector<std::size_t> christofides_subtour(
    const DenseGraph& g, const std::vector<std::size_t>& nodes,
    const ChristofidesConfig& cfg) {
    if (nodes.empty()) return {};
    DenseGraph sub(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (std::size_t j = i + 1; j < nodes.size(); ++j) {
            sub.set_weight(i, j, g.weight(nodes[i], nodes[j]));
        }
    }
    const std::vector<std::size_t> order = christofides_tour(sub, 0, cfg);
    std::vector<std::size_t> out;
    out.reserve(order.size());
    for (std::size_t i : order) out.push_back(nodes[i]);
    return out;
}

double euclidean_tour_length(std::span<const geom::Vec2> pts,
                             std::span<const std::size_t> order) {
    if (order.size() < 2) return 0.0;
    double len = 0.0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        len += geom::distance(pts[order[i]], pts[order[i + 1]]);
    }
    len += geom::distance(pts[order.back()], pts[order.front()]);
    return len;
}

}  // namespace uavdc::graph
