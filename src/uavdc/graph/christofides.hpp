#pragma once

#include <cstddef>
#include <vector>

#include "uavdc/graph/dense_graph.hpp"

namespace uavdc::graph {

/// Options for the Christofides-style TSP heuristic.
struct ChristofidesConfig {
    /// Odd-degree sets up to this size use exact bitmask-DP matching;
    /// above it a greedy matching with 2-swap improvement is used
    /// (substitution #2 in DESIGN.md — exact blossom is out of scope).
    std::size_t exact_matching_limit = 18;
    /// Run 2-opt improvement on the shortcut tour.
    bool improve_two_opt = true;
    /// Run Or-opt (segment relocation, lengths 1..3) after 2-opt.
    bool improve_or_opt = true;
};

/// Christofides-style tour on a metric dense graph: MST + min-weight
/// matching of odd-degree nodes + Eulerian circuit + shortcut, optionally
/// polished with 2-opt / Or-opt. Returns the closed tour as a node order
/// starting at node `start` (the closing edge back to start is implicit).
///
/// With exact matching this is the classic 1.5-approximation; with the
/// greedy fallback it is a high-quality heuristic (paper's Alg. 2/3 and
/// the benchmark planner only use it as a tour-construction subroutine).
[[nodiscard]] std::vector<std::size_t> christofides_tour(
    const DenseGraph& g, std::size_t start = 0,
    const ChristofidesConfig& cfg = {});

/// Tour over a subset of nodes of g (ids into g); returned order contains
/// exactly the given nodes, starting at nodes.front().
[[nodiscard]] std::vector<std::size_t> christofides_subtour(
    const DenseGraph& g, const std::vector<std::size_t>& nodes,
    const ChristofidesConfig& cfg = {});

/// Length of the closed tour that visits `pts` in the given order.
[[nodiscard]] double euclidean_tour_length(
    std::span<const geom::Vec2> pts, std::span<const std::size_t> order);

}  // namespace uavdc::graph
