#include "uavdc/graph/dense_graph.hpp"

#include <algorithm>

namespace uavdc::graph {

DenseGraph DenseGraph::euclidean(std::span<const geom::Vec2> pts) {
    DenseGraph g(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        for (std::size_t j = i + 1; j < pts.size(); ++j) {
            g.set_weight(i, j, geom::distance(pts[i], pts[j]));
        }
    }
    return g;
}

DenseGraph DenseGraph::from_weights(
    std::size_t n, const std::function<double(std::size_t, std::size_t)>& w) {
    DenseGraph g(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            g.set_weight(i, j, w(i, j));
        }
    }
    return g;
}

double DenseGraph::max_triangle_violation() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = 0; j < n_; ++j) {
            if (j == i) continue;
            for (std::size_t k = 0; k < n_; ++k) {
                if (k == i || k == j) continue;
                worst = std::max(worst,
                                 weight(i, k) - weight(i, j) - weight(j, k));
            }
        }
    }
    return worst;
}

double DenseGraph::tour_length(std::span<const std::size_t> order) const {
    if (order.size() < 2) return 0.0;
    double len = 0.0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        len += weight(order[i], order[i + 1]);
    }
    len += weight(order.back(), order.front());
    return len;
}

double DenseGraph::path_length(std::span<const std::size_t> order) const {
    double len = 0.0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        len += weight(order[i], order[i + 1]);
    }
    return len;
}

}  // namespace uavdc::graph
