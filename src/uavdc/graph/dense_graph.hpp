#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "uavdc/geom/vec2.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::graph {

/// Symmetric dense edge-weight matrix over n nodes. This is the
/// representation for both the TSP subproblems (Christofides in Alg. 2/3 and
/// the benchmark planner) and the auxiliary orienteering graph G_s of Alg. 1
/// (Sec. IV, Eq. 9).
class DenseGraph {
  public:
    DenseGraph() = default;

    /// n-node graph with all weights zero.
    explicit DenseGraph(std::size_t n) : n_(n), w_(n * n, 0.0) {}

    /// Complete Euclidean graph over the given points.
    [[nodiscard]] static DenseGraph euclidean(std::span<const geom::Vec2> pts);

    /// Complete graph with weights from an arbitrary symmetric functor
    /// w(i, j); the diagonal is forced to zero.
    [[nodiscard]] static DenseGraph from_weights(
        std::size_t n, const std::function<double(std::size_t, std::size_t)>& w);

    [[nodiscard]] std::size_t size() const { return n_; }

    [[nodiscard]] double weight(std::size_t i, std::size_t j) const {
        UAVDC_DCHECK(i < n_ && j < n_);
        return w_[i * n_ + j];
    }

    /// Set w(i,j) = w(j,i) = v.
    void set_weight(std::size_t i, std::size_t j, double v) {
        UAVDC_DCHECK(i < n_ && j < n_);
        w_[i * n_ + j] = v;
        w_[j * n_ + i] = v;
    }

    /// Row view (read-only) for cache-friendly scans.
    [[nodiscard]] std::span<const double> row(std::size_t i) const {
        UAVDC_DCHECK(i < n_);
        return {w_.data() + i * n_, n_};
    }

    /// Max over all triples of w(i,k) - w(i,j) - w(j,k); <= eps means the
    /// graph is metric (triangle inequality). O(n^3) — tests only.
    [[nodiscard]] double max_triangle_violation() const;

    /// Total weight of a closed tour visiting `order` (wraps around).
    [[nodiscard]] double tour_length(std::span<const std::size_t> order) const;

    /// Total weight of an open path visiting `order`.
    [[nodiscard]] double path_length(std::span<const std::size_t> order) const;

  private:
    std::size_t n_{0};
    std::vector<double> w_;
};

}  // namespace uavdc::graph
