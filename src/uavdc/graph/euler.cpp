#include "uavdc/graph/euler.hpp"

#include <algorithm>

#include "uavdc/util/check.hpp"

namespace uavdc::graph {

std::vector<std::size_t> eulerian_circuit(std::size_t n,
                                          const std::vector<Edge>& edges,
                                          std::size_t start) {
    UAVDC_REQUIRE(start < n) << "eulerian_circuit: bad start node "
                             << start;
    if (edges.empty()) return {start};

    // Adjacency as (neighbour, edge id) with per-edge used flags.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n);
    for (std::size_t e = 0; e < edges.size(); ++e) {
        adj[edges[e].u].emplace_back(edges[e].v, e);
        adj[edges[e].v].emplace_back(edges[e].u, e);
    }
    for (std::size_t v = 0; v < n; ++v) {
        UAVDC_REQUIRE(adj[v].size() % 2 == 0)
            << "eulerian_circuit: node " << v << " has odd degree";
    }
    UAVDC_REQUIRE(!adj[start].empty())
        << "eulerian_circuit: start node has no incident edge";

    std::vector<bool> used(edges.size(), false);
    std::vector<std::size_t> cursor(n, 0);
    std::vector<std::size_t> stack{start};
    std::vector<std::size_t> circuit;
    circuit.reserve(edges.size() + 1);
    while (!stack.empty()) {
        const std::size_t v = stack.back();
        auto& cur = cursor[v];
        while (cur < adj[v].size() && used[adj[v][cur].second]) ++cur;
        if (cur == adj[v].size()) {
            circuit.push_back(v);
            stack.pop_back();
        } else {
            const auto [to, eid] = adj[v][cur];
            used[eid] = true;
            stack.push_back(to);
        }
    }
    UAVDC_REQUIRE(circuit.size() == edges.size() + 1)
        << "eulerian_circuit: graph not connected";
    std::reverse(circuit.begin(), circuit.end());
    // Drop the final repeat of `start` — the closing edge is implicit.
    circuit.pop_back();
    return circuit;
}

std::vector<std::size_t> shortcut_walk(const std::vector<std::size_t>& walk) {
    std::vector<std::size_t> tour;
    if (walk.empty()) return tour;
    const std::size_t max_node = *std::max_element(walk.begin(), walk.end());
    std::vector<bool> seen(max_node + 1, false);
    tour.reserve(walk.size());
    for (std::size_t v : walk) {
        if (!seen[v]) {
            seen[v] = true;
            tour.push_back(v);
        }
    }
    return tour;
}

}  // namespace uavdc::graph
