#pragma once

#include <cstddef>
#include <vector>

#include "uavdc/graph/mst.hpp"

namespace uavdc::graph {

/// Hierholzer's algorithm: Eulerian circuit of a connected multigraph in
/// which every node has even degree (the MST + matching multigraph of
/// Christofides). Returns the node sequence of the circuit starting and
/// ending at `start`; the first node is `start`, the closing edge back to it
/// is implicit. Throws std::invalid_argument if a node has odd degree or the
/// edges incident to `start` do not reach every edge (disconnected).
[[nodiscard]] std::vector<std::size_t> eulerian_circuit(
    std::size_t n, const std::vector<Edge>& edges, std::size_t start);

/// Shortcut a closed walk to a simple closed tour (Christofides step 5):
/// keep the first occurrence of every node, preserving order.
[[nodiscard]] std::vector<std::size_t> shortcut_walk(
    const std::vector<std::size_t>& walk);

}  // namespace uavdc::graph
