#include "uavdc/graph/held_karp.hpp"

#include <limits>

#include "uavdc/util/check.hpp"

namespace uavdc::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<std::size_t> held_karp_tour(const DenseGraph& g,
                                        std::size_t start) {
    const std::size_t n = g.size();
    if (n == 0) return {};
    UAVDC_REQUIRE(start < n) << "held_karp_tour: bad start node " << start;
    UAVDC_REQUIRE(n <= 22)
        << "held_karp_tour: instance too large for bitmask DP (n=" << n
        << ")";
    if (n == 1) return {start};

    // Relabel so the start node is index 0; DP over the remaining n-1.
    std::vector<std::size_t> label;
    label.reserve(n);
    label.push_back(start);
    for (std::size_t v = 0; v < n; ++v) {
        if (v != start) label.push_back(v);
    }
    const std::size_t m = n - 1;
    const std::size_t nmask = std::size_t{1} << m;

    // dp[mask][j] = min cost path start -> ... -> label[j+1] visiting
    // exactly the non-start nodes in mask (bit j <=> label[j+1]).
    std::vector<std::vector<double>> dp(nmask, std::vector<double>(m, kInf));
    std::vector<std::vector<int>> parent(nmask, std::vector<int>(m, -1));
    for (std::size_t j = 0; j < m; ++j) {
        dp[std::size_t{1} << j][j] = g.weight(label[0], label[j + 1]);
    }
    for (std::size_t mask = 1; mask < nmask; ++mask) {
        for (std::size_t j = 0; j < m; ++j) {
            if (!(mask & (std::size_t{1} << j))) continue;
            const double base = dp[mask][j];
            if (base == kInf) continue;
            for (std::size_t k = 0; k < m; ++k) {
                if (mask & (std::size_t{1} << k)) continue;
                const std::size_t nm = mask | (std::size_t{1} << k);
                const double cand =
                    base + g.weight(label[j + 1], label[k + 1]);
                if (cand < dp[nm][k]) {
                    dp[nm][k] = cand;
                    parent[nm][k] = static_cast<int>(j);
                }
            }
        }
    }
    const std::size_t full = nmask - 1;
    double best = kInf;
    std::size_t best_end = 0;
    for (std::size_t j = 0; j < m; ++j) {
        const double cand = dp[full][j] + g.weight(label[j + 1], label[0]);
        if (cand < best) {
            best = cand;
            best_end = j;
        }
    }
    // Reconstruct.
    std::vector<std::size_t> rev;
    std::size_t mask = full;
    std::size_t j = best_end;
    while (true) {
        rev.push_back(label[j + 1]);
        const int p = parent[mask][j];
        mask ^= std::size_t{1} << j;
        if (p < 0) break;
        j = static_cast<std::size_t>(p);
    }
    std::vector<std::size_t> tour{start};
    tour.insert(tour.end(), rev.rbegin(), rev.rend());
    return tour;
}

double held_karp_length(const DenseGraph& g, std::size_t start) {
    return g.tour_length(held_karp_tour(g, start));
}

}  // namespace uavdc::graph
