#pragma once

#include <cstddef>
#include <vector>

#include "uavdc/graph/dense_graph.hpp"

namespace uavdc::graph {

/// Exact TSP by Held-Karp bitmask dynamic programming:
/// O(2^n * n^2) time, O(2^n * n) memory — intended for n <= ~20.
/// Returns the optimal closed tour starting at `start`; throws
/// std::invalid_argument for n > 22.
///
/// Used as the ground-truth oracle for the Christofides tests and for
/// optimality-gap reporting on tiny instances.
[[nodiscard]] std::vector<std::size_t> held_karp_tour(const DenseGraph& g,
                                                      std::size_t start = 0);

/// Optimal tour length only (same DP).
[[nodiscard]] double held_karp_length(const DenseGraph& g,
                                      std::size_t start = 0);

}  // namespace uavdc::graph
