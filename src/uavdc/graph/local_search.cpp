#include "uavdc/graph/local_search.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "uavdc/util/check.hpp"

namespace uavdc::graph {

namespace {
constexpr double kEps = 1e-10;
}

double two_opt(const DenseGraph& g, std::vector<std::size_t>& tour,
               int max_rounds) {
    const std::size_t n = tour.size();
    if (n < 4) return 0.0;
    double total_gain = 0.0;
    for (int round = 0; round < max_rounds; ++round) {
        bool improved = false;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            const std::size_t a = tour[i];
            std::size_t b = tour[i + 1];
            // j+1 wraps; skip adjacent edges.
            for (std::size_t j = i + 2; j < n; ++j) {
                if (i == 0 && j == n - 1) continue;
                const std::size_t c = tour[j];
                const std::size_t d = tour[(j + 1) % n];
                const double gain = g.weight(a, b) + g.weight(c, d) -
                                    g.weight(a, c) - g.weight(b, d);
                if (gain > kEps) {
                    std::reverse(tour.begin() +
                                     static_cast<std::ptrdiff_t>(i + 1),
                                 tour.begin() +
                                     static_cast<std::ptrdiff_t>(j + 1));
                    total_gain += gain;
                    improved = true;
                    b = tour[i + 1];  // the reversal changed edge (i, i+1)
                }
            }
        }
        if (!improved) break;
    }
    return total_gain;
}

double or_opt(const DenseGraph& g, std::vector<std::size_t>& tour,
              int max_rounds) {
    const std::size_t n = tour.size();
    if (n < 5) return 0.0;
    double total_gain = 0.0;
    for (int round = 0; round < max_rounds; ++round) {
        bool improved = false;
        for (std::size_t seg_len = 1; seg_len <= 3 && seg_len + 2 <= n;
             ++seg_len) {
            for (std::size_t i = 0; i < n; ++i) {
                // Segment tour[i .. i+seg_len-1] (cyclic), bounded by
                // prev = tour[i-1] and next = tour[i+seg_len].
                const std::size_t prev = tour[(i + n - 1) % n];
                const std::size_t s0 = tour[i];
                const std::size_t s1 = tour[(i + seg_len - 1) % n];
                const std::size_t next = tour[(i + seg_len) % n];
                if (prev == s1 || next == s0) continue;
                const double remove_gain = g.weight(prev, s0) +
                                           g.weight(s1, next) -
                                           g.weight(prev, next);
                if (remove_gain <= kEps) continue;
                // Try to re-insert between every other edge (u, v).
                for (std::size_t k = 0; k < n; ++k) {
                    // Edge (tour[k], tour[k+1]) must not touch the segment:
                    // forbidden k are i-1 (prev -> s0) through i+seg_len-1
                    // (s1 -> next), cyclically.
                    bool inside = false;
                    for (std::size_t t = 0; t <= seg_len; ++t) {
                        if ((i + n - 1 + t) % n == k) {
                            inside = true;
                            break;
                        }
                    }
                    if (inside) continue;
                    const std::size_t u = tour[k];
                    const std::size_t v = tour[(k + 1) % n];
                    const double insert_cost = g.weight(u, s0) +
                                               g.weight(s1, v) -
                                               g.weight(u, v);
                    if (remove_gain - insert_cost > kEps) {
                        // Rebuild the tour with the segment moved.
                        std::vector<std::size_t> seg;
                        seg.reserve(seg_len);
                        for (std::size_t t = 0; t < seg_len; ++t) {
                            seg.push_back(tour[(i + t) % n]);
                        }
                        std::vector<std::size_t> rest;
                        rest.reserve(n - seg_len);
                        for (std::size_t t = 0; t < n - seg_len; ++t) {
                            rest.push_back(tour[(i + seg_len + t) % n]);
                        }
                        // Find u in rest and insert seg after it.
                        std::vector<std::size_t> next_tour;
                        next_tour.reserve(n);
                        for (std::size_t node : rest) {
                            next_tour.push_back(node);
                            if (node == u) {
                                next_tour.insert(next_tour.end(), seg.begin(),
                                                 seg.end());
                            }
                        }
                        UAVDC_DCHECK(next_tour.size() == n);
                        // Keep the original starting node in front.
                        const auto it = std::find(next_tour.begin(),
                                                  next_tour.end(), tour[0]);
                        std::rotate(next_tour.begin(), it, next_tour.end());
                        tour = std::move(next_tour);
                        total_gain += remove_gain - insert_cost;
                        improved = true;
                        break;
                    }
                }
                if (improved) break;
            }
            if (improved) break;
        }
        if (!improved) break;
    }
    return total_gain;
}

std::vector<std::vector<std::size_t>> nearest_neighbor_lists(
    const DenseGraph& g, std::size_t k) {
    const std::size_t n = g.size();
    std::vector<std::vector<std::size_t>> nb(n);
    if (n <= 1 || k == 0) return nb;
    k = std::min(k, n - 1);
    std::vector<std::pair<double, std::size_t>> row;
    row.reserve(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        row.clear();
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i) row.emplace_back(g.weight(i, j), j);
        }
        std::partial_sort(row.begin(),
                          row.begin() + static_cast<std::ptrdiff_t>(k),
                          row.end());
        nb[i].reserve(k);
        for (std::size_t t = 0; t < k; ++t) nb[i].push_back(row[t].second);
    }
    return nb;
}

double two_opt_neighbors(const DenseGraph& g, std::vector<std::size_t>& tour,
                         const std::vector<std::vector<std::size_t>>& neighbors,
                         int max_rounds) {
    const std::size_t n = tour.size();
    if (n < 4) return 0.0;
    UAVDC_DCHECK(neighbors.size() == g.size());
    std::vector<std::size_t> pos(g.size(), 0);
    for (std::size_t i = 0; i < n; ++i) pos[tour[i]] = i;
    double total_gain = 0.0;
    for (int round = 0; round < max_rounds; ++round) {
        bool improved = false;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t a = tour[i];
            const double w_ab = g.weight(a, tour[(i + 1) % n]);
            for (const std::size_t c : neighbors[a]) {
                // Lists are sorted by weight: once the new edge (a, c) is no
                // shorter than the removed edge (a, b), no later neighbour
                // can yield a move of this form.
                if (g.weight(a, c) >= w_ab) break;
                std::size_t lo = i;
                std::size_t hi = pos[c];
                if (lo > hi) std::swap(lo, hi);
                // Edges (lo, lo+1) and (hi, hi+1) must be disjoint.
                if (hi - lo < 2 || (lo == 0 && hi == n - 1)) continue;
                const std::size_t ea = tour[lo];
                const std::size_t eb = tour[lo + 1];
                const std::size_t ec = tour[hi];
                const std::size_t ed = tour[(hi + 1) % n];
                const double gain = g.weight(ea, eb) + g.weight(ec, ed) -
                                    g.weight(ea, ec) - g.weight(eb, ed);
                if (gain > kEps) {
                    std::reverse(
                        tour.begin() + static_cast<std::ptrdiff_t>(lo + 1),
                        tour.begin() + static_cast<std::ptrdiff_t>(hi + 1));
                    for (std::size_t t = lo + 1; t <= hi; ++t) {
                        pos[tour[t]] = t;
                    }
                    total_gain += gain;
                    improved = true;
                    break;  // edge (i, i+1) changed; re-anchor at next i
                }
            }
        }
        if (!improved) break;
    }
    return total_gain;
}

double or_opt_neighbors(const DenseGraph& g, std::vector<std::size_t>& tour,
                        const std::vector<std::vector<std::size_t>>& neighbors,
                        int max_rounds) {
    const std::size_t n = tour.size();
    if (n < 5) return 0.0;
    UAVDC_DCHECK(neighbors.size() == g.size());
    std::vector<std::size_t> pos(g.size(), 0);
    for (std::size_t i = 0; i < n; ++i) pos[tour[i]] = i;
    double total_gain = 0.0;
    for (int round = 0; round < max_rounds; ++round) {
        bool improved = false;
        for (std::size_t seg_len = 1; seg_len <= 3 && seg_len + 2 <= n;
             ++seg_len) {
            for (std::size_t i = 0; i < n && !improved; ++i) {
                const std::size_t prev = tour[(i + n - 1) % n];
                const std::size_t s0 = tour[i];
                const std::size_t s1 = tour[(i + seg_len - 1) % n];
                const std::size_t next = tour[(i + seg_len) % n];
                if (prev == s1 || next == s0) continue;
                const double remove_gain = g.weight(prev, s0) +
                                           g.weight(s1, next) -
                                           g.weight(prev, next);
                if (remove_gain <= kEps) continue;
                // Only try re-insertion right after a near neighbour of the
                // segment head.
                for (const std::size_t u : neighbors[s0]) {
                    if (u == prev) continue;  // no-op position
                    const std::size_t ku = pos[u];
                    // u must lie outside the (cyclic) segment.
                    if ((ku + n - i) % n < seg_len) continue;
                    const std::size_t v = tour[(ku + 1) % n];
                    const double insert_cost = g.weight(u, s0) +
                                               g.weight(s1, v) -
                                               g.weight(u, v);
                    if (remove_gain - insert_cost <= kEps) continue;
                    // Rebuild the tour with the segment moved after u.
                    std::vector<std::size_t> seg;
                    seg.reserve(seg_len);
                    for (std::size_t t = 0; t < seg_len; ++t) {
                        seg.push_back(tour[(i + t) % n]);
                    }
                    std::vector<std::size_t> next_tour;
                    next_tour.reserve(n);
                    for (std::size_t t = 0; t < n - seg_len; ++t) {
                        const std::size_t node = tour[(i + seg_len + t) % n];
                        next_tour.push_back(node);
                        if (node == u) {
                            next_tour.insert(next_tour.end(), seg.begin(),
                                             seg.end());
                        }
                    }
                    UAVDC_DCHECK(next_tour.size() == n);
                    // Keep the original starting node in front.
                    const auto it = std::find(next_tour.begin(),
                                              next_tour.end(), tour[0]);
                    std::rotate(next_tour.begin(), it, next_tour.end());
                    tour = std::move(next_tour);
                    for (std::size_t t = 0; t < n; ++t) pos[tour[t]] = t;
                    total_gain += remove_gain - insert_cost;
                    improved = true;
                    break;
                }
            }
            if (improved) break;
        }
        if (!improved) break;
    }
    return total_gain;
}

Insertion cheapest_insertion(const DenseGraph& g,
                             const std::vector<std::size_t>& tour,
                             std::size_t node) {
    const std::size_t n = tour.size();
    if (n == 0) return {0, 0.0};
    if (n == 1) return {1, 2.0 * g.weight(tour[0], node)};
    Insertion best{0, std::numeric_limits<double>::infinity()};
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t u = tour[i];
        const std::size_t v = tour[(i + 1) % n];
        const double delta =
            g.weight(u, node) + g.weight(node, v) - g.weight(u, v);
        if (delta < best.delta) best = {(i + 1) % n == 0 ? n : i + 1, delta};
    }
    return best;
}

double removal_delta(const DenseGraph& g, const std::vector<std::size_t>& tour,
                     std::size_t pos) {
    const std::size_t n = tour.size();
    UAVDC_DCHECK(pos < n);
    if (n <= 1) return 0.0;
    if (n == 2) return -2.0 * g.weight(tour[0], tour[1]);
    const std::size_t prev = tour[(pos + n - 1) % n];
    const std::size_t cur = tour[pos];
    const std::size_t next = tour[(pos + 1) % n];
    return g.weight(prev, next) - g.weight(prev, cur) - g.weight(cur, next);
}

}  // namespace uavdc::graph
