#pragma once

#include <cstddef>
#include <vector>

#include "uavdc/graph/dense_graph.hpp"

namespace uavdc::graph {

/// 2-opt improvement of a closed tour (in place): repeatedly reverse the
/// segment between two edges when it shortens the tour, until a local
/// optimum or `max_rounds` full sweeps. Returns total improvement (>= 0).
double two_opt(const DenseGraph& g, std::vector<std::size_t>& tour,
               int max_rounds = 40);

/// Or-opt improvement of a closed tour (in place): relocate segments of
/// length 1..3 to better positions. Returns total improvement (>= 0).
double or_opt(const DenseGraph& g, std::vector<std::size_t>& tour,
              int max_rounds = 20);

/// k-nearest-neighbour lists for every node: nb[i] holds the k nodes closest
/// to i (excluding i), ordered by (weight, index). The candidate-move lists
/// for the *_neighbors local searches below.
[[nodiscard]] std::vector<std::vector<std::size_t>> nearest_neighbor_lists(
    const DenseGraph& g, std::size_t k);

/// Neighbor-list 2-opt: only moves that create an edge (a, c) with c among
/// a's k nearest neighbours and w(a, c) < w(a, b) are tried, turning each
/// sweep from O(n^2) into O(n * k). tour[0] is kept in front. Returns total
/// improvement (>= 0).
double two_opt_neighbors(const DenseGraph& g, std::vector<std::size_t>& tour,
                         const std::vector<std::vector<std::size_t>>& neighbors,
                         int max_rounds = 40);

/// Neighbor-list Or-opt: segments of length 1..3 are only re-inserted after
/// a node u among the segment head's k nearest neighbours (O(n * k) per
/// sweep). tour[0] is kept in front. Returns total improvement (>= 0).
double or_opt_neighbors(const DenseGraph& g, std::vector<std::size_t>& tour,
                        const std::vector<std::vector<std::size_t>>& neighbors,
                        int max_rounds = 20);

/// Cheapest-insertion position for `node` into closed tour `tour`:
/// returns {position, delta} where inserting before tour[position]
/// (cyclically) increases the tour length by delta. For an empty tour the
/// delta is 0; for a single-node tour it is 2 * w(tour[0], node).
struct Insertion {
    std::size_t position;
    double delta;
};
[[nodiscard]] Insertion cheapest_insertion(const DenseGraph& g,
                                           const std::vector<std::size_t>& tour,
                                           std::size_t node);

/// Length change from deleting tour[pos] from a closed tour (<= 0 in metric
/// graphs). For tours of size <= 1 the result is 0.
[[nodiscard]] double removal_delta(const DenseGraph& g,
                                   const std::vector<std::size_t>& tour,
                                   std::size_t pos);

}  // namespace uavdc::graph
