#include "uavdc/graph/matching.hpp"

#include <algorithm>
#include <limits>

#include "uavdc/util/check.hpp"

namespace uavdc::graph {

namespace {

void require_even(const std::vector<std::size_t>& nodes) {
    UAVDC_REQUIRE(nodes.size() % 2 == 0)
        << "matching: node set must have even cardinality, got "
        << nodes.size();
}

}  // namespace

Matching exact_min_matching(const DenseGraph& g,
                            std::vector<std::size_t> nodes) {
    require_even(nodes);
    const std::size_t k = nodes.size();
    Matching result;
    if (k == 0) return result;
    UAVDC_REQUIRE(k <= 22)
        << "exact_min_matching: too many nodes for bitmask DP (k=" << k
        << ")";
    const std::size_t full = (std::size_t{1} << k) - 1;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    // dp[mask] = min cost to perfectly match exactly the nodes in `mask`.
    // The lowest set bit of `mask` is always matched in the transition, so
    // each even-popcount mask has a unique decomposition to reconstruct.
    std::vector<double> dp(full + 1, kInf);
    std::vector<int> choice(full + 1, -1);  // partner of mask's lowest bit
    dp[0] = 0.0;
    for (std::size_t mask = 1; mask <= full; ++mask) {
        const unsigned bits =
            static_cast<unsigned>(__builtin_popcountll(mask));
        if (bits % 2 != 0) continue;
        std::size_t i = 0;
        while (!(mask & (std::size_t{1} << i))) ++i;
        for (std::size_t j = i + 1; j < k; ++j) {
            if (!(mask & (std::size_t{1} << j))) continue;
            const std::size_t pm =
                mask ^ (std::size_t{1} << i) ^ (std::size_t{1} << j);
            if (dp[pm] == kInf) continue;
            const double cand = dp[pm] + g.weight(nodes[i], nodes[j]);
            if (cand < dp[mask]) {
                dp[mask] = cand;
                choice[mask] = static_cast<int>(j);
            }
        }
    }
    // Reconstruct.
    std::size_t mask = full;
    while (mask) {
        std::size_t i = 0;
        while (!(mask & (std::size_t{1} << i))) ++i;
        const auto j = static_cast<std::size_t>(choice[mask]);
        result.emplace_back(nodes[i], nodes[j]);
        mask ^= (std::size_t{1} << i) | (std::size_t{1} << j);
    }
    return result;
}

Matching greedy_min_matching(const DenseGraph& g,
                             std::vector<std::size_t> nodes) {
    require_even(nodes);
    const std::size_t k = nodes.size();
    Matching result;
    if (k == 0) return result;

    // Sort all pairs by weight and greedily take compatible ones.
    struct Pair {
        std::size_t a;
        std::size_t b;
        double w;
    };
    std::vector<Pair> pairs;
    pairs.reserve(k * (k - 1) / 2);
    for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = a + 1; b < k; ++b) {
            pairs.push_back({a, b, g.weight(nodes[a], nodes[b])});
        }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& x, const Pair& y) { return x.w < y.w; });
    std::vector<bool> used(k, false);
    std::vector<std::size_t> partner(k, k);
    for (const auto& p : pairs) {
        if (used[p.a] || used[p.b]) continue;
        used[p.a] = used[p.b] = true;
        partner[p.a] = p.b;
        partner[p.b] = p.a;
    }

    // 2-swap improvement: for matched pairs (a,b), (c,d) try (a,c)+(b,d) and
    // (a,d)+(b,c). Repeat until no improving swap exists.
    std::vector<std::size_t> reps;  // one representative per pair (a < partner)
    for (std::size_t a = 0; a < k; ++a) {
        if (a < partner[a]) reps.push_back(a);
    }
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t x = 0; x < reps.size(); ++x) {
            for (std::size_t y = x + 1; y < reps.size(); ++y) {
                const std::size_t a = reps[x], b = partner[a];
                const std::size_t c = reps[y], d = partner[c];
                const double cur =
                    g.weight(nodes[a], nodes[b]) + g.weight(nodes[c], nodes[d]);
                const double alt1 =
                    g.weight(nodes[a], nodes[c]) + g.weight(nodes[b], nodes[d]);
                const double alt2 =
                    g.weight(nodes[a], nodes[d]) + g.weight(nodes[b], nodes[c]);
                if (alt1 < cur - 1e-12 && alt1 <= alt2) {
                    partner[a] = c;
                    partner[c] = a;
                    partner[b] = d;
                    partner[d] = b;
                    improved = true;
                } else if (alt2 < cur - 1e-12) {
                    partner[a] = d;
                    partner[d] = a;
                    partner[b] = c;
                    partner[c] = b;
                    improved = true;
                }
                if (improved) break;
            }
            if (improved) break;
        }
        if (improved) {
            reps.clear();
            for (std::size_t a = 0; a < k; ++a) {
                if (a < partner[a]) reps.push_back(a);
            }
        }
    }

    for (std::size_t a = 0; a < k; ++a) {
        if (a < partner[a]) result.emplace_back(nodes[a], nodes[partner[a]]);
    }
    return result;
}

Matching min_weight_matching(const DenseGraph& g,
                             std::vector<std::size_t> nodes,
                             std::size_t exact_limit) {
    require_even(nodes);
    if (nodes.size() <= std::min<std::size_t>(exact_limit, 22)) {
        return exact_min_matching(g, std::move(nodes));
    }
    return greedy_min_matching(g, std::move(nodes));
}

double matching_weight(const DenseGraph& g, const Matching& m) {
    double s = 0.0;
    for (const auto& [u, v] : m) s += g.weight(u, v);
    return s;
}

}  // namespace uavdc::graph
