#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "uavdc/graph/dense_graph.hpp"

namespace uavdc::graph {

/// A perfect matching over an even-sized node subset: list of (u, v) pairs.
using Matching = std::vector<std::pair<std::size_t, std::size_t>>;

/// Exact minimum-weight perfect matching by bitmask DP over `nodes`
/// (indices into g). O(2^k * k^2) — use only for |nodes| <= ~20.
/// `nodes.size()` must be even. Throws std::invalid_argument otherwise.
[[nodiscard]] Matching exact_min_matching(const DenseGraph& g,
                                          std::vector<std::size_t> nodes);

/// Greedy minimum matching (repeatedly pair the globally closest unmatched
/// nodes) followed by pairwise 2-swap improvement until a local optimum.
/// O(k^2 log k + k^3) worst case, fine for thousands of nodes.
/// `nodes.size()` must be even.
[[nodiscard]] Matching greedy_min_matching(const DenseGraph& g,
                                           std::vector<std::size_t> nodes);

/// Dispatch: exact DP when |nodes| <= exact_limit, greedy+swap otherwise.
[[nodiscard]] Matching min_weight_matching(const DenseGraph& g,
                                           std::vector<std::size_t> nodes,
                                           std::size_t exact_limit = 18);

/// Sum of matched-pair weights.
[[nodiscard]] double matching_weight(const DenseGraph& g, const Matching& m);

}  // namespace uavdc::graph
