#include "uavdc/graph/mst.hpp"

#include <limits>

namespace uavdc::graph {

std::vector<Edge> mst_prim(const DenseGraph& g) {
    const std::size_t n = g.size();
    std::vector<Edge> tree;
    if (n <= 1) return tree;
    tree.reserve(n - 1);

    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> best(n, kInf);
    std::vector<std::size_t> parent(n, 0);
    std::vector<bool> in_tree(n, false);
    best[0] = 0.0;

    for (std::size_t iter = 0; iter < n; ++iter) {
        std::size_t u = n;
        double bu = kInf;
        for (std::size_t v = 0; v < n; ++v) {
            if (!in_tree[v] && best[v] < bu) {
                bu = best[v];
                u = v;
            }
        }
        if (u == n) break;  // disconnected (cannot happen on finite weights)
        in_tree[u] = true;
        if (u != 0) {
            const std::size_t p = parent[u];
            tree.push_back({std::min(u, p), std::max(u, p), g.weight(u, p)});
        }
        const auto row = g.row(u);
        for (std::size_t v = 0; v < n; ++v) {
            if (!in_tree[v] && row[v] < best[v]) {
                best[v] = row[v];
                parent[v] = u;
            }
        }
    }
    return tree;
}

double total_weight(const std::vector<Edge>& edges) {
    double s = 0.0;
    for (const auto& e : edges) s += e.w;
    return s;
}

std::vector<int> degrees(std::size_t n, const std::vector<Edge>& edges) {
    std::vector<int> deg(n, 0);
    for (const auto& e : edges) {
        ++deg[e.u];
        ++deg[e.v];
    }
    return deg;
}

}  // namespace uavdc::graph
