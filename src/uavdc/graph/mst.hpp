#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "uavdc/graph/dense_graph.hpp"

namespace uavdc::graph {

/// Undirected edge (i < j by convention in MST output).
struct Edge {
    std::size_t u;
    std::size_t v;
    double w;
};

/// Prim's algorithm on a complete dense graph: O(n^2) time, O(n) space.
/// Returns the n-1 tree edges; an empty vector for n <= 1.
[[nodiscard]] std::vector<Edge> mst_prim(const DenseGraph& g);

/// Total weight of an edge list.
[[nodiscard]] double total_weight(const std::vector<Edge>& edges);

/// Degrees of each node implied by an edge list over n nodes.
[[nodiscard]] std::vector<int> degrees(std::size_t n,
                                       const std::vector<Edge>& edges);

}  // namespace uavdc::graph
