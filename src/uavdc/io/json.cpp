#include "uavdc/io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace uavdc::io {

namespace {

[[noreturn]] void type_error(const char* want) {
    throw std::runtime_error(std::string("Json: value is not ") + want);
}

/// Recursive-descent parser over a string view with offset tracking.
class Parser {
  public:
    explicit Parser(const std::string& text) : s_(text) {}

    Json parse_document() {
        Json v = parse_value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& why) const {
        throw std::runtime_error("Json parse error at byte " +
                                 std::to_string(pos_) + ": " + why);
    }

    void skip_ws() {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end of input");
        return s_[pos_];
    }

    char next() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c) {
        if (next() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    bool consume_literal(const char* lit) {
        std::size_t n = 0;
        while (lit[n]) ++n;
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{':
                return parse_object();
            case '[':
                return parse_array();
            case '"':
                return Json(parse_string());
            case 't':
                if (consume_literal("true")) return Json(true);
                fail("bad literal");
            case 'f':
                if (consume_literal("false")) return Json(false);
                fail("bad literal");
            case 'n':
                if (consume_literal("null")) return Json(nullptr);
                fail("bad literal");
            default:
                return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        Json::Object obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(obj));
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj[std::move(key)] = parse_value();
            skip_ws();
            const char c = next();
            if (c == '}') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}'");
            }
        }
        return Json(std::move(obj));
    }

    Json parse_array() {
        expect('[');
        Json::Array arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(arr));
        }
        for (;;) {
            arr.push_back(parse_value());
            skip_ws();
            const char c = next();
            if (c == ']') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']'");
            }
        }
        return Json(std::move(arr));
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"') break;
            if (c == '\\') {
                const char e = next();
                switch (e) {
                    case '"':
                        out += '"';
                        break;
                    case '\\':
                        out += '\\';
                        break;
                    case '/':
                        out += '/';
                        break;
                    case 'b':
                        out += '\b';
                        break;
                    case 'f':
                        out += '\f';
                        break;
                    case 'n':
                        out += '\n';
                        break;
                    case 'r':
                        out += '\r';
                        break;
                    case 't':
                        out += '\t';
                        break;
                    case 'u': {
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = next();
                            code <<= 4;
                            if (h >= '0' && h <= '9') {
                                code |= static_cast<unsigned>(h - '0');
                            } else if (h >= 'a' && h <= 'f') {
                                code |= static_cast<unsigned>(h - 'a' + 10);
                            } else if (h >= 'A' && h <= 'F') {
                                code |= static_cast<unsigned>(h - 'A' + 10);
                            } else {
                                fail("bad \\u escape");
                            }
                        }
                        // UTF-8 encode the BMP code point (surrogate pairs
                        // are passed through as two 3-byte sequences, which
                        // round-trips our own output).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xC0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (code >> 12));
                            out += static_cast<char>(0x80 |
                                                     ((code >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        }
                        break;
                    }
                    default:
                        fail("bad escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            } else {
                out += c;
            }
        }
        return out;
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        try {
            std::size_t used = 0;
            const double v = std::stod(s_.substr(start, pos_ - start), &used);
            if (used != pos_ - start) fail("bad number");
            return Json(v);
        } catch (const std::exception&) {
            fail("bad number");
        }
    }

    const std::string& s_;
    std::size_t pos_{0};
};

void escape_string(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\b':
                out += "\\b";
                break;
            case '\f':
                out += "\\f";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\r':
                out += "\\r";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void dump_number(std::string& out, double d) {
    if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

}  // namespace

void Json::dump_string(std::string& out, const std::string& s) {
    escape_string(out, s);
}

void Json::dump_double(std::string& out, double d) {
    dump_number(out, d);
}

bool Json::as_bool() const {
    if (!is_bool()) type_error("a bool");
    return std::get<bool>(value_);
}

double Json::as_number() const {
    if (!is_number()) type_error("a number");
    return std::get<double>(value_);
}

const std::string& Json::as_string() const {
    if (!is_string()) type_error("a string");
    return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
    if (!is_array()) type_error("an array");
    return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
    if (!is_object()) type_error("an object");
    return std::get<Object>(value_);
}

Json::Array& Json::as_array() {
    if (!is_array()) type_error("an array");
    return std::get<Array>(value_);
}

Json::Object& Json::as_object() {
    if (!is_object()) type_error("an object");
    return std::get<Object>(value_);
}

const Json& Json::at(const std::string& key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end()) {
        throw std::runtime_error("Json: missing key '" + key + "'");
    }
    return it->second;
}

bool Json::contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
}

double Json::number_or(const std::string& key, double fallback) const {
    return contains(key) ? at(key).as_number() : fallback;
}

std::string Json::string_or(const std::string& key,
                            std::string fallback) const {
    return contains(key) ? at(key).as_string() : std::move(fallback);
}

bool Json::bool_or(const std::string& key, bool fallback) const {
    return contains(key) ? at(key).as_bool() : fallback;
}

Json& Json::operator[](const std::string& key) {
    if (is_null()) value_ = Object{};
    return as_object()[key];
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
    const auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    if (is_null()) {
        out += "null";
    } else if (is_bool()) {
        out += as_bool() ? "true" : "false";
    } else if (is_number()) {
        dump_number(out, as_number());
    } else if (is_string()) {
        escape_string(out, as_string());
    } else if (is_array()) {
        const auto& arr = as_array();
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i) out += ',';
            newline(depth + 1);
            arr[i].dump_to(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
    } else {
        const auto& obj = as_object();
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto& [k, v] : obj) {
            if (!first) out += ',';
            first = false;
            newline(depth + 1);
            escape_string(out, k);
            out += indent > 0 ? ": " : ":";
            v.dump_to(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
    }
}

Json Json::parse(const std::string& text) {
    Parser p(text);
    return p.parse_document();
}

Json load_json_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return Json::parse(ss.str());
}

void save_json_file(const std::string& path, const Json& doc) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << doc.dump(2) << '\n';
    if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace uavdc::io
