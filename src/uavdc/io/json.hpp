#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace uavdc::io {

/// Minimal JSON document model + RFC 8259 parser/serializer. Self-contained
/// (no third-party dependency) and sufficient for the library's instance /
/// plan / result files. Numbers are doubles; object member order is not
/// preserved (std::map), which also makes serialization deterministic.
class Json {
  public:
    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    // Implicit by design: Json documents are assembled from literals
    // (doc["k"] = 3; arr.push_back("s");) exactly like in nlohmann/json.
    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}       // NOLINT(google-explicit-constructor): literal DSL
    Json(bool b) : value_(b) {}                     // NOLINT(google-explicit-constructor): literal DSL
    Json(double d) : value_(d) {}                   // NOLINT(google-explicit-constructor): literal DSL
    Json(int i) : value_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor): literal DSL
    Json(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor): literal DSL
    Json(std::size_t i) : value_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor): literal DSL
    Json(const char* s) : value_(std::string(s)) {}  // NOLINT(google-explicit-constructor): literal DSL
    Json(std::string s) : value_(std::move(s)) {}   // NOLINT(google-explicit-constructor): literal DSL
    Json(Array a) : value_(std::move(a)) {}         // NOLINT(google-explicit-constructor): literal DSL
    Json(Object o) : value_(std::move(o)) {}        // NOLINT(google-explicit-constructor): literal DSL

    [[nodiscard]] bool is_null() const {
        return std::holds_alternative<std::nullptr_t>(value_);
    }
    [[nodiscard]] bool is_bool() const {
        return std::holds_alternative<bool>(value_);
    }
    [[nodiscard]] bool is_number() const {
        return std::holds_alternative<double>(value_);
    }
    [[nodiscard]] bool is_string() const {
        return std::holds_alternative<std::string>(value_);
    }
    [[nodiscard]] bool is_array() const {
        return std::holds_alternative<Array>(value_);
    }
    [[nodiscard]] bool is_object() const {
        return std::holds_alternative<Object>(value_);
    }

    /// Typed accessors; throw std::runtime_error on type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const Array& as_array() const;
    [[nodiscard]] const Object& as_object() const;
    [[nodiscard]] Array& as_array();
    [[nodiscard]] Object& as_object();

    /// Object member access; throws if not an object or key missing.
    [[nodiscard]] const Json& at(const std::string& key) const;
    /// True if an object containing `key`.
    [[nodiscard]] bool contains(const std::string& key) const;
    /// Member with fallback for missing keys.
    [[nodiscard]] double number_or(const std::string& key,
                                   double fallback) const;
    [[nodiscard]] std::string string_or(const std::string& key,
                                        std::string fallback) const;
    [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

    /// Mutable object member (creates an object value if null).
    Json& operator[](const std::string& key);

    /// Serialize. `indent` > 0 pretty-prints with that many spaces.
    [[nodiscard]] std::string dump(int indent = 0) const;

    /// Append `s` to `out` exactly as dump() would render a string value
    /// (quoted, escaped). For hand-built serializers that must stay
    /// byte-identical with dump() output.
    static void dump_string(std::string& out, const std::string& s);
    /// Append `d` to `out` exactly as dump() would render a number value.
    static void dump_double(std::string& out, double d);

    /// Parse a complete JSON document; throws std::runtime_error with a
    /// byte offset on malformed input (trailing garbage included).
    [[nodiscard]] static Json parse(const std::string& text);

    friend bool operator==(const Json& a, const Json& b) {
        return a.value_ == b.value_;
    }

  private:
    void dump_to(std::string& out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
        value_;
};

/// Read a whole file into a Json document; throws on I/O or parse errors.
[[nodiscard]] Json load_json_file(const std::string& path);

/// Write a Json document to a file (pretty-printed); throws on I/O errors.
void save_json_file(const std::string& path, const Json& doc);

}  // namespace uavdc::io
