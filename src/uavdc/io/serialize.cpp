#include "uavdc/io/serialize.hpp"

namespace uavdc::io {

Json to_json(const model::Instance& inst) {
    Json doc;
    doc["name"] = inst.name;
    Json region;
    region["w"] = inst.region.width();
    region["h"] = inst.region.height();
    doc["region"] = std::move(region);
    Json depot;
    depot["x"] = inst.depot.x;
    depot["y"] = inst.depot.y;
    doc["depot"] = std::move(depot);
    Json uav;
    uav["energy_j"] = inst.uav.energy_j;
    uav["speed_mps"] = inst.uav.speed_mps;
    uav["hover_power_w"] = inst.uav.hover_power_w;
    uav["travel_rate"] = inst.uav.travel_rate;
    uav["travel_energy_model"] =
        inst.uav.travel_energy_model == model::TravelEnergyModel::kPerMeter
            ? "per-meter"
            : "per-second";
    uav["coverage_radius_m"] = inst.uav.coverage_radius_m;
    uav["bandwidth_mbps"] = inst.uav.bandwidth_mbps;
    doc["uav"] = std::move(uav);
    Json::Array devices;
    devices.reserve(inst.devices.size());
    for (const auto& d : inst.devices) {
        Json dev;
        dev["x"] = d.pos.x;
        dev["y"] = d.pos.y;
        dev["data_mb"] = d.data_mb;
        devices.push_back(std::move(dev));
    }
    doc["devices"] = Json(std::move(devices));
    return doc;
}

Json to_json(const model::FlightPlan& plan) {
    Json doc;
    Json::Array stops;
    stops.reserve(plan.stops.size());
    for (const auto& s : plan.stops) {
        Json stop;
        stop["x"] = s.pos.x;
        stop["y"] = s.pos.y;
        stop["dwell_s"] = s.dwell_s;
        stop["cell_id"] = s.cell_id;
        stops.push_back(std::move(stop));
    }
    doc["stops"] = Json(std::move(stops));
    return doc;
}

Json to_json(const core::Evaluation& ev) {
    Json doc;
    doc["collected_mb"] = ev.collected_mb;
    doc["optimistic_mb"] = ev.optimistic_mb;
    doc["energy_j"] = ev.energy_j;
    doc["energy_spent_j"] = ev.energy_spent_j;
    doc["tour_time_s"] = ev.tour_time_s;
    doc["executed_time_s"] = ev.executed_time_s;
    doc["energy_feasible"] = ev.energy_feasible;
    doc["truncated"] = ev.truncated;
    doc["devices_touched"] = ev.devices_touched;
    doc["devices_drained"] = ev.devices_drained;
    return doc;
}

model::Instance instance_from_json(const Json& doc) {
    model::Instance inst;
    inst.name = doc.string_or("name", "unnamed");
    const auto& region = doc.at("region");
    inst.region = geom::Aabb::of_size(region.at("w").as_number(),
                                      region.at("h").as_number());
    const auto& depot = doc.at("depot");
    inst.depot = {depot.at("x").as_number(), depot.at("y").as_number()};
    const auto& uav = doc.at("uav");
    inst.uav.energy_j = uav.at("energy_j").as_number();
    inst.uav.speed_mps = uav.number_or("speed_mps", 10.0);
    inst.uav.hover_power_w = uav.number_or("hover_power_w", 150.0);
    inst.uav.travel_rate =
        uav.number_or("travel_rate", uav.number_or("travel_power_w", 100.0));
    inst.uav.travel_energy_model =
        uav.string_or("travel_energy_model", "per-meter") == "per-second"
            ? model::TravelEnergyModel::kPerSecond
            : model::TravelEnergyModel::kPerMeter;
    inst.uav.coverage_radius_m = uav.number_or("coverage_radius_m", 50.0);
    inst.uav.bandwidth_mbps = uav.number_or("bandwidth_mbps", 150.0);
    int id = 0;
    for (const auto& dev : doc.at("devices").as_array()) {
        model::Device d;
        d.id = id++;
        d.pos = {dev.at("x").as_number(), dev.at("y").as_number()};
        d.data_mb = dev.at("data_mb").as_number();
        inst.devices.push_back(d);
    }
    inst.validate();
    return inst;
}

model::FlightPlan plan_from_json(const Json& doc) {
    model::FlightPlan plan;
    for (const auto& stop : doc.at("stops").as_array()) {
        model::HoverStop s;
        s.pos = {stop.at("x").as_number(), stop.at("y").as_number()};
        s.dwell_s = stop.at("dwell_s").as_number();
        s.cell_id = static_cast<int>(stop.number_or("cell_id", -1.0));
        plan.stops.push_back(s);
    }
    return plan;
}

void save_instance(const std::string& path, const model::Instance& inst) {
    save_json_file(path, to_json(inst));
}

model::Instance load_instance(const std::string& path) {
    return instance_from_json(load_json_file(path));
}

void save_plan(const std::string& path, const model::FlightPlan& plan) {
    save_json_file(path, to_json(plan));
}

model::FlightPlan load_plan(const std::string& path) {
    return plan_from_json(load_json_file(path));
}

}  // namespace uavdc::io
