#pragma once

#include <string>

#include "uavdc/core/evaluate.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::io {

/// JSON encodings for the library's value types, so workloads and planned
/// tours can be persisted, diffed, and replayed (e.g. plan offline, upload
/// to a ground-control station).
///
/// Instance schema:
///   { "name": str, "region": {"w": m, "h": m},
///     "depot": {"x": m, "y": m},
///     "uav": { "energy_j", "speed_mps", "hover_power_w",
///              "travel_rate", "travel_energy_model", "coverage_radius_m",
///              "bandwidth_mbps" },
///     "devices": [ {"x": m, "y": m, "data_mb": v}, ... ] }
///
/// Plan schema:
///   { "stops": [ {"x": m, "y": m, "dwell_s": t, "cell_id": i}, ... ] }

[[nodiscard]] Json to_json(const model::Instance& inst);
[[nodiscard]] Json to_json(const model::FlightPlan& plan);
[[nodiscard]] Json to_json(const core::Evaluation& ev);

[[nodiscard]] model::Instance instance_from_json(const Json& doc);
[[nodiscard]] model::FlightPlan plan_from_json(const Json& doc);

/// File convenience wrappers (pretty-printed JSON).
void save_instance(const std::string& path, const model::Instance& inst);
[[nodiscard]] model::Instance load_instance(const std::string& path);
void save_plan(const std::string& path, const model::FlightPlan& plan);
[[nodiscard]] model::FlightPlan load_plan(const std::string& path);

}  // namespace uavdc::io
