#include "uavdc/io/svg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace uavdc::io {

namespace {

std::string num(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

}  // namespace

std::string render_svg(const model::Instance& inst,
                       const model::FlightPlan* plan,
                       const SvgOptions& opts) {
    const double w = inst.region.width();
    const double h = inst.region.height();
    const double margin = 0.05 * std::max(w, h);
    const double scale = opts.canvas_px / (w + 2.0 * margin);
    const double canvas_h = (h + 2.0 * margin) * scale;

    // Map field coordinates to canvas (y flipped: SVG y grows downward).
    auto X = [&](double x) { return (x - inst.region.lo.x + margin) * scale; };
    auto Y = [&](double y) {
        return canvas_h - (y - inst.region.lo.y + margin) * scale;
    };

    std::ostringstream svg;
    svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
        << num(opts.canvas_px) << "\" height=\"" << num(canvas_h)
        << "\" viewBox=\"0 0 " << num(opts.canvas_px) << ' ' << num(canvas_h)
        << "\">\n";
    svg << "  <rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n";
    // Region outline.
    svg << "  <rect x=\"" << num(X(inst.region.lo.x)) << "\" y=\""
        << num(Y(inst.region.hi.y)) << "\" width=\"" << num(w * scale)
        << "\" height=\"" << num(h * scale)
        << "\" fill=\"#ffffff\" stroke=\"#888\" stroke-width=\"1\"/>\n";

    // Coverage disks + tour polyline.
    if (plan != nullptr && !plan->stops.empty()) {
        if (opts.draw_coverage) {
            for (const auto& s : plan->stops) {
                svg << "  <circle cx=\"" << num(X(s.pos.x)) << "\" cy=\""
                    << num(Y(s.pos.y)) << "\" r=\""
                    << num(inst.uav.coverage_radius_m * scale)
                    << "\" fill=\"#4a90d9\" fill-opacity=\"0.10\" "
                       "stroke=\"#4a90d9\" stroke-opacity=\"0.35\"/>\n";
            }
        }
        svg << "  <polyline fill=\"none\" stroke=\"#d94a4a\" "
               "stroke-width=\"1.5\" points=\"";
        svg << num(X(inst.depot.x)) << ',' << num(Y(inst.depot.y));
        for (const auto& s : plan->stops) {
            svg << ' ' << num(X(s.pos.x)) << ',' << num(Y(s.pos.y));
        }
        svg << ' ' << num(X(inst.depot.x)) << ',' << num(Y(inst.depot.y));
        svg << "\"/>\n";
        // Stop markers with visit order.
        int idx = 0;
        for (const auto& s : plan->stops) {
            svg << "  <circle cx=\"" << num(X(s.pos.x)) << "\" cy=\""
                << num(Y(s.pos.y))
                << "\" r=\"3.5\" fill=\"#d94a4a\"/>\n";
            svg << "  <text x=\"" << num(X(s.pos.x) + 5.0) << "\" y=\""
                << num(Y(s.pos.y) - 5.0)
                << "\" font-size=\"9\" fill=\"#a33\">" << idx++
                << "</text>\n";
        }
    }

    // Devices.
    double max_mb = 1.0;
    for (const auto& d : inst.devices) max_mb = std::max(max_mb, d.data_mb);
    for (const auto& d : inst.devices) {
        const double r =
            opts.scale_devices_by_data
                ? 2.0 + 4.0 * std::sqrt(d.data_mb / max_mb)
                : 3.0;
        svg << "  <circle cx=\"" << num(X(d.pos.x)) << "\" cy=\""
            << num(Y(d.pos.y)) << "\" r=\"" << num(r)
            << "\" fill=\"#3c763d\" fill-opacity=\"0.8\"/>\n";
        if (opts.draw_device_labels) {
            svg << "  <text x=\"" << num(X(d.pos.x) + 4.0) << "\" y=\""
                << num(Y(d.pos.y) + 3.0)
                << "\" font-size=\"8\" fill=\"#3c763d\">" << d.id
                << "</text>\n";
        }
    }

    // Depot.
    svg << "  <rect x=\"" << num(X(inst.depot.x) - 5.0) << "\" y=\""
        << num(Y(inst.depot.y) - 5.0)
        << "\" width=\"10\" height=\"10\" fill=\"#333\"/>\n";
    svg << "  <text x=\"" << num(X(inst.depot.x) + 7.0) << "\" y=\""
        << num(Y(inst.depot.y) + 4.0)
        << "\" font-size=\"11\" fill=\"#333\">depot</text>\n";
    svg << "</svg>\n";
    return svg.str();
}

void save_svg(const std::string& path, const model::Instance& inst,
              const model::FlightPlan* plan, const SvgOptions& opts) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << render_svg(inst, plan, opts);
    if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace uavdc::io
