#pragma once

#include <string>

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::io {

/// SVG rendering options for field/tour snapshots.
struct SvgOptions {
    double canvas_px = 800.0;     ///< width of the drawing (height scales)
    bool draw_coverage = true;    ///< R0 disk around each hovering stop
    bool draw_device_labels = false;  ///< device ids next to markers
    bool scale_devices_by_data = true;  ///< marker radius ~ sqrt(D_v)
};

/// Render an instance (and optionally a planned tour over it) as a
/// standalone SVG document: the region, devices (size ~ stored data),
/// depot, tour polyline in visiting order, and hovering coverage disks.
/// Useful for eyeballing planner behaviour and for docs/papers.
[[nodiscard]] std::string render_svg(const model::Instance& inst,
                                     const model::FlightPlan* plan = nullptr,
                                     const SvgOptions& opts = {});

/// Render straight to a file; throws on I/O failure.
void save_svg(const std::string& path, const model::Instance& inst,
              const model::FlightPlan* plan = nullptr,
              const SvgOptions& opts = {});

}  // namespace uavdc::io
