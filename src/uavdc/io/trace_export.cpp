#include "uavdc/io/trace_export.hpp"

#include "uavdc/util/csv.hpp"

namespace uavdc::io {

void save_trace_csv(const std::string& path,
                    const std::vector<sim::Event>& trace) {
    util::CsvWriter csv(path);
    csv.row({"time_s", "kind", "stop", "device", "value"});
    for (const auto& e : trace) {
        csv.row_of(e.time_s, sim::to_string(e.kind), e.stop, e.device,
                   e.value);
    }
    csv.flush();
}

Json to_json(const sim::SimReport& report, bool include_trace) {
    Json doc;
    doc["collected_mb"] = report.collected_mb;
    doc["energy_used_j"] = report.energy_used_j;
    doc["energy_saved_j"] = report.energy_saved_j;
    doc["duration_s"] = report.duration_s;
    doc["hover_s"] = report.hover_s;
    doc["travel_s"] = report.travel_s;
    doc["completed"] = report.completed;
    doc["battery_depleted"] = report.battery_depleted;
    doc["stops_visited"] = report.stops_visited;
    doc["devices_drained"] = report.devices_drained;
    if (include_trace) {
        Json::Array events;
        events.reserve(report.trace.size());
        for (const auto& e : report.trace) {
            Json ev;
            ev["t"] = e.time_s;
            ev["kind"] = sim::to_string(e.kind);
            ev["stop"] = e.stop;
            ev["device"] = e.device;
            ev["value"] = e.value;
            events.push_back(std::move(ev));
        }
        doc["trace"] = Json(std::move(events));
    }
    return doc;
}

void save_report(const std::string& path, const sim::SimReport& report,
                 bool include_trace) {
    save_json_file(path, to_json(report, include_trace));
}

}  // namespace uavdc::io
