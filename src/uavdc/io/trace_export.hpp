#pragma once

#include <string>

#include "uavdc/io/json.hpp"
#include "uavdc/sim/simulator.hpp"

namespace uavdc::io {

/// Write a simulator event trace as CSV (`time_s,kind,stop,device,value`).
/// Ground-control tooling and notebooks ingest this directly.
void save_trace_csv(const std::string& path,
                    const std::vector<sim::Event>& trace);

/// Full simulation report (summary + trace) as a JSON document.
[[nodiscard]] Json to_json(const sim::SimReport& report,
                           bool include_trace = true);

/// Convenience: report straight to a JSON file.
void save_report(const std::string& path, const sim::SimReport& report,
                 bool include_trace = true);

}  // namespace uavdc::io
