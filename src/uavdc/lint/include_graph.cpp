#include "uavdc/lint/include_graph.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace uavdc::lint {

namespace {

std::vector<std::string> split_path(const std::string& path) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : path) {
        if (c == '/' || c == '\\') {
            if (!cur.empty()) out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

bool known_module(const std::string& name) {
    for (const auto& rule : layering()) {
        if (rule.module == name) return true;
    }
    return false;
}

}  // namespace

std::vector<IncludeDirective> collect_includes(
    const std::vector<ScannedLine>& lines) {
    std::vector<IncludeDirective> out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        std::size_t pos = code.find_first_not_of(" \t");
        if (pos == std::string::npos || code[pos] != '#') continue;
        pos = code.find_first_not_of(" \t", pos + 1);
        if (pos == std::string::npos ||
            code.compare(pos, 7, "include") != 0) {
            continue;
        }
        // The lexer blanks string contents, so a quoted include shows up as
        // "" in the code view — recover the target from the raw directive
        // by scanning the original quoted span. Instead of re-reading the
        // raw file, the lexer leaves the quotes themselves in place; the
        // target must be recovered from the comment-free raw line, which
        // scan_lines preserves in `raw`.
        const std::string& raw = lines[i].raw;
        const std::size_t open = raw.find('"');
        if (open == std::string::npos) continue;  // <system> include
        const std::size_t close = raw.find('"', open + 1);
        if (close == std::string::npos) continue;
        out.push_back({static_cast<int>(i) + 1,
                       raw.substr(open + 1, close - open - 1)});
    }
    return out;
}

std::string module_of(const std::string& path) {
    const auto comps = split_path(path);
    for (std::size_t i = 0; i + 2 < comps.size(); ++i) {
        if (comps[i] == "src" && comps[i + 1] == "uavdc" &&
            known_module(comps[i + 2])) {
            return comps[i + 2];
        }
    }
    return "";
}

std::string module_of_include(const std::string& target) {
    const auto comps = split_path(target);
    if (comps.size() >= 2 && comps[0] == "uavdc" && known_module(comps[1])) {
        return comps[1];
    }
    return "";
}

const std::vector<LayerRule>& layering() {
    // Bottom-up declared dependency table. A module may include itself and
    // the listed modules, nothing else — in particular core/ may never
    // reach service/, io/, or workload/, and sim/ may never reach core/
    // (the shared EnergyView cost model lives in model/ precisely so both
    // can use it without either including the other). The table is a DAG
    // by construction; UL011 additionally checks the *actual* include
    // graph stays acyclic.
    static const std::vector<LayerRule> kTable = {
        {"util", {}},
        {"geom", {"util"}},
        {"lint", {"util"}},
        {"model", {"geom", "util"}},
        {"graph", {"geom", "util"}},
        {"sim", {"model", "geom", "util"}},
        {"orienteering", {"graph", "model", "geom", "util"}},
        {"workload", {"model", "geom", "util"}},
        {"core",
         {"sim", "orienteering", "graph", "model", "geom", "util"}},
        {"io", {"core", "sim", "orienteering", "graph", "model", "geom",
                "util"}},
        {"conformance", {"core", "sim", "workload", "orienteering", "graph",
                         "model", "geom", "util"}},
        {"service", {"io", "conformance", "core", "sim", "workload",
                     "orienteering", "graph", "model", "geom", "util"}},
        {"net", {"service", "io", "conformance", "core", "sim", "workload",
                 "orienteering", "graph", "model", "geom", "util"}},
    };
    return kTable;
}

bool edge_allowed(const std::string& from, const std::string& to) {
    if (from == to) return true;
    for (const auto& rule : layering()) {
        if (rule.module != from) continue;
        return std::find(rule.allowed.begin(), rule.allowed.end(), to) !=
               rule.allowed.end();
    }
    return false;
}

std::string to_dot(const ModuleGraph& graph) {
    // Display layers, bottom-up; only modules present in the graph are
    // emitted. rankdir=BT draws dependencies pointing down at their
    // foundations.
    static const std::vector<std::vector<std::string>> kLayers = {
        {"util"},
        {"geom", "lint"},
        {"model", "graph"},
        {"sim", "orienteering", "workload"},
        {"core"},
        {"io", "conformance"},
        {"service"},
        {"net"},
    };
    std::ostringstream out;
    out << "digraph uavdc_modules {\n";
    out << "  rankdir=BT;\n";
    out << "  node [shape=box, fontname=\"Helvetica\"];\n";
    const auto present = [&](const std::string& m) {
        return std::find(graph.modules.begin(), graph.modules.end(), m) !=
               graph.modules.end();
    };
    for (const auto& layer : kLayers) {
        std::vector<std::string> here;
        for (const auto& m : layer) {
            if (present(m)) here.push_back(m);
        }
        if (here.empty()) continue;
        out << "  { rank=same;";
        for (const auto& m : here) out << " \"" << m << "\";";
        out << " }\n";
    }
    for (const auto& e : graph.edges) {
        out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\""
            << e.count << "\"";
        if (!edge_allowed(e.from, e.to)) {
            out << ", color=red, penwidth=2.0, fontcolor=red";
        }
        out << "];\n";
    }
    out << "}\n";
    return out.str();
}

std::vector<std::vector<std::string>> find_cycles(const ModuleGraph& graph) {
    // Iterative Tarjan SCC over the (small) module graph; modules and edge
    // lists are sorted, so component discovery is deterministic.
    const auto& modules = graph.modules;
    const auto index_of = [&](const std::string& m) {
        return static_cast<int>(
            std::find(modules.begin(), modules.end(), m) - modules.begin());
    };
    const int n = static_cast<int>(modules.size());
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    for (const auto& e : graph.edges) {
        adj[static_cast<std::size_t>(index_of(e.from))].push_back(
            index_of(e.to));
    }
    for (auto& nbrs : adj) std::sort(nbrs.begin(), nbrs.end());

    std::vector<int> idx(static_cast<std::size_t>(n), -1);
    std::vector<int> low(static_cast<std::size_t>(n), 0);
    std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
    std::vector<int> stack;
    std::vector<std::vector<int>> sccs;
    int counter = 0;

    struct Frame {
        int v;
        std::size_t next_edge;
    };
    for (int root = 0; root < n; ++root) {
        if (idx[static_cast<std::size_t>(root)] != -1) continue;
        std::vector<Frame> frames{{root, 0}};
        idx[static_cast<std::size_t>(root)] =
            low[static_cast<std::size_t>(root)] = counter++;
        stack.push_back(root);
        on_stack[static_cast<std::size_t>(root)] = true;
        while (!frames.empty()) {
            Frame& f = frames.back();
            const auto v = static_cast<std::size_t>(f.v);
            if (f.next_edge < adj[v].size()) {
                const int w = adj[v][f.next_edge++];
                const auto wu = static_cast<std::size_t>(w);
                if (idx[wu] == -1) {
                    idx[wu] = low[wu] = counter++;
                    stack.push_back(w);
                    on_stack[wu] = true;
                    frames.push_back({w, 0});
                } else if (on_stack[wu]) {
                    low[v] = std::min(low[v], idx[wu]);
                }
            } else {
                if (low[v] == idx[v]) {
                    std::vector<int> scc;
                    int w = -1;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        on_stack[static_cast<std::size_t>(w)] = false;
                        scc.push_back(w);
                    } while (w != f.v);
                    if (scc.size() >= 2) sccs.push_back(scc);
                }
                const int done = f.v;
                frames.pop_back();
                if (!frames.empty()) {
                    const auto p =
                        static_cast<std::size_t>(frames.back().v);
                    low[p] = std::min(low[p],
                                      low[static_cast<std::size_t>(done)]);
                }
            }
        }
    }

    // Turn each SCC into one concrete closed path: DFS from its smallest
    // module, restricted to the component, until the start reappears.
    std::vector<std::vector<std::string>> cycles;
    for (auto& scc : sccs) {
        std::sort(scc.begin(), scc.end());
        const std::set<int> members(scc.begin(), scc.end());
        const int start = scc.front();
        std::vector<int> path{start};
        std::set<int> visited{start};
        bool closed = false;
        // Iterative DFS carrying the current path.
        std::vector<std::pair<int, std::size_t>> st{{start, 0}};
        while (!st.empty() && !closed) {
            auto& [v, next] = st.back();
            const auto& nbrs = adj[static_cast<std::size_t>(v)];
            bool advanced = false;
            while (next < nbrs.size()) {
                const int w = nbrs[next++];
                if (w == start && st.size() >= 2) {
                    closed = true;
                    break;
                }
                if (members.count(w) == 0 || visited.count(w) != 0) {
                    continue;
                }
                visited.insert(w);
                path.push_back(w);
                st.push_back({w, 0});
                advanced = true;
                break;
            }
            if (closed || advanced) continue;
            st.pop_back();
            path.pop_back();
        }
        if (!closed) path = {start};  // defensive; SCC guarantees a cycle
        std::vector<std::string> named;
        named.reserve(path.size() + 1);
        for (int v : path) {
            named.push_back(modules[static_cast<std::size_t>(v)]);
        }
        named.push_back(modules[static_cast<std::size_t>(start)]);
        cycles.push_back(std::move(named));
    }
    std::sort(cycles.begin(), cycles.end());
    return cycles;
}

AnalysisResult analyze_tree(const std::vector<std::string>& roots) {
    AnalysisResult result;
    const auto files = discover_files(roots);

    std::set<std::string> modules;
    std::map<std::pair<std::string, std::string>, ModuleEdge> edges;
    for (const auto& file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            result.findings.push_back({file, 0, "UL000", "unreadable-file",
                                       "cannot open file for linting"});
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string contents = buf.str();

        auto file_findings = lint_source(file, contents);
        result.findings.insert(result.findings.end(),
                               std::make_move_iterator(file_findings.begin()),
                               std::make_move_iterator(file_findings.end()));

        const std::string from = module_of(file);
        if (from.empty()) continue;
        modules.insert(from);
        for (const auto& inc : collect_includes(scan_lines(contents))) {
            const std::string to = module_of_include(inc.target);
            if (to.empty()) continue;
            modules.insert(to);
            if (to == from) continue;
            auto [it, inserted] =
                edges.try_emplace({from, to},
                                  ModuleEdge{from, to, file, inc.line, 0});
            ++it->second.count;
            (void)inserted;
        }
    }
    result.graph.modules.assign(modules.begin(), modules.end());
    for (auto& [key, edge] : edges) {
        result.graph.edges.push_back(std::move(edge));
    }

    for (const auto& cycle : find_cycles(result.graph)) {
        std::string pathstr;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            if (i != 0) pathstr += " -> ";
            pathstr += cycle[i];
        }
        std::string sites;
        const ModuleEdge* first_edge = nullptr;
        for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
            for (const auto& e : result.graph.edges) {
                if (e.from != cycle[i] || e.to != cycle[i + 1]) continue;
                sites += "; " + e.from + " -> " + e.to + " at " + e.file +
                         ":" + std::to_string(e.line);
                if (first_edge == nullptr) first_edge = &e;
                break;
            }
        }
        std::string message =
            "module include cycle: " + pathstr + sites +
            "; break it by moving the shared type into a module below "
            "both (the EnergyView move into model/ is the precedent)";
        // The cycle anchors at its first representative include site, so a
        // NOLINT(uavdc-include-cycle): reason there suppresses it — same
        // contract as every per-line rule, including reason rejection.
        if (first_edge != nullptr) {
            std::ifstream anchor(first_edge->file, std::ios::binary);
            std::ostringstream abuf;
            abuf << anchor.rdbuf();
            const auto lines = scan_lines(abuf.str());
            const auto at = static_cast<std::size_t>(first_edge->line - 1);
            if (at < lines.size()) {
                const int state = suppression_for(lines, at, "include-cycle");
                if (state == 1) continue;
                if (state == 2) {
                    message +=
                        " (NOLINT suppression must carry a ': reason')";
                }
            }
        }
        result.findings.push_back(
            {first_edge != nullptr ? first_edge->file : "<module-graph>",
             first_edge != nullptr ? first_edge->line : 0, "UL011",
             "include-cycle", std::move(message)});
    }
    return result;
}

}  // namespace uavdc::lint
