#pragma once

#include <string>
#include <vector>

#include "uavdc/lint/linter.hpp"

namespace uavdc::lint {

/// One `#include "..."` directive (quoted form only — system includes are
/// never layered). `line` is 1-based; `target` is the path between quotes.
struct IncludeDirective {
    int line{0};
    std::string target;
};

/// Extract the quoted include directives from scanned lines. Directives
/// blanked by the lexer (inside strings or comments) are never returned.
std::vector<IncludeDirective> collect_includes(
    const std::vector<ScannedLine>& lines);

/// Module a repo file belongs to: "core" for src/uavdc/core/..., "" for
/// anything outside the layered library (tools/, bench/, tests/, examples/
/// are deliberately unconstrained).
std::string module_of(const std::string& path);

/// Module an include target names: "geom" for "uavdc/geom/vec2.hpp", ""
/// for system or non-uavdc includes.
std::string module_of_include(const std::string& target);

/// One row of the declared layering table: `module` may include itself and
/// any module in `allowed`, nothing else. The table as a whole is the
/// architecture contract UL010 enforces (see DESIGN.md "Module layering").
struct LayerRule {
    std::string module;
    std::vector<std::string> allowed;
};

/// The declared layering table, in bottom-up order.
const std::vector<LayerRule>& layering();

/// True when a file in module `from` may include a header of module `to`.
/// Intra-module includes are always allowed; unknown modules are never.
bool edge_allowed(const std::string& from, const std::string& to);

/// One aggregated module->module dependency, with the first include site
/// (in sorted file order) kept as the representative example.
struct ModuleEdge {
    std::string from;
    std::string to;
    std::string file;  ///< first file contributing the edge
    int line{0};       ///< line of that first include
    int count{0};      ///< number of include sites forming the edge
};

/// The whole-tree module dependency graph (distinct-module edges only).
struct ModuleGraph {
    std::vector<std::string> modules;  ///< sorted module names seen
    std::vector<ModuleEdge> edges;     ///< sorted by (from, to)
};

/// Graphviz DOT export: one node per module ranked by layer, solid edges
/// for allowed dependencies, bold red edges for layering violations.
std::string to_dot(const ModuleGraph& graph);

/// Module-level include cycles: every strongly connected component with
/// two or more modules, returned as a closed path ("core", "sim", "core").
/// Paths are deterministic (lexicographically smallest entry first).
std::vector<std::vector<std::string>> find_cycles(const ModuleGraph& graph);

/// Whole-tree analysis: every per-file rule (UL001-UL010, UL012, UL013)
/// plus the graph-level passes — UL011 include-cycle detection and the
/// module graph itself (for --dot and the docs diagram).
struct AnalysisResult {
    std::vector<Finding> findings;
    ModuleGraph graph;
};

AnalysisResult analyze_tree(const std::vector<std::string>& roots);

}  // namespace uavdc::lint
