#include "uavdc/lint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "uavdc/lint/include_graph.hpp"

namespace uavdc::lint {

namespace {

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos..pos+name.size())` equals `name` as a whole
/// identifier token (no identifier characters on either side).
bool token_at(const std::string& text, std::size_t pos,
              const std::string& name) {
    if (text.compare(pos, name.size(), name) != 0) return false;
    if (pos > 0 && is_ident_char(text[pos - 1])) return false;
    const std::size_t end = pos + name.size();
    if (end < text.size() && is_ident_char(text[end])) return false;
    return true;
}

bool has_token(const std::string& text, const std::string& name) {
    for (std::size_t pos = text.find(name); pos != std::string::npos;
         pos = text.find(name, pos + 1)) {
        if (token_at(text, pos, name)) return true;
    }
    return false;
}

/// True when the line contains identifier `name` directly invoked as a
/// function call: `name` token followed by optional whitespace and '('.
bool has_call(const std::string& text, const std::string& name) {
    for (std::size_t pos = text.find(name); pos != std::string::npos;
         pos = text.find(name, pos + 1)) {
        if (!token_at(text, pos, name)) continue;
        std::size_t after = pos + name.size();
        while (after < text.size() &&
               std::isspace(static_cast<unsigned char>(text[after])) != 0) {
            ++after;
        }
        if (after < text.size() && text[after] == '(') return true;
    }
    return false;
}

std::vector<std::string> path_components(const std::string& path) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : path) {
        if (c == '/' || c == '\\') {
            if (!cur.empty()) out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

bool has_component(const std::string& path, const std::string& name) {
    const auto comps = path_components(path);
    return std::find(comps.begin(), comps.end(), name) != comps.end();
}

std::string basename_of(const std::string& path) {
    const auto comps = path_components(path);
    return comps.empty() ? path : comps.back();
}

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& path) {
    return ends_with(path, ".hpp") || ends_with(path, ".h");
}

/// Library code: anything under a src/ directory. std::cout and friends are
/// reserved for tools/bench/examples; the library reports through return
/// values and exceptions.
bool in_library(const std::string& path) { return has_component(path, "src"); }

/// Planner result paths: modules whose outputs are ordered artifacts (tours,
/// stop lists, comparisons) where unordered-container iteration order could
/// leak into results.
bool in_planner_paths(const std::string& path) {
    return in_library(path) &&
           (has_component(path, "core") || has_component(path, "graph") ||
            has_component(path, "orienteering"));
}

bool is_contracts_header(const std::string& path) {
    return basename_of(path) == "check.hpp";
}

/// Parses a NOLINT(...) suppression for `slug` out of a comment. Returns
/// 0 = no suppression, 1 = suppression with a reason (honour it),
/// 2 = suppression without a reason (reject it, but say why).
int suppression_state(const std::string& comment, const std::string& slug,
                      const std::string& marker) {
    std::size_t pos = comment.find(marker);
    if (pos == std::string::npos) return 0;
    pos += marker.size();
    if (pos >= comment.size() || comment[pos] != '(') return 0;
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) return 0;
    const std::string list = comment.substr(pos + 1, close - pos - 1);
    const bool names_rule = list.find("uavdc-" + slug) != std::string::npos ||
                            list.find(slug) != std::string::npos ||
                            list.find("uavdc-*") != std::string::npos;
    if (!names_rule) return 0;
    std::size_t rest = close + 1;
    while (rest < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[rest])) != 0) {
        ++rest;
    }
    if (rest < comment.size() && comment[rest] == ':') {
        ++rest;
        while (rest < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[rest])) != 0) {
            ++rest;
        }
        if (rest < comment.size()) return 1;
    }
    return 2;
}

}  // namespace

int suppression_for(const std::vector<ScannedLine>& lines,
                    std::size_t line_idx, const std::string& slug) {
    int state = suppression_state(lines[line_idx].comment, slug, "NOLINT");
    // NOLINTNEXTLINE in the comment block directly above; the scan crosses
    // comment-only lines so the reason may wrap.
    for (std::size_t up = line_idx; state == 0 && up > 0; --up) {
        const ScannedLine& above = lines[up - 1];
        std::string code = above.code;
        code.erase(0, code.find_first_not_of(" \t"));
        if (!code.empty()) break;  // not a pure comment line
        state = suppression_state(above.comment, slug, "NOLINTNEXTLINE");
        if (above.comment.empty()) break;
    }
    // Block suppression: the nearest NOLINTBEGIN(...) above wins unless a
    // NOLINTEND(...) naming the same rule closes it first.
    for (std::size_t up = line_idx; state == 0 && up > 0; --up) {
        const std::string& comment = lines[up - 1].comment;
        if (suppression_state(comment, slug, "NOLINTEND") != 0) break;
        state = suppression_state(comment, slug, "NOLINTBEGIN");
    }
    return state;
}

namespace {

struct RuleContext {
    const std::string& path;
    const std::vector<ScannedLine>& lines;
    std::vector<Finding>& findings;

    /// Reports a violation of (id, slug) at `line_idx` (0-based) unless a
    /// suppression names the rule and gives a reason (see suppression_for).
    void report(std::size_t line_idx, const std::string& id,
                const std::string& slug, const std::string& message) {
        const int state = suppression_for(lines, line_idx, slug);
        if (state == 1) return;
        std::string full = message;
        if (state == 2) {
            full += " (NOLINT suppression must carry a ': reason')";
        }
        findings.push_back(
            {path, static_cast<int>(line_idx) + 1, id, slug, full});
    }
};

const std::string kAssertToken = "assert";
const std::string kAbortToken = "abort";

void rule_no_raw_assert(RuleContext& ctx) {
    if (is_contracts_header(ctx.path)) return;
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        if (has_call(ctx.lines[i].code, kAssertToken)) {
            ctx.report(i, "UL001", "no-raw-assert",
                       "raw " + kAssertToken +
                           "() is compiled out in release builds; use "
                           "UAVDC_CHECK / UAVDC_DCHECK from "
                           "uavdc/util/check.hpp");
        }
    }
}

void rule_no_abort(RuleContext& ctx) {
    if (is_contracts_header(ctx.path)) return;
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        if (has_call(ctx.lines[i].code, kAbortToken)) {
            ctx.report(i, "UL002", "no-abort",
                       kAbortToken +
                           "() skips destructors and cannot be tested; raise "
                           "a ContractViolation via UAVDC_CHECK instead");
        }
    }
}

void rule_no_nondeterminism(RuleContext& ctx) {
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& code = ctx.lines[i].code;
        std::string hit;
        if (has_token(code, "random_device")) {
            hit = "std::random_device";
        } else if (has_call(code, "rand") || has_call(code, "srand")) {
            hit = "rand()/srand()";
        } else if (has_call(code, "time")) {
            hit = "time()";
        }
        if (!hit.empty()) {
            ctx.report(i, "UL003", "no-nondeterminism",
                       hit +
                           " breaks seeded reproducibility; take an explicit "
                           "util::Rng or seed instead");
        }
    }
}

/// Same-line heuristic: names of variables declared as unordered_map /
/// unordered_set in this file.
std::vector<std::string> unordered_decl_names(
    const std::vector<ScannedLine>& lines) {
    std::vector<std::string> names;
    for (const auto& line : lines) {
        const std::string& code = line.code;
        for (const char* kind : {"unordered_map", "unordered_set"}) {
            std::size_t pos = code.find(kind);
            if (pos == std::string::npos) continue;
            std::size_t open = code.find('<', pos);
            if (open == std::string::npos) continue;
            int depth = 0;
            std::size_t close = open;
            for (; close < code.size(); ++close) {
                if (code[close] == '<') ++depth;
                if (code[close] == '>' && --depth == 0) break;
            }
            if (close >= code.size()) continue;
            std::size_t p = close + 1;
            while (p < code.size() &&
                   (std::isspace(static_cast<unsigned char>(code[p])) != 0 ||
                    code[p] == '&')) {
                ++p;
            }
            std::string name;
            while (p < code.size() && is_ident_char(code[p])) name += code[p++];
            if (!name.empty()) names.push_back(name);
        }
    }
    return names;
}

/// Extracts the container name of a same-line range-for, or "" if the line
/// holds none. For `for (auto& [k, v] : buckets)` this is "buckets"; member
/// accesses yield the final identifier.
std::string range_for_container(const std::string& code) {
    std::size_t pos = code.find("for");
    if (pos == std::string::npos || !token_at(code, pos, "for")) return "";
    std::size_t open = code.find('(', pos);
    if (open == std::string::npos) return "";
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')' && --depth == 0) {
            close = i;
            break;
        }
        if (code[i] == ':' && depth == 1) {
            if ((i > 0 && code[i - 1] == ':') ||
                (i + 1 < code.size() && code[i + 1] == ':')) {
                continue;  // scope resolution, not a range-for separator
            }
            colon = i;
        }
    }
    if (colon == std::string::npos || close == std::string::npos) return "";
    std::string name;
    for (std::size_t i = colon + 1; i < close; ++i) {
        if (is_ident_char(code[i])) {
            name += code[i];
        } else if (!name.empty() && code[i] != ' ') {
            name.clear();  // keep only the last identifier (after . or ->)
        }
    }
    return name;
}

bool sorted_nearby(const std::vector<ScannedLine>& lines, std::size_t from) {
    const std::size_t until = std::min(lines.size(), from + 40);
    for (std::size_t i = from; i < until; ++i) {
        const std::string& code = lines[i].code;
        if (has_call(code, "sort") || has_call(code, "stable_sort") ||
            has_call(code, "is_sorted")) {
            return true;
        }
    }
    return false;
}

void rule_unordered_iteration(RuleContext& ctx) {
    if (!in_planner_paths(ctx.path)) return;
    const auto names = unordered_decl_names(ctx.lines);
    if (names.empty()) return;
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string container = range_for_container(ctx.lines[i].code);
        if (container.empty()) continue;
        if (std::find(names.begin(), names.end(), container) == names.end()) {
            continue;
        }
        if (sorted_nearby(ctx.lines, i)) continue;
        ctx.report(i, "UL004", "unordered-iteration",
                   "iterating '" + container +
                       "' (unordered container) in a planner result path: "
                       "iteration order is unspecified and can leak into "
                       "output; sort the results or add "
                       "NOLINT(uavdc-unordered-iteration): <why order cannot "
                       "matter>");
    }
}

void rule_pragma_once(RuleContext& ctx) {
    if (!is_header(ctx.path)) return;
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        std::string code = ctx.lines[i].code;
        code.erase(0, code.find_first_not_of(" \t"));
        if (code.empty()) continue;
        if (code.rfind("#pragma once", 0) != 0) {
            ctx.report(i, "UL005", "pragma-once",
                       "headers must open with #pragma once before any other "
                       "code");
        }
        return;
    }
    // A header with no code at all still needs the guard.
    ctx.report(0, "UL005", "pragma-once",
               "headers must open with #pragma once before any other code");
}

void rule_no_cout_in_library(RuleContext& ctx) {
    if (!in_library(ctx.path)) return;
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& code = ctx.lines[i].code;
        std::size_t pos = code.find("std::cout");
        if (pos != std::string::npos && token_at(code, pos + 5, "cout")) {
            ctx.report(i, "UL006", "no-cout-in-library",
                       "library code must not write to std::cout; return "
                       "data or use the io/ writers, printing belongs to "
                       "tools and benches");
        }
    }
}

/// Brace-depth loop tracking shared by UL007/UL009. Feed lines in order;
/// consume() returns true when the line is (heuristically) inside a loop —
/// a `for`/`while`/`do` header line, the two lines after an un-braced
/// header (covering brace-less bodies and wrapped headers), or any line of
/// a braced loop body.
class LoopScopes {
  public:
    bool consume(const std::string& code) {
        const bool loop_header = has_token(code, "for") ||
                                 has_token(code, "while") ||
                                 has_token(code, "do");
        const bool inside =
            loop_header || pending_ > 0 || !loop_depths_.empty();
        if (loop_header) pending_ = 2;
        for (const char c : code) {
            if (c == '{') {
                ++depth_;
                if (pending_ > 0) {
                    loop_depths_.push_back(depth_);
                    pending_ = 0;
                }
            } else if (c == '}') {
                while (!loop_depths_.empty() &&
                       loop_depths_.back() == depth_) {
                    loop_depths_.pop_back();
                }
                --depth_;
            }
        }
        if (!loop_header && pending_ > 0) --pending_;
        return inside;
    }

  private:
    int depth_ = 0;
    std::vector<int> loop_depths_;  // brace depths of open loop bodies
    int pending_ = 0;  // lines left of an un-braced loop header
};

/// UL007: building a DenseGraph::euclidean inside a loop in core/ planner
/// code is the O(n^2)-allocations-per-iteration pattern the incremental
/// scoring engine exists to avoid.
void rule_no_dense_rebuild_in_loop(RuleContext& ctx) {
    if (!in_library(ctx.path) || !has_component(ctx.path, "core")) return;
    LoopScopes loops;
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& code = ctx.lines[i].code;
        const bool inside = loops.consume(code);
        if (inside &&
            code.find("DenseGraph::euclidean") != std::string::npos) {
            ctx.report(i, "UL007", "no-dense-rebuild-in-loop",
                       "DenseGraph::euclidean built inside a loop allocates "
                       "and refills an O(n^2) matrix every iteration; hoist "
                       "the graph, use PlanningContext::node_distance, or "
                       "annotate NOLINT(uavdc-no-dense-rebuild-in-loop): "
                       "<why per-iteration rebuild is required>");
        }
    }
}

/// UL009: per-element distance math inside loops in core/ planner code.
/// A loop that calls geom::distance / distance2 / std::sqrt / std::hypot
/// one element at a time runs scalar — the call boundary stops the
/// compiler from vectorizing the scan. Hot paths stream the
/// PlanningContext SoA mirrors through the batch kernels
/// (core/batch_kernels.hpp) instead; reference oracles that deliberately
/// stay scalar carry a NOLINT(uavdc-batched-distance): <reason>.
/// batch_kernels.* is exempt — it IS the blessed implementation.
void rule_batched_distance(RuleContext& ctx) {
    if (!in_library(ctx.path) || !has_component(ctx.path, "core")) return;
    const std::string base = basename_of(ctx.path);
    if (base == "batch_kernels.cpp" || base == "batch_kernels.hpp") return;
    LoopScopes loops;
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& code = ctx.lines[i].code;
        if (!loops.consume(code)) continue;
        std::string hit;
        for (const char* fn : {"distance", "distance2", "sqrt", "hypot"}) {
            if (has_call(code, fn)) {
                hit = fn;
                break;
            }
        }
        if (hit.empty()) continue;
        ctx.report(i, "UL009", "batched-distance",
                   "per-element " + hit +
                       "() inside a candidate-scoring loop runs scalar; "
                       "stream the SoA arrays through the batch kernels "
                       "(kernels::distances_to_point / "
                       "squared_distances_to_point / fill_distance_tile) or "
                       "annotate NOLINT(uavdc-batched-distance): <why this "
                       "loop must stay scalar>");
    }
}

/// UL008: threading in the library flows through util::ThreadPool. A raw
/// std::thread outside util/ dodges the pool's deterministic shutdown (and
/// the service's drain barrier); a detach() anywhere abandons the thread
/// past teardown entirely, which no test or sanitizer run can wait out.
void rule_no_raw_thread(RuleContext& ctx) {
    if (!in_library(ctx.path)) return;
    const bool in_util = has_component(ctx.path, "util");
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& code = ctx.lines[i].code;
        if (has_call(code, "detach")) {
            ctx.report(i, "UL008", "no-raw-thread",
                       "detach() abandons a thread with no join and no "
                       "deterministic teardown; keep threads joinable "
                       "(util::ThreadPool joins every worker on shutdown) or "
                       "annotate NOLINT(uavdc-no-raw-thread): <why the thread "
                       "must outlive its owner>");
            continue;
        }
        if (in_util) continue;  // the pool itself may own std::thread
        const std::size_t pos = code.find("std::thread");
        if (pos != std::string::npos && token_at(code, pos + 5, "thread")) {
            ctx.report(i, "UL008", "no-raw-thread",
                       "raw std::thread outside util/ bypasses the shared "
                       "ThreadPool's sizing and deterministic shutdown; "
                       "submit to util::ThreadPool / util::global_pool(), or "
                       "annotate NOLINT(uavdc-no-raw-thread): <why a "
                       "dedicated thread is required>");
        }
    }
}

/// UL010: every `#include "uavdc/<module>/..."` must respect the declared
/// layering table (include_graph.cpp). A file in module M may include
/// module N only when N is M itself or one of M's allowed dependencies —
/// in particular core/ may never reach service/, io/, or workload/.
void rule_layering(RuleContext& ctx) {
    const std::string from = module_of(ctx.path);
    if (from.empty()) return;
    for (const auto& inc : collect_includes(ctx.lines)) {
        const std::string to = module_of_include(inc.target);
        if (to.empty() || edge_allowed(from, to)) continue;
        ctx.report(static_cast<std::size_t>(inc.line - 1), "UL010",
                   "layering-violation",
                   "module '" + from + "' may not include \"" + inc.target +
                       "\" (module '" + to +
                       "'): the declared layering (DESIGN.md \"Module "
                       "layering\") forbids this edge; move the shared type "
                       "into a lower module or invert the dependency");
    }
}

/// True when the code plausibly touches floating-point values: a double /
/// float token, or a floating literal (digit run followed by '.' or an
/// exponent, not part of an identifier).
bool has_floating_hint(const std::string& code) {
    if (has_token(code, "double") || has_token(code, "float")) return true;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (std::isdigit(static_cast<unsigned char>(code[i])) == 0) continue;
        if (i > 0 && is_ident_char(code[i - 1])) {
            while (i + 1 < code.size() && is_ident_char(code[i + 1])) ++i;
            continue;  // digits inside an identifier like x2
        }
        std::size_t j = i;
        while (j < code.size() &&
               std::isdigit(static_cast<unsigned char>(code[j])) != 0) {
            ++j;
        }
        if (j < code.size() &&
            (code[j] == '.' || code[j] == 'e' || code[j] == 'E')) {
            return true;
        }
        i = j;
    }
    return false;
}

/// UL012: floating-point reductions in core/ must pair terms in a fixed
/// order. std::accumulate makes no pairing guarantee across
/// implementations, std::reduce and std::transform_reduce explicitly
/// permit arbitrary regrouping, and OpenMP reduction clauses combine
/// partial sums in thread-completion order — all of which let bitwise
/// results drift between runs or toolchains. Planner scores feed argmax
/// decisions, so a one-ulp drift can flip a tour.
void rule_fp_determinism(RuleContext& ctx) {
    if (!in_library(ctx.path) || !has_component(ctx.path, "core")) return;
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& code = ctx.lines[i].code;
        if (code.find("#pragma") != std::string::npos &&
            has_token(code, "omp") &&
            code.find("reduction") != std::string::npos) {
            ctx.report(i, "UL012", "nondeterministic-fp-reduction",
                       "OpenMP reduction clauses combine partial sums in "
                       "thread-completion order; use the fixed-lane "
                       "reductions in core/batch_kernels (kSoaLanes partial "
                       "sums, deterministic pairwise combine) so results are "
                       "bit-stable across runs");
            continue;
        }
        std::string hit;
        for (const char* fn : {"accumulate", "reduce", "transform_reduce"}) {
            if (has_call(code, fn)) {
                hit = fn;
                break;
            }
        }
        if (hit.empty()) continue;
        bool floating = false;
        const std::size_t until = std::min(ctx.lines.size(), i + 3);
        for (std::size_t j = i; j < until && !floating; ++j) {
            floating = has_floating_hint(ctx.lines[j].code);
        }
        if (!floating) continue;
        ctx.report(i, "UL012", "nondeterministic-fp-reduction",
                   hit +
                       "() over floating-point values pairs terms in an "
                       "order the standard does not fix; write an explicit "
                       "indexed loop or use the fixed-lane reductions in "
                       "core/batch_kernels, or annotate "
                       "NOLINT(uavdc-nondeterministic-fp-reduction): <why "
                       "pairing order cannot affect results>");
    }
}

/// Narrower-than-register integer targets a static_cast can silently
/// truncate into. Type text is normalized (whitespace stripped, leading
/// std:: removed) before lookup.
bool is_narrow_integer_type(std::string type) {
    type.erase(std::remove_if(type.begin(), type.end(),
                              [](unsigned char c) {
                                  return std::isspace(c) != 0;
                              }),
               type.end());
    if (type.rfind("std::", 0) == 0) type.erase(0, 5);
    static const char* const kNarrow[] = {
        "int",          "short",         "shortint",     "char",
        "signedchar",   "unsignedchar",  "unsigned",     "unsignedint",
        "unsignedshort", "unsignedshortint",
        "int8_t",       "int16_t",       "int32_t",      "uint8_t",
        "uint16_t",     "uint32_t",
    };
    for (const char* t : kNarrow) {
        if (type == t) return true;
    }
    return false;
}

/// UL013: a static_cast to a narrower integer type in core/ or service/
/// silently truncates out-of-range values (the CSR-offset bug class).
/// Sanctioned forms: util::checked_cast<T>() (range-checked via
/// std::in_range + UAVDC_CHECK), or an explicit UAVDC_CHECK / REQUIRE
/// guard within the surrounding lines, or a NOLINT with a reason.
void rule_unchecked_narrowing(RuleContext& ctx) {
    if (!in_library(ctx.path)) return;
    if (!has_component(ctx.path, "core") &&
        !has_component(ctx.path, "service")) {
        return;
    }
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& code = ctx.lines[i].code;
        for (std::size_t pos = code.find("static_cast");
             pos != std::string::npos;
             pos = code.find("static_cast", pos + 1)) {
            if (!token_at(code, pos, "static_cast")) continue;
            std::size_t open = pos + 11;
            while (open < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[open])) !=
                       0) {
                ++open;
            }
            if (open >= code.size() || code[open] != '<') continue;
            int depth = 0;
            std::size_t close = open;
            for (; close < code.size(); ++close) {
                if (code[close] == '<') ++depth;
                if (code[close] == '>' && --depth == 0) break;
            }
            if (close >= code.size()) continue;
            if (!is_narrow_integer_type(
                    code.substr(open + 1, close - open - 1))) {
                continue;
            }
            bool guarded = false;
            const std::size_t lo = i >= 4 ? i - 4 : 0;
            const std::size_t hi = std::min(ctx.lines.size(), i + 3);
            for (std::size_t j = lo; j < hi && !guarded; ++j) {
                const std::string& near = ctx.lines[j].code;
                guarded = has_token(near, "UAVDC_CHECK") ||
                          has_token(near, "UAVDC_DCHECK") ||
                          has_token(near, "UAVDC_REQUIRE") ||
                          has_token(near, "checked_cast") ||
                          has_token(near, "in_range");
            }
            if (guarded) break;
            ctx.report(i, "UL013", "unchecked-narrowing",
                       "static_cast to a narrow integer type silently "
                       "truncates out-of-range values; use "
                       "util::checked_cast<T>() (uavdc/util/check.hpp), "
                       "guard with UAVDC_CHECK in the surrounding lines, or "
                       "annotate NOLINT(uavdc-unchecked-narrowing): <why the "
                       "value provably fits>");
            break;  // one finding per line
        }
    }
}

/// True when some call to `name` on this line has its result fed directly
/// to a relational operator — `name(...) <op>` or `<op> name(...)` with
/// op in {<, <=, >, >=}. Shifts (`<<`, `>>`), arrows (`->`), and template
/// argument lists never match: after a closing paren a lone angle bracket
/// can only compare, and the backward scan skips the `geom::` / `std::`
/// qualifier before testing the operator.
bool call_result_compared(const std::string& code, const std::string& name) {
    for (std::size_t pos = code.find(name); pos != std::string::npos;
         pos = code.find(name, pos + 1)) {
        if (!token_at(code, pos, name)) continue;
        std::size_t open = pos + name.size();
        while (open < code.size() &&
               std::isspace(static_cast<unsigned char>(code[open])) != 0) {
            ++open;
        }
        if (open >= code.size() || code[open] != '(') continue;
        // Forward: `name(...)` followed by a relational operator.
        int depth = 0;
        std::size_t close = open;
        for (; close < code.size(); ++close) {
            if (code[close] == '(') ++depth;
            if (code[close] == ')' && --depth == 0) break;
        }
        if (close < code.size()) {
            std::size_t after = close + 1;
            while (after < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[after])) !=
                       0) {
                ++after;
            }
            if (after < code.size() &&
                (code[after] == '<' || code[after] == '>') &&
                (after + 1 >= code.size() || code[after + 1] != code[after])) {
                return true;
            }
        }
        // Backward: a relational operator right before the qualified call.
        std::size_t begin = pos;
        while (begin > 0 &&
               (is_ident_char(code[begin - 1]) || code[begin - 1] == ':')) {
            --begin;
        }
        while (begin > 0 &&
               std::isspace(static_cast<unsigned char>(code[begin - 1])) !=
                   0) {
            --begin;
        }
        if (begin == 0) continue;
        const char prev = code[begin - 1];
        if (prev == '<' || prev == '>') {
            if (begin >= 2 && code[begin - 2] == prev) continue;    // shift
            if (begin >= 2 && prev == '>' && code[begin - 2] == '-') {
                continue;  // arrow
            }
            return true;
        }
        if (prev == '=' && begin >= 2 &&
            (code[begin - 2] == '<' || code[begin - 2] == '>')) {
            return true;
        }
    }
    return false;
}

/// UL014: a distance computed only to compare it. The result of
/// geom::distance / std::sqrt / std::hypot feeding a relational operator
/// directly pays a sqrt for a verdict the squared forms decide
/// bit-identically: sqrt is monotone, and fl(sqrt(fl(r*r))) == r for every
/// representable non-negative radius, so `distance(a, b) <= r` and
/// `distance2(a, b) <= r * r` always agree. Comparison sites should use
/// geom::distance2 / the squared batch kernels; genuinely metric uses
/// (accumulation, return values, sort keys) never trigger because only an
/// operator adjacent to the call matches. batch_kernels.* is exempt — it
/// implements both forms.
void rule_sqrt_compare(RuleContext& ctx) {
    if (!in_library(ctx.path) || !has_component(ctx.path, "core")) return;
    const std::string base = basename_of(ctx.path);
    if (base == "batch_kernels.cpp" || base == "batch_kernels.hpp") return;
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& code = ctx.lines[i].code;
        std::string hit;
        for (const char* fn : {"distance", "sqrt", "hypot"}) {
            if (call_result_compared(code, fn)) {
                hit = fn;
                break;
            }
        }
        if (hit.empty()) continue;
        ctx.report(i, "UL014", "sqrt-compare",
                   hit +
                       "() result used only as a comparison operand pays a "
                       "sqrt the verdict does not need; compare "
                       "geom::distance2 against the squared "
                       "threshold (bit-identical: sqrt is monotone and "
                       "fl(sqrt(r*r)) == r) or annotate "
                       "NOLINT(uavdc-sqrt-compare): <why the exact metric "
                       "must be materialized here>");
    }
}

/// The socket-syscall family UL015 polices. Deliberately lexical: member
/// calls (`sock.read(...)`) and namespace-qualified calls (`std::bind`)
/// never match, only a bare or global-scope (`::read`) invocation does.
const char* const kSocketSyscalls[] = {
    "socket", "accept",  "accept4",    "bind",        "listen",
    "connect", "recv",   "recvfrom",   "send",        "sendto",
    "read",    "write",  "pipe",       "pipe2",       "poll",
    "select",  "setsockopt", "getsockopt", "getsockname", "getpeername",
};

/// The subset whose blocking forms return EINTR and therefore must sit in a
/// retry loop (or carry a reasoned NOLINT). Setup calls (socket, bind,
/// listen, setsockopt, ...) never block, and close(2) must NOT be retried,
/// so neither appears here.
const char* const kInterruptible[] = {
    "accept", "accept4", "connect", "recv", "recvfrom",
    "send",   "sendto",  "read",    "write", "poll",   "select",
};

/// True when some occurrence of `name` on this line is a *direct* call:
/// followed by '(', not a member access (`.name(` / `->name(`), and not
/// qualified by a named namespace (`std::name(`) — an explicit global-scope
/// `::name(` still counts.
bool has_direct_call(const std::string& code, const std::string& name) {
    for (std::size_t pos = code.find(name); pos != std::string::npos;
         pos = code.find(name, pos + 1)) {
        if (!token_at(code, pos, name)) continue;
        std::size_t after = pos + name.size();
        while (after < code.size() &&
               std::isspace(static_cast<unsigned char>(code[after])) != 0) {
            ++after;
        }
        if (after >= code.size() || code[after] != '(') continue;
        std::size_t before = pos;
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(code[before - 1])) !=
                   0) {
            --before;
        }
        if (before > 0) {
            const char prev = code[before - 1];
            if (prev == '.') continue;  // member call
            if (prev == '>' && before >= 2 && code[before - 2] == '-') {
                continue;  // member call via pointer
            }
            if (prev == ':' && before >= 2 && code[before - 2] == ':') {
                // Qualified. `::name(` at global scope is still the raw
                // syscall; `ns::name(` is some namespace's function.
                std::size_t q = before - 2;
                while (q > 0 && std::isspace(static_cast<unsigned char>(
                                    code[q - 1])) != 0) {
                    --q;
                }
                if (q > 0 && is_ident_char(code[q - 1])) continue;
            }
        }
        return true;
    }
    return false;
}

/// UL015: raw socket/byte-I/O syscalls live in net/ only, and the blocking
/// ones must retry EINTR. Outside net/, any direct call to the socket
/// syscall family bypasses the net::Socket wrappers that map errno into
/// IoStatus, apply MSG_NOSIGNAL, and retry EINTR — transports built on raw
/// calls re-grow exactly the interrupted-syscall bugs the wrapper exists to
/// bury. Inside net/, a direct call to an interruptible syscall without an
/// EINTR check in the surrounding lines is the same bug waiting locally
/// (signal handlers are installed without SA_RESTART on purpose, so every
/// blocking call in the process really does get interrupted).
void rule_no_raw_socket(RuleContext& ctx) {
    if (!in_library(ctx.path)) return;
    const bool in_net = has_component(ctx.path, "net");
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& code = ctx.lines[i].code;
        std::string hit;
        if (in_net) {
            for (const char* fn : kInterruptible) {
                if (has_direct_call(code, fn)) {
                    hit = fn;
                    break;
                }
            }
            if (hit.empty()) continue;
            bool guarded = false;
            const std::size_t lo = i >= 4 ? i - 4 : 0;
            const std::size_t hi = std::min(ctx.lines.size(), i + 5);
            for (std::size_t j = lo; j < hi && !guarded; ++j) {
                guarded = has_token(ctx.lines[j].code, "EINTR");
            }
            if (guarded) continue;
            ctx.report(i, "UL015", "no-raw-socket",
                       "raw " + hit +
                           "() without an EINTR retry in the surrounding "
                           "lines: handlers are installed without SA_RESTART, "
                           "so blocking calls do get interrupted; loop while "
                           "errno == EINTR (see net/socket.cpp) or annotate "
                           "NOLINT(uavdc-no-raw-socket): <why one attempt is "
                           "correct>");
            continue;
        }
        for (const char* fn : kSocketSyscalls) {
            if (has_direct_call(code, fn)) {
                hit = fn;
                break;
            }
        }
        if (hit.empty()) continue;
        ctx.report(i, "UL015", "no-raw-socket",
                   "raw " + hit +
                       "() outside net/ bypasses the net::Socket wrappers "
                       "(EINTR retry, MSG_NOSIGNAL, errno -> IoStatus); use "
                       "net::Socket / net::poll_wait, or annotate "
                       "NOLINT(uavdc-no-raw-socket): <why this call cannot "
                       "go through net/>");
    }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
    static const std::vector<RuleInfo> kRules = {
        {"UL001", "no-raw-assert",
         "no raw C assert() outside util/check.hpp; invariants use "
         "UAVDC_CHECK / UAVDC_DCHECK so they are testable and never silently "
         "compiled out"},
        {"UL002", "no-abort",
         "no abort() outside util/check.hpp; contract failures raise "
         "ContractViolation so callers and tests can observe them"},
        {"UL003", "no-nondeterminism",
         "no std::random_device / time() / rand() seeding; all randomness "
         "flows through seeded util::Rng for reproducible experiments"},
        {"UL004", "unordered-iteration",
         "no iteration over unordered_map/unordered_set in planner result "
         "paths unless results are sorted or the loop is annotated "
         "order-independent"},
        {"UL005", "pragma-once", "every header starts with #pragma once"},
        {"UL006", "no-cout-in-library",
         "no std::cout in library code (src/); stdout belongs to tools, "
         "benches, and examples"},
        {"UL007", "no-dense-rebuild-in-loop",
         "no DenseGraph::euclidean construction inside loops in core/ "
         "planner code; hoist the graph or use the PlanningContext distance "
         "matrix — per-iteration rebuilds are O(n^2) allocation churn"},
        {"UL008", "no-raw-thread",
         "no raw std::thread outside util/ and no detach() anywhere in the "
         "library; threads come from util::ThreadPool, which joins every "
         "worker on shutdown"},
        {"UL009", "batched-distance",
         "no per-element distance/sqrt/hypot calls inside candidate-scoring "
         "loops in core/; hot scans stream the PlanningContext SoA mirrors "
         "through core/batch_kernels — scalar oracle loops carry a "
         "NOLINT(uavdc-batched-distance) with a reason"},
        {"UL010", "layering-violation",
         "every include of uavdc/<module>/ must respect the declared "
         "layering table: a module may depend only on itself and the "
         "modules listed below it (core/ never reaches service/, io/, or "
         "workload/)"},
        {"UL011", "include-cycle",
         "the module-level include graph must stay acyclic; cycles are "
         "reported with the full module path and one representative include "
         "site per edge"},
        {"UL012", "nondeterministic-fp-reduction",
         "no std::accumulate/reduce/transform_reduce over floating-point "
         "values and no OpenMP reduction pragmas in core/; floating "
         "reductions use the fixed-lane batch kernels or explicit indexed "
         "loops so planner scores are bit-stable"},
        {"UL013", "unchecked-narrowing",
         "no static_cast to a narrower integer type in core/ or service/ "
         "without util::checked_cast, a UAVDC_CHECK guard in the "
         "surrounding lines, or a NOLINT with a reason — silent truncation "
         "is the CSR-offset bug class"},
        {"UL014", "sqrt-compare",
         "no distance/sqrt/hypot result used only as a comparison operand "
         "in core/; ordering verdicts are decided bit-identically by the "
         "squared forms (geom::distance2, squared kernels), so comparison "
         "sites must defer the sqrt — sites that truly need the metric "
         "carry a NOLINT(uavdc-sqrt-compare) with a reason"},
        {"UL015", "no-raw-socket",
         "no raw socket/byte-I/O syscalls (socket, accept, read, write, "
         "send, recv, poll, ...) outside net/ — transports go through "
         "net::Socket, which retries EINTR, applies MSG_NOSIGNAL, and maps "
         "errno to IoStatus; inside net/, blocking syscalls must sit in an "
         "EINTR retry loop or carry a NOLINT(uavdc-no-raw-socket) with a "
         "reason"},
    };
    return kRules;
}

std::vector<ScannedLine> scan_lines(const std::string& contents) {
    enum class State {
        kCode,
        kLineComment,
        kBlockComment,
        kString,
        kChar,
        kRawString
    };
    std::vector<ScannedLine> lines;
    ScannedLine cur;
    State state = State::kCode;
    std::string raw_delim;  // for )delim" raw-string termination

    const auto flush_line = [&] {
        lines.push_back(std::move(cur));
        cur = ScannedLine{};
    };

    for (std::size_t i = 0; i < contents.size(); ++i) {
        const char c = contents[i];
        const char next = i + 1 < contents.size() ? contents[i + 1] : '\0';
        if (c == '\n') {
            // A // comment whose final character is a backslash splices the
            // next physical line into itself (phase-2 line continuation);
            // every other state simply persists across the newline. An
            // unterminated block comment or raw string at EOF drains
            // harmlessly: the loop ends and the last line is flushed.
            if (state == State::kLineComment &&
                (cur.comment.empty() || cur.comment.back() != '\\')) {
                state = State::kCode;
            }
            flush_line();
            continue;
        }
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLineComment;
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = State::kBlockComment;
                    ++i;
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || !is_ident_char(contents[i - 1]))) {
                    // The raw-string delimiter must close on this line; if
                    // it does not, this is malformed input and the 'R' is
                    // treated as ordinary code rather than swallowing the
                    // rest of the file in a delimiter search.
                    const std::size_t eol = contents.find('\n', i);
                    const std::size_t open = contents.find('(', i + 2);
                    if (open == std::string::npos ||
                        (eol != std::string::npos && open > eol)) {
                        cur.code += c;
                        cur.raw += c;
                        break;
                    }
                    raw_delim =
                        ")" + contents.substr(i + 2, open - i - 2) + "\"";
                    cur.code += "\"\"";
                    cur.raw += contents.substr(i, open - i + 1);
                    i = open;
                    state = State::kRawString;
                } else if (c == '"') {
                    cur.code += '"';
                    cur.raw += '"';
                    state = State::kString;
                } else if (c == '\'' && i > 0 &&
                           !is_ident_char(contents[i - 1])) {
                    cur.code += '\'';
                    cur.raw += '\'';
                    state = State::kChar;
                } else {
                    cur.code += c;
                    cur.raw += c;
                }
                break;
            case State::kLineComment:
                cur.comment += c;
                break;
            case State::kBlockComment:
                if (c == '*' && next == '/') {
                    state = State::kCode;
                    ++i;
                } else {
                    cur.comment += c;
                }
                break;
            case State::kString:
            case State::kChar: {
                const char quote = state == State::kString ? '"' : '\'';
                if (c == '\\') {
                    // Never consume the newline of a backslash line splice:
                    // the '\n' handler above must see it so line numbers
                    // stay aligned with the file.
                    cur.raw += c;
                    if (next != '\n' && next != '\0') {
                        cur.raw += next;
                        ++i;
                    }
                } else if (c == quote) {
                    cur.code += quote;
                    cur.raw += quote;
                    state = State::kCode;
                } else {
                    cur.raw += c;
                }
                break;
            }
            case State::kRawString:
                if (contents.compare(i, raw_delim.size(), raw_delim) == 0) {
                    cur.raw += raw_delim;
                    i += raw_delim.size() - 1;
                    state = State::kCode;
                } else {
                    cur.raw += c;
                }
                break;
        }
    }
    flush_line();
    return lines;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& contents) {
    const auto lines = scan_lines(contents);
    std::vector<Finding> findings;
    RuleContext ctx{path, lines, findings};
    rule_no_raw_assert(ctx);
    rule_no_abort(ctx);
    rule_no_nondeterminism(ctx);
    rule_unordered_iteration(ctx);
    rule_pragma_once(ctx);
    rule_no_cout_in_library(ctx);
    rule_no_dense_rebuild_in_loop(ctx);
    rule_no_raw_thread(ctx);
    rule_batched_distance(ctx);
    rule_layering(ctx);
    rule_fp_determinism(ctx);
    rule_unchecked_narrowing(ctx);
    rule_sqrt_compare(ctx);
    rule_no_raw_socket(ctx);
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.line != b.line) return a.line < b.line;
                  return a.id < b.id;
              });
    return findings;
}

std::vector<Finding> lint_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {Finding{path, 0, "UL000", "unreadable-file",
                        "cannot open file for linting"}};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return lint_source(path, buf.str());
}

std::vector<std::string> discover_files(
    const std::vector<std::string>& roots) {
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    // Explicit recursion with per-directory sorting: directory_iterator
    // order is filesystem-dependent, so every level is sorted before
    // descending. The final global sort merges multiple roots; together
    // they make discovery byte-identical across runs and machines.
    const std::function<void(const fs::path&)> walk =
        [&](const fs::path& dir) {
            std::vector<fs::path> entries;
            for (const auto& entry : fs::directory_iterator(
                     dir, fs::directory_options::skip_permission_denied)) {
                entries.push_back(entry.path());
            }
            std::sort(entries.begin(), entries.end(),
                      [](const fs::path& a, const fs::path& b) {
                          return a.generic_string() < b.generic_string();
                      });
            for (const auto& path : entries) {
                const std::string name = path.filename().string();
                if (fs::is_directory(path)) {
                    if (name.rfind("build", 0) == 0 ||
                        name.rfind('.', 0) == 0) {
                        continue;
                    }
                    walk(path);
                    continue;
                }
                if (!fs::is_regular_file(path)) continue;
                const std::string p = path.generic_string();
                if (ends_with(p, ".hpp") || ends_with(p, ".h") ||
                    ends_with(p, ".cpp") || ends_with(p, ".cc")) {
                    files.push_back(p);
                }
            }
        };
    for (const auto& root : roots) {
        if (!fs::exists(root)) continue;
        if (fs::is_regular_file(root)) {
            files.push_back(root);
            continue;
        }
        walk(root);
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots) {
    std::vector<Finding> findings;
    for (const auto& f : discover_files(roots)) {
        auto fs_findings = lint_file(f);
        findings.insert(findings.end(),
                        std::make_move_iterator(fs_findings.begin()),
                        std::make_move_iterator(fs_findings.end()));
    }
    return findings;
}

std::string to_string(const Finding& f) {
    return f.file + ":" + std::to_string(f.line) + ": [" + f.id + " " +
           f.rule + "] " + f.message;
}

}  // namespace uavdc::lint
