#pragma once

#include <string>
#include <vector>

namespace uavdc::lint {

/// One rule violation at a specific source location.
struct Finding {
    std::string file;     ///< Path as given to the linter.
    int line{0};          ///< 1-based line number.
    std::string id;       ///< Stable rule id, e.g. "UL001".
    std::string rule;     ///< Rule slug, e.g. "no-raw-assert".
    std::string message;  ///< Human-readable explanation.
};

/// Static description of a lint rule (for --list-rules and docs).
struct RuleInfo {
    std::string id;
    std::string rule;
    std::string description;
};

/// All rules the linter enforces, in id order.
const std::vector<RuleInfo>& rules();

/// A source line split into its code and comment parts. String and character
/// literal contents in `code` are blanked so token scans cannot match text
/// inside literals; `comment` holds the text of // and /* */ comments on the
/// line (used for NOLINT suppressions); `raw` is the comment-free source
/// with literal contents preserved (used to recover #include targets).
struct ScannedLine {
    std::string code;
    std::string comment;
    std::string raw;
};

/// Split file contents into per-line code/comment views (see ScannedLine).
std::vector<ScannedLine> scan_lines(const std::string& contents);

/// Resolves NOLINT suppression for rule `slug` at `line_idx` (0-based):
/// same-line NOLINT(...), NOLINTNEXTLINE(...) in the comment block above,
/// or an enclosing NOLINTBEGIN/END block. Returns 0 = none, 1 = suppressed
/// with a reason (honour it), 2 = suppression without the required
/// ': reason' (report, but explain the rejection). Exposed so graph-level
/// passes (UL011) can honour suppressions at their anchor site.
int suppression_for(const std::vector<ScannedLine>& lines,
                    std::size_t line_idx, const std::string& slug);

/// Lint one file's contents. `path` determines which path-scoped rules apply
/// (library-only rules fire under src/, the unordered-iteration rule only in
/// planner result paths) and is echoed into findings.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& contents);

/// Lint a file on disk. Missing/unreadable files yield a single finding.
std::vector<Finding> lint_file(const std::string& path);

/// Every .hpp/.h/.cpp/.cc file under the given roots, recursively, skipping
/// build directories and hidden directories. Directory entries are visited
/// in sorted order and the final list is sorted, so the result is
/// byte-identical across runs and filesystems.
std::vector<std::string> discover_files(const std::vector<std::string>& roots);

/// Recursively lint every .hpp/.h/.cpp/.cc file under the given roots,
/// skipping build directories and hidden directories. Results are sorted by
/// (file, line) so output is deterministic.
std::vector<Finding> lint_tree(const std::vector<std::string>& roots);

/// "file:line: [UL00X no-raw-assert] message" — one line per finding.
std::string to_string(const Finding& f);

}  // namespace uavdc::lint
