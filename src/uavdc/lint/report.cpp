#include "uavdc/lint/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace uavdc::lint {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
                break;
        }
    }
    return out;
}

std::string quoted(const std::string& s) {
    // Built up with += rather than operator+ chaining: GCC 12's -Wrestrict
    // false-positives on `"\"" + s + "\""` under -O2 (PR105651) and the
    // tree builds with -Werror in CI.
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    out += json_escape(s);
    out += '"';
    return out;
}

// The baseline format is line- and tab-delimited, so keys escape exactly
// those characters (plus backslash itself) and nothing else.
std::string key_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c; break;
        }
    }
    return out;
}

std::string key_unescape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        const char next = s[++i];
        if (next == 'n') {
            out += '\n';
        } else if (next == 't') {
            out += '\t';
        } else {
            out += next;
        }
    }
    return out;
}

}  // namespace

std::string to_text(const std::vector<Finding>& findings) {
    std::string out;
    for (const auto& f : findings) {
        out += to_string(f);
        out += '\n';
    }
    if (!findings.empty()) {
        out += std::to_string(findings.size()) +
               " finding(s); see --list-rules for what each rule "
               "protects.\n";
    }
    return out;
}

std::string to_json(const std::vector<Finding>& findings) {
    std::ostringstream out;
    out << "{\n  \"tool\": \"uavdc_lint\",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"file\": " << quoted(f.file)
            << ", \"line\": " << f.line << ", \"id\": " << quoted(f.id)
            << ", \"rule\": " << quoted(f.rule)
            << ", \"message\": " << quoted(f.message) << "}";
    }
    out << (findings.empty() ? "]" : "\n  ]");
    out << ",\n  \"count\": " << findings.size() << "\n}\n";
    return out.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
    const auto& table = rules();
    const auto rule_index = [&](const std::string& id) {
        for (std::size_t i = 0; i < table.size(); ++i) {
            if (table[i].id == id) return static_cast<int>(i);
        }
        return -1;
    };

    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"uavdc_lint\",\n"
        << "          \"informationUri\": "
           "\"https://example.invalid/uavdc/CONTRIBUTING.md\",\n"
        << "          \"rules\": [";
    for (std::size_t i = 0; i < table.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n");
        out << "            {\"id\": " << quoted(table[i].id)
            << ", \"name\": " << quoted(table[i].rule)
            << ", \"shortDescription\": {\"text\": "
            << quoted(table[i].description) << "}}";
    }
    out << "\n          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        const int idx = rule_index(f.id);
        out << (i == 0 ? "\n" : ",\n");
        out << "        {\"ruleId\": " << quoted(f.id);
        if (idx >= 0) out << ", \"ruleIndex\": " << idx;
        out << ", \"level\": \"error\", \"message\": {\"text\": "
            << quoted(f.message) << "}, \"locations\": [{"
            << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
            << quoted(f.file) << "}, \"region\": {\"startLine\": "
            << std::max(1, f.line) << "}}}]}";
    }
    out << (findings.empty() ? "]\n" : "\n      ]\n");
    out << "    }\n  ]\n}\n";
    return out.str();
}

std::string finding_key(const Finding& f) {
    return f.file + "|" + f.id + "|" + f.message;
}

Baseline make_baseline(const std::vector<Finding>& findings) {
    Baseline b;
    for (const auto& f : findings) ++b.counts[finding_key(f)];
    return b;
}

std::string serialize_baseline(const Baseline& baseline) {
    std::string out = "# uavdc_lint baseline v1\n";
    for (const auto& [key, count] : baseline.counts) {
        out += std::to_string(count) + "\t" + key_escape(key) + "\n";
    }
    return out;
}

Baseline parse_baseline(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "# uavdc_lint baseline v1") {
        throw std::runtime_error(
            "baseline: missing '# uavdc_lint baseline v1' header");
    }
    Baseline b;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        const std::size_t tab = line.find('\t');
        if (tab == std::string::npos) {
            throw std::runtime_error("baseline: malformed line (no tab): " +
                                     line);
        }
        int count = 0;
        try {
            count = std::stoi(line.substr(0, tab));
        } catch (const std::exception&) {
            throw std::runtime_error("baseline: malformed count: " + line);
        }
        if (count <= 0) {
            throw std::runtime_error("baseline: count must be positive: " +
                                     line);
        }
        b.counts[key_unescape(line.substr(tab + 1))] += count;
    }
    return b;
}

std::vector<Finding> new_findings(const std::vector<Finding>& findings,
                                  const Baseline& baseline) {
    std::map<std::string, int> budget;
    for (const auto& [key, count] : baseline.counts) budget[key] = count;
    std::vector<Finding> fresh;
    for (const auto& f : findings) {
        auto it = budget.find(finding_key(f));
        if (it != budget.end() && it->second > 0) {
            --it->second;
            continue;
        }
        fresh.push_back(f);
    }
    return fresh;
}

}  // namespace uavdc::lint
