#pragma once

#include <map>
#include <string>
#include <vector>

#include "uavdc/lint/linter.hpp"

namespace uavdc::lint {

/// Plain-text report: one to_string(finding) line each, plus a summary
/// trailer when findings exist. Exactly what the CLI prints by default.
std::string to_text(const std::vector<Finding>& findings);

/// Machine-readable JSON: {"tool": ..., "findings": [...], "count": N}.
/// Hand-emitted (lint/ sits below io/ in the layering and cannot use the
/// io:: JSON writer); strings are escaped per RFC 8259.
std::string to_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 log for GitHub code scanning: one run, the full rule table
/// under tool.driver.rules, one result per finding with ruleIndex into
/// that table and a physicalLocation region (startLine clamped to >= 1,
/// as the spec requires).
std::string to_sarif(const std::vector<Finding>& findings);

/// A baseline is a multiset of line-independent finding keys
/// ("file|id|message") with occurrence counts. Keys deliberately omit the
/// line number so unrelated edits shifting a baselined finding up or down
/// a file do not break the gate.
struct Baseline {
    std::map<std::string, int> counts;
};

/// The line-independent identity of a finding: "file|id|message".
std::string finding_key(const Finding& f);

Baseline make_baseline(const std::vector<Finding>& findings);

/// Text form: a "# uavdc_lint baseline v1" header, then one
/// "<count>\t<key>" line per key, sorted. Byte-identical for equal input.
std::string serialize_baseline(const Baseline& baseline);

/// Parses serialize_baseline output. Unknown header or malformed lines
/// throw std::runtime_error (a corrupt baseline must fail closed, not
/// silently admit findings).
Baseline parse_baseline(const std::string& text);

/// Findings not covered by the baseline: for each key appearing more often
/// than the baseline allows, the surplus occurrences (later ones first
/// dropped — the earliest findings in file order are treated as covered).
std::vector<Finding> new_findings(const std::vector<Finding>& findings,
                                  const Baseline& baseline);

}  // namespace uavdc::lint
