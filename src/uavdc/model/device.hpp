#pragma once

#include "uavdc/geom/vec2.hpp"

namespace uavdc::model {

/// An aggregate sensor node (Sec. III-A): stores its own and its
/// non-aggregate neighbours' sensory data, waiting for UAV pickup.
struct Device {
    int id{0};             ///< dense index into Instance::devices
    geom::Vec2 pos;        ///< ground coordinates (metres)
    double data_mb{0.0};   ///< stored data volume D_v (megabytes)

    /// Time to upload all stored data at bandwidth `bandwidth_mbps` (s).
    [[nodiscard]] double upload_time(double bandwidth_mbps) const {
        return bandwidth_mbps > 0.0 ? data_mb / bandwidth_mbps : 0.0;
    }
};

}  // namespace uavdc::model
