#pragma once

#include "uavdc/model/uav.hpp"

namespace uavdc::model {

/// Read-only energy-accounting facade over `UavConfig` — the single view
/// every layer charges travel/hover against. The planners, `evaluate_plan`,
/// `validate_plan`, and the `Simulator` all route their energy math through
/// this class, so the cost model cannot drift between layers by
/// construction (the conformance oracle in `conformance/conformance.hpp`
/// asserts it). Lives in model/ — below both core/ and sim/ in the module
/// layering — precisely so the planner and the simulator can share it
/// without either layer including the other.
class EnergyView {
  public:
    explicit EnergyView(const UavConfig& uav) : uav_(&uav) {}

    /// Battery capacity E (joules).
    [[nodiscard]] double budget_j() const { return uav_->energy_j; }
    /// Energy to fly `meters` under the active travel model (J).
    [[nodiscard]] double travel(double meters) const {
        return uav_->travel_energy(meters);
    }
    /// Energy to hover for `seconds` (J).
    [[nodiscard]] double hover(double seconds) const {
        return uav_->hover_energy(seconds);
    }
    /// Time to fly `meters` (s).
    [[nodiscard]] double travel_time(double meters) const {
        return uav_->travel_time(meters);
    }
    /// Instantaneous power draw while flying (J/s) — what a battery sees.
    [[nodiscard]] double travel_power_w() const {
        return uav_->travel_power_w();
    }
    /// Instantaneous power draw while hovering (J/s).
    [[nodiscard]] double hover_power_w() const { return uav_->hover_power_w; }
    /// Combined cost of a tour of `tour_m` metres with `hover_s` seconds of
    /// hovering (J).
    [[nodiscard]] double tour_cost(double tour_m, double hover_s) const {
        return travel(tour_m) + hover(hover_s);
    }
    /// True when the combined cost fits the battery (with tolerance).
    [[nodiscard]] bool feasible(double tour_m, double hover_s,
                                double eps = 1e-9) const {
        return tour_cost(tour_m, hover_s) <= budget_j() + eps;
    }
    [[nodiscard]] const UavConfig& uav() const { return *uav_; }

  private:
    const UavConfig* uav_;
};

}  // namespace uavdc::model
