#include "uavdc/model/instance.hpp"

#include <stdexcept>

namespace uavdc::model {

double Instance::total_data_mb() const {
    double s = 0.0;
    for (const auto& d : devices) s += d.data_mb;
    return s;
}

std::vector<geom::Vec2> Instance::device_positions() const {
    std::vector<geom::Vec2> out;
    out.reserve(devices.size());
    for (const auto& d : devices) out.push_back(d.pos);
    return out;
}

void Instance::validate() const {
    if (!uav.valid()) {
        throw std::invalid_argument("Instance: invalid UAV config");
    }
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const auto& d = devices[i];
        if (d.id != static_cast<int>(i)) {
            throw std::invalid_argument("Instance: device ids must be dense");
        }
        if (d.data_mb < 0.0) {
            throw std::invalid_argument(
                "Instance: negative device data volume");
        }
        if (!region.contains(d.pos)) {
            throw std::invalid_argument("Instance: device outside region");
        }
    }
}

}  // namespace uavdc::model
