#pragma once

#include <string>
#include <vector>

#include "uavdc/geom/aabb.hpp"
#include "uavdc/model/device.hpp"
#include "uavdc/model/uav.hpp"

namespace uavdc::model {

/// A complete problem instance: monitoring region, depot, devices, and UAV
/// platform parameters. Planners consume an Instance and produce a
/// FlightPlan.
struct Instance {
    std::string name;           ///< label for logs/CSV
    geom::Aabb region;          ///< monitoring region (devices live here)
    geom::Vec2 depot;           ///< UAV depot d (tour start/end)
    std::vector<Device> devices;
    UavConfig uav;

    [[nodiscard]] std::size_t num_devices() const { return devices.size(); }

    /// Sum of all stored data (MB) — upper bound on any plan's collection.
    [[nodiscard]] double total_data_mb() const;

    /// Device positions as a contiguous vector (for spatial indexing).
    [[nodiscard]] std::vector<geom::Vec2> device_positions() const;

    /// Validate invariants (devices in region, positive volumes, valid UAV,
    /// dense ids). Throws std::invalid_argument on violation.
    void validate() const;
};

}  // namespace uavdc::model
