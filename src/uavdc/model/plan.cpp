#include "uavdc/model/plan.hpp"

namespace uavdc::model {

double FlightPlan::travel_length(const geom::Vec2& depot) const {
    if (stops.empty()) return 0.0;
    double len = geom::distance(depot, stops.front().pos);
    for (std::size_t i = 0; i + 1 < stops.size(); ++i) {
        len += geom::distance(stops[i].pos, stops[i + 1].pos);
    }
    len += geom::distance(stops.back().pos, depot);
    return len;
}

double FlightPlan::hover_time() const {
    double t = 0.0;
    for (const auto& s : stops) t += s.dwell_s;
    return t;
}

EnergyBreakdown FlightPlan::energy(const geom::Vec2& depot,
                                   const UavConfig& uav) const {
    EnergyBreakdown e;
    e.travel_m = travel_length(depot);
    e.travel_s = uav.travel_time(e.travel_m);
    e.hover_s = hover_time();
    e.travel_j = uav.travel_energy(e.travel_m);
    e.hover_j = e.hover_s * uav.hover_power_w;
    return e;
}

}  // namespace uavdc::model
