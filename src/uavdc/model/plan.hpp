#pragma once

#include <vector>

#include "uavdc/geom/vec2.hpp"
#include "uavdc/model/uav.hpp"

namespace uavdc::model {

/// One hovering stop: where the UAV hovers and for how long.
struct HoverStop {
    geom::Vec2 pos;       ///< projected hovering location (ground coords)
    double dwell_s{0.0};  ///< sojourn duration t(s_j) (seconds)
    int cell_id{-1};      ///< originating grid cell (-1 if not grid-derived)
};

/// Aggregate energy/time breakdown of a plan.
struct EnergyBreakdown {
    double travel_m{0.0};    ///< total flown distance (metres)
    double travel_s{0.0};    ///< flying time
    double hover_s{0.0};     ///< hovering time
    double travel_j{0.0};    ///< flying energy
    double hover_j{0.0};     ///< hovering energy
    [[nodiscard]] double total_j() const { return travel_j + hover_j; }
    [[nodiscard]] double total_s() const { return travel_s + hover_s; }
};

/// A closed data-collection tour: depot -> stops[0] -> ... -> stops[k-1]
/// -> depot, hovering `dwell_s` at each stop. The depot itself is not a
/// stop (the UAV collects nothing there).
struct FlightPlan {
    std::vector<HoverStop> stops;

    [[nodiscard]] bool empty() const { return stops.empty(); }
    [[nodiscard]] std::size_t num_stops() const { return stops.size(); }

    /// Length of the closed tour depot -> stops ... -> depot (metres).
    [[nodiscard]] double travel_length(const geom::Vec2& depot) const;

    /// Total hovering time (seconds).
    [[nodiscard]] double hover_time() const;

    /// Full energy/time accounting under `uav`.
    [[nodiscard]] EnergyBreakdown energy(const geom::Vec2& depot,
                                         const UavConfig& uav) const;

    /// Total energy (J): hover + travel.
    [[nodiscard]] double total_energy(const geom::Vec2& depot,
                                      const UavConfig& uav) const {
        return energy(depot, uav).total_j();
    }

    /// True if total energy fits within the UAV battery (with tolerance).
    [[nodiscard]] bool feasible(const geom::Vec2& depot, const UavConfig& uav,
                                double eps = 1e-6) const {
        return total_energy(depot, uav) <= uav.energy_j + eps;
    }
};

}  // namespace uavdc::model
