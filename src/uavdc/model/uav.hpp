#pragma once

#include <cmath>

namespace uavdc::model {

/// How flying energy is charged.
///
/// The paper's formulas (Eq. 9, Eq. 13) charge travel as l(s_i, s_j) * eta_t
/// with l in metres — i.e. eta_t acts as joules **per metre** — and the
/// reported volumes (benchmark ~74 GB of a ~275 GB field at E = 3e5 J) are
/// only reachable under that reading; charging eta_t per *second* at
/// 10 m/s makes travel 10x cheaper and saturates every sweep. kPerMeter is
/// therefore the default; kPerSecond is kept for sensitivity studies.
enum class TravelEnergyModel {
    kPerMeter,   ///< energy = metres * eta_t (paper-literal Eq. 9/13)
    kPerSecond,  ///< energy = seconds * eta_t (power reading of "J/s")
};

/// UAV platform parameters. Defaults are the paper's experimental settings
/// (Sec. VII-A, sourced from the DJI Phantom 4 Pro spec [11]):
/// speed 10 m/s, eta_t = 100, eta_h = 150 J/s, E = 3e5 J, R0 = 50 m,
/// B = 150 MB/s.
struct UavConfig {
    double energy_j = 3.0e5;        ///< battery capacity E (joules)
    double speed_mps = 10.0;        ///< constant flying speed (m/s)
    double hover_power_w = 150.0;   ///< eta_h, hovering energy rate (J/s)
    double travel_rate = 100.0;     ///< eta_t (J/m or J/s, see model)
    TravelEnergyModel travel_energy_model = TravelEnergyModel::kPerMeter;
    double coverage_radius_m = 50.0;  ///< R0, projected coverage radius (m)
    double bandwidth_mbps = 150.0;  ///< B, per-device upload bandwidth (MB/s)

    /// Energy to fly a distance of `meters` at constant speed (J).
    [[nodiscard]] double travel_energy(double meters) const {
        return travel_energy_model == TravelEnergyModel::kPerMeter
                   ? meters * travel_rate
                   : travel_time(meters) * travel_rate;
    }
    /// Time to fly `meters` (s).
    [[nodiscard]] double travel_time(double meters) const {
        return speed_mps > 0.0 ? meters / speed_mps : 0.0;
    }
    /// Energy to hover for `seconds` (J).
    [[nodiscard]] double hover_energy(double seconds) const {
        return seconds * hover_power_w;
    }
    /// Travel energy per metre (J/m) under the active model.
    [[nodiscard]] double travel_energy_per_meter() const {
        if (travel_energy_model == TravelEnergyModel::kPerMeter) {
            return travel_rate;
        }
        return speed_mps > 0.0 ? travel_rate / speed_mps : 0.0;
    }
    /// Instantaneous power draw while flying (J/s) — what the battery sees
    /// in the simulator.
    [[nodiscard]] double travel_power_w() const {
        return travel_energy_model == TravelEnergyModel::kPerMeter
                   ? travel_rate * speed_mps
                   : travel_rate;
    }

    /// Derive R0 from a transmission range R and flying altitude H
    /// (R0 = sqrt(R^2 - H^2), Sec. III-B); returns 0 if H > R.
    [[nodiscard]] static double coverage_from_altitude(double range_m,
                                                       double altitude_m) {
        const double d2 = range_m * range_m - altitude_m * altitude_m;
        return d2 > 0.0 ? std::sqrt(d2) : 0.0;
    }

    /// Basic sanity: all rates/capacities positive.
    [[nodiscard]] bool valid() const {
        return energy_j > 0.0 && speed_mps > 0.0 && hover_power_w > 0.0 &&
               travel_rate > 0.0 && coverage_radius_m > 0.0 &&
               bandwidth_mbps > 0.0;
    }
};

}  // namespace uavdc::model
