#include "uavdc/net/frame.hpp"

#include <utility>

namespace uavdc::net {

namespace {

/// Parse the decimal run in `[begin, end)`. Returns nullopt on a non-digit,
/// an empty run, or overflow past `cap`.
std::optional<std::size_t> parse_decimal(const char* begin, const char* end,
                                         std::size_t cap) {
    if (begin == end) return std::nullopt;
    std::size_t v = 0;
    for (const char* p = begin; p != end; ++p) {
        if (*p < '0' || *p > '9') return std::nullopt;
        const auto digit = static_cast<std::size_t>(*p - '0');
        if (v > cap / 10 || v * 10 > cap - digit) return std::nullopt;
        v = v * 10 + digit;
    }
    return v;
}

}  // namespace

Frame FrameDecoder::reject(std::size_t resync_from, const std::string& why) {
    ++malformed_;
    buf_.erase(0, resync_from);
    have_header_ = false;
    Frame f;
    f.malformed = true;
    f.error = why;
    return f;
}

std::optional<Frame> FrameDecoder::next_length_prefixed() {
    if (!have_header_) {
        const std::size_t nl = buf_.find('\n');
        if (nl == std::string::npos) {
            // Header still arriving — but a "header" longer than any valid
            // `$<len>` line is damage, not patience.
            if (buf_.size() > 32) {
                return reject(buf_.size(), "unterminated length header");
            }
            return std::nullopt;
        }
        const auto len = parse_decimal(buf_.data() + 1, buf_.data() + nl,
                                       max_frame_bytes_);
        if (!len.has_value()) {
            // Resync at the newline that ended the bad header.
            return reject(nl + 1, "bad length header: " +
                                      buf_.substr(0, nl));
        }
        have_header_ = true;
        header_len_ = nl + 1;
        body_len_ = *len;
    }
    if (buf_.size() < header_len_ + body_len_) return std::nullopt;
    Frame f;
    f.payload = buf_.substr(header_len_, body_len_);
    f.length_prefixed = true;
    buf_.erase(0, header_len_ + body_len_);
    have_header_ = false;
    ++frames_;
    return f;
}

std::optional<Frame> FrameDecoder::next() {
    if (buf_.empty()) return std::nullopt;
    if (have_header_ || buf_[0] == '$') return next_length_prefixed();

    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) {
        if (buf_.size() > max_frame_bytes_) {
            return reject(buf_.size(), "newline frame exceeds limit");
        }
        return std::nullopt;
    }
    if (nl > max_frame_bytes_) {
        return reject(nl + 1, "newline frame exceeds limit");
    }
    Frame f;
    f.payload = buf_.substr(0, nl);
    // Tolerate CRLF from interactive clients.
    if (!f.payload.empty() && f.payload.back() == '\r') f.payload.pop_back();
    buf_.erase(0, nl + 1);
    ++frames_;
    return f;
}

std::string encode_frame(const std::string& payload, bool length_prefixed) {
    if (!length_prefixed) return payload + "\n";
    std::string out;
    out.reserve(payload.size() + 16);
    out += '$';
    out += std::to_string(payload.size());
    out += '\n';
    out += payload;
    return out;
}

}  // namespace uavdc::net
