#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace uavdc::net {

/// One decoded request/response payload plus how it was framed — responses
/// are framed the same way as the request they answer, so newline clients
/// (netcat, the JSONL harness) and length-prefixed clients can share a
/// connection.
struct Frame {
    std::string payload;
    bool length_prefixed{false};
    /// Set when the frame was syntactically broken at the *framing* layer
    /// (bad length header, oversized declaration). The payload then holds a
    /// short diagnostic instead of data; the connection stays usable.
    bool malformed{false};
    std::string error;  ///< diagnostic when `malformed`
};

/// Incremental decoder for the uavdc wire protocol. Two interleavable
/// framings, chosen per frame by the first byte:
///
///   `$<decimal-len>\n<len payload bytes>`   length-prefixed (binary-safe)
///   `<payload>\n`                           newline-delimited (JSONL)
///
/// Feed raw bytes with `feed()`, then drain complete frames with `next()`.
/// Framing-level damage (unparsable length header, a declared length above
/// `max_frame_bytes`) yields a `malformed` frame and resynchronises at the
/// next newline rather than poisoning the connection. An unterminated
/// newline frame that grows past `max_frame_bytes` is also cut off as
/// malformed so a stream that never sends '\n' cannot balloon memory.
class FrameDecoder {
  public:
    explicit FrameDecoder(std::size_t max_frame_bytes = 16u << 20)
        : max_frame_bytes_(max_frame_bytes) {}

    /// Append raw bytes from the peer.
    void feed(const char* data, std::size_t n) { buf_.append(data, n); }
    void feed(const std::string& data) { buf_.append(data); }

    /// Pop the next complete frame, or nullopt if more bytes are needed.
    std::optional<Frame> next();

    /// True when bytes of a partially received frame are pending — i.e.
    /// the peer stopped mid-frame (truncation) if EOF follows.
    [[nodiscard]] bool mid_frame() const { return !buf_.empty(); }

    /// Frames decoded OK / frames rejected as malformed, over the decoder's
    /// lifetime (feeds the transport stats counters).
    [[nodiscard]] std::uint64_t frames() const { return frames_; }
    [[nodiscard]] std::uint64_t malformed() const { return malformed_; }

  private:
    std::optional<Frame> next_length_prefixed();
    Frame reject(std::size_t resync_from, const std::string& why);

    std::string buf_;
    std::size_t max_frame_bytes_;
    std::uint64_t frames_{0};
    std::uint64_t malformed_{0};
    // Parsed header of a length-prefixed frame whose payload is still
    // arriving: {header bytes to skip, payload length}.
    bool have_header_{false};
    std::size_t header_len_{0};
    std::size_t body_len_{0};
};

/// Frame `payload` for the wire in the given framing.
std::string encode_frame(const std::string& payload, bool length_prefixed);

}  // namespace uavdc::net
