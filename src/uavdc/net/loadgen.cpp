#include "uavdc/net/loadgen.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/io/serialize.hpp"
#include "uavdc/net/frame.hpp"
#include "uavdc/net/socket.hpp"
#include "uavdc/service/request.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/util/timer.hpp"
#include "uavdc/workload/generator.hpp"

namespace uavdc::net {

namespace {

constexpr std::size_t kReadChunk = 64u * 1024;

struct BuiltWorkload {
    std::vector<std::string> prime;  ///< inline registrations, ids "p<i>"
    std::vector<std::string> load;   ///< ref requests, ids "r<k>"
};

/// Deterministic request texts: instance i registered by "p<i>", load
/// request k = planner[k % P] against instance[k % I] by fingerprint ref.
/// With requests >> P*I every (planner, instance) pair past its first use
/// is a response-cache hit — the warm-cache regime the bench targets.
BuiltWorkload build_workload(const LoadgenConfig& cfg) {
    UAVDC_REQUIRE(cfg.instances > 0 && cfg.requests >= 0)
        << "loadgen: instances must be > 0, requests >= 0";
    UAVDC_REQUIRE(cfg.devices_lo > 0 && cfg.devices_hi >= cfg.devices_lo)
        << "loadgen: invalid device count range";
    const std::vector<std::string> planners =
        cfg.planners.empty() ? std::vector<std::string>{"alg2"}
                             : cfg.planners;

    util::Rng rng(cfg.seed);
    BuiltWorkload w;
    std::vector<std::uint64_t> fps;
    for (int i = 0; i < cfg.instances; ++i) {
        workload::GeneratorConfig g;
        g.num_devices = util::checked_cast<int>(
            rng.uniform_int(cfg.devices_lo, cfg.devices_hi));
        g.region_w = rng.uniform(180.0, 420.0);
        g.region_h = rng.uniform(180.0, 420.0);
        g.min_mb = 40.0;
        g.max_mb = 400.0;
        g.uav.energy_j = rng.uniform(2.5e4, 8.0e4);
        const model::Instance inst = workload::generate(g, rng.next_u64());
        fps.push_back(core::PlanningContext::instance_fingerprint(inst));

        service::PlanRequest req;
        req.id = "p";
        req.id += std::to_string(i);
        req.planner = planners[0];
        req.instance = inst;
        w.prime.push_back(service::to_json(req).dump());
    }
    for (int k = 0; k < cfg.requests; ++k) {
        service::PlanRequest req;
        req.id = "r";
        req.id += std::to_string(k);
        req.planner = planners[static_cast<std::size_t>(k) %
                               planners.size()];
        req.instance_ref =
            fps[static_cast<std::size_t>(k) %
                static_cast<std::size_t>(cfg.instances)];
        w.load.push_back(service::to_json(req).dump());
    }
    return w;
}

/// Top-level `"status"` of a response payload. Object keys are serialized
/// sorted and "status" sorts after every other response key, so the
/// *rightmost* occurrence is the top-level one regardless of what the
/// nested result contains.
std::string status_of(const std::string& payload) {
    const std::size_t pos = payload.rfind("\"status\":\"");
    if (pos == std::string::npos) return "";
    const std::size_t start = pos + 10;
    const std::size_t end = payload.find('"', start);
    if (end == std::string::npos) return "";
    return payload.substr(start, end - start);
}

/// Top-level `"id"` — first occurrence is top-level (see router detagging
/// rationale: every key sorting before "id" holds a non-string, and string
/// escaping keeps the pattern out of error text).
std::string id_of(const std::string& payload) {
    const std::size_t pos = payload.find("\"id\":\"");
    if (pos == std::string::npos) return "";
    const std::size_t start = pos + 6;
    const std::size_t end = payload.find('"', start);
    if (end == std::string::npos) return "";
    return payload.substr(start, end - start);
}

}  // namespace

std::string loadgen_workload_jsonl(const LoadgenConfig& cfg) {
    const BuiltWorkload w = build_workload(cfg);
    std::string out;
    for (const auto& line : w.prime) {
        out += line;
        out += '\n';
    }
    // Same barrier the TCP client places between its phases: without it,
    // early load requests race the priming plans and re-plan as cache
    // misses — deterministic bytes, but a different `cache_hit` flag than
    // the TCP run, which would read as a transport divergence.
    out += R"({"op":"drain","id":"drain-primed"})";
    out += '\n';
    for (const auto& line : w.load) {
        out += line;
        out += '\n';
    }
    out += R"({"op":"drain","id":"drain-final"})";
    out += '\n';
    return out;
}

LoadgenResult run_loadgen(const LoadgenConfig& cfg) {
    UAVDC_REQUIRE(cfg.port > 0) << "loadgen: --port is required";
    UAVDC_REQUIRE(cfg.connections > 0 && cfg.pipeline > 0)
        << "loadgen: connections and pipeline must be positive";
    const BuiltWorkload w = build_workload(cfg);
    LoadgenResult result;

    struct Conn {
        Socket sock;
        FrameDecoder decoder;
        std::string outbuf;
        std::vector<std::uint32_t> assigned;  ///< load indices, in order
        std::size_t cursor{0};
        int in_flight{0};

        Conn(Socket s, std::size_t max_frame)
            : sock(std::move(s)), decoder(max_frame) {}
    };

    std::vector<std::unique_ptr<Conn>> conns;
    const auto n_conns = static_cast<std::size_t>(cfg.connections);
    for (std::size_t ci = 0; ci < n_conns; ++ci) {
        conns.push_back(std::make_unique<Conn>(
            Socket::connect_tcp(cfg.host, cfg.port), cfg.max_frame_bytes));
        conns.back()->sock.set_nodelay(true);
    }
    for (std::size_t k = 0; k < w.load.size(); ++k) {
        conns[k % n_conns]->assigned.push_back(
            static_cast<std::uint32_t>(k));
    }

    // Phase 1: register every instance through one connection, barrier'd
    // with `drain`, so phase-2 refs resolve on any connection (and on
    // every shard behind a router, which hashes refs to the same place the
    // inline registration went).
    {
        Conn& c = *conns[0];
        std::string batch;
        for (const auto& line : w.prime) {
            batch += encode_frame(line, cfg.length_prefixed);
        }
        batch += encode_frame(R"({"op":"drain","id":"prime-drain"})",
                              cfg.length_prefixed);
        if (!c.sock.write_all(batch)) {
            throw std::runtime_error("loadgen: priming write failed");
        }
        std::size_t got = 0;
        char buf[kReadChunk];
        while (got < w.prime.size() + 1) {
            const IoResult r = c.sock.read_some(buf, sizeof(buf));
            if (r.status != IoStatus::kOk) {
                throw std::runtime_error(
                    "loadgen: connection lost during priming");
            }
            c.decoder.feed(buf, r.n);
            while (auto f = c.decoder.next()) {
                ++got;
                if (cfg.capture && f->payload.find("\"op\":") ==
                                       std::string::npos) {
                    result.responses.push_back(f->payload);
                }
            }
        }
    }

    for (auto& c : conns) c->sock.set_nonblocking(true);

    // Phase 2: pipelined round-robin load.
    const std::uint64_t total = w.load.size();
    std::vector<double> start_s(w.load.size(), 0.0);
    util::Timer timer;

    const auto pump_send = [&](Conn& c) {
        while (c.in_flight < cfg.pipeline && c.cursor < c.assigned.size()) {
            const std::uint32_t k = c.assigned[c.cursor++];
            c.outbuf += encode_frame(w.load[k], cfg.length_prefixed);
            start_s[k] = timer.seconds();
            ++c.in_flight;
            ++result.sent;
        }
    };

    const auto on_response = [&](Conn& c, const Frame& f) {
        const double now = timer.seconds();
        const std::string id = id_of(f.payload);
        if (id.empty() || id[0] != 'r') return;  // not a load response
        const auto k = static_cast<std::size_t>(
            std::stoull(id.substr(1)));
        if (k >= start_s.size()) return;
        result.latency.record(now - start_s[k]);
        ++result.received;
        --c.in_flight;
        const std::string status = status_of(f.payload);
        if (status == "ok") {
            ++result.ok;
            if (f.payload.find("\"cache_hit\":true") != std::string::npos) {
                ++result.cache_hits;
            }
        } else {
            ++result.errors;
        }
        if (cfg.capture) result.responses.push_back(f.payload);
    };

    util::Timer wall;
    while (result.received < total) {
        if (wall.millis() > cfg.timeout_ms) {
            result.timed_out = true;
            break;
        }
        std::vector<PollEntry> entries;
        for (auto& c : conns) {
            pump_send(*c);
            PollEntry e;
            e.fd = c->sock.fd();
            e.want_read = c->in_flight > 0;
            e.want_write = !c->outbuf.empty();
            entries.push_back(e);
        }
        poll_wait(entries, 200);
        bool lost = false;
        for (std::size_t ci = 0; ci < conns.size(); ++ci) {
            Conn& c = *conns[ci];
            if (entries[ci].error) {
                lost = true;
                continue;
            }
            if (entries[ci].writable && !c.outbuf.empty()) {
                const IoResult r =
                    c.sock.write_some(c.outbuf.data(), c.outbuf.size());
                if (r.status == IoStatus::kOk) {
                    c.outbuf.erase(0, r.n);
                } else if (r.status == IoStatus::kError) {
                    lost = true;
                }
            }
            if (entries[ci].readable) {
                char buf[kReadChunk];
                while (true) {
                    const IoResult r = c.sock.read_some(buf, sizeof(buf));
                    if (r.status == IoStatus::kOk) {
                        c.decoder.feed(buf, r.n);
                        while (auto f = c.decoder.next()) {
                            if (!f->malformed) on_response(c, *f);
                        }
                        continue;
                    }
                    if (r.status == IoStatus::kEof ||
                        r.status == IoStatus::kError) {
                        lost = true;
                    }
                    break;
                }
            }
        }
        if (lost) {
            result.timed_out = true;
            break;
        }
    }
    result.elapsed_s = timer.seconds();
    result.rps = result.elapsed_s > 0.0
                     ? static_cast<double>(result.received) /
                           result.elapsed_s
                     : 0.0;
    return result;
}

io::Json to_json(const LoadgenResult& r) {
    io::Json doc;
    doc["sent"] = r.sent;
    doc["received"] = r.received;
    doc["ok"] = r.ok;
    doc["cache_hits"] = r.cache_hits;
    doc["errors"] = r.errors;
    doc["timed_out"] = r.timed_out;
    doc["elapsed_s"] = r.elapsed_s;
    doc["rps"] = r.rps;
    io::Json lat;
    lat["count"] = r.latency.count();
    lat["mean_ms"] = r.latency.mean_s() * 1e3;
    lat["p50_ms"] = r.latency.quantile(0.50) * 1e3;
    lat["p95_ms"] = r.latency.quantile(0.95) * 1e3;
    lat["p99_ms"] = r.latency.quantile(0.99) * 1e3;
    lat["max_ms"] = r.latency.max_s() * 1e3;
    doc["latency_ms"] = std::move(lat);
    return doc;
}

}  // namespace uavdc::net
