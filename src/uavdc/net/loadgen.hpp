#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uavdc/core/metrics.hpp"
#include "uavdc/io/json.hpp"

namespace uavdc::net {

/// Load-test client configuration (`uavdc loadgen --connect`). The request
/// stream is deterministic in `seed`, so the same config replayed against
/// the JSONL path (`loadgen_workload_jsonl`) must produce byte-identical
/// response payloads — the transport conformance check.
struct LoadgenConfig {
    std::string host = "127.0.0.1";
    int port = 0;                 ///< required: server or router port
    int connections = 8;          ///< concurrent persistent connections
    int pipeline = 32;            ///< max in-flight requests per connection
    int requests = 10000;         ///< load-phase plan requests
    int instances = 4;            ///< distinct instances (cycled per request)
    int devices_lo = 12;          ///< per-instance device-count range
    int devices_hi = 24;
    std::uint64_t seed = 7;
    std::vector<std::string> planners;  ///< cycled; empty = {"alg2"}
    bool length_prefixed = true;  ///< wire framing for requests
    bool capture = false;         ///< keep every response payload (diffing)
    std::size_t max_frame_bytes = 16u << 20;
    int timeout_ms = 120000;      ///< overall give-up bound
};

struct LoadgenResult {
    std::uint64_t sent{0};
    std::uint64_t received{0};
    std::uint64_t ok{0};
    std::uint64_t cache_hits{0};
    std::uint64_t errors{0};   ///< responses with status != ok
    bool timed_out{false};
    double elapsed_s{0.0};     ///< load phase only (priming excluded)
    double rps{0.0};
    core::LatencyHistogram latency;  ///< enqueue -> response, seconds
    /// Response payloads in receive order (only when `capture`).
    std::vector<std::string> responses;
};

/// Drive the workload over TCP. Phase 1 registers every instance (inline,
/// one connection, barrier'd with `drain`) so the load phase can reference
/// by fingerprint from any connection without ordering hazards; phase 2
/// fans the `requests` plan requests round-robin over `connections`
/// pipelined connections and measures per-request latency.
[[nodiscard]] LoadgenResult run_loadgen(const LoadgenConfig& cfg);

/// The exact same logical workload as a JSONL stdin stream for
/// `uavdc serve`: priming requests, load requests, final `drain`. Piping
/// this through the JSONL path yields the reference responses that the TCP
/// path's captured responses are diffed against.
[[nodiscard]] std::string loadgen_workload_jsonl(const LoadgenConfig& cfg);

/// Summary document (`uavdc loadgen` prints this): counts, rps, latency
/// quantiles in milliseconds.
[[nodiscard]] io::Json to_json(const LoadgenResult& r);

}  // namespace uavdc::net
