#include "uavdc/net/process.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <sys/wait.h>
#include <unistd.h>

namespace uavdc::net {

std::string self_exe_path() {
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) throw std::runtime_error("readlink(/proc/self/exe) failed");
    return std::string(buf, static_cast<std::size_t>(n));
}

ChildProcess spawn_child(const std::vector<std::string>& argv) {
    if (argv.empty()) throw std::runtime_error("spawn_child: empty argv");
    auto [rd, wr] = Socket::pipe_pair();

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fork failed");
    if (pid == 0) {
        // Child: stdout -> pipe write end; restore default signal
        // disposition so a parent's SIGTERM handler is not inherited.
        ::signal(SIGTERM, SIG_DFL);
        ::signal(SIGINT, SIG_DFL);
        ::signal(SIGPIPE, SIG_DFL);
        while (::dup2(wr.fd(), STDOUT_FILENO) < 0 && errno == EINTR) {
        }
        // Both pipe-end descriptors close via dup2/exec; the Socket
        // destructors never run in the child after a successful exec.
        ::execv(cargv[0], cargv.data());
        ::_exit(127);  // exec failed
    }
    ChildProcess child;
    child.pid = pid;
    child.stdout_rd = std::move(rd);
    return child;
}

bool child_alive(pid_t pid) {
    if (pid <= 0) return false;
    int status = 0;
    pid_t rc = 0;
    do {
        rc = ::waitpid(pid, &status, WNOHANG);
    } while (rc < 0 && errno == EINTR);
    return rc == 0;  // 0 = still running; pid = reaped; -1 = already gone
}

void signal_child(pid_t pid, int signo) {
    if (pid > 0) ::kill(pid, signo);
}

int wait_child(pid_t pid) {
    int status = 0;
    pid_t rc = 0;
    do {
        rc = ::waitpid(pid, &status, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return -WTERMSIG(status);
    return -1;
}

std::optional<std::string> read_line(Socket& pipe, int timeout_ms) {
    std::string line;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    char ch = 0;
    while (true) {
        const IoResult r = pipe.read_some(&ch, 1);
        if (r.status == IoStatus::kOk) {
            if (ch == '\n') return line;
            line.push_back(ch);
            continue;
        }
        if (r.status == IoStatus::kEof || r.status == IoStatus::kError) {
            return std::nullopt;
        }
        // kWouldBlock on a non-blocking pipe: wait for readability.
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return std::nullopt;
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - now)
                              .count();
        std::vector<PollEntry> entries{
            {pipe.fd(), true, false, false, false, false}};
        poll_wait(entries, static_cast<int>(left) + 1);
    }
}

}  // namespace uavdc::net
