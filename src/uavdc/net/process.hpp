#pragma once

#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "uavdc/net/socket.hpp"

namespace uavdc::net {

/// A spawned worker process with its stdout captured through a pipe (the
/// `--announce` handshake: a worker bound to port 0 prints
/// `LISTENING <port>` as its first stdout line; everything after is noise
/// the parent drains and discards).
struct ChildProcess {
    pid_t pid{-1};
    Socket stdout_rd;

    [[nodiscard]] bool valid() const { return pid > 0; }
};

/// Absolute path of the running executable (/proc/self/exe) — how the
/// router respawns `uavdc serve --tcp` workers of the same build.
[[nodiscard]] std::string self_exe_path();

/// fork+exec `argv` (argv[0] is the program path) with stdout redirected
/// into the returned pipe. Throws std::runtime_error when the fork or pipe
/// fails; an exec failure surfaces as the child exiting 127.
[[nodiscard]] ChildProcess spawn_child(const std::vector<std::string>& argv);

/// True while the child has not yet been reaped (non-blocking waitpid; a
/// child that exited is reaped by this call and reported dead).
[[nodiscard]] bool child_alive(pid_t pid);

/// Send a signal (SIGTERM for graceful drain, SIGKILL for the crash drill).
void signal_child(pid_t pid, int signo);

/// Blocking reap; returns the exit status (or -signo for a signal death).
int wait_child(pid_t pid);

/// Read one '\n'-terminated line from the pipe, waiting up to `timeout_ms`.
/// nullopt on timeout or EOF-before-newline.
[[nodiscard]] std::optional<std::string> read_line(Socket& pipe,
                                                   int timeout_ms);

}  // namespace uavdc::net
