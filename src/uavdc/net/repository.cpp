#include "uavdc/net/repository.hpp"

#include <fstream>
#include <stdexcept>

#include "uavdc/io/serialize.hpp"

namespace uavdc::net {

using service::fingerprint_from_hex;
using service::fingerprint_to_hex;

Repository::Repository(std::string path) : path_(std::move(path)) {
    out_ = std::fopen(path_.c_str(), "ae");  // append + O_CLOEXEC
    if (out_ == nullptr) {
        throw std::runtime_error("repository: cannot open '" + path_ +
                                 "' for append");
    }
}

Repository::~Repository() {
    if (out_ != nullptr) std::fclose(out_);
}

Repository::LoadResult Repository::load(service::PlanService& svc) {
    LoadResult r;
    std::ifstream in(path_);
    if (!in) return r;  // nothing persisted yet
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        try {
            const io::Json doc = io::Json::parse(line);
            const std::string type = doc.string_or("type", "");
            if (type == "instance") {
                svc.preload_instance(io::instance_from_json(doc.at("instance")));
                ++r.instances;
            } else if (type == "response") {
                svc.preload_response(
                    fingerprint_from_hex(doc.at("key_hi").as_string()),
                    fingerprint_from_hex(doc.at("key_lo").as_string()),
                    doc.at("canon").as_string(),
                    fingerprint_from_hex(doc.at("check").as_string()),
                    doc.at("result"));
                ++r.responses;
            } else {
                ++r.skipped;
            }
        } catch (const std::exception&) {
            // A SIGKILL mid-append leaves at most one damaged line;
            // anything after it is suspect too, so stop replaying here.
            ++r.skipped;
            break;
        }
    }
    return r;
}

service::PlanService::StoreHooks Repository::hooks() {
    service::PlanService::StoreHooks h;
    h.on_instance = [this](std::uint64_t fp, const model::Instance& inst) {
        append_instance(fp, inst);
    };
    h.on_response = [this](std::uint64_t key_hi, std::uint64_t key_lo,
                           const std::string& canon, std::uint64_t check,
                           const io::Json& result) {
        append_response(key_hi, key_lo, canon, check, result);
    };
    return h;
}

void Repository::append_instance(std::uint64_t fp,
                                 const model::Instance& inst) {
    io::Json doc;
    doc["type"] = "instance";
    doc["fp"] = fingerprint_to_hex(fp);
    doc["instance"] = io::to_json(inst);
    append_line(doc.dump());
}

void Repository::append_response(std::uint64_t key_hi, std::uint64_t key_lo,
                                 const std::string& options_canon,
                                 std::uint64_t instance_check,
                                 const io::Json& result) {
    io::Json doc;
    doc["type"] = "response";
    doc["key_hi"] = fingerprint_to_hex(key_hi);
    doc["key_lo"] = fingerprint_to_hex(key_lo);
    doc["canon"] = options_canon;
    doc["check"] = fingerprint_to_hex(instance_check);
    doc["result"] = result;
    append_line(doc.dump());
}

void Repository::append_line(const std::string& line) {
    std::lock_guard lock(mu_);
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    // Push into the kernel page cache now: data there survives SIGKILL of
    // this process (fsync-grade durability against power loss is out of
    // scope for the loopback shard drill).
    std::fflush(out_);
    ++appended_;
}

std::uint64_t Repository::appended() const {
    std::lock_guard lock(mu_);
    return appended_;
}

}  // namespace uavdc::net
