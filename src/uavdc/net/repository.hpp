#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "uavdc/service/plan_service.hpp"

namespace uavdc::net {

/// Append-only, file-backed store of registered instances and cached
/// planning results, keyed exactly like the in-memory layers: instances by
/// their 64-bit content fingerprint, responses by the 128-bit
/// (instance fp, planner+options fp) cache key *plus* the PR 7 collision
/// guards (canonical options string, independent instance check hash) so a
/// reloaded entry is verified on every hit just like a live one.
///
/// Format: one JSON document per line —
///   {"type":"instance","fp":"16-hex","instance":{...}}
///   {"type":"response","key_hi":"16-hex","key_lo":"16-hex",
///    "canon":"...","check":"16-hex","result":{...}}
///
/// Every append is flushed to the kernel before returning, so a SIGKILLed
/// process loses at most the record being written when the signal landed;
/// `load()` tolerates exactly that — a truncated or unparsable *tail* is
/// skipped (counted in `skipped`), everything before it replays.
///
/// Thread safety: appends take an internal mutex (PlanService store hooks
/// fire from multiple workers at once). `load()` is not concurrent with
/// appends — call it before serving.
class Repository {
  public:
    /// Open for appending (the file is created if missing; parent directory
    /// must exist). Throws std::runtime_error on I/O failure.
    explicit Repository(std::string path);
    ~Repository();

    Repository(const Repository&) = delete;
    Repository& operator=(const Repository&) = delete;

    struct LoadResult {
        std::uint64_t instances{0};
        std::uint64_t responses{0};
        std::uint64_t skipped{0};  ///< truncated/unparsable lines
    };

    /// Replay every record into the service via its `preload_*` entry
    /// points (which bypass the store hooks — reloading must not re-append
    /// what it just read).
    LoadResult load(service::PlanService& svc);

    /// Durability taps for `PlanService::Config::store`, bound to this
    /// repository. The repository must outlive the service.
    [[nodiscard]] service::PlanService::StoreHooks hooks();

    void append_instance(std::uint64_t fp, const model::Instance& inst);
    void append_response(std::uint64_t key_hi, std::uint64_t key_lo,
                         const std::string& options_canon,
                         std::uint64_t instance_check,
                         const io::Json& result);

    [[nodiscard]] std::uint64_t appended() const;
    [[nodiscard]] const std::string& path() const { return path_; }

  private:
    void append_line(const std::string& line);

    std::string path_;
    mutable std::mutex mu_;
    std::FILE* out_{nullptr};
    std::uint64_t appended_{0};
};

}  // namespace uavdc::net
