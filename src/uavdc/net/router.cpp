#include "uavdc/net/router.hpp"

#include <csignal>
#include <map>
#include <memory>
#include <utility>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/io/serialize.hpp"
#include "uavdc/net/frame.hpp"
#include "uavdc/net/process.hpp"
#include "uavdc/net/socket.hpp"
#include "uavdc/service/request.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::net {

namespace {

constexpr std::size_t kReadChunk = 64u * 1024;

struct ClientConn {
    Socket sock;
    FrameDecoder decoder;
    std::string outbuf;
    std::uint64_t submitted{0};
    std::uint64_t delivered{0};
    struct DrainWait {
        std::uint64_t threshold;
        std::string id;
        bool length_prefixed;
    };
    std::vector<DrainWait> drains;
    bool read_eof{false};
    bool dead{false};

    ClientConn(Socket s, std::size_t max_frame)
        : sock(std::move(s)), decoder(max_frame) {}
};

/// One forwarded-but-unanswered request. Entries leave the table only when
/// their response is handed to the client (or the client is gone), which is
/// exactly the exactly-once bookkeeping the resend path relies on.
struct PendingReq {
    std::uint64_t client_id{0};
    std::size_t shard{0};
    bool client_lp{false};
    bool sent{false};   ///< appended to a live upstream at least once
    std::string wire;   ///< length-prefixed tagged request frame
};

struct Upstream {
    Socket sock;
    FrameDecoder decoder;
    std::string outbuf;
    bool up{false};
    pid_t pid{-1};        ///< managed mode only
    Socket child_out;     ///< managed mode: announce pipe / stdout noise
    int endpoint_port{-1};

    explicit Upstream(std::size_t max_frame) : decoder(max_frame) {}
};

}  // namespace

Router::RunResult Router::run() {
    RunResult result;
    TransportStats& t = result.transport;

    const bool managed = cfg_.endpoints.empty();
    const std::size_t nshards =
        managed ? static_cast<std::size_t>(cfg_.shards)
                : cfg_.endpoints.size();
    UAVDC_REQUIRE(nshards > 0) << "router: need --shards or endpoints";

    std::vector<std::unique_ptr<Upstream>> shards;
    for (std::size_t i = 0; i < nshards; ++i) {
        shards.push_back(std::make_unique<Upstream>(cfg_.max_frame_bytes));
        if (!managed) {
            shards[i]->endpoint_port = cfg_.endpoints[i];
        }
    }

    std::map<std::uint64_t, PendingReq> pending;
    std::uint64_t next_seq = 1;

    const auto shard_argv = [&](std::size_t i) {
        std::vector<std::string> argv{self_exe_path(), "serve", "--tcp",
                                      "--host=" + cfg_.host, "--port=0",
                                      "--announce"};
        if (cfg_.shard_workers > 0) {
            argv.push_back("--workers=" +
                           std::to_string(cfg_.shard_workers));
        }
        if (!cfg_.repo_dir.empty()) {
            argv.push_back("--repo=" + cfg_.repo_dir + "/shard-" +
                           std::to_string(i) + ".jsonl");
        }
        return argv;
    };

    /// (Re)connect shard `i`, resending everything still pending for it.
    /// Returns false (shard stays down) on any failure — the next loop
    /// iteration retries, paced by the poll timeout.
    const auto revive = [&](std::size_t i) {
        Upstream& u = *shards[i];
        if (managed && !child_alive(u.pid)) {
            const bool had_child = u.pid > 0;
            ChildProcess child;
            try {
                child = spawn_child(shard_argv(i));
            } catch (const std::exception&) {
                return false;
            }
            child.stdout_rd.set_nonblocking(true);
            const auto line =
                read_line(child.stdout_rd, cfg_.spawn_timeout_ms);
            if (!line.has_value() ||
                line->rfind("LISTENING ", 0) != 0) {
                signal_child(child.pid, SIGKILL);
                (void)wait_child(child.pid);
                return false;
            }
            u.pid = child.pid;
            u.child_out = std::move(child.stdout_rd);
            u.endpoint_port = std::stoi(line->substr(10));
            if (had_child) ++t.shard_respawns;
        }
        try {
            u.sock = Socket::connect_tcp(cfg_.host, u.endpoint_port);
        } catch (const std::exception&) {
            return false;
        }
        u.sock.set_nonblocking(true);
        u.sock.set_nodelay(true);
        u.decoder = FrameDecoder(cfg_.max_frame_bytes);
        u.outbuf.clear();
        u.up = true;
        for (auto& [seq, p] : pending) {
            if (p.shard != i) continue;
            if (p.sent) ++t.retried_after_shard_death;
            u.outbuf += p.wire;
            p.sent = true;
        }
        return true;
    };

    const auto mark_down = [&](std::size_t i) {
        Upstream& u = *shards[i];
        u.up = false;
        u.sock.close();
        u.outbuf.clear();
        u.decoder = FrameDecoder(cfg_.max_frame_bytes);
    };

    // Initial bring-up: every shard must come up before we take traffic.
    for (std::size_t i = 0; i < nshards; ++i) {
        int attempts = 0;
        while (!revive(i)) {
            if (++attempts > 50) {
                throw std::runtime_error(
                    "router: shard " + std::to_string(i) +
                    " failed to start");
            }
            std::vector<PollEntry> none;
            poll_wait(none, 100);  // plain sleep between attempts
        }
    }

    Socket listener = Socket::listen_tcp(cfg_.host, cfg_.port, 256);
    listener.set_nonblocking(true);
    if (cfg_.on_listening) cfg_.on_listening(listener.local_port());

    std::map<std::uint64_t, std::unique_ptr<ClientConn>> conns;
    std::uint64_t next_conn_id = 1;
    bool stopping = false;

    const auto stop_requested = [&] {
        return cfg_.stop != nullptr &&
               cfg_.stop->load(std::memory_order_acquire);
    };

    const auto control_reply = [&](ClientConn& c, const std::string& id,
                                   const std::string& op,
                                   bool length_prefixed) {
        io::Json reply;
        reply["id"] = id;
        reply["op"] = op;
        reply["status"] = "ok";
        TransportStats snap = t;
        snap.open_connections = conns.size();
        snap.write_queue_bytes = 0;
        for (const auto& [cid, cc] : conns) {
            snap.write_queue_bytes += cc->outbuf.size();
        }
        io::Json stats;
        stats["transport"] = to_json(snap);
        stats["shards"] = nshards;
        stats["pending"] = pending.size();
        reply["stats"] = std::move(stats);
        c.outbuf += encode_frame(reply.dump(), length_prefixed);
        ++t.control;
    };

    const auto release_drains = [&](ClientConn& c) {
        for (std::size_t i = 0; i < c.drains.size();) {
            if (c.delivered >= c.drains[i].threshold) {
                control_reply(c, c.drains[i].id, "drain",
                              c.drains[i].length_prefixed);
                c.drains.erase(c.drains.begin() +
                               static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    };

    const auto bad_request = [&](ClientConn& c, const std::string& id,
                                 const std::string& why,
                                 bool length_prefixed) {
        service::PlanResponse resp;
        resp.id = id;
        resp.status = service::ResponseStatus::kBadRequest;
        resp.error = why;
        c.outbuf += encode_frame(service::response_line(resp),
                                 length_prefixed);
    };

    /// Shard selector: the request's instance fingerprint when one can be
    /// determined (ref directly, inline by content hash); an undeterminable
    /// key routes to shard 0, whose PlanService produces the authoritative
    /// bad_request.
    const auto shard_of = [&](const io::Json& doc) -> std::size_t {
        std::uint64_t fp = 0;
        try {
            if (doc.contains("instance_ref")) {
                fp = service::fingerprint_from_hex(
                    doc.at("instance_ref").as_string());
            } else if (doc.contains("instance")) {
                const model::Instance inst =
                    io::instance_from_json(doc.at("instance"));
                fp = core::PlanningContext::instance_fingerprint(inst);
            }
        } catch (const std::exception&) {
            fp = 0;
        }
        return static_cast<std::size_t>(fp % nshards);
    };

    const auto dispatch = [&](std::uint64_t conn_id, ClientConn& c,
                              const Frame& f, bool shed) {
        if (f.malformed) {
            ++t.frames_malformed;
            bad_request(c, "", "malformed frame: " + f.error, false);
            return;
        }
        ++t.frames_decoded;
        if (f.payload.empty()) return;

        io::Json doc;
        try {
            doc = io::Json::parse(f.payload);
        } catch (const std::exception& ex) {
            bad_request(c, "", std::string("unparseable frame: ") + ex.what(),
                        f.length_prefixed);
            return;
        }
        const std::string id =
            doc.is_object() ? doc.string_or("id", "") : "";
        const std::string op =
            doc.is_object() ? doc.string_or("op", "") : "";
        if (op == "stats") {
            control_reply(c, id, "stats", f.length_prefixed);
            return;
        }
        if (op == "drain") {
            if (c.delivered >= c.submitted) {
                control_reply(c, id, "drain", f.length_prefixed);
            } else {
                c.drains.push_back({c.submitted, id, f.length_prefixed});
            }
            return;
        }
        if (!op.empty()) {
            bad_request(c, id, "unknown op '" + op + "' (expected stats|drain)",
                        f.length_prefixed);
            return;
        }
        if (!doc.is_object()) {
            bad_request(c, id, "request must be a JSON object",
                        f.length_prefixed);
            return;
        }
        if (shed) {
            service::PlanResponse resp;
            resp.id = id;
            resp.status = service::ResponseStatus::kShutdown;
            resp.error = "router draining; request was not forwarded";
            c.outbuf += encode_frame(service::response_line(resp),
                                     f.length_prefixed);
            ++t.shed_on_shutdown;
            return;
        }

        const std::size_t shard = shard_of(doc);
        const std::uint64_t seq = next_seq++;
        doc["id"] = std::to_string(seq) + "#" + id;
        PendingReq p;
        p.client_id = conn_id;
        p.shard = shard;
        p.client_lp = f.length_prefixed;
        p.wire = encode_frame(doc.dump(), /*length_prefixed=*/true);
        if (shards[shard]->up) {
            shards[shard]->outbuf += p.wire;
            p.sent = true;
        }
        pending.emplace(seq, std::move(p));
        ++c.submitted;
        ++t.requests;
    };

    const auto pump_frames = [&](std::uint64_t conn_id, ClientConn& c) {
        while (!c.dead && c.outbuf.size() < cfg_.write_queue_limit) {
            auto f = c.decoder.next();
            if (!f) break;
            dispatch(conn_id, c, *f, /*shed=*/false);
        }
    };

    /// De-tag a shard response and hand it to its client. The id prefix
    /// (`"<seq>#"`) is stripped textually — object keys are sorted by the
    /// serializer, so the first `"id":"` in the payload is the top-level id
    /// (every earlier key holds a number/bool, and escaping prevents the
    /// sequence appearing inside an error string). Anything unexpected
    /// falls back to a full parse.
    const auto forward_response = [&](const std::string& payload) {
        std::uint64_t seq = 0;
        std::string out;
        bool parsed = false;
        const std::size_t pos = payload.find("\"id\":\"");
        if (pos != std::string::npos) {
            std::size_t i = pos + 6;
            std::uint64_t v = 0;
            bool digits = false;
            while (i < payload.size() && payload[i] >= '0' &&
                   payload[i] <= '9') {
                v = v * 10 + static_cast<std::uint64_t>(payload[i] - '0');
                digits = true;
                ++i;
            }
            if (digits && i < payload.size() && payload[i] == '#') {
                seq = v;
                out = payload;
                out.erase(pos + 6, i + 1 - (pos + 6));
                parsed = true;
            }
        }
        if (!parsed) {
            try {
                io::Json doc = io::Json::parse(payload);
                const std::string tagged = doc.string_or("id", "");
                const std::size_t hash = tagged.find('#');
                if (hash == std::string::npos) return;  // not ours; drop
                seq = std::stoull(tagged.substr(0, hash));
                doc["id"] = tagged.substr(hash + 1);
                out = doc.dump();
            } catch (const std::exception&) {
                return;  // undecodable response; drop
            }
        }
        auto it = pending.find(seq);
        if (it == pending.end()) return;  // duplicate after resend race
        const PendingReq p = std::move(it->second);
        pending.erase(it);
        auto cit = conns.find(p.client_id);
        if (cit == conns.end() || cit->second->dead) return;
        ClientConn& c = *cit->second;
        c.outbuf += encode_frame(out, p.client_lp);
        ++c.delivered;
        ++t.responses;
        release_drains(c);
    };

    while (true) {
        if (!stopping && stop_requested()) {
            stopping = true;
            listener.close();
            for (auto& [id, c] : conns) {
                if (c->dead) continue;
                while (auto f = c->decoder.next()) {
                    dispatch(id, *c, *f, /*shed=*/true);
                }
            }
        }

        for (std::size_t i = 0; i < nshards; ++i) {
            if (!shards[i]->up && !stopping) (void)revive(i);
        }

        for (auto it = conns.begin(); it != conns.end();) {
            ClientConn& c = *it->second;
            const bool drained = c.submitted == c.delivered &&
                                 c.outbuf.empty() && c.drains.empty();
            if (c.dead || ((c.read_eof || stopping) && drained)) {
                ++t.connections_closed;
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
        if (stopping && conns.empty()) break;

        std::vector<PollEntry> entries;
        // Slot tags: 0 = ignore, 1..n = client id, -(i+1) = shard i,
        // encoded in a parallel vector of pair<kind, index>.
        enum class Kind { kIgnore, kListener, kClient, kShard, kChildOut };
        std::vector<std::pair<Kind, std::uint64_t>> tags;
        const auto push = [&](PollEntry e, Kind k, std::uint64_t idx) {
            entries.push_back(e);
            tags.emplace_back(k, idx);
        };
        if (cfg_.wake_fd >= 0) {
            push({cfg_.wake_fd, true, false, false, false, false},
                 Kind::kIgnore, 0);
        }
        if (!stopping) {
            push({listener.fd(), true, false, false, false, false},
                 Kind::kListener, 0);
        }
        for (const auto& [id, c] : conns) {
            PollEntry e;
            e.fd = c->sock.fd();
            e.want_read = !stopping && !c->read_eof && !c->dead &&
                          c->outbuf.size() < cfg_.write_queue_limit;
            e.want_write = !c->outbuf.empty() && !c->dead;
            push(e, Kind::kClient, id);
        }
        for (std::size_t i = 0; i < nshards; ++i) {
            Upstream& u = *shards[i];
            if (u.up) {
                PollEntry e;
                e.fd = u.sock.fd();
                e.want_read = true;
                e.want_write = !u.outbuf.empty();
                push(e, Kind::kShard, i);
            }
            if (managed && u.child_out.valid()) {
                push({u.child_out.fd(), true, false, false, false, false},
                     Kind::kChildOut, i);
            }
        }
        poll_wait(entries, cfg_.poll_timeout_ms);

        for (std::size_t i = 0; i < entries.size(); ++i) {
            const auto [kind, idx] = tags[i];
            switch (kind) {
                case Kind::kIgnore:
                    break;
                case Kind::kListener: {
                    if (!entries[i].readable) break;
                    while (auto accepted = listener.accept_one()) {
                        accepted->set_nonblocking(true);
                        accepted->set_nodelay(true);
                        conns.emplace(
                            next_conn_id,
                            std::make_unique<ClientConn>(
                                std::move(*accepted), cfg_.max_frame_bytes));
                        ++next_conn_id;
                        ++t.connections_opened;
                    }
                    break;
                }
                case Kind::kClient: {
                    auto it = conns.find(idx);
                    if (it == conns.end()) break;
                    ClientConn& c = *it->second;
                    if (entries[i].error) {
                        c.dead = true;
                        break;
                    }
                    if (entries[i].readable && !c.read_eof && !c.dead &&
                        !stopping) {
                        char buf[kReadChunk];
                        while (c.outbuf.size() < cfg_.write_queue_limit) {
                            const IoResult r =
                                c.sock.read_some(buf, sizeof(buf));
                            if (r.status == IoStatus::kOk) {
                                t.bytes_in += r.n;
                                c.decoder.feed(buf, r.n);
                                pump_frames(idx, c);
                                continue;
                            }
                            if (r.status == IoStatus::kEof) {
                                c.read_eof = true;
                            }
                            if (r.status == IoStatus::kError) c.dead = true;
                            break;
                        }
                    }
                    if (entries[i].writable && !c.outbuf.empty() &&
                        !c.dead) {
                        const IoResult r = c.sock.write_some(
                            c.outbuf.data(), c.outbuf.size());
                        if (r.status == IoStatus::kOk) {
                            t.bytes_out += r.n;
                            c.outbuf.erase(0, r.n);
                        } else if (r.status == IoStatus::kError) {
                            c.dead = true;
                        }
                    }
                    break;
                }
                case Kind::kShard: {
                    Upstream& u = *shards[idx];
                    if (!u.up) break;
                    if (entries[i].error) {
                        mark_down(idx);
                        break;
                    }
                    if (entries[i].readable) {
                        char buf[kReadChunk];
                        bool lost = false;
                        while (true) {
                            const IoResult r =
                                u.sock.read_some(buf, sizeof(buf));
                            if (r.status == IoStatus::kOk) {
                                u.decoder.feed(buf, r.n);
                                while (auto f = u.decoder.next()) {
                                    if (f->malformed) {
                                        ++t.frames_malformed;
                                        continue;
                                    }
                                    forward_response(f->payload);
                                }
                                continue;
                            }
                            if (r.status == IoStatus::kEof ||
                                r.status == IoStatus::kError) {
                                lost = true;
                            }
                            break;
                        }
                        if (lost) {
                            mark_down(idx);
                            break;
                        }
                    }
                    if (entries[i].writable && !u.outbuf.empty()) {
                        const IoResult r = u.sock.write_some(
                            u.outbuf.data(), u.outbuf.size());
                        if (r.status == IoStatus::kOk) {
                            u.outbuf.erase(0, r.n);
                        } else if (r.status == IoStatus::kError) {
                            mark_down(idx);
                        }
                    }
                    break;
                }
                case Kind::kChildOut: {
                    // Post-announce worker stdout (final summaries etc.):
                    // drain and discard so the child never blocks on a full
                    // pipe; close on EOF so a dead child's POLLHUP doesn't
                    // spin the loop until the respawn replaces the pipe.
                    if (!entries[i].readable) break;
                    Socket& out = shards[idx]->child_out;
                    char buf[256];
                    while (true) {
                        const IoResult r = out.read_some(buf, sizeof(buf));
                        if (r.status == IoStatus::kOk) continue;
                        if (r.status != IoStatus::kWouldBlock) out.close();
                        break;
                    }
                    break;
                }
            }
        }
    }

    result.clean_shutdown = true;
    if (managed) {
        for (auto& u : shards) {
            if (u->pid > 0) signal_child(u->pid, SIGTERM);
        }
        for (auto& u : shards) {
            if (u->pid > 0 && wait_child(u->pid) != 0) {
                result.clean_shutdown = false;
            }
        }
    }
    return result;
}

}  // namespace uavdc::net
