#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "uavdc/net/transport_stats.hpp"

namespace uavdc::net {

struct RouterConfig {
    std::string host = "127.0.0.1";
    int port = 0;  ///< client-facing listen port (0 = ephemeral)

    /// Managed mode: spawn this many `uavdc serve --tcp --announce` worker
    /// processes (respawned on crash). Mutually exclusive with `endpoints`.
    int shards = 0;
    std::size_t shard_workers = 0;  ///< threads per worker (0 = default)
    /// Directory for per-shard repositories (`shard-<i>.jsonl`); empty
    /// disables durability (a respawned shard then starts cold).
    std::string repo_dir;

    /// Static mode (tests): route to already-running servers on these ports
    /// instead of spawning; a lost upstream is reconnected, not respawned.
    std::vector<int> endpoints;

    const std::atomic<bool>* stop = nullptr;
    int wake_fd = -1;
    int poll_timeout_ms = 200;
    int spawn_timeout_ms = 10000;  ///< announce-handshake wait per worker
    std::size_t max_frame_bytes = 16u << 20;
    std::size_t write_queue_limit = 8u << 20;
    std::function<void(int)> on_listening;
};

/// Thin request router in front of N `PlanService` shards.
///
/// Each client plan request is hashed to a shard by *instance fingerprint*
/// (`instance_ref` directly; inline instances by content hash), so every
/// request for one instance lands on the shard whose registry,
/// `PlanningContext` LRU, and response cache are warm for it. Requests are
/// re-tagged (`"<seq>#<original-id>"`) before forwarding so concurrent
/// clients with colliding ids stay distinguishable, and de-tagged on the
/// way back.
///
/// At-least-once upstream, exactly-once to the client: every forwarded
/// request stays in a pending table until its response has been handed to
/// the client. When a shard connection dies (crash, kill -9), the shard is
/// respawned (managed) or reconnected (static) and only the still-pending
/// requests are resent (`retried_after_shard_death`) — planning is
/// deterministic and cached, so a request whose response was lost in the
/// dead connection re-produces the identical payload, and one whose
/// response already reached the client is never resent.
///
/// `stats`/`drain` verbs are answered by the router itself; `drain` is the
/// same per-connection barrier the TCP server implements.
class Router {
  public:
    explicit Router(RouterConfig cfg) : cfg_(std::move(cfg)) {}

    struct RunResult {
        TransportStats transport;
        bool clean_shutdown{false};  ///< all shards reaped with exit 0
    };

    RunResult run();

  private:
    RouterConfig cfg_;
};

}  // namespace uavdc::net
