#include "uavdc/net/signal.hpp"

#include <cerrno>
#include <csignal>
#include <mutex>
#include <unistd.h>

#include "uavdc/net/socket.hpp"

namespace uavdc::net {

namespace {

// The singleton lives behind install() so the self-pipe is only created
// when a transport actually asks for signal handling.
ShutdownSignal* g_signal = nullptr;

// Async-signal-safe delivery: set the flag, poke the pipe. Everything here
// is on the sigaction(7) safe list (atomic store + write(2)).
extern "C" void uavdc_net_on_signal(int) {
    if (g_signal == nullptr) return;
    detail_signal_deliver();
}

}  // namespace

void detail_signal_deliver() {
    g_signal->flag_.store(true, std::memory_order_release);
    const char byte = 1;
    // EINTR cannot nest meaningfully here and the pipe being full already
    // means a wakeup is pending, so one attempt is enough.
    // NOLINTNEXTLINE(uavdc-no-raw-socket): async-signal-safe handler body;
    // one attempt is correct — EINTR cannot nest and a full pipe already
    // means a wakeup is pending.
    [[maybe_unused]] const ssize_t rc = ::write(g_signal->wake_write_fd_,
                                                &byte, 1);
}

ShutdownSignal& ShutdownSignal::install() {
    static std::once_flag once;
    std::call_once(once, [] {
        static ShutdownSignal instance;
        auto [rd, wr] = Socket::pipe_pair();
        rd.set_nonblocking(true);
        wr.set_nonblocking(true);
        instance.wake_read_fd_ = rd.release();
        instance.wake_write_fd_ = wr.release();
        g_signal = &instance;

        struct sigaction sa {};
        sa.sa_handler = uavdc_net_on_signal;
        sigemptyset(&sa.sa_mask);
        // No SA_RESTART: blocking reads (std::getline on stdin, poll) must
        // return EINTR so single-threaded transports observe the request.
        sa.sa_flags = 0;
        sigaction(SIGTERM, &sa, nullptr);
        sigaction(SIGINT, &sa, nullptr);
        // A client that disconnects mid-write must not kill the process;
        // write paths see EPIPE instead.
        struct sigaction ign {};
        ign.sa_handler = SIG_IGN;
        sigemptyset(&ign.sa_mask);
        sigaction(SIGPIPE, &ign, nullptr);
    });
    return *g_signal;
}

void ShutdownSignal::trigger() {
    detail_signal_deliver();
}

void ShutdownSignal::reset() {
    flag_.store(false, std::memory_order_release);
    Socket pipe(wake_read_fd_);
    drain_readable(pipe);
    pipe.release();
}

}  // namespace uavdc::net
