#pragma once

#include <atomic>

namespace uavdc::net {

/// Async-signal-safe delivery body shared by the real signal handler and
/// `ShutdownSignal::trigger()`. Not for general use.
void detail_signal_deliver();

/// Process-wide graceful-shutdown signal state, shared by every transport
/// front-end (`uavdc serve` JSONL and TCP, `uavdc route`).
///
/// `install()` (idempotent) registers SIGTERM and SIGINT handlers that set
/// an atomic flag and write one byte to a self-pipe, and sets SIGPIPE to
/// ignored so a client that disconnects mid-write cannot kill the server.
/// The handlers are installed *without* SA_RESTART on purpose: a blocking
/// read (std::getline on stdin, accept, poll) returns with EINTR instead of
/// resuming, so single-threaded transports notice the signal immediately —
/// the JSONL path's graceful drain depends on exactly this.
///
/// Pollers add `wake_fd()` to their poll set; it becomes readable on the
/// first signal. `requested()` is the flag to check from any thread.
class ShutdownSignal {
  public:
    /// Install the handlers (first call) and return the singleton.
    static ShutdownSignal& install();

    /// True once SIGTERM or SIGINT has been delivered (or `trigger()` ran).
    [[nodiscard]] bool requested() const {
        return flag_.load(std::memory_order_acquire);
    }

    /// The flag itself, for code that takes `const std::atomic<bool>*`.
    [[nodiscard]] const std::atomic<bool>& flag() const { return flag_; }

    /// Read end of the self-pipe: readable once a signal arrived. Never
    /// read from it directly mid-wait — poll it, then call
    /// `ShutdownSignal` state, leaving the byte so later pollers wake too.
    [[nodiscard]] int wake_fd() const { return wake_read_fd_; }

    /// Programmatic shutdown request (tests; also lets a parent process
    /// reuse the drain path without raising a real signal).
    void trigger();

    /// Clear the flag and drain the pipe so the next install()-free test
    /// starts fresh. Test-only: racing a real signal delivery loses it.
    void reset();

  private:
    ShutdownSignal() = default;

    std::atomic<bool> flag_{false};
    int wake_read_fd_{-1};
    int wake_write_fd_{-1};

    friend void detail_signal_deliver();
};

}  // namespace uavdc::net
