// The single blessed home for raw socket syscalls (see UL015
// `no-raw-socket`): every call site below retries EINTR and maps errno into
// the IoStatus vocabulary, so the rest of net/ never has to reason about
// interrupted syscalls or SIGPIPE.

#include "uavdc/net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "uavdc/util/check.hpp"

namespace uavdc::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, int port) {
    UAVDC_REQUIRE(port >= 0 && port <= 65535)
        << "tcp port out of range: " << port;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw std::runtime_error("not an IPv4 address: '" + host + "'");
    }
    return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

Socket& Socket::operator=(Socket&& o) noexcept {
    if (this != &o) {
        close();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

void Socket::close() {
    if (fd_ < 0) return;
    // close(2) must not be retried on EINTR — POSIX leaves the descriptor
    // state unspecified and Linux guarantees it is closed either way, so a
    // retry could close an unrelated descriptor reused in between.
    ::close(fd_);
    fd_ = -1;
}

int Socket::release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

Socket Socket::listen_tcp(const std::string& host, int port, int backlog) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    Socket s(fd);
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
        fail("setsockopt(SO_REUSEADDR)");
    }
    const sockaddr_in addr = make_addr(host, port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        fail("bind " + host + ":" + std::to_string(port));
    }
    if (::listen(fd, backlog) != 0) fail("listen");
    return s;
}

Socket Socket::connect_tcp(const std::string& host, int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    Socket s(fd);
    const sockaddr_in addr = make_addr(host, port);
    int rc = 0;
    do {
        rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) fail("connect " + host + ":" + std::to_string(port));
    return s;
}

std::pair<Socket, Socket> Socket::pipe_pair() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) fail("pipe");
    return {Socket(fds[0]), Socket(fds[1])};
}

void Socket::set_nonblocking(bool on) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0) fail("fcntl(F_GETFL)");
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (::fcntl(fd_, F_SETFL, want) != 0) fail("fcntl(F_SETFL)");
}

void Socket::set_nodelay(bool on) {
    const int v = on ? 1 : 0;
    // Best-effort: fails harmlessly on pipe descriptors.
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v));
}

int Socket::local_port() const {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        fail("getsockname");
    }
    return static_cast<int>(ntohs(addr.sin_port));
}

std::optional<Socket> Socket::accept_one() {
    int fd = -1;
    do {
        fd = ::accept(fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd >= 0) return Socket(fd);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    // A connection that was reset between arrival and accept is not a
    // listener failure; report "nothing to accept" and poll again.
    if (errno == ECONNABORTED) return std::nullopt;
    fail("accept");
}

IoResult Socket::read_some(char* buf, std::size_t n) {
    ssize_t rc = 0;
    do {
        rc = ::read(fd_, buf, n);
    } while (rc < 0 && errno == EINTR);
    if (rc > 0) return {IoStatus::kOk, static_cast<std::size_t>(rc)};
    if (rc == 0) return {IoStatus::kEof, 0};
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
}

IoResult Socket::write_some(const char* buf, std::size_t n) {
    ssize_t rc = 0;
    do {
        // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
        // the process with SIGPIPE (pipes still need the process-level
        // ignore in ShutdownSignal::install, send() only covers sockets).
        rc = ::send(fd_, buf, n, MSG_NOSIGNAL);
        if (rc < 0 && errno == ENOTSOCK) {
            rc = ::write(fd_, buf, n);  // pipe descriptor
        }
    } while (rc < 0 && errno == EINTR);
    if (rc >= 0) return {IoStatus::kOk, static_cast<std::size_t>(rc)};
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
}

bool Socket::write_all(const char* buf, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
        const IoResult r = write_some(buf + sent, n - sent);
        if (r.status == IoStatus::kWouldBlock) continue;  // blocking socket
        if (r.status != IoStatus::kOk) return false;
        sent += r.n;
    }
    return true;
}

int poll_wait(std::vector<PollEntry>& entries, int timeout_ms) {
    std::vector<pollfd> fds(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        fds[i].fd = entries[i].fd;
        fds[i].events = 0;
        if (entries[i].want_read) fds[i].events |= POLLIN;
        if (entries[i].want_write) fds[i].events |= POLLOUT;
    }
    int rc = 0;
    do {
        rc = ::poll(fds.data(), fds.size(), timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) fail("poll");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        entries[i].readable = (fds[i].revents & (POLLIN | POLLHUP)) != 0;
        entries[i].writable = (fds[i].revents & POLLOUT) != 0;
        entries[i].error = (fds[i].revents & (POLLERR | POLLNVAL)) != 0;
    }
    return rc;
}

void drain_readable(Socket& s) {
    char buf[256];
    while (s.read_some(buf, sizeof(buf)).status == IoStatus::kOk) {
    }
}

}  // namespace uavdc::net
