#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace uavdc::net {

/// Result of a non-blocking read/write attempt on a `Socket`.
enum class IoStatus {
    kOk,          ///< some bytes transferred (`n` > 0)
    kWouldBlock,  ///< no progress possible right now (EAGAIN)
    kEof,         ///< orderly close by the peer (reads only)
    kError,       ///< connection-level failure (ECONNRESET, EPIPE, ...)
};

struct IoResult {
    IoStatus status{IoStatus::kOk};
    std::size_t n{0};  ///< bytes transferred when status == kOk
};

/// Move-only owner of a POSIX file descriptor (TCP socket or pipe end).
///
/// Every syscall this class issues is wrapped in an EINTR retry loop and
/// writes use MSG_NOSIGNAL, so a signal mid-transfer never surfaces as a
/// spurious failure and a disconnected peer never raises SIGPIPE. This file
/// (socket.cpp) is the single blessed home for raw socket syscalls — lint
/// rule UL015 `no-raw-socket` keeps them out of everywhere else, where
/// transport code goes through this wrapper instead.
class Socket {
  public:
    Socket() = default;
    /// Adopt an already-open descriptor (e.g. a pipe end from process.cpp).
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;
    Socket(Socket&& o) noexcept;
    Socket& operator=(Socket&& o) noexcept;

    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] int fd() const { return fd_; }

    /// Close now (idempotent; the destructor calls it).
    void close();

    /// Release ownership without closing.
    int release();

    // -- factories ---------------------------------------------------------

    /// Bound + listening TCP socket (SO_REUSEADDR set). `port` 0 binds an
    /// ephemeral port; read it back with `local_port()`. Throws
    /// std::runtime_error on failure.
    static Socket listen_tcp(const std::string& host, int port,
                             int backlog = 128);

    /// Blocking connect to host:port. Throws std::runtime_error on failure.
    static Socket connect_tcp(const std::string& host, int port);

    /// A connected unidirectional pipe: {read_end, write_end}. Used for
    /// self-pipe wakeups and child stdout capture.
    static std::pair<Socket, Socket> pipe_pair();

    // -- configuration -----------------------------------------------------

    void set_nonblocking(bool on);
    /// TCP_NODELAY (no-op on non-TCP descriptors).
    void set_nodelay(bool on);
    /// Port this socket is bound to (after listen_tcp with port 0).
    [[nodiscard]] int local_port() const;

    // -- accept ------------------------------------------------------------

    /// Accept one pending connection. Returns nullopt when none is pending
    /// (EAGAIN on a non-blocking listener). Throws on listener-level errors.
    std::optional<Socket> accept_one();

    // -- transfer ----------------------------------------------------------

    /// One read attempt of up to `n` bytes (EINTR-retried).
    IoResult read_some(char* buf, std::size_t n);

    /// One write attempt of up to `n` bytes (EINTR-retried, MSG_NOSIGNAL).
    IoResult write_some(const char* buf, std::size_t n);

    /// Write the whole buffer on a blocking socket; false on any error.
    bool write_all(const char* buf, std::size_t n);
    bool write_all(const std::string& s) {
        return write_all(s.data(), s.size());
    }

  private:
    int fd_ = -1;
};

/// One entry in a `poll_wait` set: which descriptor, whether to wait for
/// readability / writability, and what fired.
struct PollEntry {
    int fd{-1};
    bool want_read{false};
    bool want_write{false};
    bool readable{false};   ///< out: POLLIN | POLLHUP
    bool writable{false};   ///< out: POLLOUT
    bool error{false};      ///< out: POLLERR | POLLNVAL
};

/// EINTR-guarded poll(2) over the entry set. Returns the number of entries
/// with events (0 on timeout). `timeout_ms` < 0 waits forever.
int poll_wait(std::vector<PollEntry>& entries, int timeout_ms);

/// Read and discard everything currently readable (drains a wake pipe).
void drain_readable(Socket& s);

}  // namespace uavdc::net
