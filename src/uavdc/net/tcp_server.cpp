#include "uavdc/net/tcp_server.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "uavdc/net/frame.hpp"
#include "uavdc/net/socket.hpp"

namespace uavdc::net {

namespace {

constexpr std::size_t kReadChunk = 64u * 1024;

/// One client connection's loop-side state. `submitted`/`delivered` count
/// plan requests only (control verbs are answered inline), which is exactly
/// the pair the per-connection `drain` barrier compares.
struct Conn {
    Socket sock;
    FrameDecoder decoder;
    std::string outbuf;
    std::uint64_t submitted{0};
    std::uint64_t delivered{0};
    struct DrainWait {
        std::uint64_t threshold;  ///< release when delivered >= this
        std::string id;
        bool length_prefixed;
    };
    std::vector<DrainWait> drains;
    bool read_eof{false};
    bool dead{false};  ///< peer reset / write error: discard silently

    Conn(Socket s, std::size_t max_frame)
        : sock(std::move(s)), decoder(max_frame) {}
};

}  // namespace

TcpServer::RunResult TcpServer::run() {
    RunResult result;
    TransportStats& t = result.transport;

    // Destruction order matters: the service's worker callbacks reference
    // the completion queue and wake pipe, so the service is declared last
    // (destroyed first, after its own drain).
    std::unique_ptr<Repository> repo;
    service::PlanService::Config svc_cfg = cfg_.service;
    // Every response leaves through response_line(), which splices the
    // pre-serialized result — hits never need the tree copied.
    svc_cfg.wire_only_hits = true;
    if (!cfg_.repo_path.empty()) {
        repo = std::make_unique<Repository>(cfg_.repo_path);
        svc_cfg.store = repo->hooks();
    }

    std::mutex done_mu;
    std::vector<std::pair<std::uint64_t, std::string>> done;
    auto [wake_rd, wake_wr] = Socket::pipe_pair();
    wake_rd.set_nonblocking(true);
    wake_wr.set_nonblocking(true);

    service::PlanService svc(svc_cfg, nullptr);
    if (repo) result.preloaded = repo->load(svc);

    Socket listener = Socket::listen_tcp(cfg_.host, cfg_.port, 256);
    listener.set_nonblocking(true);
    if (cfg_.on_listening) cfg_.on_listening(listener.local_port());

    std::map<std::uint64_t, std::unique_ptr<Conn>> conns;
    std::uint64_t next_conn_id = 1;
    bool stopping = false;

    const auto stop_requested = [&] {
        return cfg_.stop != nullptr &&
               cfg_.stop->load(std::memory_order_acquire);
    };

    // Completion path: workers encode off the loop thread (the JSON dump of
    // a large plan is the expensive part), enqueue, and poke the pipe.
    const auto complete = [&](std::uint64_t conn_id, bool length_prefixed,
                              const service::PlanResponse& resp) {
        std::string frame =
            encode_frame(service::response_line(resp), length_prefixed);
        {
            std::lock_guard lock(done_mu);
            done.emplace_back(conn_id, std::move(frame));
        }
        const char byte = 1;
        (void)wake_wr.write_some(&byte, 1);
    };

    const auto stats_snapshot = [&] {
        TransportStats snap = t;
        snap.open_connections = conns.size();
        snap.write_queue_bytes = 0;
        for (const auto& [id, c] : conns) {
            snap.write_queue_bytes += c->outbuf.size();
        }
        if (repo) result.repo_appends = repo->appended();
        return snap;
    };

    const auto control_reply = [&](Conn& c, const std::string& id,
                                   const std::string& op,
                                   bool length_prefixed) {
        io::Json reply;
        reply["id"] = id;
        reply["op"] = op;
        reply["status"] = "ok";
        io::Json stats = service::to_json(svc.stats());
        stats["transport"] = to_json(stats_snapshot());
        reply["stats"] = std::move(stats);
        c.outbuf += encode_frame(reply.dump(), length_prefixed);
        ++t.control;
    };

    const auto release_drains = [&](Conn& c) {
        for (std::size_t i = 0; i < c.drains.size();) {
            if (c.delivered >= c.drains[i].threshold) {
                control_reply(c, c.drains[i].id, "drain",
                              c.drains[i].length_prefixed);
                c.drains.erase(c.drains.begin() +
                               static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    };

    const auto bad_request = [&](Conn& c, const std::string& id,
                                 const std::string& why,
                                 bool length_prefixed) {
        service::PlanResponse resp;
        resp.id = id;
        resp.status = service::ResponseStatus::kBadRequest;
        resp.error = why;
        c.outbuf += encode_frame(service::response_line(resp),
                                 length_prefixed);
    };

    // Decode-side dispatch of one frame. `shed` (drain path): answer plan
    // requests with `shutdown` instead of submitting.
    const auto dispatch = [&](std::uint64_t conn_id, Conn& c,
                              const Frame& f, bool shed) {
        if (f.malformed) {
            ++t.frames_malformed;
            bad_request(c, "", "malformed frame: " + f.error, false);
            return;
        }
        ++t.frames_decoded;
        if (f.payload.empty()) return;  // blank line, JSONL-style

        io::Json doc;
        try {
            doc = io::Json::parse(f.payload);
        } catch (const std::exception& ex) {
            bad_request(c, "", std::string("unparseable frame: ") + ex.what(),
                        f.length_prefixed);
            return;
        }
        const std::string id =
            doc.is_object() ? doc.string_or("id", "") : "";
        const std::string op =
            doc.is_object() ? doc.string_or("op", "") : "";
        if (op == "stats") {
            control_reply(c, id, "stats", f.length_prefixed);
            return;
        }
        if (op == "drain") {
            if (c.delivered >= c.submitted) {
                control_reply(c, id, "drain", f.length_prefixed);
            } else {
                c.drains.push_back({c.submitted, id, f.length_prefixed});
            }
            return;
        }
        if (!op.empty()) {
            bad_request(c, id, "unknown op '" + op + "' (expected stats|drain)",
                        f.length_prefixed);
            return;
        }

        service::PlanRequest req;
        try {
            req = service::request_from_json(doc);
        } catch (const std::exception& ex) {
            bad_request(c, id, ex.what(), f.length_prefixed);
            return;
        }
        if (shed) {
            service::PlanResponse resp;
            resp.id = req.id;
            resp.status = service::ResponseStatus::kShutdown;
            resp.error = "server draining; request was not submitted";
            c.outbuf += encode_frame(service::response_line(resp),
                                     f.length_prefixed);
            ++t.shed_on_shutdown;
            return;
        }
        ++t.requests;
        ++c.submitted;
        const bool lp = f.length_prefixed;
        svc.submit(std::move(req),
                   [&complete, conn_id, lp](service::PlanResponse resp) {
                       complete(conn_id, lp, resp);
                   });
    };

    // Decode + dispatch whatever is buffered for `c`, stopping at the
    // write-queue bound: a connection whose client stopped reading keeps
    // its complete-but-undispatched frames *in the decoder* (bounded by
    // max_frame_bytes per frame) instead of growing the output queue.
    const auto pump_frames = [&](std::uint64_t conn_id, Conn& c) {
        while (!c.dead && c.outbuf.size() < cfg_.write_queue_limit) {
            auto f = c.decoder.next();
            if (!f) break;
            dispatch(conn_id, c, *f, /*shed=*/false);
        }
    };

    const auto pump_completions = [&] {
        std::vector<std::pair<std::uint64_t, std::string>> batch;
        {
            std::lock_guard lock(done_mu);
            batch.swap(done);
        }
        for (auto& [conn_id, frame] : batch) {
            auto it = conns.find(conn_id);
            if (it == conns.end() || it->second->dead) continue;
            Conn& c = *it->second;
            c.outbuf += frame;
            ++c.delivered;
            ++t.responses;
            release_drains(c);
        }
    };

    while (true) {
        if (!stopping && stop_requested()) {
            // Graceful drain: no new connections, no further reads. Frames
            // already decoded into the buffers but not yet submitted are
            // answered `shutdown`; everything submitted completes below.
            stopping = true;
            listener.close();
            for (auto& [id, c] : conns) {
                if (c->dead) continue;
                while (auto f = c->decoder.next()) {
                    dispatch(id, *c, *f, /*shed=*/true);
                }
            }
        }

        // Close whatever is finished: a dead peer immediately; a drained
        // connection (EOF or server drain, nothing owed, nothing buffered)
        // with an orderly FIN.
        for (auto it = conns.begin(); it != conns.end();) {
            Conn& c = *it->second;
            const bool drained = c.submitted == c.delivered &&
                                 c.outbuf.empty() && c.drains.empty();
            if (c.dead || ((c.read_eof || stopping) && drained)) {
                ++t.connections_closed;
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
        if (stopping && conns.empty()) break;

        std::vector<PollEntry> entries;
        std::vector<std::uint64_t> entry_conn;  // conn id per entry, 0 = none
        entries.push_back({wake_rd.fd(), true, false, false, false, false});
        entry_conn.push_back(0);
        if (cfg_.wake_fd >= 0) {
            entries.push_back(
                {cfg_.wake_fd, true, false, false, false, false});
            entry_conn.push_back(0);
        }
        std::size_t listener_slot = 0;
        if (!stopping) {
            listener_slot = entries.size();
            entries.push_back(
                {listener.fd(), true, false, false, false, false});
            entry_conn.push_back(0);
        }
        for (const auto& [id, c] : conns) {
            PollEntry e;
            e.fd = c->sock.fd();
            e.want_read = !stopping && !c->read_eof && !c->dead &&
                          c->outbuf.size() < cfg_.write_queue_limit;
            e.want_write = !c->outbuf.empty() && !c->dead;
            entries.push_back(e);
            entry_conn.push_back(id);
        }
        poll_wait(entries, cfg_.poll_timeout_ms);

        if (entries[0].readable) drain_readable(wake_rd);
        pump_completions();
        // Resume frames parked behind the write-queue bound once the
        // client drained some output.
        for (auto& [id, c] : conns) {
            if (!stopping) pump_frames(id, *c);
        }

        if (!stopping && entries[listener_slot].readable &&
            listener_slot != 0) {
            while (auto accepted = listener.accept_one()) {
                accepted->set_nonblocking(true);
                accepted->set_nodelay(true);
                conns.emplace(next_conn_id,
                              std::make_unique<Conn>(std::move(*accepted),
                                                     cfg_.max_frame_bytes));
                ++next_conn_id;
                ++t.connections_opened;
            }
        }

        for (std::size_t i = 0; i < entries.size(); ++i) {
            const std::uint64_t conn_id = entry_conn[i];
            if (conn_id == 0) continue;
            auto it = conns.find(conn_id);
            if (it == conns.end()) continue;
            Conn& c = *it->second;
            if (entries[i].error) {
                c.dead = true;
                continue;
            }
            if (entries[i].readable && !c.read_eof && !c.dead && !stopping) {
                char buf[kReadChunk];
                while (c.outbuf.size() < cfg_.write_queue_limit) {
                    const IoResult r = c.sock.read_some(buf, sizeof(buf));
                    if (r.status == IoStatus::kOk) {
                        t.bytes_in += r.n;
                        c.decoder.feed(buf, r.n);
                        pump_frames(conn_id, c);
                        continue;
                    }
                    if (r.status == IoStatus::kEof) c.read_eof = true;
                    if (r.status == IoStatus::kError) c.dead = true;
                    break;
                }
                // Inline admission rejections may have completed on this
                // thread already; fold them in before the write pass.
                pump_completions();
            }
            if (entries[i].writable && !c.outbuf.empty() && !c.dead) {
                const IoResult r =
                    c.sock.write_some(c.outbuf.data(), c.outbuf.size());
                if (r.status == IoStatus::kOk) {
                    t.bytes_out += r.n;
                    c.outbuf.erase(0, r.n);
                } else if (r.status == IoStatus::kError) {
                    c.dead = true;
                }
            }
        }
    }

    svc.drain();
    result.service = svc.stats();
    t.open_connections = 0;
    t.write_queue_bytes = 0;
    if (repo) result.repo_appends = repo->appended();
    return result;
}

}  // namespace uavdc::net
