#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "uavdc/net/repository.hpp"
#include "uavdc/net/transport_stats.hpp"
#include "uavdc/service/plan_service.hpp"

namespace uavdc::net {

struct TcpServerConfig {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 binds an ephemeral port (see `on_listening`)
    service::PlanService::Config service;
    /// Non-empty: open/replay a `Repository` at this path and wire its
    /// store hooks, so instances and cached responses survive restarts.
    std::string repo_path;
    std::size_t max_frame_bytes = 16u << 20;
    /// Per-connection backpressure bound: once this many response bytes are
    /// queued for a slow reader, the server stops *reading* that connection
    /// until the queue drains below the bound — pipelining cannot buffer
    /// unbounded output for a client that never consumes it.
    std::size_t write_queue_limit = 8u << 20;
    /// Graceful-drain request (`ShutdownSignal::flag()` in the CLI; a plain
    /// atomic in tests). Observed promptly via `wake_fd` when supplied,
    /// within the poll timeout otherwise.
    const std::atomic<bool>* stop = nullptr;
    int wake_fd = -1;  ///< optional readable-on-signal fd added to the poll set
    int poll_timeout_ms = 200;
    /// Called once, with the bound port, after listen succeeds (the
    /// `--announce` handshake that lets a parent spawn workers on port 0).
    std::function<void(int)> on_listening;
};

/// Single-threaded poll(2) event loop serving `PlanService` over TCP with
/// persistent, pipelined connections (planning itself runs on the service's
/// worker pool; completions re-enter the loop through a self-pipe).
///
/// Wire protocol: every frame (see `FrameDecoder`) carries one JSON
/// document — a plan request, `{"op":"stats",...}` (immediate snapshot,
/// with transport counters under `"transport"`), or `{"op":"drain",...}`
/// (a per-connection barrier: answered only after every request previously
/// submitted on that connection has been answered). Each response is framed
/// the way its request was. Malformed payloads and framing damage are
/// answered with `bad_request` — the connection stays open.
///
/// Graceful drain (`stop` set, or SIGTERM via the CLI): the listener
/// closes, no further bytes are read, requests already submitted complete
/// and their responses flush, frames decoded but not yet submitted are
/// answered `shutdown`, then connections close cleanly and `run` returns.
class TcpServer {
  public:
    explicit TcpServer(TcpServerConfig cfg) : cfg_(std::move(cfg)) {}

    struct RunResult {
        TransportStats transport;
        service::ServiceStats service;
        Repository::LoadResult preloaded;
        std::uint64_t repo_appends{0};
    };

    /// Bind, serve until the stop flag (plus drain), and return the final
    /// counters. Throws std::runtime_error when the bind itself fails.
    RunResult run();

  private:
    TcpServerConfig cfg_;
};

}  // namespace uavdc::net
