#include "uavdc/net/transport_stats.hpp"

namespace uavdc::net {

io::Json to_json(const TransportStats& t) {
    io::Json doc;
    doc["connections_opened"] = t.connections_opened;
    doc["connections_closed"] = t.connections_closed;
    doc["open_connections"] = t.open_connections;
    doc["bytes_in"] = t.bytes_in;
    doc["bytes_out"] = t.bytes_out;
    doc["frames_decoded"] = t.frames_decoded;
    doc["frames_malformed"] = t.frames_malformed;
    doc["requests"] = t.requests;
    doc["responses"] = t.responses;
    doc["control"] = t.control;
    doc["shed_on_shutdown"] = t.shed_on_shutdown;
    doc["retried_after_shard_death"] = t.retried_after_shard_death;
    doc["shard_respawns"] = t.shard_respawns;
    doc["write_queue_bytes"] = t.write_queue_bytes;
    return doc;
}

}  // namespace uavdc::net
