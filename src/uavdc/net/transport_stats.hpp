#pragma once

#include <cstdint>

#include "uavdc/io/json.hpp"

namespace uavdc::net {

/// Transport-level counters, reported next to `service::ServiceStats` under
/// the `"transport"` key of a `stats` reply. The reconciliation invariant
/// mirrors the service's: `requests == responses + shed_on_shutdown` once a
/// front-end has drained (every decoded request frame is answered exactly
/// once — by the service, or by the drain path with `shutdown`).
struct TransportStats {
    std::uint64_t connections_opened{0};
    std::uint64_t connections_closed{0};
    std::uint64_t open_connections{0};   ///< snapshot, not monotonic
    std::uint64_t bytes_in{0};
    std::uint64_t bytes_out{0};
    std::uint64_t frames_decoded{0};     ///< well-formed frames (any kind)
    std::uint64_t frames_malformed{0};   ///< framing-level rejects
    std::uint64_t requests{0};           ///< plan requests dispatched
    std::uint64_t responses{0};          ///< plan responses delivered
    std::uint64_t control{0};            ///< stats/drain verbs answered
    std::uint64_t shed_on_shutdown{0};   ///< decoded-but-unsubmitted frames
                                         ///< answered `shutdown` at drain
    std::uint64_t retried_after_shard_death{0};  ///< router resends
    std::uint64_t shard_respawns{0};             ///< router worker restarts
    std::uint64_t write_queue_bytes{0};  ///< snapshot of buffered output
};

[[nodiscard]] io::Json to_json(const TransportStats& t);

}  // namespace uavdc::net
