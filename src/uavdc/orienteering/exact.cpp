#include "uavdc/orienteering/exact.hpp"

#include <limits>

#include "uavdc/util/check.hpp"

namespace uavdc::orienteering {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Solution solve_exact(const Problem& p) {
    p.validate();
    const std::size_t n = p.size();
    UAVDC_REQUIRE(n <= 22)
        << "solve_exact: instance too large for bitmask DP (n=" << n
        << ")";
    const std::size_t d = p.depot;
    const std::size_t nmask = std::size_t{1} << n;
    const std::size_t depot_bit = std::size_t{1} << d;

    // dp[mask][v] = min cost of a simple path from depot to v visiting
    // exactly the nodes in mask (depot in mask, v in mask).
    std::vector<std::vector<double>> dp(nmask, std::vector<double>(n, kInf));
    dp[depot_bit][d] = 0.0;

    double best_prize = 0.0;
    std::size_t best_mask = depot_bit;
    std::size_t best_end = d;

    // Prize per mask computed incrementally.
    std::vector<double> mask_prize(nmask, 0.0);
    for (std::size_t mask = 1; mask < nmask; ++mask) {
        const std::size_t low =
            static_cast<std::size_t>(__builtin_ctzll(mask));
        mask_prize[mask] = mask_prize[mask & (mask - 1)] + p.prizes[low];
    }

    for (std::size_t mask = depot_bit; mask < nmask; ++mask) {
        if (!(mask & depot_bit)) continue;
        for (std::size_t v = 0; v < n; ++v) {
            const double cost = dp[mask][v];
            if (cost == kInf) continue;
            // Close the tour: feasible subset?
            if (cost + p.graph.weight(v, d) <= p.budget + 1e-12 &&
                mask_prize[mask] > best_prize) {
                best_prize = mask_prize[mask];
                best_mask = mask;
                best_end = v;
            }
            // Extend.
            for (std::size_t u = 0; u < n; ++u) {
                if (mask & (std::size_t{1} << u)) continue;
                const double nc = cost + p.graph.weight(v, u);
                if (nc < dp[mask | (std::size_t{1} << u)][u] &&
                    nc <= p.budget) {
                    dp[mask | (std::size_t{1} << u)][u] = nc;
                }
            }
        }
    }

    // Reconstruct the best path by walking the DP backwards.
    std::vector<std::size_t> rev;
    {
        std::size_t mask = best_mask;
        std::size_t v = best_end;
        while (v != d || mask != depot_bit) {
            rev.push_back(v);
            const std::size_t pmask = mask & ~(std::size_t{1} << v);
            bool found = false;
            for (std::size_t u = 0; u < n; ++u) {
                if (!(pmask & (std::size_t{1} << u))) continue;
                if (dp[pmask][u] + p.graph.weight(u, v) <= dp[mask][v] + 1e-9 &&
                    dp[pmask][u] < kInf) {
                    mask = pmask;
                    v = u;
                    found = true;
                    break;
                }
            }
            UAVDC_CHECK(found) << "solve_exact: reconstruction failed";
        }
    }
    std::vector<std::size_t> tour{d};
    tour.insert(tour.end(), rev.rbegin(), rev.rend());
    return make_solution(p, std::move(tour));
}

double exact_optimal_prize(const Problem& p) { return solve_exact(p).prize; }

}  // namespace uavdc::orienteering
