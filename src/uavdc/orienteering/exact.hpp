#pragma once

#include "uavdc/orienteering/problem.hpp"

namespace uavdc::orienteering {

/// Exact orienteering by Held-Karp-style bitmask DP: for every subset of
/// nodes containing the depot and every end node, keep the minimum-cost
/// simple path; a subset is achievable if some path plus the closing edge
/// fits the budget. Maximises prize over achievable subsets.
///
/// O(2^n * n^2) time, O(2^n * n) memory — intended for n <= ~20.
/// Throws std::invalid_argument for larger instances.
///
/// Used as ground truth in tests and for small auxiliary graphs; the
/// paper's Bansal et al. 3-approximation is substituted by this plus the
/// heuristics in greedy.hpp / grasp.hpp (DESIGN.md substitution #1).
[[nodiscard]] Solution solve_exact(const Problem& p);

/// Exact optimum prize only (same DP), usable as a test oracle.
[[nodiscard]] double exact_optimal_prize(const Problem& p);

}  // namespace uavdc::orienteering
