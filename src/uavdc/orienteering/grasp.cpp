#include "uavdc/orienteering/grasp.hpp"

#include <algorithm>
#include <vector>

#include "uavdc/graph/local_search.hpp"
#include "uavdc/orienteering/greedy.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc::orienteering {

namespace {

constexpr double kEps = 1e-9;

struct Candidate {
    std::size_t node;
    graph::Insertion ins;
    double score;
};

/// Randomized greedy construction with a restricted candidate list: at each
/// step gather feasible insertions, keep those with score within
/// [max - alpha * (max - min), max], and pick one uniformly at random.
Solution construct(const Problem& p, double alpha, util::Rng& rng) {
    Solution s;
    s.tour = {p.depot};
    s.cost = 0.0;
    s.prize = p.prizes[p.depot];
    std::vector<bool> in(p.size(), false);
    in[p.depot] = true;

    std::vector<Candidate> cands;
    for (;;) {
        cands.clear();
        double best = 0.0;
        double worst = std::numeric_limits<double>::infinity();
        for (std::size_t v = 0; v < p.size(); ++v) {
            if (in[v] || p.prizes[v] <= 0.0) continue;
            const auto ins = graph::cheapest_insertion(p.graph, s.tour, v);
            if (s.cost + ins.delta > p.budget + kEps) continue;
            const double score = p.prizes[v] / std::max(ins.delta, kEps);
            cands.push_back({v, ins, score});
            best = std::max(best, score);
            worst = std::min(worst, score);
        }
        if (cands.empty()) break;
        const double cutoff = best - alpha * (best - worst);
        // Partition candidates into the RCL.
        std::vector<std::size_t> rcl;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (cands[i].score >= cutoff - kEps) rcl.push_back(i);
        }
        const auto pick =
            rcl[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(rcl.size()) - 1))];
        const auto& c = cands[pick];
        s.tour.insert(
            s.tour.begin() + static_cast<std::ptrdiff_t>(c.ins.position),
            c.node);
        s.cost += c.ins.delta;
        s.prize += p.prizes[c.node];
        in[c.node] = true;
    }
    return s;
}

/// Remove a random fraction of non-depot nodes from the tour (shake).
void shake(const Problem& p, Solution& s, double fraction, util::Rng& rng) {
    if (s.tour.size() <= 2) return;
    std::vector<std::size_t> keep{p.depot};
    for (std::size_t i = 0; i < s.tour.size(); ++i) {
        const std::size_t v = s.tour[i];
        if (v == p.depot) continue;
        if (!rng.bernoulli(fraction)) keep.push_back(v);
    }
    s = make_solution(p, std::move(keep));
}

}  // namespace

Solution solve_grasp(const Problem& p, const GraspConfig& cfg) {
    p.validate();
    Solution best = solve_greedy(p);
    util::Rng root(cfg.seed);
    for (int it = 0; it < cfg.iterations; ++it) {
        util::Rng rng = root.split(static_cast<std::uint64_t>(it) + 1);
        Solution s = construct(p, cfg.rcl_alpha, rng);
        polish(p, s);
        if (s.feasible(p) &&
            (s.prize > best.prize + kEps ||
             (s.prize > best.prize - kEps && s.cost < best.cost - kEps))) {
            best = s;
        }
        Solution inc = best;
        for (int round = 0; round < cfg.shakes_per_restart; ++round) {
            shake(p, inc, cfg.shake_fraction, rng);
            polish(p, inc);
            if (inc.feasible(p) && inc.prize > best.prize + kEps) best = inc;
        }
    }
    return best;
}

}  // namespace uavdc::orienteering
