#pragma once

#include <cstdint>

#include "uavdc/orienteering/problem.hpp"

namespace uavdc::orienteering {

/// GRASP (greedy randomized adaptive search procedure) configuration.
struct GraspConfig {
    int iterations = 24;          ///< independent construct+polish restarts
    double rcl_alpha = 0.35;      ///< candidate-list greediness (0 = pure
                                  ///< greedy, 1 = uniform random)
    std::uint64_t seed = 12345;   ///< RNG seed (restarts use split streams)
    double shake_fraction = 0.3;  ///< fraction of non-depot nodes dropped
                                  ///< when perturbing the incumbent
    int shakes_per_restart = 2;   ///< perturb+repolish rounds per restart
};

/// GRASP metaheuristic for rooted budgeted orienteering: randomized
/// greedy construction (restricted candidate list over prize/Δcost), 2-opt +
/// insert/replace polish, plus shake-and-repolish intensification. Keeps the
/// best feasible solution across restarts. Deterministic for a fixed config.
[[nodiscard]] Solution solve_grasp(const Problem& p,
                                   const GraspConfig& cfg = {});

}  // namespace uavdc::orienteering
