#include "uavdc/orienteering/greedy.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "uavdc/graph/local_search.hpp"

namespace uavdc::orienteering {

namespace {

constexpr double kEps = 1e-9;

std::vector<bool> visited_mask(const Problem& p, const Solution& s) {
    std::vector<bool> in(p.size(), false);
    for (std::size_t v : s.tour) in[v] = true;
    return in;
}

/// Apply one best "insert an unvisited node" move; returns true if applied.
bool try_insert(const Problem& p, Solution& s, std::vector<bool>& in) {
    double best_score = 0.0;
    std::size_t best_node = p.size();
    graph::Insertion best_ins{0, 0.0};
    for (std::size_t v = 0; v < p.size(); ++v) {
        if (in[v] || p.prizes[v] <= 0.0) continue;
        const auto ins = graph::cheapest_insertion(p.graph, s.tour, v);
        if (s.cost + ins.delta > p.budget + kEps) continue;
        const double score = p.prizes[v] / std::max(ins.delta, kEps);
        if (score > best_score) {
            best_score = score;
            best_node = v;
            best_ins = ins;
        }
    }
    if (best_node == p.size()) return false;
    s.tour.insert(s.tour.begin() +
                      static_cast<std::ptrdiff_t>(best_ins.position),
                  best_node);
    s.cost += best_ins.delta;
    s.prize += p.prizes[best_node];
    in[best_node] = true;
    return true;
}

/// Apply one best "replace a visited node with a higher-prize unvisited
/// node" move (replacement must stay feasible); returns true if applied.
bool try_replace(const Problem& p, Solution& s, std::vector<bool>& in) {
    const std::size_t n = s.tour.size();
    if (n < 2) return false;
    double best_gain = kEps;
    double best_cost_delta = 0.0;
    std::size_t best_pos = 0;
    std::size_t best_node = p.size();
    for (std::size_t pos = 0; pos < n; ++pos) {
        if (s.tour[pos] == p.depot) continue;
        const std::size_t prev = s.tour[(pos + n - 1) % n];
        const std::size_t cur = s.tour[pos];
        const std::size_t next = s.tour[(pos + 1) % n];
        const double base =
            p.graph.weight(prev, cur) + p.graph.weight(cur, next);
        for (std::size_t u = 0; u < p.size(); ++u) {
            if (in[u]) continue;
            const double gain = p.prizes[u] - p.prizes[cur];
            if (gain <= best_gain) continue;
            const double cost_delta =
                p.graph.weight(prev, u) + p.graph.weight(u, next) - base;
            if (s.cost + cost_delta > p.budget + kEps) continue;
            best_gain = gain;
            best_cost_delta = cost_delta;
            best_pos = pos;
            best_node = u;
        }
    }
    if (best_node == p.size()) return false;
    in[s.tour[best_pos]] = false;
    s.prize += best_gain;
    s.cost += best_cost_delta;
    in[best_node] = true;
    s.tour[best_pos] = best_node;
    return true;
}

}  // namespace

int polish(const Problem& p, Solution& s) {
    auto in = visited_mask(p, s);
    int moves = 0;
    for (;;) {
        // Shorten the tour first — frees budget for insertions.
        const double gain = graph::two_opt(p.graph, s.tour);
        if (gain > 0.0) s.cost -= gain;
        bool any = false;
        while (try_insert(p, s, in)) {
            ++moves;
            any = true;
        }
        if (try_replace(p, s, in)) {
            ++moves;
            any = true;
        }
        if (!any) break;
    }
    // Normalise: depot first.
    const auto it = std::find(s.tour.begin(), s.tour.end(), p.depot);
    if (it != s.tour.end()) std::rotate(s.tour.begin(), it, s.tour.end());
    return moves;
}

Solution solve_greedy(const Problem& p) {
    p.validate();
    Solution s;
    s.tour = {p.depot};
    s.cost = 0.0;
    s.prize = p.prizes[p.depot];
    auto in = visited_mask(p, s);
    while (try_insert(p, s, in)) {
    }
    polish(p, s);
    return s;
}

}  // namespace uavdc::orienteering
