#pragma once

#include "uavdc/orienteering/problem.hpp"

namespace uavdc::orienteering {

/// Greedy cheapest-insertion construction: starting from the depot-only
/// tour, repeatedly insert the unvisited node maximising
/// prize / insertion-cost among budget-feasible insertions, at its cheapest
/// position; stop when nothing fits. O(n^2) per insertion, O(n^3) total.
[[nodiscard]] Solution solve_greedy(const Problem& p);

/// Local-search polish shared by the greedy and GRASP solvers (in place):
/// 2-opt on the current tour, then alternate "insert best-fitting node" and
/// "replace a visited node with a better unvisited one" moves until no move
/// improves the prize (ties broken toward lower cost). Budget-feasibility is
/// preserved. Returns the number of improving moves applied.
int polish(const Problem& p, Solution& s);

}  // namespace uavdc::orienteering
