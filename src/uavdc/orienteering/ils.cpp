#include "uavdc/orienteering/ils.hpp"

#include <algorithm>

#include "uavdc/orienteering/greedy.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc::orienteering {

namespace {

constexpr double kEps = 1e-9;

/// Remove a random contiguous run of non-depot stops from the tour.
void remove_segment(const Problem& p, Solution& s, int seg_min, int seg_max,
                    util::Rng& rng) {
    if (s.tour.size() <= 2) return;
    const auto removable = static_cast<std::int64_t>(s.tour.size()) - 1;
    const std::int64_t len = std::min<std::int64_t>(
        removable, rng.uniform_int(seg_min, std::max(seg_min, seg_max)));
    // Start somewhere among the non-depot positions [1, size-1].
    const std::int64_t start = rng.uniform_int(1, removable);
    std::vector<std::size_t> keep;
    keep.reserve(s.tour.size());
    for (std::size_t i = 0; i < s.tour.size(); ++i) {
        const auto pos = static_cast<std::int64_t>(i);
        // Cyclic run over non-depot slots: drop positions start..start+len-1
        // (wrapping within 1..removable).
        bool drop = false;
        for (std::int64_t t = 0; t < len; ++t) {
            std::int64_t slot = start + t;
            if (slot > removable) slot -= removable;  // wrap, skip depot
            if (pos == slot) {
                drop = true;
                break;
            }
        }
        if (!drop) keep.push_back(s.tour[i]);
    }
    s = make_solution(p, std::move(keep));
}

}  // namespace

Solution solve_ils(const Problem& p, const IlsConfig& cfg) {
    p.validate();
    Solution best = solve_greedy(p);
    util::Rng rng(cfg.seed);
    int stale = 0;
    for (int it = 0; it < cfg.iterations; ++it) {
        Solution cand = best;
        remove_segment(p, cand, cfg.segment_min, cfg.segment_max, rng);
        polish(p, cand);
        if (cand.feasible(p) &&
            (cand.prize > best.prize + kEps ||
             (cand.prize > best.prize - kEps &&
              cand.cost < best.cost - kEps))) {
            best = std::move(cand);
            stale = 0;
        } else if (cfg.patience > 0 && ++stale >= cfg.patience) {
            break;
        }
    }
    return best;
}

}  // namespace uavdc::orienteering
