#pragma once

#include <cstdint>

#include "uavdc/orienteering/problem.hpp"

namespace uavdc::orienteering {

/// Iterated local search configuration.
struct IlsConfig {
    int iterations = 60;           ///< perturb + polish rounds
    std::uint64_t seed = 777;      ///< RNG seed
    int segment_min = 1;           ///< perturbation: smallest removed run
    int segment_max = 4;           ///< perturbation: largest removed run
    int patience = 20;             ///< stop after this many non-improving
                                   ///< rounds (0 = never early-stop)
};

/// Iterated local search for rooted budgeted orienteering: start from the
/// greedy solution, then repeatedly remove a random contiguous run of
/// stops (double-bridge-style segment removal), re-polish (2-opt +
/// insert/replace), and accept improvements. Complements GRASP: ILS makes
/// many small moves around one incumbent, GRASP restarts from scratch —
/// on clustered prize fields ILS often wins at equal budget.
/// Deterministic for a fixed config.
[[nodiscard]] Solution solve_ils(const Problem& p, const IlsConfig& cfg = {});

}  // namespace uavdc::orienteering
