#include "uavdc/orienteering/problem.hpp"

#include "uavdc/util/check.hpp"

namespace uavdc::orienteering {

void Problem::validate() const {
    UAVDC_REQUIRE(graph.size() == prizes.size())
        << "orienteering::Problem: graph/prize size mismatch ("
        << graph.size() << " vs " << prizes.size() << ")";
    UAVDC_REQUIRE(!prizes.empty()) << "orienteering::Problem: empty instance";
    UAVDC_REQUIRE(depot < prizes.size())
        << "orienteering::Problem: bad depot " << depot;
    UAVDC_REQUIRE(budget >= 0.0)
        << "orienteering::Problem: negative budget " << budget;
    for (double p : prizes) {
        UAVDC_REQUIRE(p >= 0.0)
            << "orienteering::Problem: negative prize " << p;
    }
}

Solution make_solution(const Problem& p, std::vector<std::size_t> tour) {
    Solution s;
    s.tour = std::move(tour);
    s.cost = p.graph.tour_length(s.tour);
    for (std::size_t v : s.tour) s.prize += p.prizes[v];
    return s;
}

}  // namespace uavdc::orienteering
