#include "uavdc/orienteering/problem.hpp"

#include <stdexcept>

namespace uavdc::orienteering {

void Problem::validate() const {
    if (graph.size() != prizes.size()) {
        throw std::invalid_argument(
            "orienteering::Problem: graph/prize size mismatch");
    }
    if (prizes.empty()) {
        throw std::invalid_argument("orienteering::Problem: empty instance");
    }
    if (depot >= prizes.size()) {
        throw std::invalid_argument("orienteering::Problem: bad depot");
    }
    if (budget < 0.0) {
        throw std::invalid_argument("orienteering::Problem: negative budget");
    }
    for (double p : prizes) {
        if (p < 0.0) {
            throw std::invalid_argument(
                "orienteering::Problem: negative prize");
        }
    }
}

Solution make_solution(const Problem& p, std::vector<std::size_t> tour) {
    Solution s;
    s.tour = std::move(tour);
    s.cost = p.graph.tour_length(s.tour);
    for (std::size_t v : s.tour) s.prize += p.prizes[v];
    return s;
}

}  // namespace uavdc::orienteering
