#pragma once

#include <cstddef>
#include <vector>

#include "uavdc/graph/dense_graph.hpp"

namespace uavdc::orienteering {

/// Rooted orienteering instance on a (metric) dense graph:
/// find a closed tour through `depot` whose edge-weight sum is at most
/// `budget`, maximising the total prize of visited nodes.
///
/// This is exactly the problem Algorithm 1 reduces DCM-without-overlap to
/// (Sec. IV): node prizes are the per-cell awards p(s_j) of Eq. (6) and edge
/// weights are the hover+travel energies w2 of Eq. (9), with budget = E.
struct Problem {
    graph::DenseGraph graph;     ///< symmetric edge weights ("energy")
    std::vector<double> prizes;  ///< node awards, prizes[i] >= 0
    std::size_t depot{0};        ///< tour must start and end here
    double budget{0.0};          ///< max tour weight (energy capacity E)

    [[nodiscard]] std::size_t size() const { return prizes.size(); }

    /// Throws std::invalid_argument if sizes mismatch, depot is out of
    /// range, or the budget / a prize is negative.
    void validate() const;
};

/// A solution: ordered closed tour (starting at depot; closing edge
/// implicit) plus its cached cost and prize.
struct Solution {
    std::vector<std::size_t> tour;  ///< tour[0] == depot when non-empty
    double cost{0.0};               ///< total edge weight of the closed tour
    double prize{0.0};              ///< sum of prizes over tour nodes

    [[nodiscard]] bool feasible(const Problem& p, double eps = 1e-9) const {
        return cost <= p.budget + eps;
    }
};

/// Recompute cost and prize of `tour` for problem `p`.
[[nodiscard]] Solution make_solution(const Problem& p,
                                     std::vector<std::size_t> tour);

}  // namespace uavdc::orienteering
