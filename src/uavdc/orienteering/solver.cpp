#include "uavdc/orienteering/solver.hpp"

#include "uavdc/orienteering/exact.hpp"
#include "uavdc/orienteering/greedy.hpp"

namespace uavdc::orienteering {

std::string to_string(SolverKind kind) {
    switch (kind) {
        case SolverKind::kExact:
            return "exact";
        case SolverKind::kGreedy:
            return "greedy";
        case SolverKind::kGrasp:
            return "grasp";
        case SolverKind::kIls:
            return "ils";
    }
    return "unknown";
}

Solution solve(const Problem& p, SolverKind kind,
               const GraspConfig& grasp_cfg, const IlsConfig& ils_cfg) {
    switch (kind) {
        case SolverKind::kExact:
            return solve_exact(p);
        case SolverKind::kGreedy:
            return solve_greedy(p);
        case SolverKind::kGrasp:
            return solve_grasp(p, grasp_cfg);
        case SolverKind::kIls:
            return solve_ils(p, ils_cfg);
    }
    return solve_greedy(p);
}

}  // namespace uavdc::orienteering
