#pragma once

#include <memory>
#include <string>

#include "uavdc/orienteering/grasp.hpp"
#include "uavdc/orienteering/ils.hpp"
#include "uavdc/orienteering/problem.hpp"

namespace uavdc::orienteering {

/// Which orienteering backend Algorithm 1 should use as the black-box
/// solver (the paper plugs in Bansal et al. [1]; see DESIGN.md
/// substitution #1 for why these are behaviour-preserving stand-ins).
enum class SolverKind {
    kExact,   ///< bitmask DP, n <= ~20 (tests, tiny instances)
    kGreedy,  ///< deterministic cheapest-insertion + polish
    kGrasp,   ///< randomized multi-start (default)
    kIls,     ///< iterated local search around one incumbent
};

[[nodiscard]] std::string to_string(SolverKind kind);

/// Unified entry point: dispatches on `kind`. kExact throws
/// std::invalid_argument if the instance exceeds the bitmask-DP limit —
/// there is deliberately no silent fallback.
[[nodiscard]] Solution solve(const Problem& p, SolverKind kind,
                             const GraspConfig& grasp_cfg = {},
                             const IlsConfig& ils_cfg = {});

}  // namespace uavdc::orienteering
