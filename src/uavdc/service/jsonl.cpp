#include "uavdc/service/jsonl.hpp"

#include <istream>
#include <mutex>
#include <ostream>
#include <string>

namespace uavdc::service {

namespace {

bool blank(const std::string& line) {
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

JsonlSummary serve_jsonl(std::istream& in, std::ostream& out,
                         const JsonlConfig& cfg, util::ThreadPool* pool) {
    JsonlSummary summary;
    PlanService::Config svc_cfg = cfg.service;
    // Responses leave through response_line(); hits don't need the tree.
    svc_cfg.wire_only_hits = true;
    PlanService svc(svc_cfg, pool);

    std::mutex out_mu;
    const auto write_line = [&](const io::Json& doc) {
        const std::string text = doc.dump();
        std::lock_guard lock(out_mu);
        out << text << '\n';
        out.flush();
    };
    const auto write_response = [&](const PlanResponse& resp) {
        const std::string text = response_line(resp);
        std::lock_guard lock(out_mu);
        out << text << '\n';
        out.flush();
    };

    const auto stop_requested = [&] {
        return cfg.stop != nullptr &&
               cfg.stop->load(std::memory_order_acquire);
    };

    std::string line;
    while (!stop_requested() && std::getline(in, line)) {
        if (stop_requested()) {
            // The signal landed mid-read; this line was never submitted, so
            // drain semantics ("finish what was accepted") don't cover it.
            summary.stopped = true;
            break;
        }
        if (blank(line)) continue;
        ++summary.lines;

        io::Json doc;
        std::string parse_error;
        try {
            doc = io::Json::parse(line);
        } catch (const std::exception& ex) {
            parse_error = ex.what();
        }

        if (!parse_error.empty()) {
            ++summary.parse_errors;
            PlanResponse resp;
            resp.status = ResponseStatus::kBadRequest;
            resp.error = "unparseable line: " + parse_error;
            write_response(resp);
            continue;
        }

        const std::string op =
            doc.is_object() ? doc.string_or("op", "") : "";
        if (op == "stats" || op == "drain") {
            ++summary.control;
            if (op == "drain") svc.drain();
            io::Json reply;
            reply["id"] = doc.string_or("id", "");
            reply["op"] = op;
            reply["status"] = "ok";
            reply["stats"] = to_json(svc.stats());
            write_line(reply);
            continue;
        }
        if (!op.empty()) {
            ++summary.parse_errors;
            PlanResponse resp;
            resp.id = doc.string_or("id", "");
            resp.status = ResponseStatus::kBadRequest;
            resp.error = "unknown op '" + op + "' (expected stats|drain)";
            write_response(resp);
            continue;
        }

        PlanRequest req;
        try {
            req = request_from_json(doc);
        } catch (const std::exception& ex) {
            ++summary.parse_errors;
            PlanResponse resp;
            resp.id = doc.is_object() ? doc.string_or("id", "") : "";
            resp.status = ResponseStatus::kBadRequest;
            resp.error = ex.what();
            write_response(resp);
            continue;
        }
        ++summary.requests;
        svc.submit(std::move(req), write_response);
    }

    if (stop_requested()) summary.stopped = true;
    svc.drain();
    summary.stats = svc.stats();
    if (cfg.final_stats) {
        io::Json reply;
        reply["id"] = "";
        reply["op"] = "stats";
        reply["status"] = "ok";
        reply["stats"] = to_json(summary.stats);
        write_line(reply);
    }
    svc.shutdown();
    return summary;
}

}  // namespace uavdc::service
