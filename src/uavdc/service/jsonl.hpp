#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "uavdc/service/plan_service.hpp"

namespace uavdc::service {

/// JSONL session configuration for `serve_jsonl` / `uavdc serve`.
struct JsonlConfig {
    PlanService::Config service;
    bool final_stats = false;  ///< append one stats line after EOF drain
    /// Graceful-drain request (e.g. `net::ShutdownSignal::flag()`): once
    /// true, the session stops consuming input, finishes every request
    /// already submitted, and returns as if EOF had been reached. The CLI
    /// installs SIGTERM/SIGINT handlers without SA_RESTART so a blocking
    /// getline is interrupted and the flag is observed promptly.
    const std::atomic<bool>* stop = nullptr;
};

/// Outcome of one JSONL session (also printed by `uavdc serve --summary`).
struct JsonlSummary {
    std::uint64_t lines{0};         ///< non-blank input lines
    std::uint64_t requests{0};      ///< plan requests submitted
    std::uint64_t control{0};       ///< stats/drain verbs answered
    std::uint64_t parse_errors{0};  ///< malformed lines (answered, not fatal)
    bool stopped{false};            ///< ended by the stop flag, not EOF
    ServiceStats stats;             ///< service counters after the final drain
};

/// Newline-delimited request/response transport over streams.
///
/// Each input line is one JSON document:
///   - a plan request (see `request_from_json`) — submitted asynchronously;
///     its response line is written whenever it completes, so responses are
///     pipelined and may be out of order relative to the input. Clients
///     correlate by `id`.
///   - {"op": "stats", "id": ...} — answered immediately with a
///     point-in-time `ServiceStats` snapshot (in-flight work continues).
///   - {"op": "drain", "id": ...} — a barrier: answered only after every
///     previously submitted request has been responded to.
/// Malformed lines are answered with a `bad_request` response (echoing the
/// line's `id` when one could be parsed) rather than aborting the session.
///
/// Every line receives exactly one response line; output lines are written
/// atomically (one mutex around the stream) and flushed so a downstream
/// pipe sees completed JSON documents only. After EOF the service is
/// drained, so the summary's counters are final.
JsonlSummary serve_jsonl(std::istream& in, std::ostream& out,
                         const JsonlConfig& cfg = {},
                         util::ThreadPool* pool = nullptr);

}  // namespace uavdc::service
