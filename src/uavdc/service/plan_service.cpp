#include "uavdc/service/plan_service.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/io/serialize.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::service {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void fnv_double(std::uint64_t& h, double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    fnv_bytes(h, &bits, sizeof(bits));
}

void fnv_int(std::uint64_t& h, std::int64_t v) {
    fnv_bytes(h, &v, sizeof(v));
}

/// Response-cache key half: planner identity + every resolved option that
/// can change the plan. Two requests collide only when they would produce
/// byte-identical plans.
std::uint64_t options_fingerprint(const std::string& planner,
                                  const core::PlannerOptions& opts) {
    std::uint64_t h = kFnvOffset;
    fnv_bytes(h, planner.data(), planner.size());
    fnv_double(h, opts.delta_m);
    fnv_int(h, opts.max_candidates);
    fnv_int(h, opts.k);
    fnv_int(h, opts.grasp_iterations);
    fnv_int(h, static_cast<std::int64_t>(opts.scoring));
    fnv_int(h, static_cast<std::int64_t>(opts.solver));
    fnv_int(h, opts.reduction.dominance ? 1 : 0);
    fnv_double(h, opts.reduction.dominance_radius_m);
    fnv_double(h, opts.reduction.dominance_dwell_slack);
    fnv_int(h, opts.reduction.coarsen_factor);
    fnv_double(h, opts.reduction.refine_band_m);
    fnv_int(h, opts.reduction.consolidate_to);
    return h;
}

/// Fixed-width lowercase-hex bit pattern of a double (canonical, exact).
std::string hex_bits(double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    return fingerprint_to_hex(bits);
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
}

io::Json stats_to_json(const core::PlanStats& s) {
    io::Json doc;
    doc["runtime_s"] = s.runtime_s;
    doc["iterations"] = s.iterations;
    doc["candidates"] = s.candidates;
    doc["planned_mb"] = s.planned_mb;
    doc["planned_energy_j"] = s.planned_energy_j;
    return doc;
}

bool known_planner(const std::string& name) {
    const auto names = core::planner_names();
    return std::find(names.begin(), names.end(), name) != names.end();
}

/// Field-for-field equality over exactly the content that
/// `PlanningContext::instance_fingerprint` hashes. The log-label `name` is
/// deliberately excluded to match the fingerprint: two submissions of the
/// same physical instance under different labels are the same instance,
/// not a collision.
bool same_planning_content(const model::Instance& a,
                           const model::Instance& b) {
    const auto same_vec = [](const geom::Vec2& u, const geom::Vec2& v) {
        return u.x == v.x && u.y == v.y;
    };
    if (!same_vec(a.region.lo, b.region.lo) ||
        !same_vec(a.region.hi, b.region.hi) ||
        !same_vec(a.depot, b.depot)) {
        return false;
    }
    if (a.devices.size() != b.devices.size()) return false;
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        const auto& da = a.devices[i];
        const auto& db = b.devices[i];
        if (da.id != db.id || !same_vec(da.pos, db.pos) ||
            da.data_mb != db.data_mb) {
            return false;
        }
    }
    const auto& ua = a.uav;
    const auto& ub = b.uav;
    return ua.energy_j == ub.energy_j && ua.speed_mps == ub.speed_mps &&
           ua.hover_power_w == ub.hover_power_w &&
           ua.travel_rate == ub.travel_rate &&
           ua.travel_energy_model == ub.travel_energy_model &&
           ua.coverage_radius_m == ub.coverage_radius_m &&
           ua.bandwidth_mbps == ub.bandwidth_mbps;
}

}  // namespace

std::string canonical_options(const std::string& planner,
                              const core::PlannerOptions& opts) {
    std::string s = planner;
    s += ";d=" + hex_bits(opts.delta_m);
    s += ";mc=" + std::to_string(opts.max_candidates);
    s += ";k=" + std::to_string(opts.k);
    s += ";gi=" + std::to_string(opts.grasp_iterations);
    // NOLINTBEGIN(uavdc-unchecked-narrowing): scoped-enum to int for
    // the cache-key text; enumerators are small compile-time constants
    s += ";sc=" + std::to_string(static_cast<int>(opts.scoring));
    s += ";so=" + std::to_string(static_cast<int>(opts.solver));
    // NOLINTEND(uavdc-unchecked-narrowing): end of enum cache-key casts
    const core::CandidateReductionConfig& r = opts.reduction;
    s += ";rd=" + std::to_string(r.dominance ? 1 : 0);
    s += ";rr=" + hex_bits(r.dominance_radius_m);
    s += ";rs=" + hex_bits(r.dominance_dwell_slack);
    s += ";rc=" + std::to_string(r.coarsen_factor);
    s += ";rb=" + hex_bits(r.refine_band_m);
    s += ";rk=" + std::to_string(r.consolidate_to);
    return s;
}

std::uint64_t instance_check_hash(const model::Instance& inst) {
    // Different seed than PlanningContext::instance_fingerprint (golden
    // ratio XOR), same content walk: a pair of instances would have to
    // collide under both unrelated seeds at once to fool the cache.
    std::uint64_t h = kFnvOffset ^ 0x9e3779b97f4a7c15ULL;
    fnv_double(h, inst.region.lo.x);
    fnv_double(h, inst.region.lo.y);
    fnv_double(h, inst.region.hi.x);
    fnv_double(h, inst.region.hi.y);
    fnv_double(h, inst.depot.x);
    fnv_double(h, inst.depot.y);
    fnv_int(h, static_cast<std::int64_t>(inst.devices.size()));
    for (const auto& d : inst.devices) {
        fnv_int(h, d.id);
        fnv_double(h, d.pos.x);
        fnv_double(h, d.pos.y);
        fnv_double(h, d.data_mb);
    }
    fnv_double(h, inst.uav.energy_j);
    fnv_double(h, inst.uav.speed_mps);
    fnv_double(h, inst.uav.hover_power_w);
    fnv_double(h, inst.uav.travel_rate);
    fnv_int(h, static_cast<std::int64_t>(inst.uav.travel_energy_model));
    fnv_double(h, inst.uav.coverage_radius_m);
    fnv_double(h, inst.uav.bandwidth_mbps);
    return h;
}

ResponseCache::Hit ResponseCache::get(std::uint64_t key_hi,
                                      std::uint64_t key_lo,
                                      const std::string& options_canon,
                                      std::uint64_t instance_check,
                                      bool copy_tree) {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        Entry& e = entries_[i];
        if (e.key_hi != key_hi || e.key_lo != key_lo) continue;
        if (e.options_canon != options_canon ||
            e.instance_check != instance_check) {
            // Fingerprint collision: the stored payload belongs to a
            // different (instance, options) pair. Serving it would replay
            // another request's plan as `ok`; miss instead.
            ++misses_;
            return {};
        }
        if (i != 0) {
            const auto mid = entries_.begin() + static_cast<std::ptrdiff_t>(i);
            std::rotate(entries_.begin(), mid, mid + 1);
        }
        ++hits_;
        if (!copy_tree) return {true, io::Json(), entries_.front().wire};
        return {true, entries_.front().result, entries_.front().wire};
    }
    ++misses_;
    return {};
}

std::shared_ptr<const std::string> ResponseCache::put(
    std::uint64_t key_hi, std::uint64_t key_lo, std::string options_canon,
    std::uint64_t instance_check, io::Json result) {
    // Serialize outside the lock: the dump of a large plan is the expensive
    // part, and every future hit reuses this one string.
    auto wire = std::make_shared<const std::string>(result.dump());
    std::lock_guard lock(mu_);
    entries_.insert(entries_.begin(),
                    Entry{key_hi, key_lo, std::move(options_canon),
                          instance_check, std::move(result), wire});
    if (entries_.size() > capacity_) entries_.pop_back();
    return wire;
}

std::uint64_t ResponseCache::hits() const {
    std::lock_guard lock(mu_);
    return hits_;
}

std::uint64_t ResponseCache::misses() const {
    std::lock_guard lock(mu_);
    return misses_;
}

std::size_t ResponseCache::size() const {
    std::lock_guard lock(mu_);
    return entries_.size();
}

io::Json to_json(const ServiceStats& stats) {
    io::Json doc;
    doc["submitted"] = stats.submitted;
    doc["admitted"] = stats.admitted;
    doc["completed"] = stats.completed;
    doc["ok"] = stats.ok;
    doc["rejected_overload"] = stats.rejected_overload;
    doc["rejected_bad_request"] = stats.rejected_bad_request;
    doc["rejected_shutdown"] = stats.rejected_shutdown;
    doc["deadline_exceeded"] = stats.deadline_exceeded;
    doc["internal_errors"] = stats.internal_errors;
    doc["queue_depth"] = stats.queue_depth;
    doc["in_flight"] = stats.in_flight;
    doc["workers"] = stats.workers;
    io::Json cache;
    cache["hits"] = stats.cache_hits;
    cache["misses"] = stats.cache_misses;
    cache["hit_rate"] = stats.cache_hit_rate();
    doc["cache"] = std::move(cache);
    io::Json latency{io::Json::Object{}};
    for (const auto& [planner, lat] : stats.latency) {
        io::Json row;
        row["count"] = lat.count;
        row["mean_ms"] = lat.mean_ms;
        row["p50_ms"] = lat.p50_ms;
        row["p95_ms"] = lat.p95_ms;
        row["p99_ms"] = lat.p99_ms;
        latency[planner] = std::move(row);
    }
    doc["latency_ms"] = std::move(latency);
    return doc;
}

PlanService::PlanService() : PlanService(Config()) {}

PlanService::PlanService(Config cfg, util::ThreadPool* pool)
    : cfg_(cfg) {
    UAVDC_REQUIRE(cfg_.queue_capacity > 0)
        << "PlanService: queue_capacity must be positive";
    if (pool == nullptr) {
        owned_pool_ = std::make_unique<util::ThreadPool>(
            std::max<std::size_t>(1, cfg_.workers));
        pool_ = owned_pool_.get();
    } else {
        pool_ = pool;
    }
}

PlanService::~PlanService() { shutdown(); }

bool PlanService::heap_less(const Pending& a, const Pending& b) {
    if (a.req.priority != b.req.priority) {
        return a.req.priority < b.req.priority;
    }
    return a.seq > b.seq;  // lower seq = older = higher heap rank
}

bool PlanService::submit(PlanRequest req, Callback cb) {
    const auto now = Clock::now();
    {
        std::lock_guard lock(stats_mu_);
        ++counters_.submitted;
    }
    // Remember the inline instance before any shedding decision so that
    // pipelined instance_ref requests behind this one stay resolvable.
    if (req.instance) {
        std::string ignored;
        ResponseStatus ignored_status = ResponseStatus::kOk;
        (void)resolve_instance(req, ignored, ignored_status);
    }

    PlanResponse reject;
    reject.id = req.id;
    {
        std::unique_lock lock(mu_);
        if (stopping_) {
            reject.status = ResponseStatus::kShutdown;
            reject.error = "service is shutting down";
        } else if (queue_.size() >= cfg_.queue_capacity) {
            reject.status = ResponseStatus::kOverloaded;
            reject.error =
                "admission queue full (capacity " +
                std::to_string(cfg_.queue_capacity) + ")";
        } else {
            Pending p;
            p.req = std::move(req);
            p.cb = std::move(cb);
            p.admitted = now;
            p.has_deadline = p.req.deadline_ms > 0.0;
            if (p.has_deadline) {
                p.deadline =
                    now + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double, std::milli>(
                                  p.req.deadline_ms));
            }
            p.seq = next_seq_++;
            const std::uint64_t seq = p.seq;
            queue_.push_back(std::move(p));
            std::push_heap(queue_.begin(), queue_.end(), heap_less);
            lock.unlock();
            {
                std::lock_guard slock(stats_mu_);
                ++counters_.admitted;
            }
            try {
                pool_->submit([this] { run_one(); });
            } catch (...) {
                // An external pool shut down concurrently and refused the
                // ticket. Exactly one queued request now has no worker
                // coming for it; leaving it would hang drain(). Un-admit
                // this request by seq — or, if a racing ticket already
                // claimed it off the heap, shed the current top instead —
                // and answer the orphan with `shutdown`.
                Pending orphan;
                bool ours = false;
                bool have = false;
                {
                    std::lock_guard relock(mu_);
                    auto it = std::find_if(
                        queue_.begin(), queue_.end(),
                        [&](const Pending& q) { return q.seq == seq; });
                    if (it != queue_.end()) {
                        orphan = std::move(*it);
                        queue_.erase(it);
                        std::make_heap(queue_.begin(), queue_.end(),
                                       heap_less);
                        ours = have = true;
                    } else if (!queue_.empty()) {
                        std::pop_heap(queue_.begin(), queue_.end(),
                                      heap_less);
                        orphan = std::move(queue_.back());
                        queue_.pop_back();
                        have = true;
                    }
                    if (queue_.empty() && in_flight_ == 0) {
                        drained_cv_.notify_all();
                    }
                }
                if (have) {
                    PlanResponse r;
                    r.id = orphan.req.id;
                    r.status = ResponseStatus::kShutdown;
                    r.error = "worker pool rejected the request "
                              "(pool shutting down)";
                    {
                        std::lock_guard slock(stats_mu_);
                        ++counters_.completed;
                        ++counters_.rejected_shutdown;
                    }
                    orphan.cb(std::move(r));
                }
                return !ours;
            }
            return true;
        }
    }
    {
        std::lock_guard lock(stats_mu_);
        if (reject.status == ResponseStatus::kOverloaded) {
            ++counters_.rejected_overload;
        } else if (reject.status == ResponseStatus::kShutdown) {
            ++counters_.rejected_shutdown;
        }
        ++counters_.completed;
    }
    cb(std::move(reject));
    return false;
}

void PlanService::run_one() {
    Pending p;
    {
        std::lock_guard lock(mu_);
        // One ticket per admitted request: the queue cannot be empty here.
        UAVDC_CHECK(!queue_.empty()) << "PlanService: ticket without request";
        std::pop_heap(queue_.begin(), queue_.end(), heap_less);
        p = std::move(queue_.back());
        queue_.pop_back();
        ++in_flight_;
    }
    // The drain invariant must survive any throw below — most importantly
    // a throwing user callback, whose exception vanishes into the pool's
    // unobserved future. Skipping the decrement would wedge
    // drain()/shutdown() (and the destructor) forever, so a scope guard
    // decrements no matter how this frame exits.
    struct InFlightGuard {
        PlanService* svc;
        ~InFlightGuard() {
            std::lock_guard lock(svc->mu_);
            --svc->in_flight_;
            if (svc->queue_.empty() && svc->in_flight_ == 0) {
                svc->drained_cv_.notify_all();
            }
        }
    } guard{this};
    const auto start = Clock::now();

    PlanResponse resp;
    if (p.has_deadline && start >= p.deadline) {
        resp.status = ResponseStatus::kDeadlineExceeded;
        resp.error = "deadline expired after " +
                     std::to_string(ms_between(p.admitted, start)) +
                     " ms in queue";
    } else {
        resp = execute(p.req);
        if (p.has_deadline && Clock::now() >= p.deadline &&
            resp.status == ResponseStatus::kOk) {
            // Cooperative timeout: the planner ran to completion past the
            // deadline; hand back the finished plan flagged as late/partial.
            resp.status = ResponseStatus::kDeadlineExceeded;
            resp.partial = true;
            resp.error = "deadline expired during planning";
        }
        note_latency(p.req.planner,
                     std::chrono::duration<double>(Clock::now() - start)
                         .count());
    }
    finish(std::move(resp), p, start);
}

void PlanService::finish(PlanResponse resp, const Pending& p,
                         Clock::time_point start) {
    resp.id = p.req.id;
    resp.queue_ms = ms_between(p.admitted, start);
    resp.exec_ms = ms_between(start, Clock::now());
    {
        std::lock_guard lock(stats_mu_);
        ++counters_.completed;
        switch (resp.status) {
            case ResponseStatus::kOk:
                ++counters_.ok;
                break;
            case ResponseStatus::kDeadlineExceeded:
                ++counters_.deadline_exceeded;
                break;
            case ResponseStatus::kBadRequest:
                ++counters_.rejected_bad_request;
                break;
            case ResponseStatus::kInternalError:
                ++counters_.internal_errors;
                break;
            case ResponseStatus::kShutdown:
                ++counters_.rejected_shutdown;
                break;
            default:
                break;
        }
    }
    p.cb(std::move(resp));
}

std::shared_ptr<const model::Instance> PlanService::resolve_instance(
    const PlanRequest& req, std::string& error, ResponseStatus& status) {
    if (req.instance) {
        const std::uint64_t fp =
            core::PlanningContext::instance_fingerprint(*req.instance);
        std::shared_ptr<const model::Instance> inst;
        bool inserted = false;
        {
            std::lock_guard lock(inst_mu_);
            auto it = instances_.find(fp);
            if (it != instances_.end()) {
                // The 64-bit fingerprint alone would silently resolve a
                // colliding instance to whatever was stored first — a wrong
                // answer with no detection path. We hold the submitted
                // content right here, so verify it (cheap next to planning)
                // and fail loudly instead of planning the wrong instance.
                if (!same_planning_content(*it->second, *req.instance)) {
                    error = "instance fingerprint collision: inline instance "
                            "hashes to " + fingerprint_to_hex(fp) +
                            " but differs from the instance registered under "
                            "that fingerprint";
                    status = ResponseStatus::kInternalError;
                    return nullptr;
                }
                inst = it->second;
            } else {
                inst = std::make_shared<const model::Instance>(*req.instance);
                instances_.emplace(fp, inst);
                instance_order_.push_back(fp);
                while (instance_order_.size() > cfg_.instance_capacity) {
                    instances_.erase(instance_order_.front());
                    instance_order_.erase(instance_order_.begin());
                }
                inserted = true;
            }
        }
        // Durability tap runs outside inst_mu_: the hook does file I/O and
        // must not serialize every concurrent instance lookup behind it.
        if (inserted && cfg_.store.on_instance) {
            cfg_.store.on_instance(fp, *inst);
        }
        return inst;
    }
    if (req.instance_ref) {
        std::lock_guard lock(inst_mu_);
        auto it = instances_.find(*req.instance_ref);
        if (it != instances_.end()) return it->second;
        error = "unknown instance_ref '" +
                fingerprint_to_hex(*req.instance_ref) +
                "' (instances must be sent inline once before being "
                "referenced)";
        status = ResponseStatus::kBadRequest;
        return nullptr;
    }
    error = "request carries neither an inline instance nor an instance_ref";
    status = ResponseStatus::kBadRequest;
    return nullptr;
}

PlanResponse PlanService::execute(const PlanRequest& req) {
    PlanResponse resp;
    resp.id = req.id;

    std::string error;
    ResponseStatus error_status = ResponseStatus::kBadRequest;
    const auto inst = resolve_instance(req, error, error_status);
    if (!inst) {
        resp.status = error_status;
        resp.error = error;
        return resp;
    }
    if (!known_planner(req.planner)) {
        resp.status = ResponseStatus::kBadRequest;
        resp.error = "unknown planner '" + req.planner + "'";
        return resp;
    }
    const core::PlannerOptions opts = req.overrides.resolve(cfg_.defaults);
    const std::uint64_t inst_fp =
        core::PlanningContext::instance_fingerprint(*inst);
    const std::uint64_t opts_fp = options_fingerprint(req.planner, opts);
    const std::string canon = canonical_options(req.planner, opts);
    const std::uint64_t check = instance_check_hash(*inst);

    if (auto hit = cache_.get(inst_fp, opts_fp, canon, check,
                              /*copy_tree=*/!cfg_.wire_only_hits);
        hit.found) {
        resp.cache_hit = true;
        resp.result = std::move(hit.result);
        resp.result_wire = std::move(hit.wire);
        return resp;
    }

    try {
        auto planner = core::make_planner(req.planner, opts);
        const auto ctx =
            core::PlanningContext::obtain(*inst, opts.hover_config());
        auto res = planner->plan(*ctx);
        io::Json result;
        result["instance_fingerprint"] = fingerprint_to_hex(inst_fp);
        result["planner"] = planner->name();
        result["plan"] = io::to_json(res.plan);
        result["stats"] = stats_to_json(res.stats);
        resp.result = result;
        if (cfg_.store.on_response) {
            cfg_.store.on_response(inst_fp, opts_fp, canon, check, result);
        }
        resp.result_wire =
            cache_.put(inst_fp, opts_fp, canon, check, std::move(result));
    } catch (const std::exception& ex) {
        resp.status = ResponseStatus::kInternalError;
        resp.error = std::string("planner '") + req.planner +
                     "' failed: " + ex.what();
        resp.result = io::Json();
    }
    return resp;
}

void PlanService::preload_instance(const model::Instance& inst) {
    const std::uint64_t fp =
        core::PlanningContext::instance_fingerprint(inst);
    std::lock_guard lock(inst_mu_);
    if (instances_.count(fp) != 0) return;
    instances_.emplace(fp, std::make_shared<const model::Instance>(inst));
    instance_order_.push_back(fp);
    while (instance_order_.size() > cfg_.instance_capacity) {
        instances_.erase(instance_order_.front());
        instance_order_.erase(instance_order_.begin());
    }
}

void PlanService::preload_response(std::uint64_t key_hi, std::uint64_t key_lo,
                                   std::string options_canon,
                                   std::uint64_t instance_check,
                                   io::Json result) {
    cache_.put(key_hi, key_lo, std::move(options_canon), instance_check,
               std::move(result));
}

void PlanService::drain() {
    std::unique_lock lock(mu_);
    drained_cv_.wait(lock,
                     [this] { return queue_.empty() && in_flight_ == 0; });
}

void PlanService::shutdown() {
    {
        std::lock_guard lock(mu_);
        stopping_ = true;
    }
    drain();
    if (owned_pool_) owned_pool_->shutdown();
}

void PlanService::note_latency(const std::string& planner, double seconds) {
    std::lock_guard lock(stats_mu_);
    latency_[planner].record(seconds);
}

ServiceStats PlanService::stats() const {
    ServiceStats out;
    {
        std::lock_guard lock(stats_mu_);
        out = counters_;
        for (const auto& [planner, hist] : latency_) {
            PlannerLatency lat;
            lat.count = hist.count();
            lat.mean_ms = hist.mean_s() * 1e3;
            lat.p50_ms = hist.quantile(0.50) * 1e3;
            lat.p95_ms = hist.quantile(0.95) * 1e3;
            lat.p99_ms = hist.quantile(0.99) * 1e3;
            out.latency[planner] = lat;
        }
    }
    out.cache_hits = cache_.hits();
    out.cache_misses = cache_.misses();
    {
        std::lock_guard lock(mu_);
        out.queue_depth = queue_.size();
        out.in_flight = in_flight_;
    }
    out.workers = pool_->num_threads();
    return out;
}

}  // namespace uavdc::service
