#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "uavdc/core/metrics.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/service/request.hpp"
#include "uavdc/util/thread_pool.hpp"

namespace uavdc::service {

/// Per-planner wall-clock latency summary (milliseconds).
struct PlannerLatency {
    std::uint64_t count{0};
    double mean_ms{0.0};
    double p50_ms{0.0};
    double p95_ms{0.0};
    double p99_ms{0.0};
};

/// Point-in-time service counters (the `stats` control verb's payload).
/// Reconciliation invariants: `completed == ok + rejected_overload +
/// rejected_bad_request + rejected_shutdown + deadline_exceeded +
/// internal_errors` at all times, and `submitted == completed` once the
/// service has drained.
struct ServiceStats {
    std::uint64_t submitted{0};         ///< submit() calls
    std::uint64_t admitted{0};          ///< accepted into the queue
    std::uint64_t completed{0};         ///< responses delivered (admission
                                        ///< rejections included)
    std::uint64_t ok{0};                ///< status == ok
    std::uint64_t rejected_overload{0};
    std::uint64_t rejected_bad_request{0};
    std::uint64_t rejected_shutdown{0};  ///< shed while stopping
    std::uint64_t deadline_exceeded{0};
    std::uint64_t internal_errors{0};
    std::uint64_t cache_hits{0};
    std::uint64_t cache_misses{0};
    std::size_t queue_depth{0};         ///< requests waiting right now
    std::size_t in_flight{0};           ///< requests executing right now
    std::size_t workers{0};
    /// Keyed by planner name; execution latency only (queue time excluded).
    std::map<std::string, PlannerLatency> latency;

    [[nodiscard]] double cache_hit_rate() const {
        const auto total = cache_hits + cache_misses;
        return total ? static_cast<double>(cache_hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

[[nodiscard]] io::Json to_json(const ServiceStats& stats);

/// Deterministic canonical encoding of (planner name, resolved options):
/// every option that can change a plan, doubles as fixed-width bit-pattern
/// hex. Two requests have equal encodings iff they would plan identically,
/// so the response cache stores it alongside the hashed key and verifies it
/// on every hit — a 128-bit fingerprint collision then reads as a miss
/// instead of replaying the other request's payload.
[[nodiscard]] std::string canonical_options(const std::string& planner,
                                            const core::PlannerOptions& opts);

/// Second, independently-seeded content hash over exactly the instance
/// fields `PlanningContext::instance_fingerprint` hashes. An instance pair
/// colliding under both hashes simultaneously would need a 128-bit
/// coincidence across two unrelated seeds; the cache cross-checks this
/// value on every hit.
[[nodiscard]] std::uint64_t instance_check_hash(const model::Instance& inst);

/// Bounded, thread-safe, MRU-ordered response cache keyed on the
/// (instance fingerprint, planner+options fingerprint) pair. The 128-bit
/// key alone cannot prove identity, so each entry also carries the
/// canonical options encoding and the independent instance check hash;
/// `get` answers a hit only when all four match, and counts anything less
/// as a miss (the subsequent `put` then stores the new payload under the
/// same key, ahead of the colliding entry in MRU order).
class ResponseCache {
  public:
    explicit ResponseCache(std::size_t capacity) : capacity_(capacity) {}

    struct Hit {
        bool found{false};
        io::Json result;
        /// `result` pre-serialized with dump(); shared with the cache entry
        /// so hot transports splice it instead of re-dumping the tree.
        std::shared_ptr<const std::string> wire;
    };

    /// Lookup; moves a verified hit to the MRU front and counts it. A key
    /// match whose canon/check differs counts as a miss. `copy_tree` false
    /// leaves Hit::result null and returns only the shared wire string —
    /// the deep copy of a plan tree is the dominant cost of a hit, and
    /// wire-only transports never look at the tree.
    [[nodiscard]] Hit get(std::uint64_t key_hi, std::uint64_t key_lo,
                          const std::string& options_canon,
                          std::uint64_t instance_check,
                          bool copy_tree = true);

    /// Insert at the MRU front, evicting from the back past capacity.
    /// Serializes `result` once and returns the shared wire form (the same
    /// string subsequent hits carry).
    std::shared_ptr<const std::string> put(std::uint64_t key_hi,
                                           std::uint64_t key_lo,
                                           std::string options_canon,
                                           std::uint64_t instance_check,
                                           io::Json result);

    [[nodiscard]] std::uint64_t hits() const;
    [[nodiscard]] std::uint64_t misses() const;
    [[nodiscard]] std::size_t size() const;

  private:
    struct Entry {
        std::uint64_t key_hi;
        std::uint64_t key_lo;
        std::string options_canon;    ///< verified on every key match
        std::uint64_t instance_check; ///< verified on every key match
        io::Json result;
        std::shared_ptr<const std::string> wire;  ///< result.dump(), shared
    };

    std::size_t capacity_;
    mutable std::mutex mu_;
    std::vector<Entry> entries_;  ///< MRU first, linear scan
    std::uint64_t hits_{0};
    std::uint64_t misses_{0};
};

/// Embeddable, multi-threaded planning service.
///
/// Lifecycle of a request:
///   submit() -> [REJECTED overloaded|bad ref later|shutdown]
///            -> ADMITTED (bounded queue, priority desc then FIFO)
///            -> RUNNING on a util::ThreadPool worker
///            -> DONE (ok | deadline_exceeded | bad_request |
///                     internal_error), callback invoked exactly once.
///
/// Backpressure: admission is a hard bound — when the queue holds
/// `queue_capacity` requests, submit() answers `overloaded` immediately
/// (on the caller's thread) instead of buffering without limit; the caller
/// retries or sheds load.
///
/// Deadlines are cooperative: a request whose deadline passes while queued
/// is answered `deadline_exceeded` without planning; one that finishes
/// planning past its deadline is answered `deadline_exceeded` with
/// `partial = true` and the finished plan attached (planners are not
/// preempted mid-run).
///
/// Duplicate suppression: responses are cached by (instance fingerprint,
/// planner, resolved options). A hit returns the byte-identical `result`
/// payload of the original run without replanning. Planning itself runs
/// against the process-wide `PlanningContext` LRU, so even cache *misses*
/// on a known instance skip the candidate precompute.
///
/// Thread safety: submit/drain/stats/shutdown may be called from any
/// thread. Callbacks run on worker threads (or on the submitting thread
/// for admission rejections) and must synchronize their own sinks.
class PlanService {
  public:
    /// Durability taps: invoked (outside the service's locks, possibly from
    /// several worker threads at once — the sink must synchronize) whenever
    /// a *new* instance is registered or a *fresh* planning result enters
    /// the response cache. `net::Repository` appends these to its log so a
    /// restarted process can `preload_*` them back; embedders that don't
    /// need durability leave both empty.
    struct StoreHooks {
        std::function<void(std::uint64_t fp, const model::Instance& inst)>
            on_instance;
        std::function<void(std::uint64_t key_hi, std::uint64_t key_lo,
                           const std::string& options_canon,
                           std::uint64_t instance_check,
                           const io::Json& result)>
            on_response;
    };

    struct Config {
        std::size_t workers = 4;        ///< owned-pool size (ignored when an
                                        ///< external pool is supplied)
        std::size_t queue_capacity = 256;
        std::size_t response_cache_capacity = 512;
        std::size_t instance_capacity = 256;  ///< fingerprint registry bound
        core::PlannerOptions defaults;  ///< base options requests override
        StoreHooks store;               ///< durability taps (may be empty)
        /// Cache hits carry only `result_wire` (the pre-serialized result)
        /// and leave `PlanResponse::result` null, skipping the deep copy of
        /// the plan tree per hit. Transports that serialize exclusively via
        /// `response_line` (TCP server, router, JSONL) enable this; leave
        /// false when callbacks inspect `result` directly.
        bool wire_only_hits = false;
    };

    /// `pool` == nullptr: the service owns a `util::ThreadPool` of
    /// `cfg.workers` threads and joins it in shutdown(). Otherwise all
    /// execution shares the caller's pool (e.g. `util::global_pool()`),
    /// and shutdown() only drains this service's requests.
    PlanService();  ///< default Config, owned 4-worker pool
    explicit PlanService(Config cfg, util::ThreadPool* pool = nullptr);
    ~PlanService();

    PlanService(const PlanService&) = delete;
    PlanService& operator=(const PlanService&) = delete;

    using Callback = std::function<void(PlanResponse)>;

    /// Asynchronous entry point. Always results in exactly one callback
    /// invocation; returns false when the request was rejected at admission
    /// (overloaded / shutdown — the callback has already run inline).
    /// An inline instance is registered under its fingerprint before the
    /// capacity check, so pipelined `instance_ref` requests resolve even
    /// when this request itself is shed.
    bool submit(PlanRequest req, Callback cb);

    /// Synchronous execution (no admission queue, no deadline): resolve,
    /// plan, cache. Workers call this; tests use it as the reference path.
    [[nodiscard]] PlanResponse execute(const PlanRequest& req);

    /// Replay-from-repository entry points: identical bookkeeping to a live
    /// registration / cache fill, but the `StoreHooks` are *not* invoked —
    /// otherwise reloading a repository would immediately re-append every
    /// record it just read.
    void preload_instance(const model::Instance& inst);
    void preload_response(std::uint64_t key_hi, std::uint64_t key_lo,
                          std::string options_canon,
                          std::uint64_t instance_check, io::Json result);

    /// Block until every admitted request has been answered.
    void drain();

    /// Stop admitting, drain, and (for an owned pool) join all workers.
    /// Idempotent; the destructor calls it.
    void shutdown();

    [[nodiscard]] ServiceStats stats() const;

    [[nodiscard]] const Config& config() const { return cfg_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending {
        PlanRequest req;
        Callback cb;
        Clock::time_point admitted;
        Clock::time_point deadline;  ///< admitted + deadline_ms
        bool has_deadline{false};
        std::uint64_t seq{0};
    };

    /// Max-heap order: priority desc, then seq asc (FIFO within a class).
    static bool heap_less(const Pending& a, const Pending& b);

    void run_one();
    void finish(PlanResponse resp, const Pending& p, Clock::time_point start);
    /// Resolve the request's instance (inline or by fingerprint ref).
    /// On failure returns nullptr with `error` and `status` filled
    /// (`bad_request` for client mistakes, `internal_error` for a detected
    /// fingerprint collision in the registry).
    [[nodiscard]] std::shared_ptr<const model::Instance> resolve_instance(
        const PlanRequest& req, std::string& error, ResponseStatus& status);
    void note_latency(const std::string& planner, double seconds);

    Config cfg_;
    std::unique_ptr<util::ThreadPool> owned_pool_;
    util::ThreadPool* pool_;  ///< owned_pool_.get() or the external pool

    mutable std::mutex mu_;
    std::condition_variable drained_cv_;
    std::vector<Pending> queue_;  ///< heap via std::push_heap/pop_heap
    std::size_t in_flight_{0};
    std::uint64_t next_seq_{0};
    bool stopping_{false};

    // Instance registry: fingerprint -> instance, bounded FIFO eviction.
    mutable std::mutex inst_mu_;
    std::map<std::uint64_t, std::shared_ptr<const model::Instance>>
        instances_;
    std::vector<std::uint64_t> instance_order_;

    // Response cache: (instance fp, planner+options fp) -> result payload,
    // with the canonical options encoding and an independent instance check
    // hash verified on every hit (see ResponseCache).
    ResponseCache cache_{cfg_.response_cache_capacity};

    // Counters + per-planner latency histograms.
    mutable std::mutex stats_mu_;
    ServiceStats counters_;  ///< queue_depth/in_flight/latency filled lazily
    std::map<std::string, core::LatencyHistogram> latency_;
};

}  // namespace uavdc::service
