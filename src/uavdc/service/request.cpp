#include "uavdc/service/request.hpp"

#include <stdexcept>

#include "uavdc/io/serialize.hpp"
#include "uavdc/util/check.hpp"

namespace uavdc::service {

namespace {

[[noreturn]] void bad(const std::string& what) {
    throw std::runtime_error("bad request: " + what);
}

core::ScoringEngine scoring_from_string(const std::string& s) {
    if (const auto engine = core::scoring_engine_from_string(s)) {
        return *engine;
    }
    bad("unknown scoring engine '" + s +
        "' (expected incremental|incremental-fast|reference)");
}

orienteering::SolverKind solver_from_string(const std::string& s) {
    if (s == "exact") return orienteering::SolverKind::kExact;
    if (s == "greedy") return orienteering::SolverKind::kGreedy;
    if (s == "grasp") return orienteering::SolverKind::kGrasp;
    if (s == "ils") return orienteering::SolverKind::kIls;
    bad("unknown solver '" + s + "' (expected exact|greedy|grasp|ils)");
}

int int_field(const io::Json& obj, const std::string& key) {
    const double v = obj.at(key).as_number();
    UAVDC_REQUIRE(v >= -2147483648.0 && v <= 2147483647.0)
        << "request field '" << key << "' out of int range: " << v;
    return static_cast<int>(v);
}

}  // namespace

core::PlannerOptions PlannerOverrides::resolve(
    core::PlannerOptions base) const {
    if (delta_m) base.delta_m = *delta_m;
    if (max_candidates) base.max_candidates = *max_candidates;
    if (k) base.k = *k;
    if (grasp_iterations) base.grasp_iterations = *grasp_iterations;
    if (scoring) base.scoring = *scoring;
    if (solver) base.solver = *solver;
    if (reduce) base.reduction.dominance = *reduce;
    if (reduce_coarsen) base.reduction.coarsen_factor = *reduce_coarsen;
    if (reduce_band_m) base.reduction.refine_band_m = *reduce_band_m;
    if (reduce_consolidate) {
        base.reduction.consolidate_to = *reduce_consolidate;
    }
    return base;
}

std::string to_string(ResponseStatus status) {
    switch (status) {
        case ResponseStatus::kOk:
            return "ok";
        case ResponseStatus::kOverloaded:
            return "overloaded";
        case ResponseStatus::kDeadlineExceeded:
            return "deadline_exceeded";
        case ResponseStatus::kBadRequest:
            return "bad_request";
        case ResponseStatus::kInternalError:
            return "internal_error";
        case ResponseStatus::kShutdown:
            return "shutdown";
    }
    return "unknown";
}

std::string fingerprint_to_hex(std::uint64_t fp) {
    static const char* kDigits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[fp & 0xF];
        fp >>= 4;
    }
    return out;
}

std::uint64_t fingerprint_from_hex(const std::string& hex) {
    if (hex.size() != 16) {
        bad("instance_ref must be 16 hex digits, got '" + hex + "'");
    }
    std::uint64_t fp = 0;
    for (char c : hex) {
        fp <<= 4;
        if (c >= '0' && c <= '9') {
            fp |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            fp |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            bad("instance_ref must be lowercase hex, got '" + hex + "'");
        }
    }
    return fp;
}

PlanRequest request_from_json(const io::Json& doc) {
    if (!doc.is_object()) bad("request must be a JSON object");
    PlanRequest req;
    req.id = doc.string_or("id", "");
    if (req.id.empty()) bad("missing request 'id'");
    req.planner = doc.string_or("planner", "");
    if (req.planner.empty()) bad("missing 'planner' name");

    const bool has_inline = doc.contains("instance");
    const bool has_ref = doc.contains("instance_ref");
    if (has_inline == has_ref) {
        bad("exactly one of 'instance' or 'instance_ref' is required");
    }
    if (has_inline) {
        try {
            req.instance = io::instance_from_json(doc.at("instance"));
        } catch (const std::exception& ex) {
            bad(std::string("invalid inline instance: ") + ex.what());
        }
    } else {
        req.instance_ref =
            fingerprint_from_hex(doc.at("instance_ref").as_string());
    }

    if (doc.contains("options")) {
        const io::Json& opts = doc.at("options");
        if (!opts.is_object()) bad("'options' must be an object");
        if (opts.contains("delta_m")) {
            req.overrides.delta_m = opts.at("delta_m").as_number();
        }
        if (opts.contains("max_candidates")) {
            req.overrides.max_candidates = int_field(opts, "max_candidates");
        }
        if (opts.contains("k")) req.overrides.k = int_field(opts, "k");
        if (opts.contains("grasp_iterations")) {
            req.overrides.grasp_iterations =
                int_field(opts, "grasp_iterations");
        }
        if (opts.contains("scoring")) {
            req.overrides.scoring =
                scoring_from_string(opts.at("scoring").as_string());
        }
        if (opts.contains("solver")) {
            req.overrides.solver =
                solver_from_string(opts.at("solver").as_string());
        }
        if (opts.contains("reduce")) {
            req.overrides.reduce = opts.at("reduce").as_bool();
        }
        if (opts.contains("reduce_coarsen")) {
            req.overrides.reduce_coarsen = int_field(opts, "reduce_coarsen");
        }
        if (opts.contains("reduce_band_m")) {
            req.overrides.reduce_band_m = opts.at("reduce_band_m").as_number();
        }
        if (opts.contains("reduce_consolidate")) {
            req.overrides.reduce_consolidate =
                int_field(opts, "reduce_consolidate");
        }
    }
    const double priority = doc.number_or("priority", 0.0);
    UAVDC_REQUIRE(priority >= -2147483648.0 && priority <= 2147483647.0)
        << "priority out of int range: " << priority;
    req.priority = static_cast<int>(priority);
    req.deadline_ms = doc.number_or("deadline_ms", 0.0);
    return req;
}

io::Json to_json(const PlanRequest& req) {
    io::Json doc;
    doc["id"] = req.id;
    doc["planner"] = req.planner;
    if (req.instance) {
        doc["instance"] = io::to_json(*req.instance);
    } else if (req.instance_ref) {
        doc["instance_ref"] = fingerprint_to_hex(*req.instance_ref);
    }
    io::Json opts;
    const PlannerOverrides& o = req.overrides;
    if (o.delta_m) opts["delta_m"] = *o.delta_m;
    if (o.max_candidates) opts["max_candidates"] = *o.max_candidates;
    if (o.k) opts["k"] = *o.k;
    if (o.grasp_iterations) opts["grasp_iterations"] = *o.grasp_iterations;
    if (o.scoring) opts["scoring"] = core::to_string(*o.scoring);
    if (o.solver) opts["solver"] = orienteering::to_string(*o.solver);
    if (o.reduce) opts["reduce"] = *o.reduce;
    if (o.reduce_coarsen) opts["reduce_coarsen"] = *o.reduce_coarsen;
    if (o.reduce_band_m) opts["reduce_band_m"] = *o.reduce_band_m;
    if (o.reduce_consolidate) {
        opts["reduce_consolidate"] = *o.reduce_consolidate;
    }
    if (opts.is_object()) doc["options"] = std::move(opts);
    if (req.priority != 0) doc["priority"] = req.priority;
    if (req.deadline_ms > 0.0) doc["deadline_ms"] = req.deadline_ms;
    return doc;
}

io::Json to_json(const PlanResponse& resp) {
    io::Json doc;
    doc["id"] = resp.id;
    doc["status"] = to_string(resp.status);
    if (!resp.error.empty()) doc["error"] = resp.error;
    if (resp.cache_hit) doc["cache_hit"] = true;
    if (resp.partial) doc["partial"] = true;
    doc["queue_ms"] = resp.queue_ms;
    doc["exec_ms"] = resp.exec_ms;
    if (!resp.result.is_null()) doc["result"] = resp.result;
    return doc;
}

std::string response_line(const PlanResponse& resp) {
    if (!resp.result_wire) return to_json(resp).dump();
    // Envelope keys in the serializer's sorted order, numbers and strings
    // rendered by the dump() primitives — byte-identical to the fallback
    // above (ResponseLineMatchesJsonDump locks this in).
    std::string out;
    out.reserve(resp.result_wire->size() + resp.id.size() + 96);
    out += '{';
    if (resp.cache_hit) out += "\"cache_hit\":true,";
    if (!resp.error.empty()) {
        out += "\"error\":";
        io::Json::dump_string(out, resp.error);
        out += ',';
    }
    out += "\"exec_ms\":";
    io::Json::dump_double(out, resp.exec_ms);
    out += ",\"id\":";
    io::Json::dump_string(out, resp.id);
    if (resp.partial) out += ",\"partial\":true";
    out += ",\"queue_ms\":";
    io::Json::dump_double(out, resp.queue_ms);
    out += ",\"result\":";
    out += *resp.result_wire;
    out += ",\"status\":";
    io::Json::dump_string(out, to_string(resp.status));
    out += '}';
    return out;
}

PlanResponse response_from_json(const io::Json& doc) {
    PlanResponse resp;
    resp.id = doc.string_or("id", "");
    const std::string status = doc.string_or("status", "");
    bool known = false;
    for (ResponseStatus s :
         {ResponseStatus::kOk, ResponseStatus::kOverloaded,
          ResponseStatus::kDeadlineExceeded, ResponseStatus::kBadRequest,
          ResponseStatus::kInternalError, ResponseStatus::kShutdown}) {
        if (to_string(s) == status) {
            resp.status = s;
            known = true;
            break;
        }
    }
    if (!known) {
        throw std::runtime_error("bad response: unknown status '" + status +
                                 "'");
    }
    resp.error = doc.string_or("error", "");
    resp.cache_hit = doc.bool_or("cache_hit", false);
    resp.partial = doc.bool_or("partial", false);
    resp.queue_ms = doc.number_or("queue_ms", 0.0);
    resp.exec_ms = doc.number_or("exec_ms", 0.0);
    if (doc.contains("result")) resp.result = doc.at("result");
    return resp;
}

}  // namespace uavdc::service
