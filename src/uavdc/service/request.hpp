#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "uavdc/core/registry.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"

namespace uavdc::service {

/// Per-request overrides of the service's default `core::PlannerOptions`.
/// Absent fields inherit the service default, so a request only carries
/// what it changes (the resolved options feed the response-cache key).
struct PlannerOverrides {
    std::optional<double> delta_m;
    std::optional<int> max_candidates;
    std::optional<int> k;
    std::optional<int> grasp_iterations;
    std::optional<core::ScoringEngine> scoring;
    std::optional<orienteering::SolverKind> solver;
    /// Candidate-space reduction (alg2/alg3 only; other planners ignore it).
    std::optional<bool> reduce;            ///< dominance filtering on/off
    std::optional<int> reduce_coarsen;     ///< grid-coarsening factor (>= 2)
    std::optional<double> reduce_band_m;   ///< refine-replan band (metres)
    std::optional<int> reduce_consolidate; ///< k-means target count (> 0)

    /// Service defaults + this request's overrides.
    [[nodiscard]] core::PlannerOptions resolve(
        core::PlannerOptions base) const;
};

/// One planning request. The instance travels inline exactly once — the
/// service remembers every inline instance under its fingerprint, so later
/// requests in the same session reference it by `instance_ref` and pay the
/// transfer/parse cost once per fleet instead of once per request.
struct PlanRequest {
    std::string id;                ///< client correlation id (echoed back)
    std::string planner;           ///< registry name ("alg1".."sweep")
    std::optional<model::Instance> instance;       ///< inline instance
    std::optional<std::uint64_t> instance_ref;     ///< fingerprint reference
    PlannerOverrides overrides;
    int priority{0};               ///< higher runs first; ties are FIFO
    double deadline_ms{0.0};       ///< wall-clock budget from admission;
                                   ///< <= 0 means no deadline
};

/// Terminal request states (the response `status` field).
enum class ResponseStatus {
    kOk,                ///< planned (or served from the response cache)
    kOverloaded,        ///< rejected at admission: queue full
    kDeadlineExceeded,  ///< deadline passed before/while planning
    kBadRequest,        ///< malformed request / unknown planner / unknown ref
    kInternalError,     ///< planner threw
    kShutdown,          ///< service stopping, request not admitted
};

[[nodiscard]] std::string to_string(ResponseStatus status);

/// One response, correlated to its request by `id`. Exactly one response is
/// produced per submitted request, in completion (not submission) order.
struct PlanResponse {
    std::string id;
    ResponseStatus status{ResponseStatus::kOk};
    std::string error;       ///< human-readable detail for non-ok statuses
    bool cache_hit{false};   ///< payload served from the response cache
    bool partial{false};     ///< deadline expired mid-plan; `result` holds
                             ///< the best plan produced anyway
    double queue_ms{0.0};    ///< admission -> execution start
    double exec_ms{0.0};     ///< execution start -> response
    io::Json result;         ///< {"instance_fingerprint","planner","plan",
                             ///<  "stats"}; null unless ok or partial
    /// `result` pre-serialized with dump(), shared with the response cache.
    /// Set on every ok/partial response; transports splice it into the wire
    /// envelope via response_line() instead of re-dumping the tree per
    /// request (the dominant cost of a warm-cache response).
    std::shared_ptr<const std::string> result_wire;
};

/// Instance fingerprints travel as fixed-width lowercase hex (JSON numbers
/// are doubles and cannot carry 64 bits exactly).
[[nodiscard]] std::string fingerprint_to_hex(std::uint64_t fp);
[[nodiscard]] std::uint64_t fingerprint_from_hex(const std::string& hex);

/// Request wire format:
///   {"id": str, "planner": str,
///    "instance": {...} | "instance_ref": "16-hex",
///    "options": {"delta_m","max_candidates","k","grasp_iterations",
///                "scoring": "incremental"|"incremental-fast"|"reference",
///                "solver": "exact"|"greedy"|"grasp"|"ils",
///                "reduce": bool, "reduce_coarsen": int,
///                "reduce_band_m": num, "reduce_consolidate": int},
///    "priority": int, "deadline_ms": num}
/// Throws std::runtime_error (with field context) on malformed input — the
/// transport maps that to a `bad_request` response.
[[nodiscard]] PlanRequest request_from_json(const io::Json& doc);
[[nodiscard]] io::Json to_json(const PlanRequest& req);

[[nodiscard]] io::Json to_json(const PlanResponse& resp);
[[nodiscard]] PlanResponse response_from_json(const io::Json& doc);

/// The single-line wire form of a response — byte-identical to
/// `to_json(resp).dump()`, which is what it falls back to. When
/// `resp.result_wire` is set the envelope is spliced around the
/// pre-serialized result instead of deep-copying and re-dumping the tree,
/// which is what lets a warm cache answer at transport speed. Every
/// response serializer (JSONL, TCP server, router) goes through here so
/// the two transports stay byte-identical by construction.
[[nodiscard]] std::string response_line(const PlanResponse& resp);

}  // namespace uavdc::service
