#include "uavdc/service/workload_gen.hpp"

#include <algorithm>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/io/serialize.hpp"
#include "uavdc/service/request.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/workload/generator.hpp"

namespace uavdc::service {

std::string generate_jsonl_workload(const WorkloadGenConfig& cfg) {
    UAVDC_REQUIRE(cfg.requests >= 0 && cfg.instances > 0)
        << "workload_gen: requests must be >= 0 and instances > 0";
    UAVDC_REQUIRE(cfg.devices_lo > 0 && cfg.devices_hi >= cfg.devices_lo)
        << "workload_gen: invalid device count range";
    const std::vector<std::string> planners =
        cfg.planners.empty()
            ? std::vector<std::string>{"alg2", "alg3", "benchmark", "kmeans",
                                       "sweep"}
            : cfg.planners;

    util::Rng rng(cfg.seed);
    std::vector<model::Instance> instances;
    std::vector<std::uint64_t> fingerprints;
    instances.reserve(static_cast<std::size_t>(cfg.instances));
    for (int i = 0; i < cfg.instances; ++i) {
        workload::GeneratorConfig g;
        g.num_devices = util::checked_cast<int>(
            rng.uniform_int(cfg.devices_lo, cfg.devices_hi));
        g.region_w = rng.uniform(180.0, 420.0);
        g.region_h = rng.uniform(180.0, 420.0);
        g.min_mb = 40.0;
        g.max_mb = 400.0;
        g.uav.energy_j = rng.uniform(2.5e4, 8.0e4);
        instances.push_back(workload::generate(g, rng.next_u64()));
        fingerprints.push_back(
            core::PlanningContext::instance_fingerprint(instances.back()));
    }

    std::string out;
    std::vector<bool> sent_inline(instances.size(), false);
    std::vector<io::Json> history;  // emitted requests, for duplicates
    for (int r = 0; r < cfg.requests; ++r) {
        // += instead of `"r" + ...`: GCC 12 -Wrestrict false-positives on
        // char*-plus-temporary concatenation once inlining gets deep enough
        // (PR105651), and the tree builds with -Werror.
        std::string id = "r";
        id += std::to_string(r);
        if (!history.empty() && rng.uniform() < cfg.duplicate_prob) {
            // Verbatim repeat under a fresh id: same planner, instance, and
            // options, so the service's response cache must serve it.
            io::Json dup = history[static_cast<std::size_t>(
                rng.uniform_int(0, util::checked_cast<int>(history.size()) - 1))];
            dup["id"] = id;
            out += dup.dump();
            out += '\n';
        } else {
            const auto inst_idx = static_cast<std::size_t>(
                rng.uniform_int(0, util::checked_cast<int>(instances.size()) - 1));
            PlanRequest req;
            req.id = id;
            req.planner = planners[static_cast<std::size_t>(rng.uniform_int(
                0, util::checked_cast<int>(planners.size()) - 1))];
            if (sent_inline[inst_idx]) {
                req.instance_ref = fingerprints[inst_idx];
            } else {
                req.instance = instances[inst_idx];
                sent_inline[inst_idx] = true;
            }
            if (rng.uniform() < cfg.priority_prob) {
                req.priority = util::checked_cast<int>(rng.uniform_int(1, 5));
            }
            if (rng.uniform() < cfg.deadline_prob) {
                req.deadline_ms = 0.01;
            }
            io::Json doc = to_json(req);
            // Duplicates must reference, not re-inline, the instance —
            // keeps repeated lines small and exercises the ref path.
            io::Json compact = doc;
            if (req.instance) {
                compact.as_object().erase("instance");
                compact["instance_ref"] =
                    fingerprint_to_hex(fingerprints[inst_idx]);
            }
            history.push_back(std::move(compact));
            out += doc.dump();
            out += '\n';
        }
        if (cfg.control_verbs && r > 0 && r % 64 == 0) {
            out += R"({"op":"stats","id":"stats-)" + std::to_string(r) +
                   "\"}\n";
        }
    }
    if (cfg.control_verbs) {
        out += R"({"op":"drain","id":"drain-final"})";
        out += '\n';
    }
    return out;
}

}  // namespace uavdc::service
