#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace uavdc::service {

/// Knobs for a synthetic JSONL request stream (CI smoke, benches, tests).
struct WorkloadGenConfig {
    int requests = 200;          ///< plan-request lines to emit
    int instances = 6;           ///< distinct generated instances
    int devices_lo = 10;         ///< per-instance device count range
    int devices_hi = 28;
    std::uint64_t seed = 1;
    double duplicate_prob = 0.35;  ///< repeat an earlier request verbatim
                                   ///< (same planner/instance/options, new
                                   ///< id) so the response cache gets hits
    double deadline_prob = 0.05;   ///< give the request a ~0.01 ms deadline
                                   ///< to exercise the expiry path
    double priority_prob = 0.3;    ///< give the request priority 1..5
    bool control_verbs = true;     ///< sprinkle stats lines, end with drain
    /// Planners to cycle through; empty = the fast default mix
    /// (alg2, alg3, benchmark, kmeans, sweep).
    std::vector<std::string> planners;
};

/// Deterministic mixed workload: same config -> same byte stream. Each
/// instance travels inline on first use and by `instance_ref` afterwards;
/// duplicates, priorities, and tiny deadlines are sampled per request.
[[nodiscard]] std::string generate_jsonl_workload(
    const WorkloadGenConfig& cfg);

}  // namespace uavdc::service
