#include "uavdc/sim/adaptive.hpp"

#include <algorithm>

#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/sim/battery.hpp"

namespace uavdc::sim {

SimReport fly_adaptive(const model::Instance& inst,
                       const model::FlightPlan& plan,
                       const AdaptiveConfig& cfg) {
    const RadioModel& radio = cfg.radio ? *cfg.radio : constant_radio();
    SimReport rep;
    rep.per_device_mb.assign(inst.devices.size(), 0.0);

    // Route legs: depot -> stops... -> depot.
    std::vector<geom::Vec2> points{inst.depot};
    for (const auto& s : plan.stops) points.push_back(s.pos);
    points.push_back(inst.depot);
    const std::size_t legs = points.size() - 1;

    // reserve_after[i] = travel energy of legs i+1..end (what must stay in
    // the battery when hovering at stop i).
    std::vector<double> leg_energy(legs, 0.0);
    for (std::size_t i = 0; i < legs; ++i) {
        leg_energy[i] =
            inst.uav.travel_energy(geom::distance(points[i], points[i + 1]));
    }
    std::vector<double> reserve_after(legs + 1, cfg.safety_margin_j);
    for (std::size_t i = legs; i-- > 0;) {
        reserve_after[i] = reserve_after[i + 1] + leg_energy[i];
    }
    // Also protect the *planned* hover energy of future stops: a stop may
    // only extend its dwell into genuine slack, never into dwell the plan
    // promised to later stops — otherwise one hard early stop starves the
    // rest of the tour and the controller can underperform the open loop.
    std::vector<double> future_hover(plan.stops.size() + 1, 0.0);
    for (std::size_t i = plan.stops.size(); i-- > 0;) {
        future_hover[i] =
            future_hover[i + 1] +
            inst.uav.hover_energy(plan.stops[i].dwell_s);
    }

    Battery battery(inst.uav.energy_j);
    double now = 0.0;

    std::vector<double> residual(inst.devices.size());
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        residual[i] = inst.devices[i].data_mb;
    }
    const geom::SpatialHash* hash = nullptr;
    geom::SpatialHash storage({}, 1.0);
    if (!inst.devices.empty()) {
        const auto positions = inst.device_positions();
        storage = geom::SpatialHash(positions, inst.uav.coverage_radius_m);
        hash = &storage;
    }

    // Abort up front if the bare route does not fit.
    if (reserve_after[0] - cfg.safety_margin_j >
        battery.remaining_j() + 1e-9) {
        rep.battery_depleted = true;
        return rep;
    }

    for (std::size_t si = 0; si < plan.stops.size(); ++si) {
        // Fly leg si.
        const double fly_t = inst.uav.travel_time(
            geom::distance(points[si], points[si + 1]));
        battery.drain(inst.uav.travel_power_w(), fly_t);
        now += fly_t;
        rep.travel_s += fly_t;

        const auto& stop = plan.stops[si];
        // Hover budget: everything above the reserve for the rest of the
        // route (remaining travel legs + future stops' planned hovers).
        const double spare = std::max(
            0.0, battery.remaining_j() - reserve_after[si + 1] -
                     future_hover[si + 1]);
        const double hover_budget = spare / inst.uav.hover_power_w;

        // Time to drain every covered device at actual rates.
        double need = 0.0;
        struct Active {
            std::size_t dev;
            double rate;
        };
        std::vector<Active> act;
        if (hash != nullptr) {
            hash->for_each_in_disk(
                stop.pos, inst.uav.coverage_radius_m, [&](int dev) {
                    const auto d = static_cast<std::size_t>(dev);
                    if (residual[d] <= 0.0) return;
                    const double rate = radio.rate_mbps(
                        geom::distance(stop.pos, inst.devices[d].pos),
                        inst.uav.coverage_radius_m,
                        inst.uav.bandwidth_mbps);
                    if (rate <= 0.0) return;
                    act.push_back({d, rate});
                    need = std::max(need, residual[d] / rate);
                });
        }
        const double dwell = std::min(need, hover_budget);
        const double planned_dwell = stop.dwell_s;
        if (dwell < planned_dwell) {
            rep.energy_saved_j +=
                (planned_dwell - dwell) * inst.uav.hover_power_w;
        }
        for (const auto& a : act) {
            const double got = std::min(residual[a.dev], a.rate * dwell);
            residual[a.dev] -= got;
            rep.per_device_mb[a.dev] += got;
            rep.collected_mb += got;
        }
        battery.drain(inst.uav.hover_power_w, dwell);
        now += dwell;
        rep.hover_s += dwell;
        ++rep.stops_visited;
    }

    // Final leg home — funded by the reserve accounting above.
    {
        const double fly_t = inst.uav.travel_time(
            geom::distance(points[legs - 1], points[legs]));
        battery.drain(inst.uav.travel_power_w(), fly_t);
        now += fly_t;
        rep.travel_s += fly_t;
    }
    rep.completed = true;
    for (std::size_t d = 0; d < residual.size(); ++d) {
        if (inst.devices[d].data_mb > 0.0 && residual[d] <= 1e-9) {
            ++rep.devices_drained;
        }
    }
    rep.duration_s = now;
    rep.energy_used_j = battery.consumed_j();
    return rep;
}

}  // namespace uavdc::sim
