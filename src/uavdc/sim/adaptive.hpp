#pragma once

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"
#include "uavdc/sim/radio.hpp"
#include "uavdc/sim/simulator.hpp"

namespace uavdc::sim {

/// Closed-loop dwell controller configuration.
struct AdaptiveConfig {
    /// Actual-world radio model (nullptr = the paper's constant rate).
    const RadioModel* radio = nullptr;
    /// Extra energy kept untouched on top of the route-home reserve.
    double safety_margin_j = 0.0;
};

/// Execute a planned route with *adaptive dwells* (extension beyond the
/// paper's open-loop plan): the route (stop order) is fixed, but at each
/// stop the UAV hovers until every covered device is drained — or until
/// continuing would eat into the energy reserved for flying the remaining
/// route home. Under the planner's own (constant-rate) assumptions this
/// reproduces the plan; when actual uplink rates are worse (distance
/// taper), it converts the early-departure savings of easy stops into
/// extra dwell at hard ones, instead of silently under-collecting.
///
/// The returned report always has completed = true unless the *route
/// itself* (flying every leg with zero hover) exceeds the battery.
[[nodiscard]] SimReport fly_adaptive(const model::Instance& inst,
                                     const model::FlightPlan& plan,
                                     const AdaptiveConfig& cfg = {});

}  // namespace uavdc::sim
