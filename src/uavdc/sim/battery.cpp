#include "uavdc/sim/battery.hpp"

#include <algorithm>

namespace uavdc::sim {

double Battery::drain(double power_w, double seconds) {
    if (seconds <= 0.0) return 0.0;
    if (power_w <= 0.0) return seconds;
    const double sustainable = time_until_empty(power_w);
    const double t = std::min(seconds, sustainable);
    remaining_ = std::max(0.0, remaining_ - power_w * t);
    return t;
}

double Battery::consume(double joules) {
    const double j = std::clamp(joules, 0.0, remaining_);
    remaining_ -= j;
    return j;
}

}  // namespace uavdc::sim
