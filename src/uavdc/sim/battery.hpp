#pragma once

namespace uavdc::sim {

/// UAV battery state: tracks remaining joules during simulation.
class Battery {
  public:
    explicit Battery(double capacity_j) : capacity_(capacity_j),
                                          remaining_(capacity_j) {}

    [[nodiscard]] double capacity_j() const { return capacity_; }
    [[nodiscard]] double remaining_j() const { return remaining_; }
    [[nodiscard]] double consumed_j() const { return capacity_ - remaining_; }
    [[nodiscard]] bool depleted() const { return remaining_ <= 0.0; }

    /// Longest duration (s) sustainable at `power_w` before depletion.
    [[nodiscard]] double time_until_empty(double power_w) const {
        if (power_w <= 0.0) return 1e18;
        return remaining_ > 0.0 ? remaining_ / power_w : 0.0;
    }

    /// Drain `power_w * seconds` joules; clamps at zero and returns the
    /// duration actually sustained (== seconds unless the battery died).
    double drain(double power_w, double seconds);

    /// Directly consume `joules`; clamps at zero. Returns joules consumed.
    double consume(double joules);

  private:
    double capacity_;
    double remaining_;
};

}  // namespace uavdc::sim
