#include "uavdc/sim/event.hpp"

#include <cstdio>

namespace uavdc::sim {

std::string to_string(EventKind k) {
    switch (k) {
        case EventKind::kDepart:
            return "depart";
        case EventKind::kArrive:
            return "arrive";
        case EventKind::kHoverStart:
            return "hover-start";
        case EventKind::kDeviceDone:
            return "device-done";
        case EventKind::kHoverEnd:
            return "hover-end";
        case EventKind::kBatteryDepleted:
            return "battery-depleted";
        case EventKind::kTourComplete:
            return "tour-complete";
    }
    return "unknown";
}

std::string Event::to_string() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "[t=%9.2fs] %-16s stop=%-4d dev=%-4d %.3f",
                  time_s, sim::to_string(kind).c_str(), stop, device, value);
    return buf;
}

}  // namespace uavdc::sim
