#pragma once

#include <cstdint>
#include <string>

namespace uavdc::sim {

/// Kinds of events recorded by the discrete-event simulator.
enum class EventKind {
    kDepart,          ///< UAV leaves the depot
    kArrive,          ///< UAV reaches a hovering location
    kHoverStart,      ///< data collection begins at a stop
    kDeviceDone,      ///< one device finished uploading its residual data
    kHoverEnd,        ///< dwell elapsed, UAV leaves the stop
    kBatteryDepleted, ///< battery hit zero mid-action
    kTourComplete,    ///< UAV returned to the depot
};

[[nodiscard]] std::string to_string(EventKind k);

/// A timestamped simulation event. `stop` is the index of the hovering stop
/// involved (-1 if none), `device` the device id involved (-1 if none).
struct Event {
    double time_s{0.0};
    EventKind kind{EventKind::kDepart};
    int stop{-1};
    int device{-1};
    double value{0.0};  ///< kind-specific payload (MB uploaded, J left, ...)

    [[nodiscard]] std::string to_string() const;
};

}  // namespace uavdc::sim
