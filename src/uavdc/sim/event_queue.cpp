#include "uavdc/sim/event_queue.hpp"

namespace uavdc::sim {

void EventQueue::push(Event e) { heap_.push({e, next_seq_++}); }

Event EventQueue::pop() {
    Event e = heap_.top().event;
    heap_.pop();
    return e;
}

void EventQueue::clear() {
    heap_ = {};
    next_seq_ = 0;
}

}  // namespace uavdc::sim
