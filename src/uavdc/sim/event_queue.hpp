#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "uavdc/sim/event.hpp"

namespace uavdc::sim {

/// Min-time priority queue of events with FIFO tie-breaking (events at the
/// same timestamp pop in insertion order, keeping traces deterministic).
class EventQueue {
  public:
    void push(Event e);
    [[nodiscard]] bool empty() const { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const { return heap_.size(); }
    /// Earliest event without removing it. Precondition: !empty().
    [[nodiscard]] const Event& peek() const { return heap_.top().event; }
    /// Remove and return the earliest event. Precondition: !empty().
    Event pop();
    void clear();

  private:
    struct Entry {
        Event event;
        std::uint64_t seq;
        bool operator>(const Entry& o) const {
            if (event.time_s != o.event.time_s) {
                return event.time_s > o.event.time_s;
            }
            return seq > o.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::uint64_t next_seq_{0};
};

}  // namespace uavdc::sim
