#include "uavdc/sim/monte_carlo.hpp"

#include <cmath>

#include "uavdc/util/parallel_for.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/util/stats.hpp"

namespace uavdc::sim {

RobustnessReport evaluate_robustness(const model::Instance& inst,
                                     const model::FlightPlan& plan,
                                     const DisturbanceModel& model,
                                     int trials, std::uint64_t seed) {
    return evaluate_robustness(inst, plan, model, trials, seed,
                               util::global_pool());
}

RobustnessReport evaluate_robustness(const model::Instance& inst,
                                     const model::FlightPlan& plan,
                                     const DisturbanceModel& model,
                                     int trials, std::uint64_t seed,
                                     util::ThreadPool& pool) {
    RobustnessReport out;
    if (trials <= 0) return out;
    out.trials = trials;

    struct Trial {
        double gb;
        double energy_j;
        bool completed;
    };
    std::vector<Trial> results(static_cast<std::size_t>(trials));
    const util::Rng root(seed);
    util::parallel_for(pool, 0, results.size(), [&](std::size_t t) {
        util::Rng rng = root.split(t + 1);
        const double speed = rng.uniform(0.0, model.wind_max_mps);
        const double angle = rng.uniform(0.0, 6.283185307179586);
        const double taper = rng.uniform(0.0, model.taper_max);

        const DistanceTaperRadio radio(std::max(taper, 1e-12));
        SimConfig cfg;
        cfg.record_trace = false;
        cfg.early_departure = model.early_departure;
        cfg.wind =
            Wind{{speed * std::cos(angle), speed * std::sin(angle)}};
        if (taper > 0.0) cfg.radio = &radio;
        const auto rep = Simulator(cfg).run(inst, plan);
        results[t] = {rep.collected_mb / 1000.0, rep.energy_used_j,
                      rep.completed};
    });

    util::Accumulator gb, energy;
    std::vector<double> volumes;
    volumes.reserve(results.size());
    int completed = 0;
    double worst = std::numeric_limits<double>::infinity();
    for (const auto& r : results) {
        gb.add(r.gb);
        energy.add(r.energy_j);
        volumes.push_back(r.gb);
        if (r.completed) ++completed;
        worst = std::min(worst, r.gb);
    }
    out.completion_rate =
        static_cast<double>(completed) / static_cast<double>(trials);
    out.mean_gb = gb.mean();
    out.mean_energy_j = energy.mean();
    out.p10_gb = util::quantile(volumes, 0.10);
    out.p90_gb = util::quantile(volumes, 0.90);
    out.worst_gb = worst;
    return out;
}

}  // namespace uavdc::sim
