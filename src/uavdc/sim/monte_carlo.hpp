#pragma once

#include <cstdint>

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/thread_pool.hpp"

namespace uavdc::sim {

/// Disturbance distribution for Monte-Carlo plan evaluation. Each trial
/// samples a wind vector (uniform direction, speed ~ U[0, wind_max_mps])
/// and a radio taper (~ U[0, taper_max]), then executes the plan in the
/// simulator under those conditions.
struct DisturbanceModel {
    double wind_max_mps = 4.0;
    double taper_max = 0.5;
    bool early_departure = false;  ///< execute with the adaptive knob on
};

/// Aggregate over trials.
struct RobustnessReport {
    int trials{0};
    double completion_rate{0.0};   ///< fraction of sorties returning home
    double mean_gb{0.0};           ///< mean collected volume
    double p10_gb{0.0};            ///< 10th percentile (pessimistic)
    double p90_gb{0.0};            ///< 90th percentile (optimistic)
    double mean_energy_j{0.0};
    double worst_gb{0.0};
};

/// Execute `plan` under `trials` sampled disturbances (deterministic for a
/// fixed seed; trials run in parallel on the global pool). The question
/// this answers: "how does this tour hold up when the world is not the
/// planner's model?" — completion probability first, volume second.
///
/// The report is bit-identical for a fixed seed regardless of the pool's
/// thread count: each trial derives its RNG from (seed, trial index) and
/// writes to its own slot, and the aggregation pass is sequential. A
/// determinism test holds this invariant (1 thread vs N).
[[nodiscard]] RobustnessReport evaluate_robustness(
    const model::Instance& inst, const model::FlightPlan& plan,
    const DisturbanceModel& model = {}, int trials = 64,
    std::uint64_t seed = 12345);

/// Same, on a caller-supplied pool (e.g. a single-thread pool to pin CPU
/// usage, or the determinism test's 1-vs-N comparison).
[[nodiscard]] RobustnessReport evaluate_robustness(
    const model::Instance& inst, const model::FlightPlan& plan,
    const DisturbanceModel& model, int trials, std::uint64_t seed,
    util::ThreadPool& pool);

}  // namespace uavdc::sim
