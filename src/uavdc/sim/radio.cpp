#include "uavdc/sim/radio.hpp"

#include <algorithm>

#include "uavdc/util/check.hpp"

namespace uavdc::sim {

double ConstantRadio::rate_mbps(double dist_m, double radius_m,
                                double bandwidth_mbps) const {
    return dist_m <= radius_m ? bandwidth_mbps : 0.0;
}

DistanceTaperRadio::DistanceTaperRadio(double taper) : taper_(taper) {
    UAVDC_REQUIRE(taper >= 0.0 && taper < 1.0)
        << "DistanceTaperRadio: taper must be in [0, 1), got " << taper;
}

double DistanceTaperRadio::rate_mbps(double dist_m, double radius_m,
                                     double bandwidth_mbps) const {
    if (dist_m > radius_m || radius_m <= 0.0) return 0.0;
    const double x = dist_m / radius_m;
    return bandwidth_mbps * (1.0 - taper_ * x * x);
}

const RadioModel& constant_radio() {
    static const ConstantRadio model;
    return model;
}

}  // namespace uavdc::sim
