#pragma once

#include <memory>
#include <string>

namespace uavdc::sim {

/// Uplink rate model for a device at horizontal distance `dist_m` from the
/// hovering location, with nominal coverage radius R0 and nominal bandwidth
/// B (MB/s). The paper assumes a constant rate B for every covered device
/// (OFDMA, all devices upload simultaneously on separate channels;
/// Sec. III-B explicitly neglects distance effects at low altitude).
class RadioModel {
  public:
    virtual ~RadioModel() = default;
    /// Effective upload rate (MB/s); 0 outside coverage.
    [[nodiscard]] virtual double rate_mbps(double dist_m, double radius_m,
                                           double bandwidth_mbps) const = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Paper model: rate = B inside R0, 0 outside.
class ConstantRadio final : public RadioModel {
  public:
    [[nodiscard]] double rate_mbps(double dist_m, double radius_m,
                                   double bandwidth_mbps) const override;
    [[nodiscard]] std::string name() const override { return "constant"; }
};

/// Extension: smooth distance taper, rate = B * (1 - taper * (d/R0)^2)
/// inside R0 and 0 outside. With taper = 0 this equals ConstantRadio; the
/// ablation bench uses it to check how sensitive the planners' relative
/// ordering is to the paper's equal-rate assumption.
class DistanceTaperRadio final : public RadioModel {
  public:
    explicit DistanceTaperRadio(double taper = 0.5);
    [[nodiscard]] double rate_mbps(double dist_m, double radius_m,
                                   double bandwidth_mbps) const override;
    [[nodiscard]] std::string name() const override {
        return "distance-taper";
    }
    [[nodiscard]] double taper() const { return taper_; }

  private:
    double taper_;
};

/// Shared default instance of the paper's constant-rate model.
[[nodiscard]] const RadioModel& constant_radio();

}  // namespace uavdc::sim
