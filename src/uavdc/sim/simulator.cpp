#include "uavdc/sim/simulator.hpp"

#include <algorithm>

#include "uavdc/model/energy_view.hpp"
#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/sim/battery.hpp"
#include "uavdc/sim/event_queue.hpp"

namespace uavdc::sim {

namespace {

/// An active upload during one hover.
struct Upload {
    int device;
    double rate_mbps;
    double done_at_s;  ///< absolute time the residual would finish
};

}  // namespace

SimReport Simulator::run(const model::Instance& inst,
                         const model::FlightPlan& plan) const {
    const RadioModel& radio = cfg_.radio ? *cfg_.radio : constant_radio();
    // Single energy model shared with the planners, evaluator, and
    // validator (the conformance oracle asserts this agreement).
    const model::EnergyView energy(inst.uav);
    SimReport rep;
    rep.per_device_mb.assign(inst.devices.size(), 0.0);

    std::vector<double> residual(inst.devices.size());
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        residual[i] = inst.devices[i].data_mb;
    }

    Battery battery(energy.budget_j());
    double now = 0.0;
    geom::Vec2 here = inst.depot;
    auto record = [&](EventKind kind, int stop, int device, double value) {
        if (cfg_.record_trace) rep.trace.push_back({now, kind, stop, device,
                                                    value});
    };

    const geom::SpatialHash* hash = nullptr;
    geom::SpatialHash hash_storage({}, 1.0);
    if (!inst.devices.empty()) {
        const auto positions = inst.device_positions();
        hash_storage =
            geom::SpatialHash(positions, inst.uav.coverage_radius_m);
        hash = &hash_storage;
    }

    record(EventKind::kDepart, -1, -1, battery.remaining_j());

    bool aborted = false;
    for (std::size_t si = 0; si < plan.stops.size() && !aborted; ++si) {
        const auto& stop = plan.stops[si];
        // --- travel leg ---
        const double dist = geom::distance(here, stop.pos);
        const double fly_t =
            cfg_.wind.calm()
                ? energy.travel_time(dist)
                : cfg_.wind.travel_time(here, stop.pos, inst.uav.speed_mps);
        const double flown = battery.drain(energy.travel_power_w(), fly_t);
        now += flown;
        rep.travel_s += flown;
        if (flown + 1e-12 < fly_t) {
            here = geom::lerp(here, stop.pos,
                              fly_t > 0.0 ? flown / fly_t : 1.0);
            record(EventKind::kBatteryDepleted, static_cast<int>(si), -1,
                   0.0);
            rep.battery_depleted = true;
            aborted = true;
            break;
        }
        here = stop.pos;
        record(EventKind::kArrive, static_cast<int>(si), -1, dist);

        // --- hover + concurrent uploads ---
        const double hover_budget =
            battery.time_until_empty(energy.hover_power_w());
        double desired_t = stop.dwell_s;

        std::vector<Upload> uploads;
        if (hash != nullptr) {
            hash->for_each_in_disk(
                stop.pos, inst.uav.coverage_radius_m, [&](int dev) {
                    const auto d = static_cast<std::size_t>(dev);
                    if (residual[d] <= 0.0) return;
                    const double rate = radio.rate_mbps(
                        geom::distance(stop.pos, inst.devices[d].pos),
                        inst.uav.coverage_radius_m, inst.uav.bandwidth_mbps);
                    if (rate <= 0.0) return;
                    uploads.push_back({dev, rate, now + residual[d] / rate});
                });
        }
        if (cfg_.early_departure) {
            // Leave once every active upload would be done (never later
            // than the planned dwell; the battery cap still applies).
            double need = 0.0;
            for (const auto& u : uploads) {
                need = std::max(need, u.done_at_s - now);
            }
            const double adaptive = std::min(stop.dwell_s, need);
            if (adaptive < desired_t) {
                rep.energy_saved_j +=
                    energy.hover(desired_t - adaptive);
                desired_t = adaptive;
            }
        }
        const double hover_t = std::min(desired_t, hover_budget);
        record(EventKind::kHoverStart, static_cast<int>(si), -1, hover_t);
        // Device-done events inside the hover window, in time order.
        EventQueue q;
        for (const auto& u : uploads) {
            if (u.done_at_s <= now + hover_t + 1e-12) {
                q.push({u.done_at_s, EventKind::kDeviceDone, -1, u.device,
                        0.0});
            }
        }
        const double hover_end = now + hover_t;
        for (const auto& u : uploads) {
            const auto d = static_cast<std::size_t>(u.device);
            const double got =
                std::min(residual[d], u.rate_mbps * hover_t);
            residual[d] -= got;
            rep.per_device_mb[d] += got;
            rep.collected_mb += got;
        }
        while (!q.empty()) {
            Event e = q.pop();
            if (cfg_.record_trace) {
                e.stop = static_cast<int>(si);
                rep.trace.push_back(e);
            }
        }
        battery.drain(energy.hover_power_w(), hover_t);
        now = hover_end;
        rep.hover_s += hover_t;
        ++rep.stops_visited;
        record(EventKind::kHoverEnd, static_cast<int>(si), -1, hover_t);
        if (hover_t + 1e-12 < desired_t) {
            record(EventKind::kBatteryDepleted, static_cast<int>(si), -1,
                   0.0);
            rep.battery_depleted = true;
            aborted = true;
        }
    }

    if (!aborted) {
        // --- return leg ---
        const double dist = geom::distance(here, inst.depot);
        const double fly_t =
            cfg_.wind.calm()
                ? energy.travel_time(dist)
                : cfg_.wind.travel_time(here, inst.depot,
                                        inst.uav.speed_mps);
        const double flown = battery.drain(energy.travel_power_w(), fly_t);
        now += flown;
        rep.travel_s += flown;
        if (flown + 1e-12 < fly_t) {
            record(EventKind::kBatteryDepleted, -1, -1, 0.0);
            rep.battery_depleted = true;
        } else {
            rep.completed = true;
            record(EventKind::kTourComplete, -1, -1,
                   battery.remaining_j());
        }
    }

    for (std::size_t d = 0; d < residual.size(); ++d) {
        if (inst.devices[d].data_mb > 0.0 && residual[d] <= 1e-9) {
            ++rep.devices_drained;
        }
    }
    rep.duration_s = now;
    rep.energy_used_j = battery.consumed_j();
    return rep;
}

}  // namespace uavdc::sim
