#pragma once

#include <vector>

#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"
#include "uavdc/sim/event.hpp"
#include "uavdc/sim/radio.hpp"
#include "uavdc/sim/wind.hpp"

namespace uavdc::sim {

/// Simulator options.
struct SimConfig {
    /// Record the full event trace (device-done events included). Traces of
    /// large plans can run to thousands of events; disable for sweeps.
    bool record_trace = true;
    /// Radio model; nullptr uses the paper's constant-rate model.
    const RadioModel* radio = nullptr;
    /// Adaptive early departure (extension beyond the paper's open-loop
    /// dwell): the UAV leaves a stop as soon as every covered device with
    /// residual data has finished uploading, instead of sitting out the
    /// planned dwell. Collects exactly the same data, banks the hover
    /// energy that overlap made redundant (SimReport::energy_saved_j).
    bool early_departure = false;
    /// Constant wind at execution time: legs take dist / ground_speed
    /// seconds while the motors keep drawing flying power, so headwinds
    /// burn extra energy the (wind-oblivious) plan did not budget.
    Wind wind{};
};

/// Outcome of simulating a flight plan.
struct SimReport {
    double collected_mb{0.0};
    double energy_used_j{0.0};
    double duration_s{0.0};             ///< tour time T = T_h + T_t
    double hover_s{0.0};
    double travel_s{0.0};
    bool completed{false};              ///< UAV made it back to the depot
    bool battery_depleted{false};
    int stops_visited{0};
    int devices_drained{0};
    /// Hover energy saved by early departure (0 unless enabled).
    double energy_saved_j{0.0};
    std::vector<double> per_device_mb;  ///< collected per device
    std::vector<Event> trace;           ///< empty if record_trace == false
};

/// Discrete-event execution of a flight plan: the UAV flies leg by leg,
/// hovers for each stop's dwell, and covered devices upload concurrently
/// (OFDMA) until drained or the dwell ends. The battery drains continuously
/// at eta_t while flying and eta_h while hovering; if it empties mid-action
/// the simulation truncates there (battery_depleted = true, completed =
/// false). For energy-feasible plans the report matches
/// core::evaluate_plan to floating-point accuracy (a tested invariant).
class Simulator {
  public:
    explicit Simulator(SimConfig cfg = {}) : cfg_(cfg) {}

    [[nodiscard]] SimReport run(const model::Instance& inst,
                                const model::FlightPlan& plan) const;

  private:
    SimConfig cfg_;
};

}  // namespace uavdc::sim
