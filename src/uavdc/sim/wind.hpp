#pragma once

#include "uavdc/geom/vec2.hpp"

namespace uavdc::sim {

/// Constant wind field (execution-time disturbance; planners are
/// wind-oblivious just as they are rate-oblivious).
///
/// The UAV holds a constant *airspeed* Va and crabs so its ground track
/// follows the planned leg. With wind w decomposed along the track
/// (w_par) and across it (w_perp), the achievable ground speed is
///   Vg = sqrt(Va^2 - w_perp^2) + w_par
/// (the aircraft must cancel the cross component first). Vg <= 0 means the
/// leg cannot be flown.
struct Wind {
    geom::Vec2 vel_mps{0.0, 0.0};

    [[nodiscard]] bool calm() const {
        return vel_mps.x == 0.0 && vel_mps.y == 0.0;
    }

    /// Ground speed along direction `track` (need not be normalised) at
    /// airspeed `airspeed_mps`; <= 0 when the leg is unflyable.
    [[nodiscard]] double ground_speed(const geom::Vec2& track,
                                      double airspeed_mps) const {
        const geom::Vec2 u = track.normalized();
        if (u == geom::Vec2{}) return airspeed_mps;
        const double w_par = vel_mps.dot(u);
        const double w_perp = vel_mps.cross(u);
        const double rad = airspeed_mps * airspeed_mps - w_perp * w_perp;
        if (rad <= 0.0) return 0.0;
        return std::sqrt(rad) + w_par;
    }

    /// Time to fly from a to b (s); +inf when unflyable.
    [[nodiscard]] double travel_time(const geom::Vec2& a,
                                     const geom::Vec2& b,
                                     double airspeed_mps) const {
        const double dist = geom::distance(a, b);
        if (dist == 0.0) return 0.0;
        const double vg = ground_speed(b - a, airspeed_mps);
        if (vg <= 1e-9) return 1e18;
        return dist / vg;
    }
};

}  // namespace uavdc::sim
