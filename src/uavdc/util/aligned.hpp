#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace uavdc::util {

/// Minimum alignment (bytes) of the structure-of-arrays buffers in
/// core/soa_layout and of every ScratchArena block: one AVX2 vector, so the
/// batched kernels read full-width lanes without ever straddling a cache
/// line at the array head.
inline constexpr std::size_t kSoaAlignment = 32;

/// std::allocator drop-in that over-aligns every allocation to `Align`
/// bytes. Used through AlignedVector; the container is layout-compatible
/// with std::vector apart from the allocator type.
template <typename T, std::size_t Align = kSoaAlignment>
struct AlignedAllocator {
    using value_type = T;
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "Align must be a power of two >= alignof(T)");

    AlignedAllocator() noexcept = default;
    template <typename U>
    explicit AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Align>;
    };

    [[nodiscard]] T* allocate(std::size_t n) {
        return static_cast<T*>(
            ::operator new(n * sizeof(T), std::align_val_t{Align}));
    }
    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{Align});
    }

    friend bool operator==(const AlignedAllocator&,
                           const AlignedAllocator&) noexcept {
        return true;
    }
};

/// Contiguous array whose data() is `kSoaAlignment`-aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace uavdc::util
