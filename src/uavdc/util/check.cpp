#include "uavdc/util/check.hpp"

#include <utility>

namespace uavdc::util {

ContractViolation::ContractViolation(std::string kind, std::string expression,
                                     std::string file, int line,
                                     std::string message)
    : std::runtime_error(format(kind, expression, file, line, message)),
      kind_(std::move(kind)),
      expression_(std::move(expression)),
      file_(std::move(file)),
      line_(line),
      message_(std::move(message)) {}

std::string ContractViolation::format(const std::string& kind,
                                      const std::string& expression,
                                      const std::string& file, int line,
                                      const std::string& message) {
    std::string out = kind + " failed at " + file + ":" +
                      std::to_string(line) + ": (" + expression + ")";
    if (!message.empty()) out += ": " + message;
    return out;
}

}  // namespace uavdc::util
