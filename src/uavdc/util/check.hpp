#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace uavdc::util {

/// Raised when a UAVDC_CHECK / UAVDC_DCHECK / UAVDC_REQUIRE contract fails.
///
/// Derives from std::runtime_error so existing catch sites keep working, but
/// carries the failed expression and the file:line of the check site as
/// structured fields — tests and tools can assert on them instead of parsing
/// the what() string. what() always embeds "file:line" so a bare log line is
/// enough to locate the failed contract.
class ContractViolation : public std::runtime_error {
  public:
    ContractViolation(std::string kind, std::string expression,
                      std::string file, int line, std::string message);

    /// Which macro fired: "UAVDC_CHECK", "UAVDC_DCHECK", or "UAVDC_REQUIRE".
    [[nodiscard]] const std::string& kind() const { return kind_; }
    /// The stringified condition that evaluated false.
    [[nodiscard]] const std::string& expression() const { return expression_; }
    /// Source file of the check site.
    [[nodiscard]] const std::string& file() const { return file_; }
    /// Source line of the check site.
    [[nodiscard]] int line() const { return line_; }
    /// The streamed user message (empty when nothing was streamed).
    [[nodiscard]] const std::string& message() const { return message_; }

  private:
    static std::string format(const std::string& kind,
                              const std::string& expression,
                              const std::string& file, int line,
                              const std::string& message);

    std::string kind_;
    std::string expression_;
    std::string file_;
    int line_;
    std::string message_;
};

namespace detail {

/// Collects the `<< ...` message of a failing contract. The macros arrange
/// for ContractRaiser::operator& — which binds looser than operator<< — to
/// run after the whole message has been streamed, so the exception carries
/// the complete text.
class ContractMessage {
  public:
    ContractMessage(const char* kind, const char* expression, const char* file,
                    int line)
        : kind_(kind), expression_(expression), file_(file), line_(line) {}

    template <typename T>
    ContractMessage& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

    [[noreturn]] void raise() const {
        throw ContractViolation(kind_, expression_, file_, line_,
                                stream_.str());
    }

  private:
    const char* kind_;
    const char* expression_;
    const char* file_;
    int line_;
    std::ostringstream stream_;
};

struct ContractRaiser {
    [[noreturn]] void operator&(const ContractMessage& message) const {
        message.raise();
    }
};

}  // namespace detail

}  // namespace uavdc::util

// The ternary is deliberately left unparenthesised so a trailing
// `<< "message"` attaches to the ContractMessage, not to the whole
// expression; ContractRaiser::operator& then throws after the message is
// fully streamed.
#define UAVDC_CONTRACT_IMPL(kind, condstr, cond)                          \
    (cond) ? (void)0                                                      \
           : ::uavdc::util::detail::ContractRaiser() &                    \
                 ::uavdc::util::detail::ContractMessage(kind, condstr,    \
                                                        __FILE__, __LINE__)

/// Internal invariant; always compiled in, including release builds, so the
/// energy/data accounting checks the paper's guarantees rest on can never be
/// silently disabled. Usage: UAVDC_CHECK(x >= 0) << "x=" << x;
#define UAVDC_CHECK(cond) UAVDC_CONTRACT_IMPL("UAVDC_CHECK", #cond, cond)

/// Caller-facing precondition (argument validation). Same always-on
/// semantics as UAVDC_CHECK; the kind tag records intent.
#define UAVDC_REQUIRE(cond) UAVDC_CONTRACT_IMPL("UAVDC_REQUIRE", #cond, cond)

/// Debug-only invariant for checks too expensive for release hot paths. In
/// NDEBUG builds the condition still has to compile but is never evaluated,
/// and the streamed message is dead code.
#ifdef NDEBUG
#define UAVDC_DCHECK(cond) \
    UAVDC_CONTRACT_IMPL("UAVDC_DCHECK", #cond, true || (cond))
#else
#define UAVDC_DCHECK(cond) UAVDC_CONTRACT_IMPL("UAVDC_DCHECK", #cond, cond)
#endif

namespace uavdc::util {

/// Range-checked integer narrowing: the sanctioned replacement for a bare
/// static_cast to a narrower integer type (lint rule UL013,
/// uavdc-unchecked-narrowing). Throws ContractViolation when `value` does
/// not fit in `To`; compiles to a compare-and-cast otherwise. Defined
/// after the contract macros because it uses UAVDC_CHECK itself.
/// Usage: const std::int32_t off = util::checked_cast<std::int32_t>(n);
template <typename To, typename From>
[[nodiscard]] constexpr To checked_cast(From value) {
    static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                  "checked_cast is for integer narrowing; use an explicit "
                  "conversion with a range check for floating point");
    UAVDC_CHECK(std::in_range<To>(value))
        << "checked_cast: value " << +value << " does not fit the target "
        << "integer type (" << sizeof(To) << " bytes, "
        << (std::is_signed_v<To> ? "signed" : "unsigned") << ")";
    return static_cast<To>(value);
}

}  // namespace uavdc::util
