#include "uavdc/util/csv.hpp"

#include "uavdc/util/check.hpp"

namespace uavdc::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
    UAVDC_REQUIRE(static_cast<bool>(out_)) << "CsvWriter: cannot open " << path;
}

std::string CsvWriter::escape(const std::string& cell) {
    const bool needs_quote =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace uavdc::util
