#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace uavdc::util {

/// Minimal CSV writer for benchmark output series. Values containing commas,
/// quotes or newlines are quoted per RFC 4180.
class CsvWriter {
  public:
    /// Open `path` for writing (truncates). Throws on failure.
    explicit CsvWriter(const std::string& path);

    /// Write a header or data row.
    void row(const std::vector<std::string>& cells);

    /// Convenience: stringify a mixed row.
    template <typename... Ts>
    void row_of(const Ts&... vals) {
        std::vector<std::string> cells;
        cells.reserve(sizeof...(vals));
        (cells.push_back(stringify(vals)), ...);
        row(cells);
    }

    /// Flush underlying stream.
    void flush();

    [[nodiscard]] const std::string& path() const { return path_; }

    /// Escape a single cell per RFC 4180.
    [[nodiscard]] static std::string escape(const std::string& cell);

  private:
    template <typename T>
    static std::string stringify(const T& v) {
        if constexpr (std::is_convertible_v<T, std::string>) {
            return std::string(v);
        } else {
            std::ostringstream os;
            os << v;
            return os.str();
        }
    }

    std::string path_;
    std::ofstream out_;
};

}  // namespace uavdc::util
