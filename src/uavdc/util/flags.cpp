#include "uavdc/util/flags.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace uavdc::util {

namespace {

bool is_flag(const std::string& s) {
    return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!is_flag(arg)) {
            positional_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && !is_flag(argv[i + 1]) &&
                   argv[i + 1][0] != '-') {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "";  // bare boolean flag
        }
    }
}

bool Flags::has(const std::string& name) const {
    return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

double Flags::get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return fallback;
    return std::stod(it->second);
}

int Flags::get_int(const std::string& name, int fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return fallback;
    return std::stoi(it->second);
}

long long Flags::get_int64(const std::string& name, long long fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return fallback;
    return std::stoll(it->second);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
        return true;
    }
    if (v == "0" || v == "false" || v == "no" || v == "off") return false;
    throw std::invalid_argument("Flags: bad boolean for --" + name + ": " + v);
}

std::vector<double> Flags::get_double_list(
    const std::string& name, std::vector<double> fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return fallback;
    std::vector<double> out;
    std::stringstream ss(it->second);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) out.push_back(std::stod(tok));
    }
    return out;
}

std::vector<int> Flags::get_int_list(const std::string& name,
                                     std::vector<int> fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return fallback;
    std::vector<int> out;
    std::stringstream ss(it->second);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) out.push_back(std::stoi(tok));
    }
    return out;
}

}  // namespace uavdc::util
