#pragma once

#include <map>
#include <string>
#include <vector>

namespace uavdc::util {

/// Tiny command-line flag parser for the bench/example binaries.
/// Accepts `--name=value`, `--name value`, and bare boolean `--name`.
/// Unknown flags are collected (and reported by `unknown()`), positional
/// arguments preserved in order.
class Flags {
  public:
    Flags(int argc, const char* const* argv);

    /// True if --name was present (with or without a value).
    [[nodiscard]] bool has(const std::string& name) const;

    [[nodiscard]] std::string get_string(const std::string& name,
                                         const std::string& fallback) const;
    [[nodiscard]] double get_double(const std::string& name,
                                    double fallback) const;
    [[nodiscard]] int get_int(const std::string& name, int fallback) const;
    [[nodiscard]] long long get_int64(const std::string& name,
                                      long long fallback) const;
    /// Bare `--name` and `--name=true/1/yes/on` are true;
    /// `--name=false/0/no/off` is false.
    [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

    /// Comma-separated list of doubles, e.g. --deltas=5,10,20.
    [[nodiscard]] std::vector<double> get_double_list(
        const std::string& name, std::vector<double> fallback) const;
    /// Comma-separated list of ints.
    [[nodiscard]] std::vector<int> get_int_list(
        const std::string& name, std::vector<int> fallback) const;

    [[nodiscard]] const std::vector<std::string>& positional() const {
        return positional_;
    }

    [[nodiscard]] const std::string& program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

}  // namespace uavdc::util
