#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "uavdc/util/thread_pool.hpp"

namespace uavdc::util {

/// Static-chunked parallel loop over [begin, end): f(i) is invoked once per
/// index, partitioned into contiguous chunks across the pool. Exceptions from
/// workers are rethrown on the calling thread (first one wins).
///
/// Deterministic partitioning: output-side determinism is the caller's job
/// (write to disjoint slots, don't accumulate shared state).
template <typename F>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, F&& f,
                  std::size_t min_chunk = 1) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t max_chunks = pool.num_threads() * 4;
    const std::size_t chunk =
        std::max({min_chunk, std::size_t{1}, (n + max_chunks - 1) / max_chunks});
    // Nested use from a worker thread would deadlock (all workers blocked
    // on futures only they could run) — execute inline instead.
    if (n <= chunk || pool.on_worker_thread()) {
        for (std::size_t i = begin; i < end; ++i) f(i);
        return;
    }
    std::vector<std::future<void>> futs;
    futs.reserve((n + chunk - 1) / chunk);
    for (std::size_t lo = begin; lo < end; lo += chunk) {
        const std::size_t hi = std::min(end, lo + chunk);
        futs.push_back(pool.submit([lo, hi, &f] {
            for (std::size_t i = lo; i < hi; ++i) f(i);
        }));
    }
    std::exception_ptr first_error;
    for (auto& fut : futs) {
        try {
            fut.get();
        } catch (...) {
            if (!first_error) first_error = std::current_exception();
        }
    }
    if (first_error) std::rethrow_exception(first_error);
}

/// Overload using the process-global pool.
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& f,
                  std::size_t min_chunk = 1) {
    parallel_for(global_pool(), begin, end, std::forward<F>(f), min_chunk);
}

/// Run f over [begin, end) on the global pool when `parallel`, inline
/// otherwise. Lets callers thread one "are we over the parallel threshold"
/// decision through scoring/rebuild helpers without duplicating both loops.
template <typename F>
void maybe_parallel_for(bool parallel, std::size_t begin, std::size_t end,
                        F&& f, std::size_t min_chunk = 1) {
    if (parallel) {
        parallel_for(global_pool(), begin, end, std::forward<F>(f), min_chunk);
        return;
    }
    for (std::size_t i = begin; i < end; ++i) f(i);
}

/// Parallel map: out[i] = f(i) for i in [0, n).
template <typename T, typename F>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, F&& f) {
    std::vector<T> out(n);
    parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = f(i); });
    return out;
}

}  // namespace uavdc::util
