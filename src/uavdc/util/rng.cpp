#include "uavdc/util/rng.hpp"

#include <cmath>

#include "uavdc/util/check.hpp"

namespace uavdc::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
    have_spare_normal_ = false;
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    UAVDC_REQUIRE(lo <= hi) << "uniform lo=" << lo << " hi=" << hi;
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    UAVDC_REQUIRE(lo <= hi) << "uniform_int lo=" << lo << " hi=" << hi;
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
        return static_cast<std::int64_t>(next_u64());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
    if (have_spare_normal_) {
        have_spare_normal_ = false;
        return spare_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    spare_normal_ = mag * std::sin(two_pi * u2);
    have_spare_normal_ = true;
    return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) {
    return mean + stddev * normal();
}

double Rng::exponential(double mean) {
    UAVDC_REQUIRE(mean > 0.0) << "exponential mean=" << mean;
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split(std::uint64_t stream) const {
    std::uint64_t x = s_[0] ^ rotl(s_[2], 13) ^ (stream * 0xD6E8FEB86659FD93ULL);
    Rng child(splitmix64(x));
    return child;
}

}  // namespace uavdc::util
