#pragma once

#include <cstdint>
#include <limits>

namespace uavdc::util {

/// Deterministic, seedable PRNG (xoshiro256**). Every stochastic component
/// in the library (workload generation, GRASP restarts) takes an explicit
/// Rng or seed so experiments are exactly reproducible across runs and
/// thread counts.
class Rng {
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

    /// Re-initialise the state from a 64-bit seed via SplitMix64.
    void reseed(std::uint64_t seed);

    /// Raw 64-bit output.
    std::uint64_t next_u64();

    // UniformRandomBitGenerator interface (usable with <random> if desired).
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() {
        return std::numeric_limits<std::uint64_t>::max();
    }
    result_type operator()() { return next_u64(); }

    /// Uniform double in [0, 1).
    double uniform();
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);
    /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
    /// Standard normal via Box-Muller.
    double normal();
    /// Normal with given mean and stddev.
    double normal(double mean, double stddev);
    /// Exponential with given mean (> 0).
    double exponential(double mean);
    /// Bernoulli trial with probability p.
    bool bernoulli(double p);

    /// Derive an independent child generator (for per-thread / per-instance
    /// streams): deterministic function of current state and `stream`.
    [[nodiscard]] Rng split(std::uint64_t stream) const;

  private:
    std::uint64_t s_[4]{};
    bool have_spare_normal_{false};
    double spare_normal_{0.0};
};

}  // namespace uavdc::util
